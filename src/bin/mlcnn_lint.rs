//! `mlcnn-lint`: run the `mlcnn-check` static analysis suite over the
//! workspace's declarative inputs — and, with `--plans`, over the
//! *compiled* execution plans.
//!
//! ```text
//! mlcnn-lint [--json] [--deny-warnings] [--plans]
//! ```
//!
//! Default suite, in order:
//!
//! 1. every model-zoo spec list (shape inference + fusion legality);
//! 2. every Table VII accelerator configuration;
//! 3. the tiling the dataflow search picks for every conv layer of the
//!    Table I models, against the FP32 buffer.
//!
//! `--plans` runs the post-lowering suite instead: the serving zoo is
//! compiled at FP32/FP16/INT8 and every plan goes through the `P0xx`
//! dataflow verifier, the `Q0xx` quantization range analysis, and the
//! `D0xx` SLO-configuration pass (a guaranteed-class serving config
//! derived from the plan's analytic cost oracle). This suite must be —
//! and is CI-enforced to be — completely clean: the compiler's own
//! output admits no warnings.
//!
//! Exit status: `0` when no denial was found (warnings are reported but
//! non-fatal unless `--deny-warnings`), `1` on denials, `2` on usage
//! errors.

use mlcnn::accel::dataflow::search_tiling;
use mlcnn::accel::AcceleratorConfig;
use mlcnn::check::{
    check_plan, check_qrange, check_slo_config, lint_network, Code, QRangeOptions, Reporter,
    Severity, SloConfigLint,
};
use mlcnn::nn::zoo;
use mlcnn::quant::Precision;
use mlcnn::sched::CostOracle;
use mlcnn::serve::serving_zoo;
use mlcnn::tensor::Shape4;

fn run_suite(deny_warnings: bool) -> Reporter {
    let mut all = if deny_warnings {
        Reporter::deny_warnings()
    } else {
        Reporter::new()
    };

    let input = Shape4::new(1, 3, 32, 32);
    let networks = [
        ("lenet5", zoo::lenet5_spec(10)),
        ("vgg_mini", zoo::vgg_mini_spec(3, 10)),
        ("googlenet_mini", zoo::googlenet_mini_spec(2, 10)),
        ("densenet_mini", zoo::densenet_mini_spec(4, 10)),
        ("resnet_mini", zoo::resnet_mini_spec(4, 10)),
    ];
    for (name, specs) in &networks {
        all.absorb(lint_network(name, specs, input, deny_warnings));
    }

    for cfg in AcceleratorConfig::table7() {
        for d in cfg.validate() {
            all.push(d);
        }
    }

    let cap = AcceleratorConfig::mlcnn_fp32().buffer_elements();
    for model in zoo::table1_models(10) {
        for g in &model.convs {
            match search_tiling(g, cap) {
                Some((t, _)) => {
                    for d in t.validate(g, cap) {
                        all.push(d);
                    }
                }
                None => all.emit(
                    Code::FootprintExceedsBuffer,
                    None,
                    format!("{}/{}: no tiling fits the buffer", model.name, g.name),
                ),
            }
        }
    }
    all
}

/// The `--plans` suite: compile every serving-zoo model at every
/// precision and run both post-lowering passes over each plan, with a
/// `name@precision` context prefix on every finding.
fn run_plan_suite(deny_warnings: bool) -> Reporter {
    let mut all = if deny_warnings {
        Reporter::deny_warnings()
    } else {
        Reporter::new()
    };
    for model in serving_zoo() {
        for precision in Precision::ALL {
            let label = format!("{}@{precision}", model.name);
            match model.compile(precision) {
                Ok(plan) => {
                    let view = plan.view();
                    all.with_context(label, |r| {
                        check_plan(&view, r);
                        check_qrange(&view, &QRangeOptions::default(), r);
                        check_slo_config(&slo_fixture(model.name, &view), r);
                    });
                }
                Err(e) => all.emit(Code::ArtifactIncompilable, None, format!("{label}: {e}")),
            }
        }
    }
    all
}

/// A guaranteed-class serving config for `view`, sized from its analytic
/// cost oracle so every `D0xx` check is satisfiable: the budget clears
/// the single-item floor (D003), the batching window (D002), and the
/// half-budget headroom rule (D005) by construction. A model whose plan
/// breaks the oracle's pricing would surface here as a denial.
fn slo_fixture(name: &str, view: &mlcnn::check::PlanView) -> SloConfigLint {
    const MAX_BATCH: usize = 8;
    const MAX_WAIT_MICROS: u64 = 2_000;
    let oracle = CostOracle::analytic(view);
    let predicted_batch_micros = oracle.predicted_service_nanos(MAX_BATCH) / 1_000;
    SloConfigLint {
        name: name.to_string(),
        guaranteed: true,
        budget_micros: 2 * (predicted_batch_micros + MAX_WAIT_MICROS) + 1,
        max_wait_micros: MAX_WAIT_MICROS,
        max_batch: MAX_BATCH,
        predicted_service_micros: oracle.min_service_nanos() / 1_000,
        predicted_batch_service_micros: predicted_batch_micros,
    }
}

fn main() {
    let mut json = false;
    let mut deny_warnings = false;
    let mut plans = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--plans" => plans = true,
            "--help" | "-h" => {
                println!("usage: mlcnn-lint [--json] [--deny-warnings] [--plans]");
                return;
            }
            other => {
                eprintln!("mlcnn-lint: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let reporter = if plans {
        run_plan_suite(deny_warnings)
    } else {
        run_suite(deny_warnings)
    };
    if json {
        println!("{}", reporter.to_json());
    } else {
        print!("{}", reporter.pretty());
    }
    if reporter.has_deny() {
        std::process::exit(1);
    }
    // summarize where the warnings come from: the zoo specs are the
    // paper's *pre*-reorder networks, so conv→ReLU→pool warnings are the
    // expected motivating pattern, not mistakes
    if !json && !plans && reporter.count(Severity::Warn) > 0 {
        eprintln!(
            "note: F002 warnings flag the pre-reorder `conv → ReLU → avg-pool` \
             pattern the paper's Section III reordering removes"
        );
    }
}
