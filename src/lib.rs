//! # mlcnn
//!
//! Facade crate for the MLCNN reproduction workspace (Jiang et al.,
//! *MLCNN: Cross-Layer Cooperative Optimization and Accelerator
//! Architecture for Speeding Up Deep Learning Applications*, IPDPS 2022).
//!
//! Re-exports the workspace crates under stable names:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `mlcnn-tensor` | NCHW tensors and reference kernels |
//! | [`data`] | `mlcnn-data` | deterministic synthetic datasets |
//! | [`quant`] | `mlcnn-quant` | binary16, Q2.6 fixed point, DoReFa |
//! | [`nn`] | `mlcnn-nn` | trainable CNN framework + model zoo |
//! | [`core`] | `mlcnn-core` | the MLCNN contribution (reorder + fuse) |
//! | [`accel`] | `mlcnn-accel` | accelerator cycle & energy model |
//! | [`check`] | `mlcnn-check` | static analysis over specs, configs, tilings |
//! | [`serve`] | `mlcnn-serve` | micro-batching inference service + TCP front-end |
//! | [`net`] | `mlcnn-net` | event-driven, sharded epoll transport + mux client |
//!
//! ## The thirty-second tour
//!
//! Fuse a convolution with its (reordered) average pool and check it
//! computes the dense reference:
//!
//! ```
//! use mlcnn::core::FusedConvPool;
//! use mlcnn::tensor::{init, Shape4};
//!
//! let mut rng = init::rng(7);
//! let input = init::uniform(Shape4::new(1, 3, 12, 12), -1.0, 1.0, &mut rng);
//! let weight = init::kaiming(Shape4::new(8, 3, 3, 3), &mut rng);
//!
//! let fused = FusedConvPool::new(weight, vec![0.0; 8], 1, 1, 2).unwrap();
//! let mlcnn_out = fused.forward(&input).unwrap();
//! let dense_out = fused.reference(&input).unwrap(); // relu(avg_pool(conv(x)))
//! assert!(mlcnn_out.approx_eq(&dense_out, 1e-4));
//! ```
//!
//! Reorder a whole model and compile it into an execution plan — all
//! geometry resolved and weights baked at compile, zero steady-state
//! allocation at run time:
//!
//! ```
//! use mlcnn::core::{EvalPlan, PlanOptions, Workspace};
//! use mlcnn::core::reorder::reorder_activation_pool;
//! use mlcnn::nn::{spec::build_network, zoo};
//! use mlcnn::tensor::{init, Shape4};
//!
//! let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
//! let input = Shape4::new(1, 3, 32, 32);
//! let mut net = build_network(&specs, input, 0).unwrap();
//! let plan = net.eval_plan(PlanOptions::default()).unwrap();
//! assert_eq!(plan.fused_op_count(), 2); // both LeNet pools fuse
//!
//! let mut ws = Workspace::for_plan(&plan, 1); // reusable arena
//! let x = init::uniform(input, -1.0, 1.0, &mut init::rng(1));
//! let logits = plan.forward(&x, &mut ws).unwrap(); // &self: Send + Sync
//! assert_eq!(logits.shape(), Shape4::new(1, 1, 1, 10));
//! ```
//!
//! Serve a compiled plan behind the dynamic micro-batching runtime:
//!
//! ```
//! use mlcnn::quant::Precision;
//! use mlcnn::serve::{find_model, ServeConfig, Service};
//! use mlcnn::tensor::{init, Shape4};
//! use std::sync::Arc;
//!
//! let model = find_model("mlp-mini").unwrap();
//! let plan = Arc::new(model.compile(Precision::Fp32).unwrap());
//! let svc = Service::spawn(plan, ServeConfig::default()).unwrap();
//! let x = init::uniform(Shape4::new(1, 3, 8, 8), -1.0, 1.0, &mut init::rng(2));
//! let logits = svc.infer(x).unwrap(); // batched with concurrent submitters
//! assert_eq!(logits.shape(), Shape4::new(1, 1, 1, 10));
//! assert!(svc.shutdown().fully_drained());
//! ```
//!
//! Simulate the paper's accelerators:
//!
//! ```
//! use mlcnn::accel::{config::AcceleratorConfig, cycle, energy::EnergyModel};
//! use mlcnn::nn::zoo;
//!
//! let em = EnergyModel::default();
//! let model = zoo::lenet5(10);
//! let base = cycle::simulate_model(&model, &AcceleratorConfig::dcnn_fp32(), &em);
//! let fast = cycle::simulate_model(&model, &AcceleratorConfig::mlcnn_fp32(), &em);
//! assert!(cycle::mean_speedup(&base, &fast) > 2.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use mlcnn_accel as accel;
pub use mlcnn_check as check;
pub use mlcnn_core as core;
pub use mlcnn_data as data;
pub use mlcnn_net as net;
pub use mlcnn_nn as nn;
pub use mlcnn_quant as quant;
pub use mlcnn_sched as sched;
pub use mlcnn_serve as serve;
pub use mlcnn_tensor as tensor;

/// Everything a typical user needs, importable in one line.
pub mod prelude {
    pub use mlcnn_accel::config::AcceleratorConfig;
    pub use mlcnn_core::reorder::{reorder_activation_pool, to_all_conv_full};
    pub use mlcnn_core::{
        EvalPlan, ExecutionPlan, FusedConvPool, FusedNetwork, OpCounts, PlanOptions, Workspace,
    };
    pub use mlcnn_nn::spec::build_network;
    pub use mlcnn_nn::train::{evaluate, fit, TrainConfig};
    pub use mlcnn_nn::{LayerSpec, Network};
    pub use mlcnn_quant::Precision;
    pub use mlcnn_serve::{ServeConfig, Service};
    pub use mlcnn_tensor::{Shape4, Tensor};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let _ = Shape4::new(1, 3, 32, 32);
        let _ = AcceleratorConfig::table7();
        let _ = Precision::ALL;
        let _: Vec<LayerSpec> = mlcnn_nn::zoo::lenet5_spec(10);
    }
}
