//! Offline stand-in for `rand`.
//!
//! Implements exactly the API surface the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`RngExt::random_range`] over integer and
//! float ranges, and [`seq::SliceRandom::shuffle`] — on top of a
//! splitmix64-seeded xoshiro256** generator. Determinism per seed is the only
//! contract the workspace relies on (every experiment seeds explicitly), and
//! this crate keeps that contract without needing a crates.io mirror.

/// Core trait for generators: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Not the same stream as the upstream `rand::rngs::StdRng` (which is a
    /// ChaCha variant), but the workspace only requires determinism per seed,
    /// not a particular stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

fn uniform_u64_below<G: RngCore + ?Sized>(rng: &mut G, span: u128) -> u128 {
    debug_assert!(span > 0);
    // widening multiply keeps the modulo bias below 2^-64, far under what
    // any experiment in the tree could observe
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                // 53 uniform mantissa bits in [0, 1)
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                v as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                let v = lo as f64 + u * (hi as f64 - lo as f64);
                v as $t
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// Convenience sampling methods on any generator.
pub trait RngExt: RngCore {
    /// Uniform value from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<G: RngCore + ?Sized> RngExt for G {}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f32 = rng.random_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
            let i = rng.random_range(5usize..8);
            assert!((5..8).contains(&i));
            let j = rng.random_range(-3isize..=3);
            assert!((-3..=3).contains(&j));
        }
    }

    #[test]
    fn float_sampling_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
