//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Bencher::iter` — with
//! a single-shot timing loop instead of statistical sampling. The benches all
//! set `harness = false`, so under `cargo test` they are only compiled; when
//! run explicitly (`cargo bench`) each closure executes once and reports a
//! wall-clock time, which is enough to smoke-test the bench code paths.

use std::time::Instant;

/// Bench identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing handle passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Run the routine once and record its wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns = start.elapsed().as_nanos();
        std::hint::black_box(out);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; sampling is single-shot here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        println!(
            "bench {}/{}: {:.3} ms",
            self.name,
            id,
            b.elapsed_ns as f64 / 1e6
        );
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        println!(
            "bench {}/{}: {:.3} ms",
            self.name,
            id,
            b.elapsed_ns as f64 / 1e6
        );
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Declare a bench group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("g");
        let mut ran = 0;
        g.sample_size(10)
            .bench_function("f", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("p", 4), &4usize, |b, &n| {
            b.iter(|| ran += n)
        });
        g.finish();
        assert_eq!(ran, 5);
    }
}
