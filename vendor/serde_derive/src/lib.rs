//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so the
//! architecture stays serde-ready, but no code in the tree actually invokes a
//! serde serializer (binary model persistence is hand-rolled in
//! `mlcnn_nn::serialize`). This proc-macro crate therefore accepts the derive
//! syntax — including `#[serde(...)]` helper attributes — and expands to
//! nothing, which keeps the build hermetic on machines with no access to a
//! crates.io mirror. Swapping the real serde back in is a one-line change in
//! the root `Cargo.toml`.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and expand to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and expand to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
