//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface the workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!`, range and tuple strategies, [`Just`],
//! `prop_oneof!`, `collection::vec`, `any::<bool>()`, and the `prop_map` /
//! `prop_filter` combinators.
//!
//! Unlike real proptest there is no shrinking and no persisted regression
//! corpus — each test runs `cases` deterministic random inputs seeded from the
//! test's module path, so failures reproduce across runs without external
//! state.

/// Sentinel error used by `prop_assume!` to mark a rejected case.
#[doc(hidden)]
pub const ASSUME_REJECT: &str = "\u{1}__proptest_assume_reject__";

/// Strategies: how test inputs are generated.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A generator of test values.
    ///
    /// The stub keeps proptest's associated-type shape (`impl Strategy<Value =
    /// T>` return types work) but generates values directly instead of
    /// building shrinkable value trees.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values for which `pred` holds; `reason` labels the
        /// filter in the panic raised if sampling never succeeds.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 1000 consecutive samples",
                self.reason
            );
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);

    /// Uniform choice between alternative strategies (see `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options`; panics if empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Types with a canonical strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.random_range(0u8..2) == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Default, Clone)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy, R: rand::SampleRange<usize> + Clone>(
        element: S,
        size: R,
    ) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: rand::SampleRange<usize> + Clone> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
pub mod test_runner {
    /// Runner configuration; only `cases` is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// The names tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::ASSUME_REJECT.to_string());
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
/// Weighted arms (`w => strat`) are accepted but the weights are ignored.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$($strat),+]
    };
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Define property tests. Each named argument is drawn from its strategy for
/// `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // deterministic seed from the fully-qualified test name, so
                // failures reproduce without a persisted regression corpus
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
                }
                let mut rng =
                    <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
                let mut case: u32 = 0;
                let mut rejected: u32 = 0;
                while case < config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err(e)
                            if e == $crate::ASSUME_REJECT =>
                        {
                            rejected += 1;
                            assert!(
                                rejected < 10 * config.cases + 1000,
                                "prop_assume rejected too many cases"
                            );
                        }
                        ::std::result::Result::Err(msg) => {
                            panic!("proptest case {} failed: {}", case, msg)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = usize> {
        (1usize..8)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v > 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_combinators(a in small(), b in 0usize..5, flip in any::<bool>()) {
            prop_assert!(a >= 2 && a % 2 == 0);
            prop_assert!(b < 5);
            let _ = flip;
        }

        #[test]
        fn tuples_and_oneof(pair in (0u32..4, 0u32..4), pick in prop_oneof![Just(1usize), Just(2)]) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn assume_skips(v in 0usize..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
            prop_assert_ne!(v, 1);
        }

        #[test]
        fn vectors(v in crate::collection::vec(0i32..100, 1..6)) {
            prop_assert!((1..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }
    }
}
