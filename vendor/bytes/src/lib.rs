//! Offline stand-in for `bytes`.
//!
//! Backs [`Bytes`] and [`BytesMut`] with a plain `Vec<u8>` — no refcounted
//! buffer sharing — which is all `mlcnn_nn::serialize` needs: append-only
//! encoding through `BytesMut`, then read-only decoding through `Buf` on
//! `&[u8]`. Network-endian (`get_u16`/`put_u32`) and little-endian float
//! accessors match the upstream semantics bit-for-bit.

use std::ops::Deref;

/// Immutable byte buffer (Vec-backed; no sharing).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// Growable byte buffer for encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

/// Write cursor for encoding. [`BytesMut`] and `Vec<u8>` implement it
/// here, matching the upstream impl set the workspace uses.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read cursor over a byte source. Accessors panic when the source is
/// exhausted, matching upstream `bytes`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read `dst.len()` bytes, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// `remaining() > 0`.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u16(0xBEEF);
        buf.put_u32(7);
        buf.put_f32_le(1.5);
        buf.put_slice(b"ok");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 12);
        assert_eq!(&frozen[0..2], &[0xBE, 0xEF]);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u16(), 0xBEEF);
        assert_eq!(cursor.get_u32(), 7);
        assert_eq!(cursor.get_f32_le(), 1.5);
        let mut tail = [0u8; 2];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"ok");
        assert!(!cursor.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1u8];
        let _ = cursor.get_u32();
    }
}
