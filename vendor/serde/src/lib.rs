//! Offline stand-in for `serde`.
//!
//! Re-exports no-op `Serialize`/`Deserialize` derive macros so the workspace's
//! `#[derive(Serialize, Deserialize)]` annotations compile without a crates.io
//! mirror. No trait machinery is provided because nothing in the tree bounds
//! on `serde::Serialize` — serialization of trained parameters is hand-rolled
//! in `mlcnn_nn::serialize` and diagnostics JSON in `mlcnn_check::diag`.

pub use serde_derive::{Deserialize, Serialize};
