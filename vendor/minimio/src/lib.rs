//! # minimio — readiness polling for the event-driven network layer
//!
//! Offline stand-in for `mio`, following the `vendor/` pattern: exactly
//! the API surface the workspace uses, nothing more. Readiness-based
//! (level-triggered) polling over Linux `epoll`, plus an
//! `eventfd`-backed [`Waker`] for cross-thread wake-ups.
//!
//! ```text
//! let poll = Poll::new()?;
//! poll.register(&listener, Token(0), Interest::READABLE)?;
//! let waker = Waker::new(&poll, Token(1))?;          // other threads: waker.wake()
//! let mut events = Events::with_capacity(1024);
//! poll.wait(&mut events, Some(Duration::from_millis(250)))?;
//! for ev in events.iter() { match ev.token() { .. } }
//! ```
//!
//! Divergences from upstream `mio`: level-triggered only (no
//! `edge`-triggered mode), `RawFd`-based registration (no `Source`
//! trait machinery), and `wait` returns cleanly on `EINTR` with zero
//! events instead of surfacing the error.
//!
//! All `unsafe` lives in [`sys`] — a seven-syscall FFI module pinned by
//! `vendor/minimio/AUDIT.md` and a CI hash check. This root is
//! `#![deny(unsafe_code)]`; `sys` opts out locally with a module-level
//! allow, which is the single audited exception in the repository.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod sys;

use std::io;
use std::os::fd::AsRawFd;
use std::os::raw::c_int;
use std::time::Duration;

/// Caller-chosen identifier attached to a registration and echoed back
/// on each [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Which readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the descriptor becomes readable (or the peer closes).
    pub const READABLE: Interest = Interest(0b01);
    /// Wake when the descriptor becomes writable.
    pub const WRITABLE: Interest = Interest(0b10);
    /// Watch for errors and hang-ups only (epoll always reports those):
    /// the registration a fully backpressured connection parks on.
    pub const NONE: Interest = Interest(0);

    /// Combine two interests. (Named for parity with upstream `mio`,
    /// which exposes exactly this method.)
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include readability?
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Does this interest include writability?
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }

    fn mask(self) -> u32 {
        let mut m = 0;
        if self.is_readable() {
            m |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.is_writable() {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    bits: u32,
}

impl Event {
    /// The token the descriptor was registered under.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Data (or a close) can be read without blocking.
    pub fn is_readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
    }

    /// The descriptor can accept writes without blocking.
    pub fn is_writable(&self) -> bool {
        self.bits & sys::EPOLLOUT != 0
    }

    /// The descriptor is in an error or hang-up state; the connection
    /// is unusable and should be dropped.
    pub fn is_error(&self) -> bool {
        self.bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0
    }

    /// The peer closed its write half (half-close); reads will return
    /// EOF once the buffered bytes drain.
    pub fn is_read_closed(&self) -> bool {
        self.bits & (sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
    }
}

/// Reusable buffer of kernel event records filled by [`Poll::wait`].
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// Buffer able to carry up to `cap` events per wait.
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            raw: vec![sys::EpollEvent { events: 0, data: 0 }; cap.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|ev| {
            // copy packed fields by value; never by reference
            let bits = ev.events;
            let data = ev.data;
            Event {
                token: Token(data as usize),
                bits,
            }
        })
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the last wait delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An epoll instance. Registrations are level-triggered: a descriptor
/// with unread data keeps reporting readable on every wait.
#[derive(Debug)]
pub struct Poll {
    epfd: c_int,
}

impl Poll {
    /// Create a new poll instance.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            epfd: sys::sys_epoll_create()?,
        })
    }

    /// Start watching `fd` under `token` for `interest`.
    pub fn register(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd.as_raw_fd(),
            interest.mask(),
            token.0 as u64,
        )
    }

    /// Change what an already registered descriptor is watched for.
    pub fn reregister(
        &self,
        fd: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        sys::sys_epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd.as_raw_fd(),
            interest.mask(),
            token.0 as u64,
        )
    }

    /// Stop watching a descriptor. (Closing the descriptor also
    /// removes it; this is for keeping it open but unwatched.)
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Block until at least one event is ready or `timeout` elapses
    /// (`None` blocks indefinitely). On `EINTR` returns success with
    /// zero events so callers can simply re-loop.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            // round sub-millisecond timeouts up to 1ms instead of
            // degenerating into a zero-timeout busy spin
            Some(d) if d.is_zero() => 0,
            Some(d) => c_int::try_from(d.as_millis().max(1)).unwrap_or(c_int::MAX),
        };
        events.len = 0;
        match sys::sys_epoll_wait(self.epfd, &mut events.raw, timeout_ms) {
            Ok(n) => {
                events.len = n;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        sys::sys_close(self.epfd);
    }
}

/// Cross-thread wake-up handle bound to one [`Poll`]: an `eventfd`
/// registered under a caller-chosen token. [`Waker::wake`] makes the
/// poll's next (or current) wait report that token readable; the poll
/// owner then calls [`Waker::drain`] to reset it.
///
/// Cheap to share (`&Waker` is `Send + Sync`); wakes from any thread.
#[derive(Debug)]
pub struct Waker {
    fd: c_int,
}

impl Waker {
    /// Create an eventfd and register it with `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let fd = sys::sys_eventfd()?;
        if let Err(e) = sys::sys_epoll_ctl(
            poll.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            sys::EPOLLIN,
            token.0 as u64,
        ) {
            sys::sys_close(fd);
            return Err(e);
        }
        Ok(Waker { fd })
    }

    /// Make the bound poll report the waker token readable. Wakes are
    /// coalesced: many wakes before a drain deliver one readiness.
    pub fn wake(&self) -> io::Result<()> {
        sys::sys_eventfd_signal(self.fd)
    }

    /// Reset the waker (called by the poll owner after observing the
    /// wake); a no-op when there was no pending wake.
    pub fn drain(&self) -> io::Result<()> {
        sys::sys_eventfd_drain(self.fd)
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::sys_close(self.fd);
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn readable_readiness_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poll = Poll::new().unwrap();
        poll.register(&listener, Token(7), Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        // nothing pending: a short wait times out empty
        poll.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        let mut client = TcpStream::connect(addr).unwrap();
        poll.wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(7) && e.is_readable()));

        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poll.register(&server_side, Token(8), Interest::READABLE)
            .unwrap();
        client.write_all(b"ping").unwrap();
        poll.wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(8) && e.is_readable()));
        let mut buf = [0u8; 8];
        assert_eq!(server_side.read(&mut buf).unwrap(), 4);
    }

    #[test]
    fn reregister_switches_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poll = Poll::new().unwrap();
        poll.register(&server_side, Token(1), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.is_writable()));

        // an idle socket watched only for reads reports nothing
        poll.reregister(&server_side, Token(1), Interest::READABLE)
            .unwrap();
        poll.wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        poll.deregister(&server_side).unwrap();
    }

    #[test]
    fn waker_wakes_across_threads_and_coalesces() {
        let poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poll, Token(99)).unwrap());
        let remote = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                remote.wake().unwrap();
            }
        });
        let mut events = Events::with_capacity(8);
        poll.wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == Token(99)));
        t.join().unwrap();
        waker.drain().unwrap();
        // drained: no further readiness until the next wake
        poll.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        waker.wake().unwrap();
        poll.wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
    }
}
