//! Raw `epoll`/`eventfd` FFI — **the only module in the repository that
//! may contain `unsafe` code**.
//!
//! The surface is deliberately minimal: seven syscalls (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`, `read`, `write`, `close`), each
//! wrapped in a safe function that owns the full contract:
//!
//! * every pointer handed to the kernel derives from a live Rust
//!   reference whose length is passed alongside it;
//! * every returned descriptor is checked for `-1` and converted to
//!   [`io::Error::last_os_error`] before use;
//! * `EpollEvent` is `#[repr(C, packed)]` on x86-64 exactly as the
//!   kernel ABI requires, and its fields are only ever read *by value*
//!   (never by reference), so alignment is irrelevant.
//!
//! The audit note `vendor/minimio/AUDIT.md` pins this file's SHA-256;
//! CI recomputes the hash, so any edit here must be re-audited and the
//! pin updated in the same change.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};

/// `epoll_ctl` add operation.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` delete operation.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` modify operation.
pub const EPOLL_CTL_MOD: c_int = 3;

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the descriptor.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up: both halves closed.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (half-close).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One kernel event record. Packed on x86-64, matching the kernel ABI.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-state bit mask (`EPOLLIN` | …).
    pub events: u32,
    /// Caller-chosen cookie, echoed back verbatim (the token).
    pub data: u64,
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// Create a close-on-exec epoll instance.
#[cfg(target_os = "linux")]
pub fn sys_epoll_create() -> io::Result<c_int> {
    // SAFETY: no pointers cross the boundary; the return value is
    // checked for -1 before anyone treats it as a descriptor.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Add/modify/delete `fd` in epoll set `epfd` with the given mask and
/// token cookie.
#[cfg(target_os = "linux")]
pub fn sys_epoll_ctl(epfd: c_int, op: c_int, fd: c_int, mask: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events: mask, data };
    // SAFETY: `ev` is a live stack value for the duration of the call;
    // the kernel copies it before returning (DEL ignores it but older
    // kernels require a non-null pointer, which this always provides).
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Wait for events, filling `events` from the front; returns how many
/// records the kernel wrote. `timeout_ms < 0` blocks indefinitely.
#[cfg(target_os = "linux")]
pub fn sys_epoll_wait(
    epfd: c_int,
    events: &mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<usize> {
    let cap = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
    // SAFETY: the pointer/length pair comes from one live mutable
    // slice; the kernel writes at most `cap` records into it.
    let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), cap, timeout_ms) };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(n as usize)
}

/// Create a nonblocking close-on-exec eventfd (the waker primitive).
#[cfg(target_os = "linux")]
pub fn sys_eventfd() -> io::Result<c_int> {
    // SAFETY: no pointers cross the boundary; return checked for -1.
    let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Drain an eventfd counter (reset a waker). `WouldBlock` — an already
/// drained counter — is success.
#[cfg(target_os = "linux")]
pub fn sys_eventfd_drain(fd: c_int) -> io::Result<()> {
    let mut buf = 0u64;
    // SAFETY: eventfd reads are exactly 8 bytes into the provided
    // buffer, whose address and size come from one live u64.
    let n = unsafe { read(fd, (&mut buf as *mut u64).cast::<c_void>(), 8) };
    if n < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::WouldBlock {
            return Ok(());
        }
        return Err(e);
    }
    Ok(())
}

/// Add 1 to an eventfd counter (fire a waker). A full counter
/// (`WouldBlock`) already guarantees a pending wake, so it is success.
#[cfg(target_os = "linux")]
pub fn sys_eventfd_signal(fd: c_int) -> io::Result<()> {
    let buf = 1u64;
    // SAFETY: eventfd writes are exactly 8 bytes from the provided
    // buffer, whose address and size come from one live u64.
    let n = unsafe { write(fd, (&buf as *const u64).cast::<c_void>(), 8) };
    if n < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::WouldBlock {
            return Ok(());
        }
        return Err(e);
    }
    Ok(())
}

/// Close a descriptor owned by this crate (epoll instance or eventfd —
/// never a descriptor owned by `std`).
#[cfg(target_os = "linux")]
pub fn sys_close(fd: c_int) {
    // SAFETY: callers only pass descriptors this crate created and
    // owns exclusively; double-close is structurally impossible because
    // each owner closes exactly once in Drop.
    let _ = unsafe { close(fd) };
}

// Non-Linux stubs: the workspace only targets Linux, but the crate
// still compiles elsewhere, failing at runtime with `Unsupported`.
#[cfg(not(target_os = "linux"))]
mod stub {
    use super::*;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "minimio requires Linux epoll; use the `threads` transport on this platform",
        )
    }

    /// Stub: epoll is Linux-only.
    pub fn sys_epoll_create() -> io::Result<c_int> {
        Err(unsupported())
    }
    /// Stub: epoll is Linux-only.
    pub fn sys_epoll_ctl(_: c_int, _: c_int, _: c_int, _: u32, _: u64) -> io::Result<()> {
        Err(unsupported())
    }
    /// Stub: epoll is Linux-only.
    pub fn sys_epoll_wait(_: c_int, _: &mut [EpollEvent], _: c_int) -> io::Result<usize> {
        Err(unsupported())
    }
    /// Stub: eventfd is Linux-only.
    pub fn sys_eventfd() -> io::Result<c_int> {
        Err(unsupported())
    }
    /// Stub: eventfd is Linux-only.
    pub fn sys_eventfd_drain(_: c_int) -> io::Result<()> {
        Err(unsupported())
    }
    /// Stub: eventfd is Linux-only.
    pub fn sys_eventfd_signal(_: c_int) -> io::Result<()> {
        Err(unsupported())
    }
    /// Stub: nothing to close.
    pub fn sys_close(_: c_int) {}
}

#[cfg(not(target_os = "linux"))]
pub use stub::*;
