//! Offline stand-in for `rayon`, now with real threads.
//!
//! The workspace parallelizes over batch items with `into_par_iter()` and
//! over output rows/planes with `par_chunks_mut()`, then chains only the
//! standard adapters (`map`, `enumerate`, `for_each`, `collect`, `sum`).
//! This crate provides those entry points backed by `std::thread::scope`:
//! work is split into one contiguous chunk per worker and results are
//! reassembled in input order, so every adapter is *deterministic* and
//! produces output identical to the sequential loop — a stronger guarantee
//! than upstream rayon's reduction order, and one the golden-equivalence
//! tests rely on.
//!
//! Divergences from upstream, by design:
//!
//! * No global thread pool — workers are scoped threads spawned per call.
//!   Fork-join overhead is therefore higher, which the callers amortize by
//!   only going parallel above a size threshold.
//! * Nested parallel regions run sequentially (a thread-local flag marks
//!   worker context), so a `par_chunks_mut` inside an `into_par_iter` map
//!   cannot oversubscribe the machine.
//! * `RAYON_NUM_THREADS` is honored (first read wins); otherwise
//!   `std::thread::available_parallelism()` decides. On a single-core host
//!   everything degrades to the plain sequential loop.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads the stand-in may use (>= 1). Reads
/// `RAYON_NUM_THREADS` once, falling back to the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// True when called from inside one of this crate's worker threads; used to
/// run nested parallel regions sequentially.
fn in_worker() -> bool {
    IN_WORKER.with(|c| c.get())
}

/// Map `items` through `f`, preserving order. Splits into one contiguous
/// chunk per worker; falls back to the sequential loop when there is no
/// parallelism to exploit (single thread, tiny input, or nested region).
fn parallel_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 || in_worker() {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut groups: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let g: Vec<T> = iter.by_ref().take(chunk).collect();
        if g.is_empty() {
            break;
        }
        groups.push(g);
    }
    let per_group: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|g| {
                s.spawn(move || {
                    IN_WORKER.with(|c| c.set(true));
                    g.into_iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    per_group.into_iter().flatten().collect()
}

/// An order-preserving parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map every item through `f` across the worker threads, preserving
    /// order. Eager (unlike upstream's lazy adapters) so the terminal
    /// `collect`/`sum` stay single-type-parameter; no call site chains
    /// enough adapters for laziness to matter.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: parallel_map(self.items, &f),
        }
    }

    /// Run `f` on every item across the worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.items, &|t| f(t));
    }

    /// Collect the (already computed) items, in order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Deterministic (input-order) sum.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// Parallel iterator over mutable, disjoint chunks of a slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index (chunks keep slice order).
    pub fn enumerate(self) -> ParEnumerate<&'a mut [T]> {
        ParEnumerate {
            items: self.chunks.into_iter().enumerate().collect(),
        }
    }

    /// Run `f` on every chunk across the worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        parallel_map(self.chunks, &|c| f(c));
    }
}

/// An enumerated parallel iterator (index, item).
pub struct ParEnumerate<I> {
    items: Vec<(usize, I)>,
}

impl<I: Send> ParEnumerate<I> {
    /// Run `f` on every `(index, item)` pair across the worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, I)) + Sync,
    {
        parallel_map(self.items, &|p| f(p));
    }
}

/// The traits call sites import via `use rayon::prelude::*`.
pub mod prelude {
    use super::{ParChunksMut, ParIter};

    /// `into_par_iter()` for anything iterable whose items can cross
    /// threads.
    pub trait IntoParallelIterator: IntoIterator + Sized
    where
        Self::Item: Send,
    {
        /// Materialize the iterator and hand it to the thread-backed
        /// adapters.
        fn into_par_iter(self) -> ParIter<Self::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I where I::Item: Send {}

    /// `par_chunks_mut()` for mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Split into disjoint mutable chunks processed across workers.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut {
                chunks: self.chunks_mut(chunk_size).collect(),
            }
        }
    }

    /// `par_iter()` for shared slices (sequential: every current call site
    /// is a cheap reduction where fork-join would cost more than it saves).
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for rayon's `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_match_sequential_semantics() {
        let squares: Vec<usize> = (0..8usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);

        let mut buf = [0usize; 6];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i;
            }
        });
        assert_eq!(buf, [0, 0, 1, 1, 2, 2]);

        let total: usize = [1usize, 2, 3].par_iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn large_map_preserves_order() {
        let n = 10_000usize;
        let out: Vec<usize> = (0..n).into_par_iter().map(|i| i * 3 + 1).collect();
        let expect: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn chunked_writes_cover_every_chunk_once() {
        let mut buf = vec![0usize; 4096];
        buf.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for (j, c) in chunk.iter_mut().enumerate() {
                *c = i * 7 + j;
            }
        });
        let expect: Vec<usize> = (0..4096).collect();
        assert_eq!(buf, expect);
    }

    #[test]
    fn nested_parallelism_runs_sequentially_and_correctly() {
        let out: Vec<Vec<usize>> = (0..16usize)
            .into_par_iter()
            .map(|i| (0..8usize).into_par_iter().map(|j| i * 8 + j).collect())
            .collect();
        for (i, row) in out.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, i * 8 + j);
            }
        }
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(super::current_num_threads() >= 1);
    }
}
