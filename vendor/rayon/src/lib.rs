//! Offline stand-in for `rayon`.
//!
//! The workspace parallelizes over batch items with `into_par_iter()` and
//! over output rows with `par_chunks_mut()`, then chains only standard
//! iterator adapters (`map`, `enumerate`, `for_each`, `collect`). This crate
//! provides those two entry points as *sequential* std iterators so the same
//! call sites compile and produce identical results without a crates.io
//! mirror; swapping the real rayon back in re-enables the parallel speedup
//! with no source change.

/// The traits call sites import via `use rayon::prelude::*`.
pub mod prelude {
    /// `into_par_iter()` for anything iterable (sequential here).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential drop-in for rayon's `into_par_iter`.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `par_chunks_mut()` for mutable slices (sequential here).
    pub trait ParallelSliceMut<T> {
        /// Sequential drop-in for rayon's `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// `par_iter()` for slices (sequential here).
    pub trait ParallelSlice<T> {
        /// Sequential drop-in for rayon's `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_match_sequential_semantics() {
        let squares: Vec<usize> = (0..8usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);

        let mut buf = [0usize; 6];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i;
            }
        });
        assert_eq!(buf, [0, 0, 1, 1, 2, 2]);

        let total: usize = [1usize, 2, 3].par_iter().sum();
        assert_eq!(total, 6);
    }
}
