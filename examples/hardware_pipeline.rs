//! Drive the microarchitectural component models (paper Figs. 7–11):
//! stream a feature map through the AR unit, feed its block-sum stream to
//! a MAC slice, and finalize through the preprocessing unit — the same
//! path as the authors' RTL — then check the result against both the
//! MLCNN fused kernel and the plain dense reference.
//!
//! ```text
//! cargo run --release --example hardware_pipeline
//! ```

use mlcnn::accel::components::{run_fused_pipeline, ArUnit};
use mlcnn::core::FusedConvPool;
use mlcnn::tensor::{init, Shape4, Tensor};

fn main() {
    // the paper's Fig. 5 example: 5x5 input, 2x2 filter, 2x2 average pool
    let mut rng = init::rng(99);
    let input = init::uniform(Shape4::hw(5, 5), -1.0, 1.0, &mut rng);
    let weights = [0.5_f32, -1.0, 0.25, 2.0];
    let bias = 0.1;

    // 1. AR unit alone: the half-addition / full-addition stream
    let mut ar = ArUnit::new(1);
    let g = ar.stream_plane(input.as_slice(), 5, 5);
    println!(
        "AR unit produced {} block sums with {} additions",
        g.len(),
        ar.adds_performed()
    );
    println!(
        "  (without reuse the same 16 block sums would take {} additions)",
        16 * 3
    );

    // 2. the full pipeline: AR -> MAC slice -> preprocessing
    let (hw_out, cycles) = run_fused_pipeline(input.as_slice(), 5, 5, &weights, 2, bias);
    println!("\nhardware pipeline output ({cycles} cycles): {hw_out:?}");

    // 3. cross-check against the fused kernel and the dense reference
    let w = Tensor::from_vec(Shape4::new(1, 1, 2, 2), weights.to_vec()).unwrap();
    let fused = FusedConvPool::new(w, vec![bias], 1, 0, 2).unwrap();
    let kernel = fused.forward(&input).unwrap();
    let dense = fused.reference(&input).unwrap();
    println!("fused kernel output      : {:?}", kernel.as_slice());
    println!("dense reference output   : {:?}", dense.as_slice());

    let worst = hw_out
        .iter()
        .zip(kernel.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f32, f32::max);
    assert!(worst < 1e-5, "hardware model diverged: {worst}");
    println!("\nall three paths agree (max deviation {worst:.2e}).");
}
