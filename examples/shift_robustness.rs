//! Measure the paper's Section II-B claim — pooling buys shift
//! robustness — by training a pooled LeNet-5 and its All-Conv counterpart
//! on the same data and evaluating both on translated test images.
//!
//! ```text
//! cargo run --release --example shift_robustness
//! ```

use mlcnn::core::reorder::to_all_conv_full;
use mlcnn::data::augment::shifted_dataset;
use mlcnn::data::shapes::{generate, ShapesConfig};
use mlcnn::nn::spec::build_network;
use mlcnn::nn::train::{evaluate, fit, TrainConfig};
use mlcnn::nn::zoo;

fn main() {
    // same seeds as the `tablegen robustness` harness run
    let data = generate(ShapesConfig::cifar10_like(48, 49));
    let (train, test) = data.split(0.75);
    let input = train.item_shape().unwrap();
    let cfg = TrainConfig {
        epochs: 12,
        batch_size: 16,
        lr: 0.02,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 42,
        ..Default::default()
    };

    let pooled = zoo::lenet5_spec(10);
    let allconv = to_all_conv_full(&pooled, input).unwrap();

    println!("variant            shift-0  shift-1  shift-2  shift-3  retained");
    for (label, specs) in [("pooled (LeNet-5)", pooled), ("All-Conv        ", allconv)] {
        let mut net = build_network(&specs, input, cfg.seed).unwrap();
        fit(&mut net, &train, &cfg).unwrap();
        let mut accs = Vec::new();
        for s in 0..=3isize {
            let shifted = shifted_dataset(&test, s, s);
            accs.push(
                evaluate(&mut net, &shifted, &[1], 16)
                    .unwrap()
                    .at(1)
                    .unwrap(),
            );
        }
        println!(
            "{label}   {:.3}    {:.3}    {:.3}    {:.3}    {:.1}%",
            accs[0],
            accs[1],
            accs[2],
            accs[3],
            100.0 * accs[3] / accs[0].max(1e-6)
        );
    }
    println!("\nPooling should retain a larger fraction of its accuracy under");
    println!("translation — the reason MLCNN reorders pooling instead of");
    println!("removing it (paper Section II-B).");
}
