//! The Section III experiment, end to end: train the *same* model in its
//! original order (conv → ReLU → avg-pool), the MLCNN-reordered order
//! (conv → avg-pool → ReLU) and the All-Conv baseline on a synthetic
//! CIFAR-10 stand-in, and compare test accuracy.
//!
//! ```text
//! cargo run --release --example reorder_accuracy
//! ```

use mlcnn::core::reorder::{fusable_pairs, reorder_activation_pool, to_all_conv};
use mlcnn::data::shapes::{generate, ShapesConfig};
use mlcnn::nn::spec::build_network;
use mlcnn::nn::train::{evaluate, fit, TrainConfig};
use mlcnn::nn::zoo;

fn main() {
    let data = generate(ShapesConfig::cifar10_like(48, 7));
    let (train, test) = data.split(0.75);
    let input = train.item_shape().unwrap();

    let specs = zoo::lenet5_spec(10);
    let reordered = reorder_activation_pool(&specs);
    println!(
        "reordering performed {} swaps; fusable conv-pool pairs: {} -> {}",
        reordered.swaps.len(),
        fusable_pairs(&specs),
        fusable_pairs(&reordered.specs)
    );

    let variants = [
        ("ReLU+AP (original)", specs.clone()),
        ("AP+ReLU (reordered)", reordered.specs),
        ("All-Conv           ", to_all_conv(&specs)),
    ];

    let cfg = TrainConfig {
        epochs: 12,
        batch_size: 16,
        lr: 0.02,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 3,
        ..Default::default()
    };

    println!("\nvariant               top-1   top-5   (LeNet-5 on shapes-10)");
    for (name, v) in variants {
        let mut net = build_network(&v, input, cfg.seed).unwrap();
        let history = fit(&mut net, &train, &cfg).unwrap();
        let stats = evaluate(&mut net, &test, &[1, 5], 16).unwrap();
        println!(
            "{name}   {:.3}   {:.3}   (final train loss {:.3})",
            stats.at(1).unwrap(),
            stats.at(5).unwrap(),
            history.last().unwrap().loss
        );
    }
    println!("\nThe original and reordered variants should track each other");
    println!("closely — that equivalence is what licenses the MLCNN fusion.");
}
