//! The quantized-MLCNN pipeline (paper Section VII-A / Fig. 12): train a
//! reordered model once, then evaluate it at FP32, software-FP16 and
//! DoReFa-INT8 — weights through the Eq. 8/9 quantizers, activations
//! re-rounded between layers.
//!
//! ```text
//! cargo run --release --example quantized_pipeline
//! ```

use mlcnn::core::quantized::{
    evaluate_quantized, forward_quantized, quantize_network_weights, quantized_plan,
};
use mlcnn::core::reorder::reorder_activation_pool;
use mlcnn::core::Workspace;
use mlcnn::data::shapes::{generate, ShapesConfig};
use mlcnn::nn::spec::build_network;
use mlcnn::nn::train::{fit, TrainConfig};
use mlcnn::nn::zoo;
use mlcnn::quant::Precision;

fn main() {
    let data = generate(ShapesConfig::cifar10_like(48, 11));
    let (train, test) = data.split(0.75);
    let input = train.item_shape().unwrap();

    // MLCNN order: pooling before activation, ready for fusion.
    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let mut net = build_network(&specs, input, 5).unwrap();
    let cfg = TrainConfig {
        epochs: 12,
        batch_size: 16,
        lr: 0.02,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 5,
        ..Default::default()
    };
    let history = fit(&mut net, &train, &cfg).unwrap();
    println!(
        "trained reordered LeNet-5: final train loss {:.3}, accuracy {:.3}",
        history.last().unwrap().loss,
        history.last().unwrap().train_acc
    );
    let trained = net.export_params();

    println!("\nprecision   top-1    (weights + activations on the grid)");
    for precision in Precision::ALL {
        let mut fresh = build_network(&specs, input, 5).unwrap();
        fresh.import_params(&trained);
        let stats = evaluate_quantized(&mut fresh, &test, precision, &[1], 16).unwrap();
        println!("MLCNN {precision}   {:.3}", stats.at(1).unwrap());
    }
    println!("\nINT8 should sit within a point or two of FP32 — the paper's");
    println!("Fig. 12 equivalence that makes the 128-slice INT8 machine usable.");

    // The same datapath as a compiled execution plan: weights quantized
    // once at compile, activations re-rounded between steps, zero
    // steady-state allocation per batch — and bit-identical to the
    // layerwise quantized loop above.
    println!();
    let batch = test.batches(16).next().unwrap();
    for precision in [Precision::Fp16, Precision::Int8] {
        let mut fresh = build_network(&specs, input, 5).unwrap();
        fresh.import_params(&trained);
        let plan = quantized_plan(&mut fresh, precision).unwrap();
        let mut ws = Workspace::for_plan(&plan, 16);
        let planned = plan.forward(&batch.images, &mut ws).unwrap();
        quantize_network_weights(&mut fresh, precision);
        let layerwise = forward_quantized(&mut fresh, &batch.images, precision).unwrap();
        assert_eq!(planned, layerwise);
        println!(
            "compiled {precision} plan: {} steps, bit-identical to the layerwise loop",
            plan.len()
        );
    }
}
