//! Quickstart: fuse one convolution + average-pool + ReLU stage with
//! MLCNN, verify it computes the same result with a fraction of the
//! multiplications, then compile a whole model into an execution plan.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mlcnn::core::opcount::{dense_layer_counts, mlcnn_layer_counts};
use mlcnn::core::reorder::reorder_activation_pool;
use mlcnn::core::{EvalPlan, FusedConvPool, PlanOptions, Workspace};
use mlcnn::nn::spec::build_network;
use mlcnn::nn::zoo::{self, ConvLayerGeom, PoolAfter};
use mlcnn::tensor::{init, Shape4};

fn main() {
    // The paper's Fig. 5 setting, scaled up a little: a 14x14 input, a
    // 5x5 filter and a 2x2 average pool (LeNet-5's C2 geometry).
    let (in_ch, out_ch, d, k) = (6, 16, 14, 5);
    let mut rng = init::rng(42);
    let input = init::uniform(Shape4::new(1, in_ch, d, d), -1.0, 1.0, &mut rng);
    let weight = init::uniform(Shape4::new(out_ch, in_ch, k, k), -0.5, 0.5, &mut rng);
    let bias = vec![0.1_f32; out_ch];

    // Build the fused operator: RME factors the weights over the pooled
    // block sums; LAR/GAR shared planes provide the additions.
    let fused = FusedConvPool::new(weight, bias, 1, 0, 2).expect("valid geometry");

    let mlcnn_out = fused.forward(&input).expect("fused forward");
    let reference = fused.reference(&input).expect("dense reference");

    let diff = mlcnn_out.max_abs_diff(&reference).unwrap();
    println!("output shape        : {}", mlcnn_out.shape());
    println!("max |fused - dense| : {diff:.2e}  (identical computation, reordered)");
    assert!(diff < 1e-4);

    // And the arithmetic bill, from the op-count model:
    let geom = ConvLayerGeom {
        name: "C2".into(),
        in_ch,
        out_ch,
        in_h: d,
        in_w: d,
        k,
        stride: 1,
        pad: 0,
        pool: Some(PoolAfter::avg2()),
    };
    let dense = dense_layer_counts(&geom);
    let mlcnn = mlcnn_layer_counts(&geom);
    println!(
        "multiplications     : {} -> {}  ({:.1}% eliminated by RME)",
        dense.mults,
        mlcnn.mults,
        100.0 * (1.0 - mlcnn.mults as f64 / dense.mults as f64)
    );
    println!(
        "additions           : {} -> {}  ({:.1}% eliminated by LAR+GAR)",
        dense.adds,
        mlcnn.adds,
        100.0 * (1.0 - mlcnn.adds as f64 / dense.adds as f64)
    );

    // Whole model: reorder LeNet-5 and compile it once into an execution
    // plan — geometry resolved, Linear weights pre-transposed, workspace
    // sized at compile time — then run allocation-free inference.
    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let shape = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, shape, 0).expect("lenet builds");
    let plan = net
        .eval_plan(PlanOptions::default())
        .expect("lenet compiles to a plan");
    let mut ws = Workspace::for_plan(&plan, 1);
    let x = init::uniform(shape, -1.0, 1.0, &mut rng);
    let logits = plan.forward(&x, &mut ws).expect("plan forward");
    println!(
        "compiled plan       : {} ops ({} fused conv-pool), logits {}",
        plan.len(),
        plan.fused_op_count(),
        logits.shape()
    );
}
