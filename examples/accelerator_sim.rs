//! Run the full evaluation-model zoo through the accelerator cycle and
//! energy model: the paper's Figs. 13 and 15 in one binary.
//!
//! ```text
//! cargo run --release --example accelerator_sim
//! ```

use mlcnn::accel::config::AcceleratorConfig;
use mlcnn::accel::cycle::{fused_layer_speedups, mean_energy_gain, mean_speedup, simulate_model};
use mlcnn::accel::energy::EnergyModel;
use mlcnn::nn::zoo;

fn main() {
    let em = EnergyModel::default();
    let baseline = AcceleratorConfig::dcnn_fp32();
    println!(
        "baseline: {} ({} slices, {} kB, {:.0} MHz)\n",
        baseline.name, baseline.mac_slices, baseline.buffer_kb, baseline.freq_mhz
    );

    for cfg in AcceleratorConfig::mlcnn_variants() {
        println!(
            "== {} ({} slices @ {}-bit) ==",
            cfg.name,
            cfg.mac_slices,
            cfg.precision.bits()
        );
        let mut speed_acc = Vec::new();
        let mut energy_acc = Vec::new();
        for model in zoo::evaluation_models(100) {
            let base = simulate_model(&model, &baseline, &em);
            let fast = simulate_model(&model, &cfg, &em);
            let s = mean_speedup(&base, &fast);
            let e = mean_energy_gain(&base, &fast);
            speed_acc.push(s);
            energy_acc.push(e);
            print!(
                "  {:<10} speedup {s:>5.2}x  energy {e:>5.2}x  | per layer:",
                model.name
            );
            for (name, v) in fused_layer_speedups(&base, &fast) {
                print!(" {name}={v:.1}");
            }
            println!();
        }
        let geo = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
        println!(
            "  AVERAGE: {:.2}x speedup, {:.2}x energy efficiency\n",
            geo(&speed_acc),
            geo(&energy_acc)
        );
    }
    println!("paper headline: 3.2x/6.2x/12.8x speedup and 2.9x/5.9x/11.3x energy");
    println!("for FP32/FP16/INT8 — the shape this simulation reproduces.");
}
