//! Golden equivalence for the execution plan: `ExecutionPlan::forward`
//! must be *bit-identical* to every legacy forward path it replaced —
//! the layerwise `Network`, the `FusedNetwork` pipeline, and the
//! quantized layerwise loop — across the compilable model zoo, plus a
//! proptest that anything `mlcnn-check` accepts compiles to a plan that
//! agrees with the trainable network.

use mlcnn::core::quantized::{forward_quantized, quantize_network_weights};
use mlcnn::core::reorder::reorder_activation_pool;
use mlcnn::core::{EvalPlan, ExecutionPlan, FusedNetwork, PlanOptions, Workspace, WorkspacePool};
use mlcnn::nn::spec::build_network;
use mlcnn::nn::{zoo, LayerSpec};
use mlcnn::quant::Precision;
use mlcnn::tensor::{init, Shape4, Tensor};
use proptest::prelude::*;

/// Every sequential (plan-compilable) model the zoo offers, in both the
/// as-trained and reordered forms, plus a hand-rolled pipeline covering
/// max pool, sigmoid, global pooling, and an unfused tail.
fn compilable_zoo() -> Vec<(&'static str, Vec<LayerSpec>, Shape4)> {
    let cifar = Shape4::new(1, 3, 32, 32);
    vec![
        ("lenet5", zoo::lenet5_spec(10), cifar),
        (
            "lenet5-reordered",
            reorder_activation_pool(&zoo::lenet5_spec(10)).specs,
            cifar,
        ),
        ("vgg-mini", zoo::vgg_mini_spec(3, 10), cifar),
        (
            "vgg-mini-reordered",
            reorder_activation_pool(&zoo::vgg_mini_spec(3, 10)).specs,
            cifar,
        ),
        (
            "maxpool-sigmoid",
            vec![
                LayerSpec::Conv {
                    out_ch: 6,
                    k: 3,
                    stride: 1,
                    pad: 1,
                },
                LayerSpec::Sigmoid,
                LayerSpec::MaxPool {
                    window: 2,
                    stride: 2,
                },
                LayerSpec::Conv {
                    out_ch: 4,
                    k: 3,
                    stride: 1,
                    pad: 0,
                },
                LayerSpec::GlobalAvgPool,
                LayerSpec::ReLU,
                LayerSpec::Flatten,
                LayerSpec::Linear { out: 5 },
            ],
            Shape4::new(1, 3, 16, 16),
        ),
    ]
}

fn batch_input(input: Shape4, n: usize, seed: u64) -> Tensor<f32> {
    init::uniform(
        Shape4::new(n, input.c, input.h, input.w),
        -1.0,
        1.0,
        &mut init::rng(seed),
    )
}

#[test]
fn layerwise_plan_is_bit_identical_to_network_forward() {
    for (name, specs, input) in compilable_zoo() {
        let mut net = build_network(&specs, input, 41).unwrap();
        let plan = net.eval_plan(PlanOptions::layerwise()).unwrap();
        let x = batch_input(input, 3, 7);
        let legacy = net.forward(&x).unwrap();
        let mut ws = Workspace::for_plan(&plan, 3);
        let planned = plan.forward(&x, &mut ws).unwrap();
        assert_eq!(planned, legacy, "{name}: layerwise plan diverges");
    }
}

#[test]
fn fused_plan_is_bit_identical_to_fused_network() {
    for (name, specs, input) in compilable_zoo() {
        let mut net = build_network(&specs, input, 43).unwrap();
        let params = net.export_params();
        let fused = FusedNetwork::compile(&specs, &params, input).unwrap();
        let plan = ExecutionPlan::compile(&specs, &params, input, PlanOptions::default()).unwrap();
        assert_eq!(plan.fused_op_count(), fused.fused_stage_count(), "{name}");
        let x = batch_input(input, 2, 11);
        let a = fused.forward(&x).unwrap();
        let mut ws = Workspace::for_plan(&plan, 2);
        let b = plan.forward(&x, &mut ws).unwrap();
        assert_eq!(a, b, "{name}: fused plan diverges from FusedNetwork");
    }
}

#[test]
fn quantized_plans_are_bit_identical_to_forward_quantized() {
    for (name, specs, input) in compilable_zoo() {
        for precision in [Precision::Fp16, Precision::Int8] {
            let mut net = build_network(&specs, input, 47).unwrap();
            // compile from the original weights: the plan quantizes at compile
            let plan = net
                .eval_plan(PlanOptions::layerwise().with_precision(precision))
                .unwrap();
            // batch > 1 exercises INT8's batch-global activation scale
            let x = batch_input(input, 3, 13);
            let mut ws = Workspace::for_plan(&plan, 3);
            let planned = plan.forward(&x, &mut ws).unwrap();
            quantize_network_weights(&mut net, precision);
            let legacy = forward_quantized(&mut net, &x, precision).unwrap();
            assert_eq!(
                planned, legacy,
                "{name}@{precision:?}: quantized plan diverges"
            );
        }
    }
}

#[test]
fn plan_is_send_sync_and_shareable_across_threads() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExecutionPlan>();

    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let input = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, input, 53).unwrap();
    let plan = net.eval_plan(PlanOptions::default()).unwrap();
    let x = batch_input(input, 2, 17);
    let baseline = plan
        .forward(&x, &mut Workspace::for_plan(&plan, 2))
        .unwrap();
    // one shared &plan, one workspace per thread
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let mut ws = Workspace::new();
                let y = plan.forward(&x, &mut ws).unwrap();
                assert_eq!(y, baseline);
            });
        }
    });
}

#[test]
fn steady_state_forward_does_not_grow_the_workspace() {
    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let input = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, input, 59).unwrap();
    let plan = net.eval_plan(PlanOptions::default()).unwrap();
    let x = batch_input(input, 4, 19);
    let mut ws = Workspace::for_plan(&plan, 4);
    let cap = ws.buffer_capacity();
    let mut out = Tensor::zeros(plan.batched_output_shape(4));
    for _ in 0..5 {
        plan.forward_into(&x, &mut ws, &mut out).unwrap();
        assert_eq!(ws.buffer_capacity(), cap, "forward grew the arena");
    }
    let fresh = plan.forward(&x, &mut ws).unwrap();
    assert_eq!(out, fresh);
}

#[test]
fn forward_batch_matches_sequential_forward() {
    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let input = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, input, 61).unwrap();
    for opts in [
        PlanOptions::default(),
        PlanOptions::default().with_precision(Precision::Fp16),
        PlanOptions::default().with_precision(Precision::Int8),
    ] {
        let plan = net.eval_plan(opts).unwrap();
        let x = batch_input(input, 8, 23);
        let mut ws = Workspace::for_plan(&plan, 8);
        let sequential = plan.forward(&x, &mut ws).unwrap();
        let parallel = plan.forward_batch(&x).unwrap();
        assert_eq!(parallel, sequential, "{opts:?}");
    }
}

#[test]
fn forward_batch_with_shares_one_pool_across_threads() {
    // regression for the serving runtime's sharing model: multiple worker
    // threads run batched inference against ONE plan and ONE workspace
    // pool concurrently, without contending on a single workspace and
    // without cross-talk between their arenas
    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let input = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, input, 67).unwrap();
    let plan = net.eval_plan(PlanOptions::default()).unwrap();
    let pool = WorkspacePool::for_plan(&plan, 2, 4);
    let xs: Vec<_> = (0..2).map(|i| batch_input(input, 4, 31 + i)).collect();
    let baselines: Vec<_> = xs
        .iter()
        .map(|x| plan.forward(x, &mut Workspace::for_plan(&plan, 4)).unwrap())
        .collect();
    std::thread::scope(|s| {
        for (x, baseline) in xs.iter().zip(&baselines) {
            let (plan, pool) = (&plan, &pool);
            s.spawn(move || {
                for _ in 0..8 {
                    let y = plan.forward_batch_with(x, pool).unwrap();
                    assert_eq!(&y, baseline, "shared-pool batch forward diverged");
                }
            });
        }
    });
    // leases all returned: the pool retains its warm workspaces
    assert!(pool.idle_count() >= 2, "pool lost its workspaces");
}

#[test]
fn forward_each_is_bitwise_per_item_at_every_precision() {
    // the serving runtime's INT8 path: per-item semantics must match
    // running each item through forward() alone, at every precision
    let specs = zoo::lenet5_spec(10);
    let input = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, input, 71).unwrap();
    for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
        let plan = net
            .eval_plan(PlanOptions::default().with_precision(precision))
            .unwrap();
        let x = batch_input(input, 5, 37);
        let pool = WorkspacePool::new();
        let each = plan.forward_each(&x, &pool).unwrap();
        let mut ws = Workspace::for_plan(&plan, 1);
        for i in 0..5 {
            let alone = plan.forward(&x.batch_item(i).unwrap(), &mut ws).unwrap();
            assert_eq!(
                each.batch_item(i).unwrap(),
                alone,
                "forward_each item {i} diverges at {precision}"
            );
        }
    }
}

// -- proptest: the static gate is sound for the plan compiler too --

fn arb_layer() -> impl Strategy<Value = LayerSpec> {
    prop_oneof![
        ((0usize..=6), (0usize..=5), (0usize..=3), (0usize..=2)).prop_map(
            |(out_ch, k, stride, pad)| LayerSpec::Conv {
                out_ch,
                k,
                stride,
                pad
            }
        ),
        Just(LayerSpec::ReLU),
        Just(LayerSpec::Sigmoid),
        ((0usize..=5), (0usize..=4))
            .prop_map(|(window, stride)| LayerSpec::AvgPool { window, stride }),
        ((0usize..=5), (0usize..=4))
            .prop_map(|(window, stride)| LayerSpec::MaxPool { window, stride }),
        Just(LayerSpec::GlobalAvgPool),
        Just(LayerSpec::Flatten),
        (0usize..=12).prop_map(|out| LayerSpec::Linear { out }),
        (0u8..=90).prop_map(|percent| LayerSpec::Dropout { percent }),
    ]
}

fn arb_specs() -> impl Strategy<Value = Vec<LayerSpec>> {
    proptest::collection::vec(arb_layer(), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any spec list `check_compile` accepts must compile to a plan in
    /// both modes, and the layerwise plan must agree with the trainable
    /// network bit for bit.
    #[test]
    fn check_accepted_specs_compile_to_matching_plans(specs in arb_specs()) {
        let input = Shape4::new(1, 3, 16, 16);
        if mlcnn::check::check_compile(&specs, input).is_ok() {
            let mut net = build_network(&specs, input, 11)
                .expect("check_compile implies buildable");
            let plan = net.eval_plan(PlanOptions::layerwise());
            prop_assert!(plan.is_ok(), "check accepted but plan rejected: {:?}", specs);
            let plan = plan.unwrap();
            prop_assert!(
                net.eval_plan(PlanOptions::default()).is_ok(),
                "fused-mode plan rejected: {:?}",
                specs
            );
            let x = batch_input(input, 2, 29);
            let legacy = net.forward(&x).unwrap();
            let mut ws = Workspace::for_plan(&plan, 2);
            let planned = plan.forward(&x, &mut ws).unwrap();
            prop_assert_eq!(planned, legacy, "plan diverges for {:?}", specs);
        }
    }
}
