//! Mutation-kill harness for the `P0xx`/`Q0xx` plan verifier.
//!
//! The verifier's value is measured by what it *rejects*: every test
//! here takes a genuinely compiled zoo plan, seeds one targeted
//! corruption into its view, and asserts the specific diagnostic code
//! that corruption must trigger. The unmutated views must be completely
//! clean first — a verifier that warns on the compiler's own output
//! can't gate anything.
//!
//! The closing proptest is the soundness direction: any spec list the
//! real pipeline (build → export → compile) accepts yields a plan the
//! verifier passes without denials, at every precision.

use mlcnn::check::{check_plan, check_qrange, Code, OpView, PlanView, QRangeOptions, Reporter};
use mlcnn::core::{ExecutionPlan, PlanOptions};
use mlcnn::nn::spec::build_network;
use mlcnn::nn::LayerSpec;
use mlcnn::quant::Precision;
use mlcnn::serve::{find_model, serving_zoo};
use mlcnn::tensor::Shape4;
use proptest::prelude::*;

/// Compile one serving-zoo model and export its view.
fn zoo_view(name: &str, precision: Precision) -> PlanView {
    find_model(name)
        .unwrap_or_else(|_| panic!("{name} not in serving zoo"))
        .compile(precision)
        .unwrap_or_else(|e| panic!("{name}@{precision}: {e}"))
        .view()
}

/// Run both passes over a view and return the reporter.
fn analyze(view: &PlanView) -> Reporter {
    let mut r = Reporter::new();
    check_plan(view, &mut r);
    check_qrange(view, &QRangeOptions::default(), &mut r);
    r
}

/// Assert the mutation is killed: `code` fired, and (unless the code
/// defaults to a warning) the reporter denies.
fn assert_killed(view: &PlanView, code: Code, what: &str) {
    let r = analyze(view);
    assert!(
        r.find(code).is_some(),
        "{what}: expected {} to fire, got:\n{}",
        code.as_str(),
        r.pretty()
    );
}

#[test]
fn unmutated_zoo_views_are_clean_at_every_precision() {
    for model in serving_zoo() {
        for precision in Precision::ALL {
            let view = zoo_view(model.name, precision);
            let r = analyze(&view);
            assert!(
                r.is_clean(),
                "{}@{precision} should be clean:\n{}",
                model.name,
                r.pretty()
            );
        }
    }
}

#[test]
fn shrunk_arena_is_killed_by_p003() {
    let mut view = zoo_view("lenet5", Precision::Fp32);
    view.buf_item_len /= 2;
    assert_killed(&view, Code::PlanArenaMismatch, "shrunk buf_item_len");
}

#[test]
fn inflated_arena_is_killed_by_p003() {
    let mut view = zoo_view("lenet5", Precision::Fp32);
    view.buf_item_len *= 2;
    assert_killed(&view, Code::PlanArenaMismatch, "inflated buf_item_len");
}

#[test]
fn wrong_cols_scratch_is_killed_by_p004() {
    let mut view = zoo_view("vgg-mini", Precision::Fp32);
    assert!(view.cols_item_len > 0, "vgg-mini has plain convs");
    view.cols_item_len -= 1;
    assert_killed(&view, Code::PlanColsMismatch, "shrunk cols_item_len");
}

#[test]
fn broken_shape_link_is_killed_by_p001() {
    let mut view = zoo_view("lenet5", Precision::Fp32);
    let mid = view.steps.len() / 2;
    view.steps[mid].in_shape.c += 1;
    assert_killed(
        &view,
        Code::PlanShapeChainBroken,
        "bumped mid-chain channel",
    );
}

#[test]
fn truncated_bias_is_killed_by_p005() {
    let mut view = zoo_view("lenet5", Precision::Fp32);
    let step = view
        .steps
        .iter_mut()
        .find_map(|s| match &mut s.op {
            OpView::Fused { bias, .. }
            | OpView::Conv { bias, .. }
            | OpView::Linear { bias, .. } => Some(bias),
            _ => None,
        })
        .expect("lenet5 has parameterized steps");
    step.len -= 1;
    assert_killed(&view, Code::PlanParamMismatch, "truncated bias profile");
}

#[test]
fn dropped_channel_profile_is_killed_by_p005() {
    let mut view = zoo_view("lenet5", Precision::Fp32);
    for s in &mut view.steps {
        if let OpView::Linear { channels, .. } = &mut s.op {
            channels.pop();
            break;
        }
    }
    assert_killed(&view, Code::PlanParamMismatch, "dropped channel profile");
}

#[test]
fn regrouped_channel_profile_is_killed_by_p005() {
    // merge one conv channel's per-input-channel groups into a single
    // aggregate: the totals still add up, but the grouping the range
    // analysis relies on is gone
    let mut view = zoo_view("lenet5", Precision::Fp32);
    let ch = view
        .steps
        .iter_mut()
        .find_map(|s| match &mut s.op {
            OpView::Fused { channels, .. } | OpView::Conv { channels, .. } if s.in_shape.c > 1 => {
                channels.first_mut()
            }
            _ => None,
        })
        .expect("lenet5 has a multi-input-channel conv");
    ch.per_input = vec![(ch.pos, ch.neg)];
    assert_killed(&view, Code::PlanParamMismatch, "merged per-input groups");
}

#[test]
fn flipped_rounding_is_killed_by_p009() {
    let mut view = zoo_view("lenet5", Precision::Fp16);
    let mid = view.steps.len() / 2;
    view.steps[mid].round_after = !view.steps[mid].round_after;
    assert_killed(&view, Code::PlanRoundingInvalid, "flipped round_after");
}

#[test]
fn zeroed_pool_window_is_killed_by_p006() {
    let mut view = zoo_view("lenet5", Precision::Fp32);
    let w = view
        .steps
        .iter_mut()
        .find_map(|s| match &mut s.op {
            OpView::Fused { pool, .. } => Some(pool),
            OpView::AvgPool { window, .. } | OpView::MaxPool { window, .. } => Some(window),
            _ => None,
        })
        .expect("lenet5 pools");
    *w = 0;
    assert_killed(&view, Code::PlanBadStepGeometry, "zeroed pool window");
}

#[test]
fn in_place_shape_change_is_killed_by_p002() {
    let mut view = zoo_view("vgg-mini", Precision::Fp32);
    let step = view
        .steps
        .iter_mut()
        .find(|s| matches!(s.op, OpView::ReLU))
        .expect("vgg-mini has standalone ReLU steps");
    // transpose the plane: same element count, different layout — an
    // in-place op cannot do that
    std::mem::swap(&mut step.out_shape.h, &mut step.out_shape.c);
    assert_killed(&view, Code::PlanIllegalInPlace, "reshaped in-place ReLU");
}

#[test]
fn exploded_weights_are_killed_by_q002_at_fp16() {
    let mut view = zoo_view("lenet5", Precision::Fp16);
    for s in &mut view.steps {
        if let OpView::Linear { channels, .. } = &mut s.op {
            for ch in channels.iter_mut() {
                ch.pos *= 1.0e9;
                ch.neg *= 1.0e9;
                for g in ch.per_input.iter_mut() {
                    g.0 *= 1.0e9;
                    g.1 *= 1.0e9;
                }
            }
        }
    }
    let r = analyze(&view);
    assert!(
        r.find(Code::RangeFp16Overflow).is_some(),
        "exploded linear weights must trip Q002:\n{}",
        r.pretty()
    );
    assert!(!r.has_deny(), "Q codes stay warnings:\n{}", r.pretty());
}

// ---- soundness: whatever the real pipeline compiles, the verifier accepts ----

fn arb_layer() -> impl Strategy<Value = LayerSpec> {
    prop_oneof![
        ((1usize..=4), (1usize..=3), (1usize..=2), (0usize..=1)).prop_map(
            |(out_ch, k, stride, pad)| LayerSpec::Conv {
                out_ch,
                k,
                stride,
                pad
            }
        ),
        Just(LayerSpec::ReLU),
        Just(LayerSpec::Sigmoid),
        ((1usize..=3), (1usize..=3))
            .prop_map(|(window, stride)| LayerSpec::AvgPool { window, stride }),
        ((1usize..=3), (1usize..=3))
            .prop_map(|(window, stride)| LayerSpec::MaxPool { window, stride }),
        Just(LayerSpec::Flatten),
        (1usize..=8).prop_map(|out| LayerSpec::Linear { out }),
        (0u8..=50).prop_map(|percent| LayerSpec::Dropout { percent }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_random_specs_verify_without_denials(
        specs in proptest::collection::vec(arb_layer(), 1..6),
        precision_idx in 0usize..3,
    ) {
        let input = Shape4::new(1, 2, 12, 12);
        let precision = Precision::ALL[precision_idx];
        // only spec lists the real builder accepts are in scope
        let Ok(mut net) = build_network(&specs, input, 11) else { return Ok(()) };
        let params = net.export_params();
        let opts = PlanOptions::default().with_precision(precision);
        let Ok(plan) = ExecutionPlan::compile(&specs, &params, input, opts) else {
            return Ok(());
        };
        prop_assert!(
            plan.verify().is_ok(),
            "verifier denied a compiled plan for {:?}@{}: {:?}",
            specs,
            precision,
            plan.verify()
        );
        // the range pass must run to completion with finite scales
        let mut r = Reporter::new();
        let report = check_qrange(&plan.view(), &QRangeOptions::default(), &mut r);
        prop_assert_eq!(report.steps.len(), plan.len());
        prop_assert!(report.steps.iter().all(|s| s.lo <= s.hi && s.int8_scale.is_finite()));
    }
}
