//! Integration: the whole MLCNN story on one model — reorder, fuse,
//! count, simulate — asserting the paper's qualitative results hold
//! across crate boundaries.

use mlcnn::accel::config::AcceleratorConfig;
use mlcnn::accel::cycle::{fused_layer_speedups, mean_speedup, simulate_model};
use mlcnn::accel::energy::EnergyModel;
use mlcnn::core::analytic;
use mlcnn::core::opcount::{dense_layer_counts, mlcnn_layer_counts, model_reductions};
use mlcnn::core::reorder::{fusable_pairs, reorder_activation_pool};
use mlcnn::nn::spec::propagate_shape;
use mlcnn::nn::zoo;
use mlcnn::tensor::Shape4;

#[test]
fn lenet_story_reorder_fuse_count_simulate() {
    // 1. reorder: both LeNet pools become fusable
    let specs = zoo::lenet5_spec(10);
    let reordered = reorder_activation_pool(&specs);
    assert_eq!(reordered.swaps.len(), 2);
    assert_eq!(fusable_pairs(&reordered.specs), 2);
    // shape-preserving
    let input = Shape4::new(1, 3, 32, 32);
    assert_eq!(
        propagate_shape(&specs, input).unwrap(),
        propagate_shape(&reordered.specs, input).unwrap()
    );

    // 2. count: both fused layers save exactly 75% of multiplications
    let model = zoo::lenet5(10);
    for g in model.fused_convs() {
        let dense = dense_layer_counts(g);
        let fused = mlcnn_layer_counts(g);
        let mult_red = 1.0 - fused.mults as f64 / dense.mults as f64;
        assert!((mult_red - analytic::rme_mult_reduction(2)).abs() < 1e-9);
        assert!(fused.adds < dense.adds);
    }

    // 3. simulate: the fused layers run faster on the MLCNN machine
    let em = EnergyModel::default();
    let base = simulate_model(&model, &AcceleratorConfig::dcnn_fp32(), &em);
    let fast = simulate_model(&model, &AcceleratorConfig::mlcnn_fp32(), &em);
    let speedups = fused_layer_speedups(&base, &fast);
    assert_eq!(speedups.len(), 2);
    for (name, s) in &speedups {
        assert!(*s > 2.0, "{name}: {s}");
    }
    assert!(mean_speedup(&base, &fast) > 2.0);
}

#[test]
fn paper_consistency_op_counts_vs_simulation() {
    // The cycle model's per-layer op counts must be the op-count module's
    // numbers — a single source of truth across the crates.
    let model = zoo::vgg16(10);
    let em = EnergyModel::default();
    let perf = simulate_model(&model, &AcceleratorConfig::mlcnn_fp32(), &em);
    for (g, l) in model.convs.iter().zip(&perf.layers) {
        let expect = if l.fused {
            mlcnn_layer_counts(g)
        } else {
            dense_layer_counts(g)
        };
        assert_eq!(l.ops, expect, "{}", g.name);
    }
}

#[test]
fn fig14_and_fig13_agree_on_who_benefits() {
    // layers with a FLOP reduction are exactly the layers with a speedup
    let model = zoo::googlenet(100);
    let reds = model_reductions(&model);
    let em = EnergyModel::default();
    let base = simulate_model(&model, &AcceleratorConfig::dcnn_fp32(), &em);
    let fast = simulate_model(&model, &AcceleratorConfig::mlcnn_fp32(), &em);
    let speedups = fused_layer_speedups(&base, &fast);
    assert_eq!(reds.len(), speedups.len());
    for (r, (name, s)) in reds.iter().zip(&speedups) {
        assert_eq!(&r.name, name);
        assert!(r.mult_reduction_pct > 70.0, "{name}");
        assert!(*s > 1.0, "{name}");
    }
}

#[test]
fn all_models_end_in_class_logits_after_reordering() {
    let input = Shape4::new(1, 3, 32, 32);
    for classes in [10usize, 100] {
        for specs in [
            zoo::lenet5_spec(classes),
            zoo::vgg_mini_spec(4, classes),
            zoo::googlenet_mini_spec(4, classes),
            zoo::densenet_mini_spec(4, classes),
        ] {
            let r = reorder_activation_pool(&specs);
            let out = propagate_shape(&r.specs, input).unwrap();
            assert_eq!(out, Shape4::new(1, 1, 1, classes));
        }
    }
}
