//! Integration: the precision stack — the same fused kernel running at
//! f32, software binary16 and Q2.6 fixed point, and the DoReFa grid
//! flowing through the INT8 datapath representation.

use mlcnn::core::FusedConvPool;
use mlcnn::quant::dorefa;
use mlcnn::quant::fixed::Q6;
use mlcnn::quant::F16;
use mlcnn::tensor::{init, Shape4, Tensor};

#[test]
fn fused_kernel_at_f16_tracks_f32() {
    let mut rng = init::rng(31);
    let input = init::uniform(Shape4::new(1, 2, 10, 10), -1.0, 1.0, &mut rng);
    let weight = init::uniform(Shape4::new(3, 2, 3, 3), -0.5, 0.5, &mut rng);
    let bias = vec![0.05_f32, -0.05, 0.0];

    let f32_out = FusedConvPool::new(weight.clone(), bias.clone(), 1, 0, 2)
        .unwrap()
        .forward(&input)
        .unwrap();

    let f16_out = FusedConvPool::new(
        weight.cast::<F16>(),
        bias.iter().map(|&b| F16::from_f32_rne(b)).collect(),
        1,
        0,
        2,
    )
    .unwrap()
    .forward(&input.cast::<F16>())
    .unwrap();

    // binary16 has ~3 decimal digits; the fused reduction accumulates a
    // few dozen terms, so centi-level agreement is the right bar.
    for (a, b) in f32_out.as_slice().iter().zip(f16_out.as_slice()) {
        assert!((a - b.to_f32_exact()).abs() < 0.02, "f32 {a} vs f16 {b}");
    }
}

#[test]
fn int8_datapath_with_wide_accumulators_is_exact() {
    // The INT8 machine multiplies Q2.6 operands but accumulates in a wide
    // adder tree (i32/i64), never rounding between taps. Model that path:
    // snap inputs/weights to the Q6 grid, lift the raw integers into i64,
    // and run the fused kernel exactly — it must equal the dense
    // reference bit for bit, with the division deferred to writeback.
    let mut rng = init::rng(32);
    let input_f = dorefa::quantize_activations(
        &init::uniform(Shape4::new(1, 2, 10, 10), 0.0, 1.0, &mut rng),
        6,
    );
    let (weight_f, _) =
        dorefa::quantize_weights(&init::normal(Shape4::new(2, 2, 3, 3), 0.5, &mut rng), 6);
    // every grid value is an exact multiple of 1/64: lift to raw ints
    let raw = |t: &Tensor<f32>| -> Tensor<i64> { t.map(|v| (v * Q6::SCALE).round()).cast::<i64>() };
    // spot-check the lift is faithful (Q6 round-trips the grid)
    for &v in input_f.as_slice().iter().take(16) {
        assert!((Q6::saturating_from_f32(v).to_f32_exact() - v).abs() <= 0.5 / 64.0 + 1e-6);
    }
    let fused = FusedConvPool::new(raw(&weight_f), vec![0_i64, 0], 1, 0, 2)
        .unwrap()
        .with_divide(false)
        .with_relu(false);
    let a = fused.forward(&raw(&input_f)).unwrap();
    let r = fused.reference(&raw(&input_f)).unwrap();
    assert_eq!(a, r, "wide-accumulator INT8 path must be exact");
}

#[test]
fn dorefa_eight_bit_grid_survives_f16_transport() {
    // activations quantized to the 8-bit grid, moved through binary16
    // (as the FP16 buffer would), must land back on the same grid values.
    let mut rng = init::rng(33);
    let acts = dorefa::quantize_activations(
        &init::uniform(Shape4::new(1, 1, 16, 16), 0.0, 1.0, &mut rng),
        8,
    );
    for &v in acts.as_slice() {
        let transported = F16::from_f32_rne(v).to_f32_exact();
        // one binary16 ulp around 1.0 is ~0.0005; grid step is 1/255
        assert!(
            (transported - v).abs() < 0.5 / 255.0,
            "{v} -> {transported}"
        );
    }
}

#[test]
fn quantization_error_shrinks_with_bits_through_the_full_stack() {
    let mut rng = init::rng(34);
    let input = init::uniform(Shape4::new(1, 2, 10, 10), 0.0, 1.0, &mut rng);
    let weight = init::normal(Shape4::new(2, 2, 3, 3), 0.4, &mut rng);
    let bias = vec![0.0_f32; 2];
    // The DoReFa weight transform (Eq. 9) deliberately *rescales* weights
    // through tanh — so the k→∞ limit is not the raw-weight output but
    // the output under the same transform at high bit depth. Use the
    // 16-bit DoReFa output as the reference; ReLU off so the clamp does
    // not hide small-signal differences.
    let run = |k: u32| {
        let (wq, _) = dorefa::quantize_weights(&weight, k);
        let iq = dorefa::quantize_activations(&input, k);
        FusedConvPool::new(wq, bias.clone(), 1, 0, 2)
            .unwrap()
            .with_relu(false)
            .forward(&iq)
            .unwrap()
    };
    let exact = run(16);
    let errs: Vec<f32> = [2u32, 4, 8]
        .iter()
        .map(|&k| run(k).max_abs_diff(&exact).unwrap())
        .collect();
    assert!(
        errs[0] > errs[1] && errs[1] > errs[2],
        "error should shrink with bits: {errs:?}"
    );
    assert!(errs[2] < 0.05, "8-bit error too large: {errs:?}");
}
