//! Integration: take a *trained* network containing a reordered
//! conv → avg-pool → ReLU stage, lift its weights into the MLCNN fused
//! operator, and verify the fused operator reproduces the network's
//! intermediate activations exactly. This is the contract that lets the
//! accelerator run real trained models.

use mlcnn::core::reorder::reorder_activation_pool;
use mlcnn::core::FusedConvPool;
use mlcnn::data::blobs::{generate, BlobsConfig};
use mlcnn::nn::spec::build_network;
use mlcnn::nn::train::{fit, TrainConfig};
use mlcnn::nn::LayerSpec;
use mlcnn::tensor::{Shape4, Tensor};

fn stage_specs(classes: usize) -> Vec<LayerSpec> {
    vec![
        LayerSpec::Conv {
            out_ch: 4,
            k: 3,
            stride: 1,
            pad: 0,
        },
        LayerSpec::ReLU,
        LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        LayerSpec::Flatten,
        LayerSpec::Linear { out: classes },
    ]
}

#[test]
fn fused_operator_replays_a_trained_stage() {
    // train a model in the MLCNN (reordered) form
    let data = generate(BlobsConfig {
        classes: 3,
        per_class: 12,
        channels: 2,
        side: 10,
        ..Default::default()
    });
    let reordered = reorder_activation_pool(&stage_specs(3)).specs;
    assert!(matches!(reordered[1], LayerSpec::AvgPool { .. }));
    let input_shape = Shape4::new(1, 2, 10, 10);
    let mut net = build_network(&reordered, input_shape, 9).unwrap();
    fit(
        &mut net,
        &data,
        &TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
    )
    .unwrap();

    // extract the trained conv parameters (layer 0: conv weight + bias)
    let params = net.export_params();
    let weight = params[0].clone();
    let bias = params[1].as_slice().to_vec();
    assert_eq!(weight.shape(), Shape4::new(4, 2, 3, 3));

    // run a probe batch through the network's first three layers
    let probe = data.batches(4).next().unwrap().images;
    let mut x = probe.clone();
    for i in 0..3 {
        x = net.layer_mut(i).unwrap().forward(&x, false).unwrap();
    }

    // and through the fused operator
    let fused = FusedConvPool::new(weight, bias, 1, 0, 2).unwrap();
    let fused_out = fused.forward(&probe).unwrap();

    assert_eq!(fused_out.shape(), x.shape());
    let diff = fused_out.max_abs_diff(&x).unwrap();
    assert!(
        diff < 1e-4,
        "fused operator diverges from the network: {diff}"
    );
}

#[test]
fn fused_stage_preserves_classification_decisions() {
    // replace the stage inside a full forward pass and verify logits and
    // argmax survive
    let data = generate(BlobsConfig {
        classes: 4,
        per_class: 10,
        channels: 1,
        side: 8,
        ..Default::default()
    });
    let specs = vec![
        LayerSpec::Conv {
            out_ch: 3,
            k: 3,
            stride: 1,
            pad: 1,
        },
        LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        LayerSpec::ReLU,
        LayerSpec::Flatten,
        LayerSpec::Linear { out: 4 },
    ];
    let mut net = build_network(&specs, Shape4::new(1, 1, 8, 8), 4).unwrap();
    fit(
        &mut net,
        &data,
        &TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
    )
    .unwrap();
    let params = net.export_params();
    let fused =
        FusedConvPool::new(params[0].clone(), params[1].as_slice().to_vec(), 1, 1, 2).unwrap();

    let batch = data.batches(8).next().unwrap();
    // full network logits
    let logits_net = net.forward(&batch.images).unwrap();
    // fused stage + the network's tail (flatten + linear)
    let mut tail_in: Tensor<f32> = fused.forward(&batch.images).unwrap();
    for i in 3..net.len() {
        tail_in = net.layer_mut(i).unwrap().forward(&tail_in, false).unwrap();
    }
    assert!(
        logits_net.approx_eq(&tail_in, 1e-4),
        "logit mismatch: {}",
        logits_net.max_abs_diff(&tail_in).unwrap()
    );
    let a = mlcnn::nn::loss::argmax_rows(&logits_net);
    let b = mlcnn::nn::loss::argmax_rows(&tail_in);
    assert_eq!(a, b, "classification decisions changed");
}
