//! Integration: the persistence story — train, serialize, reload in a new
//! "process" (fresh network object), and keep every downstream consumer
//! (plain eval, quantized eval, fused compilation) in exact agreement.

use mlcnn::core::fused_net::FusedNetwork;
use mlcnn::core::quantized::evaluate_quantized;
use mlcnn::core::reorder::reorder_activation_pool;
use mlcnn::data::blobs::{generate, BlobsConfig};
use mlcnn::nn::serialize::{load_params, save_params};
use mlcnn::nn::spec::build_network;
use mlcnn::nn::train::{evaluate, fit, TrainConfig};
use mlcnn::nn::zoo;
use mlcnn::quant::Precision;
use mlcnn::tensor::Shape4;

#[test]
fn train_save_load_evaluate_roundtrip() {
    let data = generate(BlobsConfig {
        classes: 4,
        per_class: 16,
        channels: 3,
        side: 8,
        ..Default::default()
    });
    let (train, test) = data.split(0.75);
    let input = train.item_shape().unwrap();
    let specs = vec![
        mlcnn::nn::LayerSpec::conv3(4),
        mlcnn::nn::LayerSpec::ReLU,
        mlcnn::nn::LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        },
        mlcnn::nn::LayerSpec::Flatten,
        mlcnn::nn::LayerSpec::Linear { out: 4 },
    ];
    let mut net = build_network(&specs, input, 11).unwrap();
    fit(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 5,
            batch_size: 8,
            ..Default::default()
        },
    )
    .unwrap();
    let acc_before = evaluate(&mut net, &test, &[1], 8).unwrap().at(1).unwrap();
    let blob = save_params(&mut net);

    // "new process": rebuild from the (serializable) spec and load
    let mut restored = build_network(&specs, input, 424_242).unwrap();
    load_params(&mut restored, &blob).unwrap();
    let acc_after = evaluate(&mut restored, &test, &[1], 8)
        .unwrap()
        .at(1)
        .unwrap();
    assert_eq!(acc_before, acc_after, "accuracy changed across save/load");

    // quantized evaluation also agrees between original and restored
    let mut q_orig = build_network(&specs, input, 1).unwrap();
    load_params(&mut q_orig, &blob).unwrap();
    let mut q_rest = build_network(&specs, input, 2).unwrap();
    load_params(&mut q_rest, &blob).unwrap();
    let a = evaluate_quantized(&mut q_orig, &test, Precision::Int8, &[1], 8)
        .unwrap()
        .at(1)
        .unwrap();
    let b = evaluate_quantized(&mut q_rest, &test, Precision::Int8, &[1], 8)
        .unwrap()
        .at(1)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn saved_lenet_compiles_to_the_same_fused_network() {
    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let input = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, input, 77).unwrap();
    let blob = save_params(&mut net);

    let mut restored = build_network(&specs, input, 1).unwrap();
    load_params(&mut restored, &blob).unwrap();

    let fused_a = FusedNetwork::compile(&specs, &net.export_params(), input).unwrap();
    let fused_b = FusedNetwork::compile(&specs, &restored.export_params(), input).unwrap();
    let x = mlcnn::tensor::init::uniform(input, -1.0, 1.0, &mut mlcnn::tensor::init::rng(5));
    assert_eq!(
        fused_a.forward(&x).unwrap(),
        fused_b.forward(&x).unwrap(),
        "fused pipelines diverge after save/load"
    );
}
