//! Soundness of `mlcnn-check` with respect to the builders it fronts:
//! any spec list the shape pass accepts without a denial must also
//! propagate and build, and any list `check_compile` accepts must
//! compile for fused inference. The generators deliberately emit
//! degenerate geometry (zero strides, oversized kernels, zero extents)
//! so both the accepting and rejecting paths are exercised.

use mlcnn::accel::dataflow::Tiling;
use mlcnn::check::{check_compile, check_shapes, lint_network, Code, Reporter, Severity};
use mlcnn::core::FusedNetwork;
use mlcnn::nn::spec::{build_network, propagate_shape};
use mlcnn::nn::zoo::ConvLayerGeom;
use mlcnn::nn::LayerSpec;
use mlcnn::tensor::Shape4;
use proptest::prelude::*;

fn arb_layer() -> impl Strategy<Value = LayerSpec> {
    prop_oneof![
        ((0usize..=6), (0usize..=5), (0usize..=3), (0usize..=2)).prop_map(
            |(out_ch, k, stride, pad)| LayerSpec::Conv {
                out_ch,
                k,
                stride,
                pad
            }
        ),
        Just(LayerSpec::ReLU),
        Just(LayerSpec::Sigmoid),
        ((0usize..=5), (0usize..=4))
            .prop_map(|(window, stride)| LayerSpec::AvgPool { window, stride }),
        ((0usize..=5), (0usize..=4))
            .prop_map(|(window, stride)| LayerSpec::MaxPool { window, stride }),
        Just(LayerSpec::GlobalAvgPool),
        Just(LayerSpec::Flatten),
        (0usize..=12).prop_map(|out| LayerSpec::Linear { out }),
        (0u8..=90).prop_map(|percent| LayerSpec::Dropout { percent }),
    ]
}

fn arb_specs() -> impl Strategy<Value = Vec<LayerSpec>> {
    proptest::collection::vec(arb_layer(), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn shape_clean_specs_propagate_and_build(specs in arb_specs()) {
        let input = Shape4::new(1, 3, 16, 16);
        let mut reporter = Reporter::new();
        let trace = check_shapes(&specs, input, &mut reporter);
        if !reporter.has_deny() {
            // the checker accepted: the authoritative propagation and the
            // trainable builder must agree
            let propagated = propagate_shape(&specs, input);
            prop_assert!(
                propagated.is_ok(),
                "checker accepted but propagate_shape rejected: {:?}",
                specs
            );
            prop_assert_eq!(trace.output, propagated.ok());
            prop_assert!(
                build_network(&specs, input, 7).is_ok(),
                "checker accepted but build_network rejected: {:?}",
                specs
            );
        } else {
            prop_assert!(trace.output.is_none());
        }
    }

    #[test]
    fn compile_clean_specs_compile(specs in arb_specs()) {
        let input = Shape4::new(1, 3, 16, 16);
        if check_compile(&specs, input).is_ok() {
            let mut net = build_network(&specs, input, 11)
                .expect("check_compile implies buildable");
            let params = net.export_params();
            prop_assert!(
                FusedNetwork::compile(&specs, &params, input).is_ok(),
                "check_compile accepted but compile rejected: {:?}",
                specs
            );
        }
    }
}

// -- the four acceptance rejection classes, each with its distinct code --

#[test]
fn zero_extent_tiling_is_rejected_as_a001() {
    let g = ConvLayerGeom {
        name: "t".into(),
        in_ch: 8,
        out_ch: 8,
        in_h: 16,
        in_w: 16,
        k: 3,
        stride: 1,
        pad: 1,
        pool: None,
    };
    let t = Tiling {
        tm: 8,
        tn: 8,
        tr: 0,
        tc: 16,
    };
    let diags = t.validate(&g, 1 << 20);
    let d = diags
        .iter()
        .find(|d| d.code == Code::ZeroTileExtent)
        .expect("A001 expected");
    assert_eq!(d.severity, Severity::Deny);
}

#[test]
fn oversized_footprint_tiling_is_rejected_as_a002() {
    let g = ConvLayerGeom {
        name: "t".into(),
        in_ch: 64,
        out_ch: 64,
        in_h: 32,
        in_w: 32,
        k: 3,
        stride: 1,
        pad: 1,
        pool: None,
    };
    let whole = Tiling {
        tm: 64,
        tn: 64,
        tr: 32,
        tc: 32,
    };
    // a 134 kB FP32 buffer cannot hold the whole layer on chip
    let cap = 134 * 1024 / 4;
    assert!(whole.footprint_elements(g.k, g.stride) > cap);
    let diags = whole.validate(&g, cap);
    let d = diags
        .iter()
        .find(|d| d.code == Code::FootprintExceedsBuffer)
        .expect("A002 expected");
    assert_eq!(d.severity, Severity::Deny);
}

#[test]
fn overlapping_pool_fusion_candidate_is_flagged_f001() {
    let specs = vec![
        LayerSpec::conv3(8),
        LayerSpec::AvgPool {
            window: 3,
            stride: 2,
        },
    ];
    let r = lint_network("overlap", &specs, Shape4::new(1, 3, 16, 16), false);
    assert!(
        r.find(Code::OverlappingPoolFusion).is_some(),
        "{}",
        r.pretty()
    );
    // under -D warnings the candidate becomes a hard rejection
    let strict = lint_network("overlap", &specs, Shape4::new(1, 3, 16, 16), true);
    assert!(strict.has_deny());
}

#[test]
fn linear_on_unflattened_map_is_flagged_s006() {
    let specs = vec![LayerSpec::conv3(8), LayerSpec::Linear { out: 10 }];
    let r = lint_network("no-flatten", &specs, Shape4::new(1, 3, 16, 16), false);
    assert!(r.find(Code::LinearOnSpatial).is_some(), "{}", r.pretty());
    // inserting the Flatten silences it
    let fixed = vec![
        LayerSpec::conv3(8),
        LayerSpec::Flatten,
        LayerSpec::Linear { out: 10 },
    ];
    let r = lint_network("flattened", &fixed, Shape4::new(1, 3, 16, 16), false);
    assert!(r.find(Code::LinearOnSpatial).is_none(), "{}", r.pretty());
}
