//! Integration: accelerator-stack consistency — the tile-level trace, the
//! aggregate cycle model and the whole-model fused executor must tell one
//! coherent story.

use mlcnn::accel::config::AcceleratorConfig;
use mlcnn::accel::cycle::{simulate_layer, LayerContext};
use mlcnn::accel::dataflow::search_tiling;
use mlcnn::accel::energy::EnergyModel;
use mlcnn::accel::trace::trace_layer;
use mlcnn::core::fused_net::FusedNetwork;
use mlcnn::core::reorder::reorder_activation_pool;
use mlcnn::nn::spec::build_network;
use mlcnn::nn::zoo;
use mlcnn::tensor::{init, Shape4};

#[test]
fn trace_makespan_brackets_the_aggregate_cycle_model() {
    // For every VGG-16 layer, the event-level makespan must sit between
    // the aggregate model's max(compute, memory) (perfect overlap) and
    // their sum (no overlap).
    let cfg = AcceleratorConfig::mlcnn_fp32();
    let em = EnergyModel::default();
    for g in &zoo::vgg16(10).convs {
        let (tiling, _) = search_tiling(g, cfg.buffer_elements()).unwrap();
        let trace = trace_layer(g, &cfg, &tiling);
        let agg = simulate_layer(g, &cfg, &em, LayerContext::default());
        // the aggregate model may use a different (searched) tiling, so
        // compare against the trace's own resource totals
        let lower = trace.compute_busy.max(trace.dram_busy);
        let upper = trace.compute_busy + trace.dram_busy + 10;
        assert!(
            trace.makespan >= lower && trace.makespan <= upper,
            "{}: makespan {} outside [{lower}, {upper}]",
            g.name,
            trace.makespan
        );
        // and the aggregate layer cycles are in the same regime
        assert!(
            agg.cycles as f64 >= 0.5 * lower as f64,
            "{}: aggregate {} vs trace lower bound {lower}",
            g.name,
            agg.cycles
        );
    }
}

#[test]
fn fused_network_and_trained_network_agree_after_training() {
    use mlcnn::data::shapes::{generate, ShapesConfig};
    use mlcnn::nn::train::{evaluate, fit, TrainConfig};

    // train a small reordered model, compile it, and check the compiled
    // pipeline reproduces the trained network's test accuracy exactly
    let data = generate(ShapesConfig {
        per_class: 6,
        ..ShapesConfig::cifar10_like(6, 3)
    });
    let (train, test) = data.split(0.75);
    let input = train.item_shape().unwrap();
    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let mut net = build_network(&specs, input, 8).unwrap();
    fit(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 3,
            batch_size: 8,
            lr: 0.02,
            ..Default::default()
        },
    )
    .unwrap();
    let acc_layerwise = evaluate(&mut net, &test, &[1], 8).unwrap().at(1).unwrap();

    let params = net.export_params();
    let fused = FusedNetwork::compile(&specs, &params, input).unwrap();
    let mut hits = 0usize;
    let mut total = 0usize;
    for batch in test.batches(8) {
        let logits = fused.forward(&batch.images).unwrap();
        let preds = mlcnn::nn::loss::argmax_rows(&logits);
        hits += preds
            .iter()
            .zip(&batch.labels)
            .filter(|(a, b)| a == b)
            .count();
        total += batch.len();
    }
    let acc_fused = hits as f32 / total as f32;
    assert!(
        (acc_layerwise - acc_fused).abs() < 1e-6,
        "layerwise {acc_layerwise} vs fused {acc_fused}"
    );
}

#[test]
fn fused_network_op_savings_match_the_accelerator_story() {
    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let input = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, input, 4).unwrap();
    let params = net.export_params();
    let fused = FusedNetwork::compile(&specs, &params, input).unwrap();
    let (mlcnn_ops, dense_ops) = fused.conv_op_counts();
    // the fused stages pay 1/4 of the multiplications; C3 (unfused)
    // contributes equally to both sides
    assert!(mlcnn_ops.mults < dense_ops.mults);
    let x = init::uniform(input, -1.0, 1.0, &mut init::rng(1));
    // functional equality once more, through the public facade
    let a = fused.forward(&x).unwrap();
    let b = net.forward(&x).unwrap();
    assert!(a.approx_eq(&b, 1e-3));
}
