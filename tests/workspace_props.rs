//! Cross-crate property tests: randomized invariants spanning the
//! reordering pass, the fused kernel and the op-count model.

use mlcnn::core::analytic;
use mlcnn::core::opcount::{dense_layer_counts, mlcnn_layer_counts};
use mlcnn::core::reorder::{reorder_activation_pool, to_all_conv};
use mlcnn::core::reuse_sim::{simulate_row, ReuseMode};
use mlcnn::core::FusedConvPool;
use mlcnn::nn::spec::{param_count, propagate_shape};
use mlcnn::nn::zoo::{ConvLayerGeom, PoolAfter};
use mlcnn::nn::LayerSpec;
use mlcnn::tensor::{init, Shape4};
use proptest::prelude::*;

fn arb_specs() -> impl Strategy<Value = Vec<LayerSpec>> {
    // random small conv/relu/pool pipelines over a 16x16 input
    proptest::collection::vec(
        prop_oneof![
            (1usize..6).prop_map(|c| LayerSpec::Conv {
                out_ch: c,
                k: 3,
                stride: 1,
                pad: 1
            }),
            Just(LayerSpec::ReLU),
            Just(LayerSpec::AvgPool {
                window: 2,
                stride: 2
            }),
            Just(LayerSpec::MaxPool {
                window: 2,
                stride: 2
            }),
        ],
        1..6,
    )
    .prop_filter("at most two pools so 16x16 survives", |specs| {
        specs
            .iter()
            .filter(|s| matches!(s, LayerSpec::AvgPool { .. } | LayerSpec::MaxPool { .. }))
            .count()
            <= 2
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reordering_preserves_shape_and_params(specs in arb_specs()) {
        let input = Shape4::new(1, 2, 16, 16);
        let before_shape = propagate_shape(&specs, input);
        prop_assume!(before_shape.is_ok());
        let r = reorder_activation_pool(&specs);
        prop_assert_eq!(before_shape.unwrap(), propagate_shape(&r.specs, input).unwrap());
        prop_assert_eq!(
            param_count(&specs, input).unwrap(),
            param_count(&r.specs, input).unwrap()
        );
    }

    #[test]
    fn reordering_is_idempotent(specs in arb_specs()) {
        let once = reorder_activation_pool(&specs);
        let twice = reorder_activation_pool(&once.specs);
        prop_assert_eq!(&once.specs, &twice.specs);
        prop_assert!(twice.swaps.is_empty());
    }

    #[test]
    fn all_conv_eliminates_pools_behind_convs(specs in arb_specs()) {
        let ac = to_all_conv(&specs);
        // any surviving pool must appear before the first conv
        let first_conv = ac.iter().position(|l| matches!(l, LayerSpec::Conv { .. }));
        for (i, l) in ac.iter().enumerate() {
            if matches!(l, LayerSpec::AvgPool { .. } | LayerSpec::MaxPool { .. }) {
                if let Some(fc) = first_conv {
                    prop_assert!(
                        i < fc,
                        "pool at {i} survived after a conv at {fc}: {ac:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_kernel_equals_reference_randomized(
        seed in 0u64..10_000,
        cin in 1usize..3,
        cout in 1usize..3,
        k in 1usize..5,
        pool in 2usize..4,
    ) {
        let d = k + pool * 3;
        let mut rng = init::rng(seed);
        let input = init::uniform(Shape4::new(1, cin, d, d), -1.0, 1.0, &mut rng);
        let weight = init::uniform(Shape4::new(cout, cin, k, k), -1.0, 1.0, &mut rng);
        let bias: Vec<f32> = (0..cout).map(|i| i as f32 * 0.01).collect();
        let fused = FusedConvPool::new(weight, bias, 1, 0, pool).unwrap();
        let a = fused.forward(&input).unwrap();
        let b = fused.reference(&input).unwrap();
        prop_assert!(a.approx_eq(&b, 1e-3), "diff {}", a.max_abs_diff(&b).unwrap());
    }

    #[test]
    fn op_counts_mults_reduction_is_exactly_rme(
        k in 1usize..6,
        pool in 2usize..5,
        ch in 1usize..8,
    ) {
        let d = k + pool * pool + 4;
        let g = ConvLayerGeom {
            name: "g".into(),
            in_ch: ch,
            out_ch: ch + 1,
            in_h: d,
            in_w: d,
            k,
            stride: 1,
            pad: 0,
            pool: Some(PoolAfter { window: pool, stride: pool, avg: true }),
        };
        let dense = dense_layer_counts(&g);
        let fused = mlcnn_layer_counts(&g);
        let conv_w = d - k + 1;
        let pooled_w = (conv_w - pool) / pool + 1;
        // mult ratio equals (pooled / conv)² exactly
        let expect = (pooled_w * pooled_w) as f64 / (conv_w * conv_w) as f64;
        let got = fused.mults as f64 / dense.mults as f64;
        prop_assert!((got - expect).abs() < 1e-12, "got {got} expect {expect}");
        // and approaches 1/pool² on pool-aligned conv outputs
        if conv_w % pool == 0 {
            prop_assert!(
                (got - 1.0 / (pool * pool) as f64).abs() < 1e-12,
                "aligned case: {got}"
            );
        }
    }

    #[test]
    fn analytic_reduction_rates_are_probabilities(
        k in 2usize..20,
        s in 1usize..6,
        extra in 0usize..64,
    ) {
        let d = k + 2 * s + extra;
        prop_assume!(analytic::pooled_row_width(k, d, s) >= 1);
        for rate in [
            analytic::lar_reduction_rate(k, s),
            analytic::gar_reduction_rate(k, d, s),
            analytic::both_reduction_rate(k, d, s),
        ] {
            prop_assert!((0.0..=0.80).contains(&rate), "rate {rate} out of range");
        }
    }

    #[test]
    fn simulator_block_adds_bounded_by_no_reuse(
        k in 1usize..10,
        extra in 0usize..24,
        p in 2usize..5,
    ) {
        let d = k + p * 2 + extra;
        let none = simulate_row(k, d, 1, p, ReuseMode::None);
        let both = simulate_row(k, d, 1, p, ReuseMode::Both);
        prop_assert!(both.block_adds <= none.block_adds);
        prop_assert_eq!(both.major_adds, none.major_adds);
    }
}
