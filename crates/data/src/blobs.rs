//! Class-conditional Gaussian blob images.
//!
//! Each class is assigned a fixed random "template" image; samples are the
//! template plus isotropic Gaussian noise. Linearly separable — any sane
//! training loop reaches high accuracy quickly — which makes this the
//! smoke-test workload for the trainer and the reordering experiments'
//! fastest sanity check.

use crate::dataset::Dataset;
use mlcnn_tensor::init;
use mlcnn_tensor::{Shape4, Tensor};

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct BlobsConfig {
    /// Number of classes.
    pub classes: usize,
    /// Items per class.
    pub per_class: usize,
    /// Image channels.
    pub channels: usize,
    /// Image side (square).
    pub side: usize,
    /// Noise standard deviation relative to unit template contrast.
    pub noise: f32,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for BlobsConfig {
    fn default() -> Self {
        Self {
            classes: 10,
            per_class: 20,
            channels: 1,
            side: 8,
            noise: 0.3,
            seed: 1,
        }
    }
}

/// Generate a blob dataset. Item order interleaves classes
/// (0,1,…,C-1,0,1,…) so positional splits stay class-balanced.
pub fn generate(cfg: BlobsConfig) -> Dataset {
    let mut rng = init::rng(cfg.seed);
    let shape = Shape4::new(1, cfg.channels, cfg.side, cfg.side);
    let templates: Vec<Tensor<f32>> = (0..cfg.classes)
        .map(|_| init::uniform(shape, -1.0, 1.0, &mut rng))
        .collect();
    let mut images = Vec::with_capacity(cfg.classes * cfg.per_class);
    let mut labels = Vec::with_capacity(cfg.classes * cfg.per_class);
    for _ in 0..cfg.per_class {
        for (cls, tpl) in templates.iter().enumerate() {
            let noise = init::normal(shape, cfg.noise, &mut rng);
            images.push(tpl.add(&noise).expect("same shape"));
            labels.push(cls);
        }
    }
    Dataset::new(images, labels, cfg.classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let ds = generate(BlobsConfig {
            classes: 4,
            per_class: 5,
            ..Default::default()
        });
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.class_histogram(), vec![5, 5, 5, 5]);
    }

    #[test]
    fn interleaved_order_keeps_splits_balanced() {
        let ds = generate(BlobsConfig {
            classes: 2,
            per_class: 10,
            ..Default::default()
        });
        let (tr, te) = ds.split(0.8);
        let h = tr.class_histogram();
        assert_eq!(h[0], h[1]);
        let h = te.class_histogram();
        assert_eq!(h[0], h[1]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(BlobsConfig::default());
        let b = generate(BlobsConfig::default());
        assert_eq!(a.item(7).0, b.item(7).0);
        let c = generate(BlobsConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.item(7).0, c.item(7).0);
    }

    #[test]
    fn same_class_items_are_more_similar_than_cross_class() {
        let ds = generate(BlobsConfig {
            classes: 2,
            per_class: 2,
            noise: 0.1,
            ..Default::default()
        });
        // order: 0 1 0 1
        let d_same = ds.item(0).0.max_abs_diff(ds.item(2).0).unwrap();
        let d_diff = ds.item(0).0.max_abs_diff(ds.item(1).0).unwrap();
        assert!(d_same < d_diff, "same {d_same} vs diff {d_diff}");
    }
}
