//! Dataset container, splitting and batching.

use mlcnn_tensor::{Shape4, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One minibatch: stacked images plus class labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// `B × C × H × W` image tensor.
    pub images: Tensor<f32>,
    /// One label per batch item.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of items in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// A labelled image dataset with a fixed class count.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Vec<Tensor<f32>>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Build from per-item images (each `1×C×H×W`) and labels.
    ///
    /// # Panics
    /// Panics if lengths disagree or a label is out of range — dataset
    /// construction is test/bench setup code where failing fast is right.
    pub fn new(images: Vec<Tensor<f32>>, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Self {
            images,
            labels,
            num_classes,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image shape of the first item (`1×C×H×W`), or `None` when empty.
    pub fn item_shape(&self) -> Option<Shape4> {
        self.images.first().map(|t| t.shape())
    }

    /// Borrow item `i`.
    pub fn item(&self, i: usize) -> (&Tensor<f32>, usize) {
        (&self.images[i], self.labels[i])
    }

    /// Deterministically shuffle item order.
    pub fn shuffle(&mut self, seed: u64) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        self.images = idx.iter().map(|&i| self.images[i].clone()).collect();
        self.labels = idx.iter().map(|&i| self.labels[i]).collect();
    }

    /// Split into `(train, test)` with `train_fraction` of items in train.
    /// The split is positional; shuffle first for a random split.
    pub fn split(self, train_fraction: f32) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let cut = (self.len() as f32 * train_fraction).round() as usize;
        let (tr_img, te_img): (Vec<_>, Vec<_>) = {
            let mut imgs = self.images;
            let te = imgs.split_off(cut.min(imgs.len()));
            (imgs, te)
        };
        let (tr_lab, te_lab): (Vec<_>, Vec<_>) = {
            let mut labs = self.labels;
            let te = labs.split_off(cut.min(labs.len()));
            (labs, te)
        };
        (
            Dataset::new(tr_img, tr_lab, self.num_classes),
            Dataset::new(te_img, te_lab, self.num_classes),
        )
    }

    /// Iterate minibatches of at most `batch_size` items, in order. The
    /// final batch may be smaller.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = Batch> + '_ {
        assert!(batch_size > 0, "batch_size must be positive");
        (0..self.len()).step_by(batch_size).map(move |start| {
            let end = (start + batch_size).min(self.len());
            let images =
                Tensor::stack_batch(&self.images[start..end]).expect("dataset items share a shape");
            Batch {
                images,
                labels: self.labels[start..end].to_vec(),
            }
        })
    }

    /// Per-class item counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, classes: usize) -> Dataset {
        let images = (0..n)
            .map(|i| Tensor::full(Shape4::new(1, 1, 2, 2), i as f32))
            .collect();
        let labels = (0..n).map(|i| i % classes).collect();
        Dataset::new(images, labels, classes)
    }

    #[test]
    fn batching_covers_all_items_in_order() {
        let ds = toy(10, 3);
        let batches: Vec<Batch> = ds.batches(4).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        assert_eq!(batches[0].images.at(0, 0, 0, 0), 0.0);
        assert_eq!(batches[2].images.at(1, 0, 0, 0), 9.0);
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn split_fractions() {
        let (tr, te) = toy(10, 2).split(0.8);
        assert_eq!(tr.len(), 8);
        assert_eq!(te.len(), 2);
        assert_eq!(tr.num_classes(), 2);
    }

    #[test]
    fn shuffle_is_deterministic_and_label_consistent() {
        let mut a = toy(20, 4);
        let mut b = toy(20, 4);
        a.shuffle(9);
        b.shuffle(9);
        for i in 0..20 {
            assert_eq!(a.item(i).1, b.item(i).1);
            assert_eq!(a.item(i).0, b.item(i).0);
            // image payload i was constructed as full(i): label must still
            // match payload after the shuffle.
            let v = a.item(i).0.at(0, 0, 0, 0) as usize;
            assert_eq!(a.item(i).1, v % 4);
        }
    }

    #[test]
    fn class_histogram_counts() {
        let ds = toy(9, 3);
        assert_eq!(ds.class_histogram(), vec![3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let images = vec![Tensor::full(Shape4::new(1, 1, 1, 1), 0.0f32)];
        let _ = Dataset::new(images, vec![5], 3);
    }

    #[test]
    fn item_shape_reports_first() {
        let ds = toy(3, 2);
        assert_eq!(ds.item_shape(), Some(Shape4::new(1, 1, 2, 2)));
    }
}
