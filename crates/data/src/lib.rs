//! # mlcnn-data
//!
//! Deterministic synthetic image-classification datasets.
//!
//! The MLCNN paper trains on CIFAR-10/CIFAR-100, which are not available in
//! this offline environment. Per the reproduction's substitution policy
//! (DESIGN.md §2) the accuracy experiments instead use procedurally
//! generated datasets that exercise the identical code paths: multi-channel
//! images, spatial structure that convolution + pooling must extract, class
//! counts of 10 and 100, and fixed seeds so every table regenerates
//! identically.
//!
//! Three generators with increasing difficulty:
//!
//! * [`blobs`] — class-conditional Gaussian blobs; linearly separable,
//!   used for fast smoke tests of the training loop.
//! * [`gratings`] — oriented sinusoidal gratings with phase/frequency
//!   jitter; requires spatial filters, solved well by small CNNs.
//! * [`shapes`] — CIFAR-like 3×32×32 renders of geometric shapes with
//!   color, scale, position and noise jitter; `10` or `100` classes
//!   (shape × color-family for the 100-class variant). This is the stand-in
//!   for CIFAR-10/100 in the Fig. 3/4/12 reproductions.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod augment;
pub mod blobs;
pub mod dataset;
pub mod gratings;
pub mod shapes;

pub use dataset::{Batch, Dataset};
