//! Oriented sinusoidal gratings.
//!
//! Class `k` of `C` is a grating at orientation `k·π/C` with jittered
//! spatial frequency and phase plus additive noise. Unlike [`crate::blobs`]
//! this is *not* linearly separable in pixel space — a classifier must
//! learn oriented spatial filters, which is exactly what a small CNN's
//! first conv layer does. Pooling materially helps here (phase jitter is a
//! shift), making this the right workload for the paper's claim that
//! pooling confers shift robustness (Section II-B).

use crate::dataset::Dataset;
use mlcnn_tensor::init;
use mlcnn_tensor::{Shape4, Tensor};
use rand::RngExt;

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct GratingsConfig {
    /// Number of orientation classes.
    pub classes: usize,
    /// Items per class.
    pub per_class: usize,
    /// Image side (square, single channel).
    pub side: usize,
    /// Base spatial frequency in cycles per image.
    pub frequency: f32,
    /// Relative frequency jitter (uniform ±).
    pub freq_jitter: f32,
    /// Additive noise sigma.
    pub noise: f32,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for GratingsConfig {
    fn default() -> Self {
        Self {
            classes: 8,
            per_class: 40,
            side: 16,
            frequency: 3.0,
            freq_jitter: 0.15,
            noise: 0.2,
            seed: 11,
        }
    }
}

/// Render one grating.
fn render(side: usize, theta: f32, freq: f32, phase: f32) -> Tensor<f32> {
    let omega = std::f32::consts::TAU * freq / side as f32;
    let (s, c) = theta.sin_cos();
    Tensor::from_fn(Shape4::new(1, 1, side, side), |_, _, h, w| {
        let u = c * w as f32 + s * h as f32;
        (omega * u + phase).sin()
    })
}

/// Generate a gratings dataset with class-interleaved item order.
pub fn generate(cfg: GratingsConfig) -> Dataset {
    let mut rng = init::rng(cfg.seed);
    let shape = Shape4::new(1, 1, cfg.side, cfg.side);
    let mut images = Vec::with_capacity(cfg.classes * cfg.per_class);
    let mut labels = Vec::with_capacity(cfg.classes * cfg.per_class);
    for _ in 0..cfg.per_class {
        for cls in 0..cfg.classes {
            let theta = cls as f32 * std::f32::consts::PI / cfg.classes as f32;
            let freq = cfg.frequency * (1.0 + rng.random_range(-cfg.freq_jitter..=cfg.freq_jitter));
            let phase = rng.random_range(0.0..std::f32::consts::TAU);
            let img = render(cfg.side, theta, freq, phase);
            let noise = init::normal(shape, cfg.noise, &mut rng);
            images.push(img.add(&noise).expect("same shape"));
            labels.push(cls);
        }
    }
    Dataset::new(images, labels, cfg.classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expected_shape_and_range() {
        let ds = generate(GratingsConfig {
            classes: 4,
            per_class: 2,
            noise: 0.0,
            ..Default::default()
        });
        assert_eq!(ds.len(), 8);
        let (img, _) = ds.item(0);
        assert_eq!(img.shape(), Shape4::new(1, 1, 16, 16));
        assert!(img.as_slice().iter().all(|v| (-1.01..=1.01).contains(v)));
    }

    #[test]
    fn horizontal_grating_is_constant_along_rows() {
        // theta = 0 => intensity depends only on column index.
        let img = render(8, 0.0, 2.0, 0.3);
        for w in 0..8 {
            let v0 = img.at(0, 0, 0, w);
            for h in 1..8 {
                assert!((img.at(0, 0, h, w) - v0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn vertical_grating_is_constant_along_cols() {
        let img = render(8, std::f32::consts::FRAC_PI_2, 2.0, 0.3);
        for h in 0..8 {
            let v0 = img.at(0, 0, h, 0);
            for w in 1..8 {
                assert!((img.at(0, 0, h, w) - v0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(GratingsConfig::default());
        let b = generate(GratingsConfig::default());
        assert_eq!(a.item(13).0, b.item(13).0);
    }

    #[test]
    fn classes_are_visually_distinct() {
        // With zero noise/jitter, mean absolute inter-class pixel distance
        // should exceed intra-class distance (phase varies within class).
        let cfg = GratingsConfig {
            classes: 2,
            per_class: 8,
            noise: 0.0,
            freq_jitter: 0.0,
            ..Default::default()
        };
        let ds = generate(cfg);
        // items alternate class 0/1
        let dist = |a: &Tensor<f32>, b: &Tensor<f32>| -> f32 {
            a.sub(b)
                .unwrap()
                .as_slice()
                .iter()
                .map(|v| v.abs())
                .sum::<f32>()
                / a.len() as f32
        };
        // orientation difference of pi/2 with random phase: expect classes
        // to not be identical.
        let d01 = dist(ds.item(0).0, ds.item(1).0);
        assert!(d01 > 0.1, "inter-class distance too small: {d01}");
    }
}
