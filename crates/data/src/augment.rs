//! Image augmentation: shifts and flips.
//!
//! The paper's Section II-B argues pooling "alleviates the sensitivity of
//! outputs to shifts and distortions" — the reason MLCNN keeps pooling
//! instead of adopting All-Conv. These helpers build the shifted test
//! sets that let the reproduction measure that claim directly
//! (`tablegen robustness`).

use crate::dataset::Dataset;
use mlcnn_tensor::Tensor;

/// Translate every plane of an image by `(dy, dx)` pixels, filling the
/// exposed border with zeros.
pub fn shift_image(img: &Tensor<f32>, dy: isize, dx: isize) -> Tensor<f32> {
    let s = img.shape();
    Tensor::from_fn(s, |n, c, h, w| {
        let sh = h as isize - dy;
        let sw = w as isize - dx;
        if sh >= 0 && sw >= 0 && (sh as usize) < s.h && (sw as usize) < s.w {
            img.at(n, c, sh as usize, sw as usize)
        } else {
            0.0
        }
    })
}

/// Mirror every plane horizontally.
pub fn flip_horizontal(img: &Tensor<f32>) -> Tensor<f32> {
    let s = img.shape();
    Tensor::from_fn(s, |n, c, h, w| img.at(n, c, h, s.w - 1 - w))
}

/// Apply a shift to every item of a dataset (labels unchanged).
pub fn shifted_dataset(ds: &Dataset, dy: isize, dx: isize) -> Dataset {
    let images = (0..ds.len())
        .map(|i| shift_image(ds.item(i).0, dy, dx))
        .collect();
    let labels = (0..ds.len()).map(|i| ds.item(i).1).collect();
    Dataset::new(images, labels, ds.num_classes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_tensor::Shape4;

    fn probe() -> Tensor<f32> {
        Tensor::from_fn(Shape4::new(1, 1, 4, 4), |_, _, h, w| (h * 4 + w) as f32)
    }

    #[test]
    fn shift_moves_content_and_zero_fills() {
        let img = probe();
        let s = shift_image(&img, 1, 0);
        // row 0 is the exposed border
        assert_eq!(&s.as_slice()[0..4], &[0.0; 4]);
        // row 1 now holds the original row 0
        assert_eq!(&s.as_slice()[4..8], &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn negative_shift_goes_the_other_way() {
        let img = probe();
        let s = shift_image(&img, -1, 0);
        assert_eq!(&s.as_slice()[0..4], &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(&s.as_slice()[12..16], &[0.0; 4]);
    }

    #[test]
    fn zero_shift_is_identity() {
        let img = probe();
        assert_eq!(shift_image(&img, 0, 0), img);
    }

    #[test]
    fn opposite_shifts_cancel_in_the_interior() {
        let img = probe();
        let round = shift_image(&shift_image(&img, 1, 1), -1, -1);
        // interior pixels survive the round trip
        for h in 0..3 {
            for w in 0..3 {
                assert_eq!(round.at(0, 0, h, w), img.at(0, 0, h, w));
            }
        }
    }

    #[test]
    fn flip_is_involutive() {
        let img = probe();
        let f = flip_horizontal(&img);
        assert_eq!(f.at(0, 0, 0, 0), 3.0);
        assert_eq!(flip_horizontal(&f), img);
    }

    #[test]
    fn shifted_dataset_preserves_labels_and_counts() {
        let ds = crate::blobs::generate(crate::blobs::BlobsConfig {
            classes: 3,
            per_class: 4,
            ..Default::default()
        });
        let shifted = shifted_dataset(&ds, 2, -1);
        assert_eq!(shifted.len(), ds.len());
        for i in 0..ds.len() {
            assert_eq!(shifted.item(i).1, ds.item(i).1);
            assert_ne!(shifted.item(i).0, ds.item(i).0);
        }
    }
}
