//! CIFAR-like procedural shape renders — the stand-in for CIFAR-10/100.
//!
//! Each image is 3×32×32 (RGB): a textured background, one foreground
//! geometric shape with jittered position/scale/rotation, and pixel noise.
//!
//! * 10-class mode (`ShapesConfig::cifar10_like`): class = shape kind.
//! * 100-class mode (`ShapesConfig::cifar100_like`): class = shape kind ×
//!   color family (10 × 10), mirroring CIFAR-100's finer label space and —
//!   like the paper observes — substantially harder for small models.

use crate::dataset::Dataset;
use mlcnn_tensor::init;
use mlcnn_tensor::{Shape4, Tensor};
use rand::rngs::StdRng;
use rand::RngExt;

/// The ten base shape kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeKind {
    /// Filled disc.
    Disc,
    /// Ring (annulus).
    Ring,
    /// Filled axis-aligned square.
    Square,
    /// Hollow square frame.
    Frame,
    /// Filled triangle.
    Triangle,
    /// Plus / cross.
    Cross,
    /// Diagonal X.
    Saltire,
    /// Horizontal bar.
    HBar,
    /// Vertical bar.
    VBar,
    /// Checkerboard patch.
    Checker,
}

/// All shape kinds, indexable by class id.
pub const KINDS: [ShapeKind; 10] = [
    ShapeKind::Disc,
    ShapeKind::Ring,
    ShapeKind::Square,
    ShapeKind::Frame,
    ShapeKind::Triangle,
    ShapeKind::Cross,
    ShapeKind::Saltire,
    ShapeKind::HBar,
    ShapeKind::VBar,
    ShapeKind::Checker,
];

/// Ten color families (RGB triples in [0,1]) for the 100-class mode.
pub const COLORS: [[f32; 3]; 10] = [
    [0.9, 0.1, 0.1],
    [0.1, 0.9, 0.1],
    [0.1, 0.1, 0.9],
    [0.9, 0.9, 0.1],
    [0.9, 0.1, 0.9],
    [0.1, 0.9, 0.9],
    [0.9, 0.5, 0.1],
    [0.5, 0.1, 0.9],
    [0.6, 0.6, 0.6],
    [0.9, 0.9, 0.9],
];

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct ShapesConfig {
    /// 10 (shape only) or 100 (shape × color).
    pub classes: usize,
    /// Items per class.
    pub per_class: usize,
    /// Image side.
    pub side: usize,
    /// Additive pixel noise sigma.
    pub noise: f32,
    /// PRNG seed.
    pub seed: u64,
}

impl ShapesConfig {
    /// CIFAR-10-like preset: 10 classes of 3×32×32 images.
    pub fn cifar10_like(per_class: usize, seed: u64) -> Self {
        Self {
            classes: 10,
            per_class,
            side: 32,
            noise: 0.15,
            seed,
        }
    }

    /// CIFAR-100-like preset: 100 classes (shape × color family).
    pub fn cifar100_like(per_class: usize, seed: u64) -> Self {
        Self {
            classes: 100,
            per_class,
            side: 32,
            noise: 0.15,
            seed,
        }
    }
}

/// Signed distance-ish membership test: is pixel `(y, x)` inside `kind`
/// centered at `(cy, cx)` with radius `r` ?
fn inside(kind: ShapeKind, y: f32, x: f32, cy: f32, cx: f32, r: f32) -> bool {
    let dy = y - cy;
    let dx = x - cx;
    match kind {
        ShapeKind::Disc => dy * dy + dx * dx <= r * r,
        ShapeKind::Ring => {
            let d2 = dy * dy + dx * dx;
            d2 <= r * r && d2 >= (0.55 * r) * (0.55 * r)
        }
        ShapeKind::Square => dy.abs() <= r && dx.abs() <= r,
        ShapeKind::Frame => {
            dy.abs() <= r && dx.abs() <= r && (dy.abs() >= 0.55 * r || dx.abs() >= 0.55 * r)
        }
        ShapeKind::Triangle => {
            // upward triangle: inside if below the two slanted edges and
            // above the base.
            dy >= -r && dy <= r && dx.abs() <= (dy + r) * 0.5
        }
        ShapeKind::Cross => {
            (dy.abs() <= 0.33 * r && dx.abs() <= r) || (dx.abs() <= 0.33 * r && dy.abs() <= r)
        }
        ShapeKind::Saltire => {
            let band = 0.33 * r;
            ((dy - dx).abs() <= band || (dy + dx).abs() <= band) && dy.abs() <= r && dx.abs() <= r
        }
        ShapeKind::HBar => dy.abs() <= 0.33 * r && dx.abs() <= r,
        ShapeKind::VBar => dx.abs() <= 0.33 * r && dy.abs() <= r,
        ShapeKind::Checker => {
            if dy.abs() > r || dx.abs() > r {
                return false;
            }
            let cell = (r / 1.5).max(1.0);
            let iy = ((dy + r) / cell) as i32;
            let ix = ((dx + r) / cell) as i32;
            (iy + ix) % 2 == 0
        }
    }
}

/// Render one item.
fn render(
    side: usize,
    kind: ShapeKind,
    color: [f32; 3],
    noise: f32,
    rng: &mut StdRng,
) -> Tensor<f32> {
    let s = side as f32;
    let cy = rng.random_range(0.35 * s..0.65 * s);
    let cx = rng.random_range(0.35 * s..0.65 * s);
    let r = rng.random_range(0.18 * s..0.30 * s);
    let bg: f32 = rng.random_range(0.0..0.35);
    let bg_tint: [f32; 3] = [
        bg * rng.random_range(0.5f32..1.0),
        bg * rng.random_range(0.5f32..1.0),
        bg * rng.random_range(0.5f32..1.0),
    ];
    let mut img = Tensor::from_fn(Shape4::new(1, 3, side, side), |_, c, h, w| {
        if inside(kind, h as f32, w as f32, cy, cx, r) {
            color[c]
        } else {
            bg_tint[c]
        }
    });
    if noise > 0.0 {
        let n = init::normal(img.shape(), noise, rng);
        img = img.add(&n).expect("same shape");
    }
    img
}

/// Generate the dataset with class-interleaved item order (so positional
/// splits are class-balanced).
pub fn generate(cfg: ShapesConfig) -> Dataset {
    assert!(
        cfg.classes == 10 || cfg.classes == 100,
        "shapes dataset supports 10 or 100 classes"
    );
    let mut rng = init::rng(cfg.seed);
    let mut images = Vec::with_capacity(cfg.classes * cfg.per_class);
    let mut labels = Vec::with_capacity(cfg.classes * cfg.per_class);
    for _ in 0..cfg.per_class {
        for cls in 0..cfg.classes {
            let (kind, color) = if cfg.classes == 10 {
                // fixed saturated color per sample, class = shape.
                let color = COLORS[rng.random_range(0..COLORS.len())];
                (KINDS[cls], color)
            } else {
                (KINDS[cls / 10], COLORS[cls % 10])
            };
            images.push(render(cfg.side, kind, color, cfg.noise, &mut rng));
            labels.push(cls);
        }
    }
    Dataset::new(images, labels, cfg.classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar10_like_shape_and_counts() {
        let ds = generate(ShapesConfig {
            per_class: 3,
            ..ShapesConfig::cifar10_like(3, 5)
        });
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.item_shape(), Some(Shape4::new(1, 3, 32, 32)));
        assert!(ds.class_histogram().iter().all(|&c| c == 3));
    }

    #[test]
    fn cifar100_like_has_100_balanced_classes() {
        let ds = generate(ShapesConfig::cifar100_like(2, 5));
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.num_classes(), 100);
        assert!(ds.class_histogram().iter().all(|&c| c == 2));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(ShapesConfig::cifar10_like(2, 9));
        let b = generate(ShapesConfig::cifar10_like(2, 9));
        assert_eq!(a.item(11).0, b.item(11).0);
    }

    #[test]
    fn disc_and_ring_differ_in_the_center() {
        // A ring has a hole; pixel membership at the center must differ.
        assert!(inside(ShapeKind::Disc, 16.0, 16.0, 16.0, 16.0, 6.0));
        assert!(!inside(ShapeKind::Ring, 16.0, 16.0, 16.0, 16.0, 6.0));
        assert!(inside(ShapeKind::Ring, 16.0, 21.5, 16.0, 16.0, 6.0));
    }

    #[test]
    fn bars_have_the_claimed_orientation() {
        // HBar extends further horizontally than vertically.
        assert!(inside(ShapeKind::HBar, 16.0, 21.0, 16.0, 16.0, 6.0));
        assert!(!inside(ShapeKind::HBar, 21.0, 16.0, 16.0, 16.0, 6.0));
        assert!(inside(ShapeKind::VBar, 21.0, 16.0, 16.0, 16.0, 6.0));
        assert!(!inside(ShapeKind::VBar, 16.0, 21.0, 16.0, 16.0, 6.0));
    }

    #[test]
    fn every_kind_renders_nonempty_foreground() {
        for kind in KINDS {
            let mut hits = 0;
            for y in 0..32 {
                for x in 0..32 {
                    if inside(kind, y as f32, x as f32, 16.0, 16.0, 7.0) {
                        hits += 1;
                    }
                }
            }
            assert!(hits > 10, "{kind:?} renders only {hits} pixels");
            assert!(hits < 32 * 32, "{kind:?} fills the whole image");
        }
    }

    #[test]
    fn color_family_is_recoverable_in_100_class_mode() {
        // class = kind*10 + color; two items of classes that share a kind
        // but differ in color family should differ mostly in channel
        // balance. Just verify labels decode.
        let ds = generate(ShapesConfig::cifar100_like(1, 3));
        for i in 0..100 {
            let (_, label) = ds.item(i);
            assert_eq!(label, i);
        }
    }
}
