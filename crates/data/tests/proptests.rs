//! Property tests for the dataset generators: determinism, balance and
//! structural invariants that the accuracy experiments rely on.

use mlcnn_data::augment::{flip_horizontal, shift_image, shifted_dataset};
use mlcnn_data::blobs::{self, BlobsConfig};
use mlcnn_data::gratings::{self, GratingsConfig};
use mlcnn_data::shapes::{self, ShapesConfig};
use mlcnn_tensor::Shape4;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn blobs_balanced_and_deterministic(classes in 2usize..6, per_class in 1usize..8, seed in 0u64..100) {
        let cfg = BlobsConfig { classes, per_class, seed, ..Default::default() };
        let a = blobs::generate(cfg);
        let b = blobs::generate(cfg);
        prop_assert_eq!(a.len(), classes * per_class);
        prop_assert!(a.class_histogram().iter().all(|&c| c == per_class));
        for i in 0..a.len() {
            prop_assert_eq!(a.item(i).0, b.item(i).0);
        }
    }

    #[test]
    fn gratings_values_bounded(classes in 2usize..6, seed in 0u64..100) {
        let ds = gratings::generate(GratingsConfig {
            classes,
            per_class: 2,
            noise: 0.1,
            seed,
            ..Default::default()
        });
        for i in 0..ds.len() {
            let (img, label) = ds.item(i);
            prop_assert!(label < classes);
            // sin in [-1,1] plus sigma-0.1 noise: anything beyond ±2 is a bug
            prop_assert!(img.as_slice().iter().all(|v| v.abs() < 2.0));
        }
    }

    #[test]
    fn shapes_splits_stay_balanced(per_class in 4usize..10, seed in 0u64..50) {
        let ds = shapes::generate(ShapesConfig::cifar10_like(per_class, seed));
        let total = ds.len();
        let (train, test) = ds.split(0.75);
        let th = train.class_histogram();
        let eh = test.class_histogram();
        // interleaved generation keeps positional splits balanced
        prop_assert!(th.iter().max().unwrap() - th.iter().min().unwrap() <= 1);
        prop_assert!(eh.iter().max().unwrap() - eh.iter().min().unwrap() <= 1);
        prop_assert_eq!(train.len() + test.len(), total);
    }

    #[test]
    fn shift_then_unshift_preserves_interior(dy in -3isize..=3, dx in -3isize..=3, seed in 0u64..50) {
        let ds = blobs::generate(BlobsConfig {
            classes: 2,
            per_class: 1,
            side: 12,
            seed,
            ..Default::default()
        });
        let img = ds.item(0).0;
        let round = shift_image(&shift_image(img, dy, dx), -dy, -dx);
        let m = 3usize;
        for h in m..12 - m {
            for w in m..12 - m {
                prop_assert_eq!(round.at(0, 0, h, w), img.at(0, 0, h, w));
            }
        }
    }

    #[test]
    fn double_flip_is_identity(seed in 0u64..50) {
        let ds = shapes::generate(ShapesConfig::cifar10_like(1, seed));
        let img = ds.item(3).0;
        prop_assert_eq!(&flip_horizontal(&flip_horizontal(img)), img);
    }

    #[test]
    fn shifted_dataset_keeps_shape_and_classes(s in -2isize..=2) {
        let ds = blobs::generate(BlobsConfig {
            classes: 3,
            per_class: 2,
            ..Default::default()
        });
        let shifted = shifted_dataset(&ds, s, -s);
        prop_assert_eq!(shifted.num_classes(), 3);
        prop_assert_eq!(shifted.item_shape(), ds.item_shape());
    }
}

#[test]
fn shapes_images_are_rgb_32x32() {
    let ds = shapes::generate(ShapesConfig::cifar10_like(1, 0));
    assert_eq!(ds.item_shape(), Some(Shape4::new(1, 3, 32, 32)));
}
