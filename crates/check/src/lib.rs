//! Static analysis for MLCNN network specs, fusion legality, and
//! accelerator configurations.
//!
//! The rest of the workspace describes everything declaratively — networks
//! as [`LayerSpec`] lists, hardware as plain config structs, tilings as
//! four extents — which makes the data easy to get subtly wrong long
//! before anything executes. This crate checks that data *before* it is
//! built, simulated, or swept:
//!
//! * [`shape::check_shapes`] — shape inference over a spec list, with a
//!   specific diagnostic per rejection class (`S0xx` codes) and
//!   warning-level smells (a pool that drops rows, a `Linear` on an
//!   unflattened map);
//! * [`fusion::check_fusion`] — classifies every average pool against the
//!   fused conv-pool datapath (`F0xx`), reporting the predicted
//!   multiplication saving `1 − 1/Kp²` for fusable groups;
//! * [`accel::check_accel_config`] / [`accel::check_tiling`] — Table VII
//!   invariants and tile-footprint checks (`A0xx`);
//! * [`serve::check_serve_config`] — serving-runtime configuration checks
//!   (`V0xx`): queue capacity, micro-batch policy, worker sizing and
//!   workspace-arena budgets, gating `mlcnn_serve::Service::spawn` the way
//!   [`check_compile`] gates the compilers;
//! * [`registry::check_registry_scan`] — model-registry artifact checks
//!   (`R0xx`): corrupt bundles, spec/parameter disagreement, incompilable
//!   specs, and duplicate `model@revision` identities, gating
//!   `ModelRegistry::open` so no request-time path ever touches a bad
//!   artifact;
//! * [`plan::check_plan`] — dataflow verification of *compiled* execution
//!   plans (`P0xx`): symbolic execution over the abstract ping-pong
//!   workspace, proving the shape chain, in-place aliasing, exact arena
//!   bounds, parameter agreement and rounding placement the executor
//!   relies on — the one pass that checks the compiler's *output* rather
//!   than its inputs;
//! * [`qrange::check_qrange`] — quantization range analysis (`Q0xx`):
//!   interval propagation through FP16/INT8 plans, flagging saturation
//!   and collapse-to-zero risks and emitting the per-layer scale report
//!   the planned integer INT8 kernel will consume;
//! * [`net::check_net_config`] — event-driven network front-end checks
//!   (`N0xx`): reactor shard sizing, connection caps, pipelining depth
//!   against the service queue, and idle-timeout bounds, gating
//!   `mlcnn_net::NetServer::spawn` the same way the `V0xx` lints gate
//!   `Service::spawn`;
//! * [`slo::check_slo_config`] — SLO-configuration checks (`D0xx`):
//!   class/budget consistency and budget feasibility against the cost
//!   oracle's predictions (budget inside the batching window, budget
//!   below the single-item service floor), denying promises the
//!   scheduler provably cannot keep.
//!
//! All passes report through [`diag::Reporter`], which collects
//! [`diag::Diagnostic`]s with stable codes, supports a deny-warnings mode,
//! and renders as text or JSON. The `mlcnn-lint` binary in the workspace
//! root runs the whole suite over the model zoo and the paper's hardware
//! configs.
//!
//! Higher-level crates consume two entry points here:
//! [`check_compile`] gates `FusedNetwork::compile`, and [`lint_network`]
//! is the one-call "lint this spec" used by the binary and the bench
//! reports.

#![forbid(unsafe_code)]

pub mod accel;
pub mod diag;
pub mod fusion;
pub mod net;
pub mod plan;
pub mod qrange;
pub mod registry;
pub mod serve;
pub mod shape;
pub mod slo;

pub use accel::{check_accel_config, check_tiling, AccelConfigLint, TilingLint};
pub use diag::{code_table_markdown, Code, Diagnostic, Reporter, Severity, Span};
pub use fusion::{check_fusion, rme_ratio, FusionClass, FusionGroup};
pub use net::{check_net_config, check_net_config_summary, NetConfigLint};
pub use plan::{check_plan, ChannelProfile, OpView, ParamProfile, PlanView, StepView};
pub use qrange::{check_qrange, QRangeOptions, QRangeReport, StepRange};
pub use registry::{
    check_registry_scan, check_registry_scan_summary, ArtifactFinding, ArtifactLint,
};
pub use serve::{check_serve_config, check_serve_config_summary, ServeConfigLint};
pub use shape::{check_shapes, ShapeTrace};
pub use slo::{check_slo_config, check_slo_config_summary, SloConfigLint};

use mlcnn_nn::LayerSpec;
use mlcnn_tensor::Shape4;

/// Check that a spec list is acceptable to `FusedNetwork::compile`: the
/// shapes must propagate, and the pipeline must be strictly sequential
/// (the fused executor flattens no composites and folds no batch norm).
///
/// Returns the denial diagnostics on failure; warnings never fail this
/// gate.
pub fn check_compile(specs: &[LayerSpec], input: Shape4) -> Result<(), Vec<Diagnostic>> {
    let mut reporter = Reporter::new();
    shape::check_shapes(specs, input, &mut reporter);
    for (i, spec) in specs.iter().enumerate() {
        match spec {
            LayerSpec::Inception { .. }
            | LayerSpec::DenseBlock { .. }
            | LayerSpec::Residual { .. } => {
                reporter.emit(
                    Code::CompositeNotCompilable,
                    Some(Span::layer(i)),
                    "the fused executor handles sequential pipelines only; \
                     flatten this composite layer first",
                );
            }
            LayerSpec::BatchNorm => {
                reporter.emit(
                    Code::BatchNormNotFoldable,
                    Some(Span::layer(i)),
                    "fold batch norm into the preceding convolution before \
                     compiling for the fused executor",
                );
            }
            _ => {}
        }
    }
    if reporter.has_deny() {
        Err(reporter
            .into_diagnostics()
            .into_iter()
            .filter(|d| d.severity == Severity::Deny)
            .collect())
    } else {
        Ok(())
    }
}

/// [`check_compile`] with the denial diagnostics flattened into one
/// `"; "`-joined summary string — the form the execution-plan and fused-
/// network compilers embed in their error values, kept here so every
/// compiler front-end reports identically.
pub fn check_compile_summary(specs: &[LayerSpec], input: Shape4) -> Result<(), String> {
    check_compile(specs, input).map_err(|diags| {
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    })
}

/// Run the full network lint suite — shape inference, then fusion
/// classification fed by the inferred shapes — under one reporter.
pub fn lint_network(
    name: &str,
    specs: &[LayerSpec],
    input: Shape4,
    deny_warnings: bool,
) -> Reporter {
    let mut reporter = if deny_warnings {
        Reporter::deny_warnings()
    } else {
        Reporter::new()
    };
    reporter.with_context(name.to_string(), |r| {
        let trace = shape::check_shapes(specs, input, r);
        // shapes[i] is the input of layer i, so a global pool's effective
        // window is that plane's extent
        let windows: Vec<Option<usize>> = (0..specs.len())
            .map(|i| trace.shapes.get(i).map(|s| s.h))
            .collect();
        fusion::check_fusion(specs, |i| windows.get(i).copied().flatten(), r);
    });
    reporter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_gate_accepts_sequential_lenet() {
        let specs = mlcnn_nn::zoo::lenet5_spec(10);
        assert!(check_compile(&specs, Shape4::new(1, 3, 32, 32)).is_ok());
    }

    #[test]
    fn compile_gate_rejects_composites_with_f004() {
        let specs = vec![LayerSpec::Residual {
            inner: vec![LayerSpec::conv3(3)],
            projector: vec![],
        }];
        let diags = check_compile(&specs, Shape4::new(1, 3, 8, 8)).unwrap_err();
        assert!(diags.iter().any(|d| d.code == Code::CompositeNotCompilable));
    }

    #[test]
    fn compile_gate_rejects_batchnorm_with_f005() {
        let specs = vec![LayerSpec::conv3(8), LayerSpec::BatchNorm];
        let diags = check_compile(&specs, Shape4::new(1, 3, 8, 8)).unwrap_err();
        assert!(diags.iter().any(|d| d.code == Code::BatchNormNotFoldable));
    }

    #[test]
    fn compile_gate_rejects_bad_shapes() {
        let specs = vec![LayerSpec::Conv {
            out_ch: 4,
            k: 64,
            stride: 1,
            pad: 0,
        }];
        let diags = check_compile(&specs, Shape4::new(1, 3, 8, 8)).unwrap_err();
        assert!(diags.iter().any(|d| d.code == Code::KernelExceedsInput));
    }

    #[test]
    fn lint_network_derives_global_pool_windows() {
        // conv keeps 8x8, so the global pool fuses with window 8
        let specs = vec![LayerSpec::conv3(8), LayerSpec::GlobalAvgPool];
        let r = lint_network("g", &specs, Shape4::new(1, 3, 8, 8), false);
        assert!(r.is_clean(), "{}", r.pretty());
    }

    #[test]
    fn deny_warnings_escalates_zoo_reorder_warnings() {
        let specs = mlcnn_nn::zoo::lenet5_spec(10);
        let relaxed = lint_network("lenet5", &specs, Shape4::new(1, 3, 32, 32), false);
        assert!(!relaxed.has_deny(), "{}", relaxed.pretty());
        let strict = lint_network("lenet5", &specs, Shape4::new(1, 3, 32, 32), true);
        assert!(strict.has_deny());
    }
}
