//! Shape inference over [`LayerSpec`] sequences.
//!
//! Walks a spec list the same way `mlcnn_nn::spec::propagate_shape` does,
//! but instead of failing on the first bad layer it explains *why* each
//! layer is broken with a specific diagnostic code, and keeps scanning for
//! warning-level smells (pools that drop rows, a `Linear` eating an
//! unflattened feature map).
//!
//! The pass is *sound* with respect to the builder: pre-checks carry the
//! specific codes, and the authoritative per-layer propagation is delegated
//! to `propagate_shape` itself, with any residual rejection surfaced as the
//! generic [`Code::BadGeometry`]. A sequence this pass accepts without a
//! denial therefore always propagates and builds
//! (`tests/checker_soundness.rs` in the workspace root proves it by
//! property testing).

use crate::diag::{Code, Reporter, Span};
use mlcnn_nn::spec::propagate_shape;
use mlcnn_nn::LayerSpec;
use mlcnn_tensor::Shape4;

/// Result of the shape pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeTrace {
    /// `shapes[i]` is the input shape of layer `i`; `shapes.last()` is the
    /// network output. Truncated at the first denied layer.
    pub shapes: Vec<Shape4>,
    /// Output shape, `None` when a denial stopped propagation.
    pub output: Option<Shape4>,
}

/// Infer shapes through `specs` starting from `input`, reporting problems
/// into `reporter`. Returns the shape trace; `output` is `Some` exactly
/// when no denial was emitted for the main sequence.
pub fn check_shapes(specs: &[LayerSpec], input: Shape4, reporter: &mut Reporter) -> ShapeTrace {
    let mut shapes = vec![input];
    let mut s = input;
    for (i, spec) in specs.iter().enumerate() {
        let before = reporter.count(crate::diag::Severity::Deny);
        precheck_layer(spec, s, i, reporter);
        // the builder's own propagation is the authority; anything it
        // rejects that the pre-checks did not explain becomes S011
        match propagate_shape(std::slice::from_ref(spec), s) {
            Ok(next) => {
                if reporter.count(crate::diag::Severity::Deny) > before {
                    return ShapeTrace {
                        shapes,
                        output: None,
                    };
                }
                s = next;
                shapes.push(s);
            }
            Err(e) => {
                if reporter.count(crate::diag::Severity::Deny) == before {
                    reporter.emit(Code::BadGeometry, Some(Span::layer(i)), e.to_string());
                }
                return ShapeTrace {
                    shapes,
                    output: None,
                };
            }
        }
    }
    ShapeTrace {
        shapes,
        output: Some(s),
    }
}

/// Emit the specific diagnostics for one layer at input shape `s`.
fn precheck_layer(spec: &LayerSpec, s: Shape4, i: usize, reporter: &mut Reporter) {
    let span = Some(Span::layer(i));
    match spec {
        LayerSpec::Conv {
            out_ch,
            k,
            stride,
            pad,
        } => {
            if *stride == 0 {
                reporter.emit(Code::ZeroStride, span, "conv stride is zero");
            }
            if *k == 0 {
                reporter.emit(Code::ZeroExtent, span, "conv kernel extent is zero");
            }
            if *out_ch == 0 {
                reporter.emit(Code::ZeroExtent, span, "conv with zero output channels");
            }
            let padded_h = s.h + 2 * pad;
            let padded_w = s.w + 2 * pad;
            if *k > 0 && (*k > padded_h || *k > padded_w) {
                reporter.emit(
                    Code::KernelExceedsInput,
                    span,
                    format!("kernel {k}x{k} larger than padded input {padded_h}x{padded_w}"),
                );
            }
        }
        LayerSpec::AvgPool { window, stride } | LayerSpec::MaxPool { window, stride } => {
            if *stride == 0 {
                reporter.emit(Code::ZeroStride, span, "pool stride is zero");
            }
            if *window == 0 {
                reporter.emit(Code::ZeroExtent, span, "pool window extent is zero");
            }
            if *window > 0 && (*window > s.h || *window > s.w) {
                reporter.emit(
                    Code::PoolExceedsInput,
                    span,
                    format!("pool window {window} larger than input {}x{}", s.h, s.w),
                );
            } else if *window > 0 && *stride > 0 {
                // legal but lossy: trailing rows/cols the window never covers
                let covered_h = (s.h - window) / stride * stride + window;
                let covered_w = (s.w - window) / stride * stride + window;
                if covered_h < s.h || covered_w < s.w {
                    reporter.emit(
                        Code::PoolNotDividing,
                        span,
                        format!(
                            "pool {window}/{stride} covers only {covered_h}x{covered_w} \
                             of the {}x{} input; the rest is dropped",
                            s.h, s.w
                        ),
                    );
                }
            }
        }
        LayerSpec::GlobalAvgPool => {
            if s.h != s.w {
                reporter.emit(
                    Code::NonSquareGlobalPool,
                    span,
                    format!("global average pool on a non-square {}x{} plane", s.h, s.w),
                );
            }
            if s.h == 0 || s.w == 0 {
                reporter.emit(
                    Code::ZeroExtent,
                    span,
                    "global average pool on an empty plane",
                );
            }
        }
        LayerSpec::Linear { out } => {
            if *out == 0 {
                reporter.emit(Code::ZeroExtent, span, "linear layer with zero outputs");
            }
            // flattened vectors live in `w` (`Flatten` yields n×1×1×F), so
            // only a genuine spatial plane is suspicious
            if s.h > 1 || (s.c > 1 && s.w > 1) {
                reporter.emit(
                    Code::LinearOnSpatial,
                    span,
                    format!(
                        "linear layer consumes an unflattened {}x{}x{} feature map \
                         (missing Flatten?)",
                        s.c, s.h, s.w
                    ),
                );
            }
        }
        LayerSpec::Inception { branches } => {
            if branches.is_empty() {
                reporter.emit(Code::EmptyComposite, span, "inception with no branches");
            }
            let mut hw: Option<(usize, usize)> = None;
            for (bi, b) in branches.iter().enumerate() {
                let trace = reporter
                    .with_context(format!("inception branch {bi}"), |r| check_shapes(b, s, r));
                let Some(out) = trace.output else { continue };
                match hw {
                    None => hw = Some((out.h, out.w)),
                    Some(prev) if prev != (out.h, out.w) => {
                        reporter.emit(
                            Code::InceptionMismatch,
                            span,
                            format!(
                                "inception branch {bi} yields {}x{}, \
                                 earlier branches yield {}x{}",
                                out.h, out.w, prev.0, prev.1
                            ),
                        );
                    }
                    _ => {}
                }
            }
        }
        LayerSpec::DenseBlock { inner } => {
            if inner.is_empty() {
                reporter.emit(
                    Code::EmptyComposite,
                    span,
                    "dense block with empty inner pipeline",
                );
            }
            let trace = reporter.with_context("dense block", |r| check_shapes(inner, s, r));
            if let Some(out) = trace.output {
                if (out.h, out.w) != (s.h, s.w) {
                    reporter.emit(
                        Code::ResidualMismatch,
                        span,
                        format!(
                            "dense block inner changes the spatial extent \
                             ({}x{} -> {}x{}); concat with the input is impossible",
                            s.h, s.w, out.h, out.w
                        ),
                    );
                }
            }
        }
        LayerSpec::Residual { inner, projector } => {
            let main = reporter
                .with_context("residual main branch", |r| check_shapes(inner, s, r))
                .output;
            let skip = if projector.is_empty() {
                Some(s)
            } else {
                reporter
                    .with_context("residual projector", |r| check_shapes(projector, s, r))
                    .output
            };
            if let (Some(m), Some(p)) = (main, skip) {
                if m != p {
                    reporter.emit(
                        Code::ResidualMismatch,
                        span,
                        format!("residual branches disagree: {m} vs {p}"),
                    );
                }
            }
        }
        LayerSpec::ReLU
        | LayerSpec::Sigmoid
        | LayerSpec::Flatten
        | LayerSpec::BatchNorm
        | LayerSpec::Dropout { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn run(specs: &[LayerSpec], input: Shape4) -> (ShapeTrace, Reporter) {
        let mut r = Reporter::new();
        let t = check_shapes(specs, input, &mut r);
        (t, r)
    }

    #[test]
    fn clean_pipeline_traces_every_shape() {
        let specs = vec![
            LayerSpec::conv3(8),
            LayerSpec::ReLU,
            LayerSpec::AvgPool {
                window: 2,
                stride: 2,
            },
            LayerSpec::Flatten,
            LayerSpec::Linear { out: 10 },
        ];
        let (t, r) = run(&specs, Shape4::new(1, 3, 32, 32));
        assert!(r.is_clean(), "{}", r.pretty());
        assert_eq!(t.shapes.len(), specs.len() + 1);
        assert_eq!(t.output, Some(Shape4::new(1, 1, 1, 10)));
    }

    #[test]
    fn zero_stride_is_s001() {
        let specs = vec![LayerSpec::Conv {
            out_ch: 4,
            k: 3,
            stride: 0,
            pad: 0,
        }];
        let (t, r) = run(&specs, Shape4::new(1, 3, 8, 8));
        assert_eq!(r.find(Code::ZeroStride).unwrap().severity, Severity::Deny);
        assert_eq!(t.output, None);
    }

    #[test]
    fn oversized_kernel_is_s003() {
        let specs = vec![LayerSpec::Conv {
            out_ch: 4,
            k: 11,
            stride: 1,
            pad: 0,
        }];
        let (_, r) = run(&specs, Shape4::new(1, 3, 8, 8));
        assert!(r.find(Code::KernelExceedsInput).is_some());
        // padding rescues the same kernel
        let specs = vec![LayerSpec::Conv {
            out_ch: 4,
            k: 11,
            stride: 1,
            pad: 2,
        }];
        let (_, r) = run(&specs, Shape4::new(1, 3, 8, 8));
        assert!(r.is_clean(), "{}", r.pretty());
    }

    #[test]
    fn oversized_pool_is_s004() {
        let specs = vec![LayerSpec::AvgPool {
            window: 9,
            stride: 9,
        }];
        let (_, r) = run(&specs, Shape4::new(1, 3, 8, 8));
        assert!(r.find(Code::PoolExceedsInput).is_some());
    }

    #[test]
    fn non_dividing_pool_warns_s005() {
        let specs = vec![LayerSpec::AvgPool {
            window: 2,
            stride: 2,
        }];
        let (t, r) = run(&specs, Shape4::new(1, 3, 7, 7));
        let d = r.find(Code::PoolNotDividing).unwrap();
        assert_eq!(d.severity, Severity::Warn);
        // warning does not stop propagation
        assert_eq!(t.output, Some(Shape4::new(1, 3, 3, 3)));
    }

    #[test]
    fn linear_on_spatial_warns_s006() {
        let specs = vec![LayerSpec::Linear { out: 10 }];
        let (t, r) = run(&specs, Shape4::new(1, 4, 5, 5));
        assert_eq!(
            r.find(Code::LinearOnSpatial).unwrap().severity,
            Severity::Warn
        );
        assert_eq!(t.output, Some(Shape4::new(1, 1, 1, 10)));
        // flattened input is silent
        let specs = vec![LayerSpec::Flatten, LayerSpec::Linear { out: 10 }];
        let (_, r) = run(&specs, Shape4::new(1, 4, 5, 5));
        assert!(r.is_clean());
    }

    #[test]
    fn non_square_global_pool_is_s007() {
        let specs = vec![LayerSpec::GlobalAvgPool];
        let (_, r) = run(&specs, Shape4::new(1, 3, 4, 6));
        assert!(r.find(Code::NonSquareGlobalPool).is_some());
    }

    #[test]
    fn inception_mismatch_is_s008_and_empty_is_s009() {
        let specs = vec![LayerSpec::Inception {
            branches: vec![
                vec![LayerSpec::conv1(2)],
                vec![LayerSpec::AvgPool {
                    window: 2,
                    stride: 2,
                }],
            ],
        }];
        let (_, r) = run(&specs, Shape4::new(1, 3, 8, 8));
        assert!(r.find(Code::InceptionMismatch).is_some());

        let specs = vec![LayerSpec::Inception { branches: vec![] }];
        let (_, r) = run(&specs, Shape4::new(1, 3, 8, 8));
        assert!(r.find(Code::EmptyComposite).is_some());
    }

    #[test]
    fn residual_mismatch_is_s010() {
        let specs = vec![LayerSpec::Residual {
            inner: vec![LayerSpec::Conv {
                out_ch: 3,
                k: 3,
                stride: 2,
                pad: 1,
            }],
            projector: vec![],
        }];
        let (_, r) = run(&specs, Shape4::new(1, 3, 8, 8));
        assert!(r.find(Code::ResidualMismatch).is_some());
    }

    #[test]
    fn nested_diagnostics_carry_branch_context() {
        let specs = vec![LayerSpec::Inception {
            branches: vec![vec![LayerSpec::Conv {
                out_ch: 4,
                k: 3,
                stride: 0,
                pad: 0,
            }]],
        }];
        let (_, r) = run(&specs, Shape4::new(1, 3, 8, 8));
        let d = r.find(Code::ZeroStride).unwrap();
        assert!(d.message.contains("inception branch 0"), "{}", d.message);
    }

    #[test]
    fn zoo_specs_are_deny_clean() {
        use mlcnn_nn::zoo;
        let input = Shape4::new(1, 3, 32, 32);
        for (name, specs) in [
            ("lenet5", zoo::lenet5_spec(10)),
            ("vgg_mini", zoo::vgg_mini_spec(3, 10)),
            ("googlenet_mini", zoo::googlenet_mini_spec(2, 10)),
            ("densenet_mini", zoo::densenet_mini_spec(4, 10)),
            ("resnet_mini", zoo::resnet_mini_spec(4, 10)),
        ] {
            let mut r = Reporter::new();
            let t = check_shapes(&specs, input, &mut r);
            assert!(!r.has_deny(), "{name}: {}", r.pretty());
            assert!(t.output.is_some(), "{name}");
        }
    }
}
