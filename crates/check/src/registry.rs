//! Model-registry artifact lints (`R0xx`).
//!
//! `mlcnn-registry` scans a directory of versioned `.mlcnn` bundles and
//! must refuse to open a registry containing anything it could later fail
//! on at request time — a torn download, an artifact whose parameters
//! disagree with its own spec list, a spec the plan compiler rejects, or
//! two files claiming the same `model@revision` identity. As with the
//! serving lints, this module takes *raw findings* rather than registry
//! types (the registry crate sits above the checker and calls in from
//! `ModelRegistry::open`, mirroring how `Service::spawn` gates on the
//! `V0xx` codes): the registry does the decoding and validation work, the
//! checker owns the stable codes, severities, and rendering.

use crate::diag::{Code, Reporter};
use std::collections::HashMap;

/// What validating one artifact concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactFinding {
    /// Decoded, checksummed, and compiled cleanly.
    Ok,
    /// R001: truncated, bad magic, unknown version, or checksum mismatch.
    Corrupt(String),
    /// R002: parameter tensors disagree with the spec list's shapes.
    ParamMismatch(String),
    /// R003: the spec list cannot be compiled into an execution plan.
    Incompilable(String),
    /// R005: stored layer content hashes disagree with the hashes
    /// recomputed from the decoded specs and parameters.
    HashMismatch(String),
}

/// Raw view of one scanned artifact for linting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactLint {
    /// File name within the registry directory, used in messages.
    pub file: String,
    /// Model name the artifact claims (empty when undecodable).
    pub model: String,
    /// Revision the artifact claims (0 when undecodable).
    pub revision: u64,
    /// Validation outcome.
    pub finding: ArtifactFinding,
}

/// Lint one registry scan: per-artifact findings become `R001`–`R003`,
/// and any two decodable artifacts sharing a `model@revision` identity
/// become `R004` (reported once per colliding identity).
pub fn check_registry_scan(artifacts: &[ArtifactLint], reporter: &mut Reporter) {
    for a in artifacts {
        reporter.with_context(a.file.clone(), |reporter| match &a.finding {
            ArtifactFinding::Ok => {}
            ArtifactFinding::Corrupt(why) => {
                reporter.emit(
                    Code::ArtifactCorrupt,
                    None,
                    format!("corrupt artifact: {why}"),
                );
            }
            ArtifactFinding::ParamMismatch(why) => {
                reporter.emit(
                    Code::ArtifactParamMismatch,
                    None,
                    format!("parameters disagree with the spec list: {why}"),
                );
            }
            ArtifactFinding::Incompilable(why) => {
                reporter.emit(
                    Code::ArtifactIncompilable,
                    None,
                    format!("spec list is not plan-compilable: {why}"),
                );
            }
            ArtifactFinding::HashMismatch(why) => {
                reporter.emit(
                    Code::ArtifactHashMismatch,
                    None,
                    format!("layer content hashes do not match: {why}"),
                );
            }
        });
    }
    // Duplicate identities across decodable artifacts. Undecodable files
    // (already denied as R001) carry no trustworthy identity to collide on.
    let mut by_identity: HashMap<(&str, u64), Vec<&str>> = HashMap::new();
    for a in artifacts {
        if !matches!(
            a.finding,
            ArtifactFinding::Corrupt(_) | ArtifactFinding::HashMismatch(_)
        ) && !a.model.is_empty()
        {
            by_identity
                .entry((a.model.as_str(), a.revision))
                .or_default()
                .push(a.file.as_str());
        }
    }
    let mut collisions: Vec<_> = by_identity
        .into_iter()
        .filter(|(_, files)| files.len() > 1)
        .collect();
    collisions.sort();
    for ((model, revision), mut files) in collisions {
        files.sort();
        reporter.emit(
            Code::DuplicateRevision,
            None,
            format!(
                "{} files all claim {model}@{revision}: {}",
                files.len(),
                files.join(", ")
            ),
        );
    }
}

/// [`check_registry_scan`] with denial diagnostics flattened into one
/// `"; "`-joined summary — the form `ModelRegistry::open` embeds in its
/// error value, matching [`crate::check_serve_config_summary`].
pub fn check_registry_scan_summary(artifacts: &[ArtifactLint]) -> Result<(), String> {
    let mut reporter = Reporter::new();
    check_registry_scan(artifacts, &mut reporter);
    if reporter.has_deny() {
        Err(reporter
            .diagnostics()
            .iter()
            .filter(|d| d.severity == crate::Severity::Deny)
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; "))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn ok(file: &str, model: &str, rev: u64) -> ArtifactLint {
        ArtifactLint {
            file: file.into(),
            model: model.into(),
            revision: rev,
            finding: ArtifactFinding::Ok,
        }
    }

    #[test]
    fn clean_scan_is_clean() {
        let scan = vec![ok("a@1.mlcnn", "a", 1), ok("a@2.mlcnn", "a", 2)];
        let mut r = Reporter::new();
        check_registry_scan(&scan, &mut r);
        assert!(r.is_clean(), "{}", r.pretty());
        assert!(check_registry_scan_summary(&scan).is_ok());
    }

    #[test]
    fn corrupt_artifact_is_r001() {
        let mut a = ok("a@1.mlcnn", "", 0);
        a.finding = ArtifactFinding::Corrupt("body checksum mismatch".into());
        let mut r = Reporter::new();
        check_registry_scan(&[a], &mut r);
        let d = r.find(Code::ArtifactCorrupt).unwrap();
        assert_eq!(d.severity, Severity::Deny);
        assert!(d.message.contains("a@1.mlcnn"));
    }

    #[test]
    fn param_mismatch_is_r002() {
        let mut a = ok("a@1.mlcnn", "a", 1);
        a.finding = ArtifactFinding::ParamMismatch("conv0 weight [4x3x3x3] vs [4x1x3x3]".into());
        let mut r = Reporter::new();
        check_registry_scan(&[a], &mut r);
        assert_eq!(
            r.find(Code::ArtifactParamMismatch).unwrap().severity,
            Severity::Deny
        );
    }

    #[test]
    fn incompilable_spec_is_r003() {
        let mut a = ok("a@1.mlcnn", "a", 1);
        a.finding = ArtifactFinding::Incompilable("error[F005] at layer 1".into());
        let mut r = Reporter::new();
        check_registry_scan(&[a], &mut r);
        assert_eq!(
            r.find(Code::ArtifactIncompilable).unwrap().severity,
            Severity::Deny
        );
    }

    #[test]
    fn duplicate_identity_is_r004_once_per_collision() {
        let scan = vec![
            ok("a@1.mlcnn", "a", 1),
            ok("copy-of-a@1.mlcnn", "a", 1),
            ok("a@2.mlcnn", "a", 2),
        ];
        let mut r = Reporter::new();
        check_registry_scan(&scan, &mut r);
        assert_eq!(r.count(Severity::Deny), 1);
        let d = r.find(Code::DuplicateRevision).unwrap();
        assert!(
            d.message.contains("a@1.mlcnn, copy-of-a@1.mlcnn"),
            "{}",
            d.message
        );
        assert!(check_registry_scan_summary(&scan).is_err());
    }

    #[test]
    fn corrupt_files_do_not_collide_on_identity() {
        let mut broken = ok("x@1.mlcnn", "a", 1);
        broken.finding = ArtifactFinding::Corrupt("truncated".into());
        let scan = vec![ok("a@1.mlcnn", "a", 1), broken];
        let mut r = Reporter::new();
        check_registry_scan(&scan, &mut r);
        assert!(r.find(Code::DuplicateRevision).is_none());
    }

    #[test]
    fn hash_mismatch_is_r005_and_excluded_from_identity() {
        let mut a = ok("a@1.mlcnn", "a", 1);
        a.finding = ArtifactFinding::HashMismatch("layer 2: stored deadbeef".into());
        let scan = vec![ok("copy@1.mlcnn", "a", 1), a];
        let mut r = Reporter::new();
        check_registry_scan(&scan, &mut r);
        let d = r.find(Code::ArtifactHashMismatch).unwrap();
        assert_eq!(d.severity, Severity::Deny);
        assert!(d.message.contains("a@1.mlcnn"), "{}", d.message);
        // a hash-mismatched file's identity is untrustworthy: no R004
        assert!(r.find(Code::DuplicateRevision).is_none());
    }

    #[test]
    fn r_codes_have_stable_strings() {
        assert_eq!(Code::ArtifactCorrupt.as_str(), "R001");
        assert_eq!(Code::ArtifactParamMismatch.as_str(), "R002");
        assert_eq!(Code::ArtifactIncompilable.as_str(), "R003");
        assert_eq!(Code::DuplicateRevision.as_str(), "R004");
        assert_eq!(Code::ArtifactHashMismatch.as_str(), "R005");
        assert_eq!(Code::SegmentConflict.as_str(), "R006");
        for code in [
            Code::ArtifactCorrupt,
            Code::ArtifactParamMismatch,
            Code::ArtifactIncompilable,
            Code::DuplicateRevision,
            Code::ArtifactHashMismatch,
            Code::SegmentConflict,
        ] {
            assert_eq!(code.default_severity(), Severity::Deny);
        }
    }
}
