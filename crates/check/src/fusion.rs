//! Fusion and reorder legality over sequential spec lists.
//!
//! The MLCNN accelerator fuses a convolution with an immediately following
//! *non-overlapping* average pool (paper Section V); the reorder pass of
//! Section III moves ReLU behind the pool to expose such pairs. This pass
//! classifies every pool in a pipeline:
//!
//! * `Conv → AvgPool{w==s} [→ ReLU]` — a fusable group, reported with its
//!   predicted relative multiplication efficiency `RME = 1 − 1/Kp²`
//!   (the fraction of dense multiplications the fused datapath removes);
//! * `Conv → ReLU → AvgPool{w==s}` — fusable *after* reordering
//!   ([`Code::ActivationBlocksFusion`], the paper's motivating case);
//! * `Conv → AvgPool{w≠s}` — overlapping windows, the fused datapath
//!   cannot produce them ([`Code::OverlappingPoolFusion`]);
//! * a non-overlapping average pool with no producing conv —
//!   nothing to fuse into ([`Code::NonConvPoolProducer`]).

use crate::diag::{Code, Reporter, Span};
use mlcnn_nn::LayerSpec;

/// How a conv/pool pair relates to the fused datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionClass {
    /// Fusable as-is.
    Fusable,
    /// Fusable once the intervening ReLU is reordered behind the pool.
    FusableAfterReorder,
    /// Not fusable: the pool windows overlap.
    Overlapping,
    /// Not fusable: the pool's producer is not a convolution.
    NonConvProducer,
}

/// One identified conv→pool group.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionGroup {
    /// Index of the convolution (or of the pool itself for
    /// [`FusionClass::NonConvProducer`]).
    pub start: usize,
    /// One past the last layer of the group.
    pub end: usize,
    /// Classification.
    pub class: FusionClass,
    /// Pool window extent (square).
    pub pool_window: usize,
    /// Predicted relative multiplication efficiency for the fusable
    /// classes: `1 − 1/Kp²`, the fraction of multiplications the fused
    /// conv-pool removes (paper Eq. 4 with non-overlapping pooling).
    pub rme_ratio: f64,
}

/// The MLCNN multiplication saving for a `Kp × Kp` non-overlapping pool.
pub fn rme_ratio(pool_window: usize) -> f64 {
    if pool_window == 0 {
        return 0.0;
    }
    1.0 - 1.0 / (pool_window * pool_window) as f64
}

/// Classify every pool in a sequential spec list, emitting warnings for
/// the near-misses. `global_pool_window` supplies the effective window of
/// a `GlobalAvgPool` at each layer index when the caller ran shape
/// inference (`window = input plane extent`); without it global pools are
/// reported with window 0.
pub fn check_fusion(
    specs: &[LayerSpec],
    global_pool_window: impl Fn(usize) -> Option<usize>,
    reporter: &mut Reporter,
) -> Vec<FusionGroup> {
    let mut groups = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let (window, stride) = match spec {
            LayerSpec::AvgPool { window, stride } => (*window, *stride),
            LayerSpec::GlobalAvgPool => {
                let w = global_pool_window(i).unwrap_or(0);
                (w, w)
            }
            _ => continue,
        };
        let producer = if i > 0 { specs.get(i - 1) } else { None };
        let producer2 = if i > 1 { specs.get(i - 2) } else { None };
        // a global pool is one non-overlapping window even when the caller
        // could not supply its extent (window 0 = unknown, rme reads 0)
        let non_overlapping =
            matches!(spec, LayerSpec::GlobalAvgPool) || (window == stride && window > 0);
        match (producer2, producer) {
            (_, Some(LayerSpec::Conv { .. })) if non_overlapping => {
                let has_relu = matches!(specs.get(i + 1), Some(LayerSpec::ReLU));
                groups.push(FusionGroup {
                    start: i - 1,
                    end: i + 1 + usize::from(has_relu),
                    class: FusionClass::Fusable,
                    pool_window: window,
                    rme_ratio: rme_ratio(window),
                });
            }
            (_, Some(LayerSpec::Conv { .. })) => {
                reporter.emit(
                    Code::OverlappingPoolFusion,
                    Some(Span::range(i - 1, i + 1)),
                    format!(
                        "average pool {window}/{stride} overlaps; the fused conv-pool \
                         datapath needs window == stride, so this pair runs dense"
                    ),
                );
                groups.push(FusionGroup {
                    start: i - 1,
                    end: i + 1,
                    class: FusionClass::Overlapping,
                    pool_window: window,
                    rme_ratio: 0.0,
                });
            }
            (Some(LayerSpec::Conv { .. }), Some(LayerSpec::ReLU)) if non_overlapping => {
                reporter.emit(
                    Code::ActivationBlocksFusion,
                    Some(Span::range(i - 2, i + 1)),
                    format!(
                        "ReLU sits between the conv and its {window}x{window} average \
                         pool; reordering (Section III) would expose a fusable pair \
                         saving {:.0}% of its multiplications",
                        100.0 * rme_ratio(window)
                    ),
                );
                groups.push(FusionGroup {
                    start: i - 2,
                    end: i + 1,
                    class: FusionClass::FusableAfterReorder,
                    pool_window: window,
                    rme_ratio: rme_ratio(window),
                });
            }
            _ if non_overlapping => {
                reporter.emit(
                    Code::NonConvPoolProducer,
                    Some(Span::layer(i)),
                    "non-overlapping average pool is not fed by a convolution; \
                     nothing to fuse it into",
                );
                groups.push(FusionGroup {
                    start: i,
                    end: i + 1,
                    class: FusionClass::NonConvProducer,
                    pool_window: window,
                    rme_ratio: 0.0,
                });
            }
            _ => {}
        }
    }
    groups
}

/// Count the groups of a given class.
pub fn count_class(groups: &[FusionGroup], class: FusionClass) -> usize {
    groups.iter().filter(|g| g.class == class).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(specs: &[LayerSpec]) -> (Vec<FusionGroup>, Reporter) {
        let mut r = Reporter::new();
        let g = check_fusion(specs, |_| None, &mut r);
        (g, r)
    }

    #[test]
    fn post_reorder_pair_is_fusable_with_rme() {
        let specs = vec![
            LayerSpec::conv3(8),
            LayerSpec::AvgPool {
                window: 2,
                stride: 2,
            },
            LayerSpec::ReLU,
        ];
        let (g, r) = run(&specs);
        assert!(r.is_clean(), "{}", r.pretty());
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].class, FusionClass::Fusable);
        assert_eq!((g[0].start, g[0].end), (0, 3));
        assert!((g[0].rme_ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pre_reorder_pattern_warns_f002() {
        let specs = vec![
            LayerSpec::conv3(8),
            LayerSpec::ReLU,
            LayerSpec::AvgPool {
                window: 2,
                stride: 2,
            },
        ];
        let (g, r) = run(&specs);
        assert!(r.find(Code::ActivationBlocksFusion).is_some());
        assert_eq!(g[0].class, FusionClass::FusableAfterReorder);
    }

    #[test]
    fn overlapping_pool_warns_f001() {
        let specs = vec![
            LayerSpec::conv3(8),
            LayerSpec::AvgPool {
                window: 3,
                stride: 1,
            },
        ];
        let (g, r) = run(&specs);
        assert!(r.find(Code::OverlappingPoolFusion).is_some());
        assert_eq!(g[0].class, FusionClass::Overlapping);
        assert_eq!(g[0].rme_ratio, 0.0);
    }

    #[test]
    fn orphan_pool_warns_f003() {
        let specs = vec![
            LayerSpec::Flatten,
            LayerSpec::AvgPool {
                window: 2,
                stride: 2,
            },
        ];
        let (g, r) = run(&specs);
        assert!(r.find(Code::NonConvPoolProducer).is_some());
        assert_eq!(g[0].class, FusionClass::NonConvProducer);
    }

    #[test]
    fn max_pool_is_ignored() {
        let specs = vec![
            LayerSpec::conv3(8),
            LayerSpec::MaxPool {
                window: 2,
                stride: 2,
            },
        ];
        let (g, r) = run(&specs);
        assert!(g.is_empty());
        assert!(r.is_clean());
    }

    #[test]
    fn global_pool_uses_supplied_window() {
        let specs = vec![LayerSpec::conv3(8), LayerSpec::GlobalAvgPool];
        let mut r = Reporter::new();
        let g = check_fusion(&specs, |i| (i == 1).then_some(8), &mut r);
        assert_eq!(g[0].class, FusionClass::Fusable);
        assert_eq!(g[0].pool_window, 8);
        assert!((g[0].rme_ratio - (1.0 - 1.0 / 64.0)).abs() < 1e-12);
    }

    #[test]
    fn reordered_lenet_has_two_fusable_groups() {
        use mlcnn_nn::zoo;
        let original = zoo::lenet5_spec(10);
        let (g, _) = run(&original);
        assert_eq!(count_class(&g, FusionClass::FusableAfterReorder), 2);
        assert_eq!(count_class(&g, FusionClass::Fusable), 0);
    }
}
