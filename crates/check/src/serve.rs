//! Serving-runtime configuration lints (`V0xx`).
//!
//! `mlcnn-serve` composes a bounded submission queue, a `(max_batch,
//! max_wait)` micro-batcher, and a worker pool around a compiled
//! `ExecutionPlan` — four knobs that are easy to mis-set long before any
//! request flows. As with the accelerator lints, this module takes *raw
//! scalars* rather than `mlcnn-serve` types (the serve crate sits above
//! the checker and calls in from `Service::spawn`, mirroring how
//! `FusedNetwork::compile` gates on the S/F codes).

use crate::diag::{Code, Reporter};

/// Sanity ceiling for `max_wait`: a micro-batcher holding requests longer
/// than this is almost certainly a time-unit mistake (the plan executor
/// finishes any zoo model in well under a second).
pub const MAX_WAIT_CEILING_MICROS: u64 = 1_000_000;

/// Raw view of a serving configuration for linting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfigLint {
    /// Service name, used in messages.
    pub name: String,
    /// Bounded submission-queue capacity (requests).
    pub queue_capacity: usize,
    /// Micro-batch size ceiling.
    pub max_batch: usize,
    /// Micro-batch coalescing window in microseconds.
    pub max_wait_micros: u64,
    /// Worker-thread count.
    pub workers: usize,
    /// Hardware threads the host exposes (`0` when unknown — skips the
    /// oversubscription check).
    pub available_parallelism: usize,
    /// Workspace arena bytes one worker needs at `max_batch` (from
    /// `ExecutionPlan::arena_bytes`; `0` when no plan is at hand).
    pub arena_bytes_per_worker: usize,
    /// Total arena memory budget in bytes across all workers.
    pub arena_budget_bytes: usize,
}

/// Lint one serving configuration.
pub fn check_serve_config(cfg: &ServeConfigLint, reporter: &mut Reporter) {
    reporter.with_context(cfg.name.clone(), |reporter| {
        if cfg.queue_capacity == 0 {
            reporter.emit(
                Code::ZeroQueueCapacity,
                None,
                "submission queue capacity is zero; every request would be \
                 rejected as queue-full",
            );
        }
        if cfg.max_batch == 0 {
            reporter.emit(
                Code::ZeroMaxBatch,
                None,
                "max_batch is zero; the micro-batcher could never form a batch",
            );
        }
        if cfg.workers == 0 {
            reporter.emit(
                Code::ZeroServeWorkers,
                None,
                "worker count is zero; dispatched batches would never execute",
            );
        }
        if cfg.max_wait_micros > MAX_WAIT_CEILING_MICROS {
            reporter.emit(
                Code::ExcessiveMaxWait,
                None,
                format!(
                    "max_wait of {} µs exceeds the {} µs sanity ceiling; \
                     batching delay would dominate end-to-end latency",
                    cfg.max_wait_micros, MAX_WAIT_CEILING_MICROS
                ),
            );
        }
        if cfg.available_parallelism > 0 && cfg.workers > cfg.available_parallelism {
            reporter.emit(
                Code::WorkersExceedParallelism,
                None,
                format!(
                    "{} workers on a host with {} hardware threads; the \
                     surplus only adds context switching",
                    cfg.workers, cfg.available_parallelism
                ),
            );
        }
        if cfg.max_batch > cfg.queue_capacity && cfg.queue_capacity > 0 {
            reporter.emit(
                Code::BatchExceedsQueue,
                None,
                format!(
                    "max_batch {} exceeds the queue capacity {}; a full \
                     batch can never accumulate",
                    cfg.max_batch, cfg.queue_capacity
                ),
            );
        }
        let total_arena = cfg.arena_bytes_per_worker.saturating_mul(cfg.workers);
        if cfg.arena_budget_bytes > 0 && total_arena > cfg.arena_budget_bytes {
            reporter.emit(
                Code::ArenaBudgetExceeded,
                None,
                format!(
                    "{} workers × {} arena bytes at max_batch = {} bytes, \
                     over the {} byte budget",
                    cfg.workers, cfg.arena_bytes_per_worker, total_arena, cfg.arena_budget_bytes
                ),
            );
        }
    });
}

/// [`check_serve_config`] with denial diagnostics flattened into one
/// `"; "`-joined summary — the form `mlcnn_serve::Service::spawn` embeds
/// in its error value, matching [`crate::check_compile_summary`].
pub fn check_serve_config_summary(cfg: &ServeConfigLint) -> Result<(), String> {
    let mut reporter = Reporter::new();
    check_serve_config(cfg, &mut reporter);
    if reporter.has_deny() {
        Err(reporter
            .diagnostics()
            .iter()
            .filter(|d| d.severity == crate::Severity::Deny)
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; "))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn sane() -> ServeConfigLint {
        ServeConfigLint {
            name: "svc".into(),
            queue_capacity: 256,
            max_batch: 8,
            max_wait_micros: 2_000,
            workers: 2,
            available_parallelism: 4,
            arena_bytes_per_worker: 1 << 20,
            arena_budget_bytes: 1 << 30,
        }
    }

    #[test]
    fn sane_config_is_clean() {
        let mut r = Reporter::new();
        check_serve_config(&sane(), &mut r);
        assert!(r.is_clean(), "{}", r.pretty());
        assert!(check_serve_config_summary(&sane()).is_ok());
    }

    #[test]
    fn zero_queue_capacity_is_v001() {
        let mut cfg = sane();
        cfg.queue_capacity = 0;
        let mut r = Reporter::new();
        check_serve_config(&cfg, &mut r);
        let d = r.find(Code::ZeroQueueCapacity).unwrap();
        assert_eq!(d.severity, Severity::Deny);
        // no spurious batch-exceeds-queue diagnostic rides along
        assert!(r.find(Code::BatchExceedsQueue).is_none());
    }

    #[test]
    fn zero_batch_and_workers_are_v002_v003() {
        let mut cfg = sane();
        cfg.max_batch = 0;
        cfg.workers = 0;
        let mut r = Reporter::new();
        check_serve_config(&cfg, &mut r);
        assert!(r.find(Code::ZeroMaxBatch).is_some());
        assert!(r.find(Code::ZeroServeWorkers).is_some());
        assert!(check_serve_config_summary(&cfg).is_err());
    }

    #[test]
    fn excessive_max_wait_warns_v004() {
        let mut cfg = sane();
        cfg.max_wait_micros = MAX_WAIT_CEILING_MICROS + 1;
        let mut r = Reporter::new();
        check_serve_config(&cfg, &mut r);
        let d = r.find(Code::ExcessiveMaxWait).unwrap();
        assert_eq!(d.severity, Severity::Warn);
        // warnings never fail the construction gate
        assert!(check_serve_config_summary(&cfg).is_ok());
    }

    #[test]
    fn oversubscription_warns_v005_unless_unknown() {
        let mut cfg = sane();
        cfg.workers = 16;
        let mut r = Reporter::new();
        check_serve_config(&cfg, &mut r);
        assert_eq!(
            r.find(Code::WorkersExceedParallelism).unwrap().severity,
            Severity::Warn
        );
        cfg.available_parallelism = 0;
        let mut r = Reporter::new();
        check_serve_config(&cfg, &mut r);
        assert!(r.find(Code::WorkersExceedParallelism).is_none());
    }

    #[test]
    fn batch_wider_than_queue_warns_v006() {
        let mut cfg = sane();
        cfg.max_batch = 512;
        let mut r = Reporter::new();
        check_serve_config(&cfg, &mut r);
        assert_eq!(
            r.find(Code::BatchExceedsQueue).unwrap().severity,
            Severity::Warn
        );
    }

    #[test]
    fn arena_overrun_denies_v007() {
        let mut cfg = sane();
        cfg.arena_bytes_per_worker = 1 << 30;
        cfg.workers = 4;
        cfg.available_parallelism = 4;
        cfg.arena_budget_bytes = 1 << 30;
        let mut r = Reporter::new();
        check_serve_config(&cfg, &mut r);
        let d = r.find(Code::ArenaBudgetExceeded).unwrap();
        assert_eq!(d.severity, Severity::Deny);
        assert!(check_serve_config_summary(&cfg).is_err());
    }

    #[test]
    fn v_codes_have_stable_strings() {
        assert_eq!(Code::ZeroQueueCapacity.as_str(), "V001");
        assert_eq!(Code::ZeroMaxBatch.as_str(), "V002");
        assert_eq!(Code::ZeroServeWorkers.as_str(), "V003");
        assert_eq!(Code::ExcessiveMaxWait.as_str(), "V004");
        assert_eq!(Code::WorkersExceedParallelism.as_str(), "V005");
        assert_eq!(Code::BatchExceedsQueue.as_str(), "V006");
        assert_eq!(Code::ArenaBudgetExceeded.as_str(), "V007");
    }
}
