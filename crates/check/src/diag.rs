//! The diagnostics engine: codes, severities, spans and the reporter the
//! analysis passes emit through.
//!
//! Every check in the crate reports through a [`Reporter`], so callers get a
//! uniform surface: collect, filter by severity, escalate warnings to denials
//! (`-D warnings` style), pretty-print for humans or serialize to JSON for
//! tooling. Codes are stable strings (`S###` shape, `F###` fusion, `A###`
//! accelerator, `V###` serving, `R###` registry artifacts) so tests and
//! downstream tools can match on them without parsing messages.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but legal; the artifact still builds/runs.
    Warn,
    /// Definitely broken; building or running the artifact will fail or
    /// silently compute garbage.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warning",
            Severity::Deny => "error",
        })
    }
}

/// Stable diagnostic codes. `S` = shape inference, `F` = fusion/reorder
/// legality, `A` = accelerator configuration and tiling, `V` = serving
/// runtime configuration, `R` = model-registry artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Code {
    /// S001: convolution or pooling stride of zero.
    ZeroStride,
    /// S002: zero-extent kernel, window, channel or feature count.
    ZeroExtent,
    /// S003: kernel larger than the (padded) input plane.
    KernelExceedsInput,
    /// S004: pool window larger than the input plane.
    PoolExceedsInput,
    /// S005: pool stride does not divide the input plane; trailing rows
    /// and columns are silently dropped.
    PoolNotDividing,
    /// S006: `Linear` applied to an unflattened spatial input (legal —
    /// the builder flattens implicitly — but usually a missing `Flatten`).
    LinearOnSpatial,
    /// S007: `GlobalAvgPool` on a non-square plane.
    NonSquareGlobalPool,
    /// S008: inception branches disagree on their output spatial shape.
    InceptionMismatch,
    /// S009: composite layer with no branches/empty inner pipeline.
    EmptyComposite,
    /// S010: residual main and skip branches disagree on shape.
    ResidualMismatch,
    /// S011: geometry rejected by the tensor layer for a reason not
    /// covered by a more specific code.
    BadGeometry,
    /// F001: conv followed by an *overlapping* average pool — the MLCNN
    /// fused datapath only handles `window == stride`.
    OverlappingPoolFusion,
    /// F002: `Conv → ReLU → AvgPool` — reordering the activation behind
    /// the pool (paper Section III) would expose a fusable pair.
    ActivationBlocksFusion,
    /// F003: non-overlapping average pool whose producer is not a
    /// convolution; the fused conv-pool operator cannot absorb it.
    NonConvPoolProducer,
    /// F004: composite layer (inception / dense / residual) in a pipeline
    /// meant for `FusedNetwork::compile`, which is sequential-only.
    CompositeNotCompilable,
    /// F005: `BatchNorm` must be folded into the conv weights before
    /// fused compilation.
    BatchNormNotFoldable,
    /// A001: tiling with a zero extent.
    ZeroTileExtent,
    /// A002: tiling footprint exceeds the on-chip buffer capacity.
    FootprintExceedsBuffer,
    /// A003: tile extent exceeds the layer dimension it tiles (wasteful,
    /// not wrong — the tile is clipped).
    TileExceedsLayer,
    /// A004: configuration exceeds the die area budget.
    AreaBudgetExceeded,
    /// A005: configuration exceeds the on-chip memory budget.
    BufferBudgetExceeded,
    /// A006: MAC slice count does not follow the Table VII
    /// slices-per-precision scaling.
    SliceScalingMismatch,
    /// A007: degenerate configuration (zero slices, zero buffer,
    /// non-positive clock or bandwidth).
    DegenerateConfig,
    /// A008: MLCNN datapath enabled but no AR adders to run it.
    DatapathInconsistent,
    /// V001: serving queue with zero capacity; every submission would be
    /// rejected as "queue full".
    ZeroQueueCapacity,
    /// V002: micro-batcher with `max_batch` of zero; no batch could ever
    /// be formed.
    ZeroMaxBatch,
    /// V003: serving worker pool with zero workers; batches would queue
    /// forever.
    ZeroServeWorkers,
    /// V004: micro-batch `max_wait` beyond the sanity ceiling — the
    /// batching delay would dwarf any inference this workspace runs
    /// (usually a time-unit mistake).
    ExcessiveMaxWait,
    /// V005: more serving workers than the host exposes hardware threads;
    /// the surplus only adds context switching.
    WorkersExceedParallelism,
    /// V006: `max_batch` larger than the submission queue capacity; a
    /// full batch can never accumulate.
    BatchExceedsQueue,
    /// V007: the worker workspaces for this `(workers, max_batch)` would
    /// exceed the configured arena memory budget.
    ArenaBudgetExceeded,
    /// R001: model artifact is corrupt — truncated, bad magic, unknown
    /// version, or a section/whole-file checksum mismatch.
    ArtifactCorrupt,
    /// R002: the artifact's parameter tensors disagree with the shapes its
    /// own spec list requires.
    ArtifactParamMismatch,
    /// R003: the artifact's spec list cannot be compiled into an
    /// execution plan (composite layers, unfoldable batch norm, bad
    /// geometry, or a trial compile failure).
    ArtifactIncompilable,
    /// R004: two artifacts in one registry claim the same
    /// `model@revision` identity.
    DuplicateRevision,
}

impl Code {
    /// The stable string form, e.g. `"S003"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::ZeroStride => "S001",
            Code::ZeroExtent => "S002",
            Code::KernelExceedsInput => "S003",
            Code::PoolExceedsInput => "S004",
            Code::PoolNotDividing => "S005",
            Code::LinearOnSpatial => "S006",
            Code::NonSquareGlobalPool => "S007",
            Code::InceptionMismatch => "S008",
            Code::EmptyComposite => "S009",
            Code::ResidualMismatch => "S010",
            Code::BadGeometry => "S011",
            Code::OverlappingPoolFusion => "F001",
            Code::ActivationBlocksFusion => "F002",
            Code::NonConvPoolProducer => "F003",
            Code::CompositeNotCompilable => "F004",
            Code::BatchNormNotFoldable => "F005",
            Code::ZeroTileExtent => "A001",
            Code::FootprintExceedsBuffer => "A002",
            Code::TileExceedsLayer => "A003",
            Code::AreaBudgetExceeded => "A004",
            Code::BufferBudgetExceeded => "A005",
            Code::SliceScalingMismatch => "A006",
            Code::DegenerateConfig => "A007",
            Code::DatapathInconsistent => "A008",
            Code::ZeroQueueCapacity => "V001",
            Code::ZeroMaxBatch => "V002",
            Code::ZeroServeWorkers => "V003",
            Code::ExcessiveMaxWait => "V004",
            Code::WorkersExceedParallelism => "V005",
            Code::BatchExceedsQueue => "V006",
            Code::ArenaBudgetExceeded => "V007",
            Code::ArtifactCorrupt => "R001",
            Code::ArtifactParamMismatch => "R002",
            Code::ArtifactIncompilable => "R003",
            Code::DuplicateRevision => "R004",
        }
    }

    /// The severity the code carries unless the reporter escalates it.
    pub fn default_severity(&self) -> Severity {
        match self {
            Code::PoolNotDividing
            | Code::LinearOnSpatial
            | Code::OverlappingPoolFusion
            | Code::ActivationBlocksFusion
            | Code::NonConvPoolProducer
            | Code::TileExceedsLayer
            | Code::SliceScalingMismatch
            | Code::DatapathInconsistent
            | Code::ExcessiveMaxWait
            | Code::WorkersExceedParallelism
            | Code::BatchExceedsQueue => Severity::Warn,
            _ => Severity::Deny,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Half-open range of layer indices a diagnostic refers to, within the
/// spec list handed to the pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// First layer index covered.
    pub start: usize,
    /// One past the last layer index covered.
    pub end: usize,
}

impl Span {
    /// Span covering a single layer.
    pub fn layer(i: usize) -> Self {
        Span {
            start: i,
            end: i + 1,
        }
    }

    /// Span covering layers `start..end`.
    pub fn range(start: usize, end: usize) -> Self {
        Span { start, end }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.end == self.start + 1 {
            write!(f, "layer {}", self.start)
        } else {
            write!(f, "layers {}..{}", self.start, self.end)
        }
    }
}

/// One finding of an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Effective severity (after any escalation).
    pub severity: Severity,
    /// Layers concerned, when the finding is about a spec list.
    pub layer_span: Option<Span>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(span) = self.layer_span {
            write!(f, " at {span}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Collects diagnostics from the analysis passes.
///
/// A reporter is the unit of one lint run: passes `emit` into it, callers
/// then query `has_deny` / `pretty` / `to_json`. With
/// [`Reporter::deny_warnings`] every warning is escalated to a denial, the
/// moral equivalent of `-D warnings`.
#[derive(Debug, Default, Clone)]
pub struct Reporter {
    diags: Vec<Diagnostic>,
    deny_warnings: bool,
    /// Context prefix prepended to messages (e.g. a model name or an
    /// inception-branch path), maintained by [`Reporter::with_context`].
    context: Vec<String>,
}

impl Reporter {
    /// Empty reporter with default severities.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty reporter that escalates every warning to a denial.
    pub fn deny_warnings() -> Self {
        Reporter {
            deny_warnings: true,
            ..Self::default()
        }
    }

    /// Record a finding. Severity comes from the code's default, escalated
    /// under `deny_warnings`.
    pub fn emit(&mut self, code: Code, layer_span: Option<Span>, message: impl Into<String>) {
        let mut severity = code.default_severity();
        if self.deny_warnings {
            severity = Severity::Deny;
        }
        let message = if self.context.is_empty() {
            message.into()
        } else {
            format!("{}: {}", self.context.join(": "), message.into())
        };
        self.diags.push(Diagnostic {
            code,
            severity,
            layer_span,
            message,
        });
    }

    /// Record an already-built diagnostic (e.g. returned by a `validate`
    /// wrapper), escalating its severity under `deny_warnings`.
    pub fn push(&mut self, mut diag: Diagnostic) {
        if self.deny_warnings {
            diag.severity = Severity::Deny;
        }
        self.diags.push(diag);
    }

    /// Run `f` with `label` pushed onto the message context.
    pub fn with_context<R>(
        &mut self,
        label: impl Into<String>,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        self.context.push(label.into());
        let r = f(self);
        self.context.pop();
        r
    }

    /// Every recorded diagnostic, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Consume the reporter, returning its diagnostics.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// True when no diagnostics were recorded at all.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// True when at least one denial was recorded.
    pub fn has_deny(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Deny)
    }

    /// Count of diagnostics at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// First diagnostic carrying `code`, if any.
    pub fn find(&self, code: Code) -> Option<&Diagnostic> {
        self.diags.iter().find(|d| d.code == code)
    }

    /// Absorb another reporter's diagnostics (context prefixes already
    /// baked into the messages).
    pub fn absorb(&mut self, other: Reporter) {
        self.diags.extend(other.diags);
    }

    /// Human-readable rendering, one diagnostic per line plus a summary.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.count(Severity::Deny),
            self.count(Severity::Warn)
        ));
        out
    }

    /// JSON rendering: an array of diagnostic objects. Hand-rolled — the
    /// workspace carries no JSON dependency — with full string escaping.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"severity\":\"");
            out.push_str(match d.severity {
                Severity::Warn => "warning",
                Severity::Deny => "error",
            });
            out.push_str("\",\"layer_span\":");
            match d.layer_span {
                Some(s) => out.push_str(&format!("{{\"start\":{},\"end\":{}}}", s.start, s.end)),
                None => out.push_str("null"),
            }
            out.push_str(",\"message\":\"");
            out.push_str(&escape_json(&d.message));
            out.push_str("\"}");
        }
        out.push(']');
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_have_stable_strings_and_severities() {
        assert_eq!(Code::KernelExceedsInput.as_str(), "S003");
        assert_eq!(Code::OverlappingPoolFusion.as_str(), "F001");
        assert_eq!(Code::ZeroTileExtent.as_str(), "A001");
        assert_eq!(
            Code::FootprintExceedsBuffer.default_severity(),
            Severity::Deny
        );
        assert_eq!(Code::PoolNotDividing.default_severity(), Severity::Warn);
    }

    #[test]
    fn deny_warnings_escalates() {
        let mut r = Reporter::new();
        r.emit(Code::PoolNotDividing, Some(Span::layer(2)), "drops a row");
        assert!(!r.has_deny());

        let mut r = Reporter::deny_warnings();
        r.emit(Code::PoolNotDividing, Some(Span::layer(2)), "drops a row");
        assert!(r.has_deny());
    }

    #[test]
    fn context_prefixes_messages() {
        let mut r = Reporter::new();
        r.with_context("lenet5", |r| {
            r.emit(Code::ZeroStride, Some(Span::layer(0)), "stride is zero")
        });
        assert!(r.diagnostics()[0].message.starts_with("lenet5: "));
    }

    #[test]
    fn pretty_lists_every_diag_and_a_summary() {
        let mut r = Reporter::new();
        r.emit(Code::ZeroStride, Some(Span::layer(0)), "stride is zero");
        r.emit(Code::PoolNotDividing, None, "drops a row");
        let p = r.pretty();
        assert!(p.contains("error[S001] at layer 0: stride is zero"));
        assert!(p.contains("warning[S005]: drops a row"));
        assert!(p.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_escapes_and_structures() {
        let mut r = Reporter::new();
        r.emit(
            Code::BadGeometry,
            Some(Span::range(1, 3)),
            "a \"quoted\"\nthing",
        );
        let j = r.to_json();
        assert_eq!(
            j,
            concat!(
                "[{\"code\":\"S011\",\"severity\":\"error\",",
                "\"layer_span\":{\"start\":1,\"end\":3},",
                "\"message\":\"a \\\"quoted\\\"\\nthing\"}]"
            )
        );
    }

    #[test]
    fn empty_reporter_is_clean_and_serializes() {
        let r = Reporter::new();
        assert!(r.is_clean());
        assert_eq!(r.to_json(), "[]");
    }
}
