//! The diagnostics engine: codes, severities, spans and the reporter the
//! analysis passes emit through.
//!
//! Every check in the crate reports through a [`Reporter`], so callers get a
//! uniform surface: collect, filter by severity, escalate warnings to denials
//! (`-D warnings` style), pretty-print for humans or serialize to JSON for
//! tooling. Codes are stable strings (`S###` shape, `F###` fusion, `A###`
//! accelerator, `V###` serving, `R###` registry artifacts) so tests and
//! downstream tools can match on them without parsing messages.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but legal; the artifact still builds/runs.
    Warn,
    /// Definitely broken; building or running the artifact will fail or
    /// silently compute garbage.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warning",
            Severity::Deny => "error",
        })
    }
}

/// Stable diagnostic codes. `S` = shape inference, `F` = fusion/reorder
/// legality, `A` = accelerator configuration and tiling, `V` = serving
/// runtime configuration, `R` = model-registry artifacts, `N` =
/// network front-end configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Code {
    /// S001: convolution or pooling stride of zero.
    ZeroStride,
    /// S002: zero-extent kernel, window, channel or feature count.
    ZeroExtent,
    /// S003: kernel larger than the (padded) input plane.
    KernelExceedsInput,
    /// S004: pool window larger than the input plane.
    PoolExceedsInput,
    /// S005: pool stride does not divide the input plane; trailing rows
    /// and columns are silently dropped.
    PoolNotDividing,
    /// S006: `Linear` applied to an unflattened spatial input (legal —
    /// the builder flattens implicitly — but usually a missing `Flatten`).
    LinearOnSpatial,
    /// S007: `GlobalAvgPool` on a non-square plane.
    NonSquareGlobalPool,
    /// S008: inception branches disagree on their output spatial shape.
    InceptionMismatch,
    /// S009: composite layer with no branches/empty inner pipeline.
    EmptyComposite,
    /// S010: residual main and skip branches disagree on shape.
    ResidualMismatch,
    /// S011: geometry rejected by the tensor layer for a reason not
    /// covered by a more specific code.
    BadGeometry,
    /// F001: conv followed by an *overlapping* average pool — the MLCNN
    /// fused datapath only handles `window == stride`.
    OverlappingPoolFusion,
    /// F002: `Conv → ReLU → AvgPool` — reordering the activation behind
    /// the pool (paper Section III) would expose a fusable pair.
    ActivationBlocksFusion,
    /// F003: non-overlapping average pool whose producer is not a
    /// convolution; the fused conv-pool operator cannot absorb it.
    NonConvPoolProducer,
    /// F004: composite layer (inception / dense / residual) in a pipeline
    /// meant for `FusedNetwork::compile`, which is sequential-only.
    CompositeNotCompilable,
    /// F005: `BatchNorm` must be folded into the conv weights before
    /// fused compilation.
    BatchNormNotFoldable,
    /// A001: tiling with a zero extent.
    ZeroTileExtent,
    /// A002: tiling footprint exceeds the on-chip buffer capacity.
    FootprintExceedsBuffer,
    /// A003: tile extent exceeds the layer dimension it tiles (wasteful,
    /// not wrong — the tile is clipped).
    TileExceedsLayer,
    /// A004: configuration exceeds the die area budget.
    AreaBudgetExceeded,
    /// A005: configuration exceeds the on-chip memory budget.
    BufferBudgetExceeded,
    /// A006: MAC slice count does not follow the Table VII
    /// slices-per-precision scaling.
    SliceScalingMismatch,
    /// A007: degenerate configuration (zero slices, zero buffer,
    /// non-positive clock or bandwidth).
    DegenerateConfig,
    /// A008: MLCNN datapath enabled but no AR adders to run it.
    DatapathInconsistent,
    /// V001: serving queue with zero capacity; every submission would be
    /// rejected as "queue full".
    ZeroQueueCapacity,
    /// V002: micro-batcher with `max_batch` of zero; no batch could ever
    /// be formed.
    ZeroMaxBatch,
    /// V003: serving worker pool with zero workers; batches would queue
    /// forever.
    ZeroServeWorkers,
    /// V004: micro-batch `max_wait` beyond the sanity ceiling — the
    /// batching delay would dwarf any inference this workspace runs
    /// (usually a time-unit mistake).
    ExcessiveMaxWait,
    /// V005: more serving workers than the host exposes hardware threads;
    /// the surplus only adds context switching.
    WorkersExceedParallelism,
    /// V006: `max_batch` larger than the submission queue capacity; a
    /// full batch can never accumulate.
    BatchExceedsQueue,
    /// V007: the worker workspaces for this `(workers, max_batch)` would
    /// exceed the configured arena memory budget.
    ArenaBudgetExceeded,
    /// R001: model artifact is corrupt — truncated, bad magic, unknown
    /// version, or a section/whole-file checksum mismatch.
    ArtifactCorrupt,
    /// R002: the artifact's parameter tensors disagree with the shapes its
    /// own spec list requires.
    ArtifactParamMismatch,
    /// R003: the artifact's spec list cannot be compiled into an
    /// execution plan (composite layers, unfoldable batch norm, bad
    /// geometry, or a trial compile failure).
    ArtifactIncompilable,
    /// R004: two artifacts in one registry claim the same
    /// `model@revision` identity.
    DuplicateRevision,
    /// R005: the artifact's stored layer content hashes disagree with the
    /// hashes recomputed from its decoded specs and parameters — the
    /// sections pass their CRCs individually but do not belong together.
    ArtifactHashMismatch,
    /// R006: the content-addressed dedup index maps one layer hash to two
    /// different baked segments — a hash collision or a corrupted index.
    SegmentConflict,
    /// P001: the plan's step shape chain has a gap — a step's output
    /// shape disagrees with the next step's input shape (or the chain's
    /// endpoints disagree with the plan's declared input/output).
    PlanShapeChainBroken,
    /// P002: an in-place op (ReLU/Sigmoid, or the zero-copy Flatten)
    /// aliases its buffer illegally — it claims to change the shape or
    /// element count of data it never moves.
    PlanIllegalInPlace,
    /// P003: `buf_item_len` is not the exact least upper bound of the
    /// activations the steps produce — an undersized arena (out-of-bounds
    /// writes) or silent overallocation.
    PlanArenaMismatch,
    /// P004: `cols_item_len` is not the exact least upper bound of the
    /// im2col scratch the conv steps need.
    PlanColsMismatch,
    /// P005: a step's baked parameters (weight/bias/channel profiles)
    /// disagree with its geometry — wrong weight length, truncated bias,
    /// or a channel-profile count that does not match the output channels.
    PlanParamMismatch,
    /// P006: a step's declared output shape cannot be derived from its
    /// input shape and op geometry (bad conv/pool arithmetic, zero-extent
    /// shape, flatten that changes the element count).
    PlanBadStepGeometry,
    /// P007: a step is provably dead — it can never change its input
    /// (e.g. ReLU directly after a ReLU, a fused op's ReLU, or a sigmoid).
    PlanRedundantStep,
    /// P008: size arithmetic for the plan overflows `usize` — a hostile
    /// or corrupt plan whose shape products cannot be computed, let alone
    /// allocated.
    PlanSizeOverflow,
    /// P009: `round_after` placement contradicts the plan's precision
    /// policy (FP32 never rounds; FP16 rounds every data-moving step;
    /// INT8 rounds all but the final logits).
    PlanRoundingInvalid,
    /// Q001: a step's value interval is a single point — the layer
    /// computes a compile-time constant, and INT8's dynamic activation
    /// scale degenerates (all downstream compute is wasted).
    RangeConstant,
    /// Q002: a step rounded through FP16 has a worst-case bound beyond
    /// binary16's finite range (±65504) — saturation to infinity.
    RangeFp16Overflow,
    /// Q003: a step rounded through FP16 has its entire value interval
    /// below binary16's smallest subnormal — the whole tensor collapses
    /// to zero.
    RangeFp16Underflow,
    /// Q004: a step rounded through INT8 has an interval narrower than
    /// the worst-case quantization step — the whole tensor lands on at
    /// most two grid levels (resolution collapse).
    RangeInt8Collapse,
    /// Q005: a sigmoid whose input interval lies entirely in the
    /// saturated tail — its output is constant 0 or 1 at f32.
    RangeSigmoidSaturated,
    /// N001: event-loop with zero reactor shards; no connection could
    /// ever be served.
    ZeroNetShards,
    /// N002: more reactor shards than the host exposes hardware
    /// threads; the surplus only adds context switching.
    ShardsExceedParallelism,
    /// N003: connection cap of zero; the acceptor would drop every
    /// socket.
    ZeroConnectionCap,
    /// N004: per-connection pipeline depth of zero; backpressure would
    /// pause reads before the first request.
    ZeroPipelineDepth,
    /// N005: pipeline depth beyond the sanity ceiling; one connection
    /// could monopolize its reactor and the service queue.
    ExcessivePipelineDepth,
    /// N006: pipeline depth larger than the service queue capacity; a
    /// single connection's burst alone forces queue-full rejections.
    PipelineOverrunsQueue,
    /// N007: idle timeout of zero; every connection would be reaped
    /// the moment it pauses between requests.
    ZeroIdleTimeout,
    /// N008: idle timeout beyond the epoll timeout range; the reaper
    /// could never schedule it.
    IdleTimeoutOverflow,
    /// N009: write-buffer high-watermark of zero; backpressure would
    /// serialize every connection.
    ZeroWriteBufferLimit,
    /// D001: guaranteed SLO class with no latency budget; the deadline
    /// the scheduler must enforce is undefined.
    GuaranteedWithoutBudget,
    /// D002: latency budget does not exceed the micro-batching window;
    /// a request can expire before its batch even forms.
    BudgetWithinBatchWait,
    /// D003: latency budget below the cost oracle's single-item service
    /// prediction — no schedule can meet this deadline.
    BudgetBelowServiceFloor,
    /// D004: best-effort SLO class carrying a latency budget; budgets
    /// are only enforced for guaranteed work, so it would be ignored.
    BestEffortWithBudget,
    /// D005: a full batching window plus a `max_batch` batch is
    /// predicted to exceed half the budget; queueing slack is thin and
    /// admission control will refuse aggressively.
    BudgetHeadroomThin,
}

impl Code {
    /// The stable string form, e.g. `"S003"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::ZeroStride => "S001",
            Code::ZeroExtent => "S002",
            Code::KernelExceedsInput => "S003",
            Code::PoolExceedsInput => "S004",
            Code::PoolNotDividing => "S005",
            Code::LinearOnSpatial => "S006",
            Code::NonSquareGlobalPool => "S007",
            Code::InceptionMismatch => "S008",
            Code::EmptyComposite => "S009",
            Code::ResidualMismatch => "S010",
            Code::BadGeometry => "S011",
            Code::OverlappingPoolFusion => "F001",
            Code::ActivationBlocksFusion => "F002",
            Code::NonConvPoolProducer => "F003",
            Code::CompositeNotCompilable => "F004",
            Code::BatchNormNotFoldable => "F005",
            Code::ZeroTileExtent => "A001",
            Code::FootprintExceedsBuffer => "A002",
            Code::TileExceedsLayer => "A003",
            Code::AreaBudgetExceeded => "A004",
            Code::BufferBudgetExceeded => "A005",
            Code::SliceScalingMismatch => "A006",
            Code::DegenerateConfig => "A007",
            Code::DatapathInconsistent => "A008",
            Code::ZeroQueueCapacity => "V001",
            Code::ZeroMaxBatch => "V002",
            Code::ZeroServeWorkers => "V003",
            Code::ExcessiveMaxWait => "V004",
            Code::WorkersExceedParallelism => "V005",
            Code::BatchExceedsQueue => "V006",
            Code::ArenaBudgetExceeded => "V007",
            Code::ArtifactCorrupt => "R001",
            Code::ArtifactParamMismatch => "R002",
            Code::ArtifactIncompilable => "R003",
            Code::DuplicateRevision => "R004",
            Code::ArtifactHashMismatch => "R005",
            Code::SegmentConflict => "R006",
            Code::PlanShapeChainBroken => "P001",
            Code::PlanIllegalInPlace => "P002",
            Code::PlanArenaMismatch => "P003",
            Code::PlanColsMismatch => "P004",
            Code::PlanParamMismatch => "P005",
            Code::PlanBadStepGeometry => "P006",
            Code::PlanRedundantStep => "P007",
            Code::PlanSizeOverflow => "P008",
            Code::PlanRoundingInvalid => "P009",
            Code::RangeConstant => "Q001",
            Code::RangeFp16Overflow => "Q002",
            Code::RangeFp16Underflow => "Q003",
            Code::RangeInt8Collapse => "Q004",
            Code::RangeSigmoidSaturated => "Q005",
            Code::ZeroNetShards => "N001",
            Code::ShardsExceedParallelism => "N002",
            Code::ZeroConnectionCap => "N003",
            Code::ZeroPipelineDepth => "N004",
            Code::ExcessivePipelineDepth => "N005",
            Code::PipelineOverrunsQueue => "N006",
            Code::ZeroIdleTimeout => "N007",
            Code::IdleTimeoutOverflow => "N008",
            Code::ZeroWriteBufferLimit => "N009",
            Code::GuaranteedWithoutBudget => "D001",
            Code::BudgetWithinBatchWait => "D002",
            Code::BudgetBelowServiceFloor => "D003",
            Code::BestEffortWithBudget => "D004",
            Code::BudgetHeadroomThin => "D005",
        }
    }

    /// Every code the crate can emit, in table order. New codes must be
    /// added here — the registry is what renders the DESIGN.md code table
    /// and what the uniqueness test runs over.
    pub const ALL: &'static [Code] = &[
        Code::ZeroStride,
        Code::ZeroExtent,
        Code::KernelExceedsInput,
        Code::PoolExceedsInput,
        Code::PoolNotDividing,
        Code::LinearOnSpatial,
        Code::NonSquareGlobalPool,
        Code::InceptionMismatch,
        Code::EmptyComposite,
        Code::ResidualMismatch,
        Code::BadGeometry,
        Code::OverlappingPoolFusion,
        Code::ActivationBlocksFusion,
        Code::NonConvPoolProducer,
        Code::CompositeNotCompilable,
        Code::BatchNormNotFoldable,
        Code::ZeroTileExtent,
        Code::FootprintExceedsBuffer,
        Code::TileExceedsLayer,
        Code::AreaBudgetExceeded,
        Code::BufferBudgetExceeded,
        Code::SliceScalingMismatch,
        Code::DegenerateConfig,
        Code::DatapathInconsistent,
        Code::ZeroQueueCapacity,
        Code::ZeroMaxBatch,
        Code::ZeroServeWorkers,
        Code::ExcessiveMaxWait,
        Code::WorkersExceedParallelism,
        Code::BatchExceedsQueue,
        Code::ArenaBudgetExceeded,
        Code::ArtifactCorrupt,
        Code::ArtifactParamMismatch,
        Code::ArtifactIncompilable,
        Code::DuplicateRevision,
        Code::ArtifactHashMismatch,
        Code::SegmentConflict,
        Code::PlanShapeChainBroken,
        Code::PlanIllegalInPlace,
        Code::PlanArenaMismatch,
        Code::PlanColsMismatch,
        Code::PlanParamMismatch,
        Code::PlanBadStepGeometry,
        Code::PlanRedundantStep,
        Code::PlanSizeOverflow,
        Code::PlanRoundingInvalid,
        Code::RangeConstant,
        Code::RangeFp16Overflow,
        Code::RangeFp16Underflow,
        Code::RangeInt8Collapse,
        Code::RangeSigmoidSaturated,
        Code::ZeroNetShards,
        Code::ShardsExceedParallelism,
        Code::ZeroConnectionCap,
        Code::ZeroPipelineDepth,
        Code::ExcessivePipelineDepth,
        Code::PipelineOverrunsQueue,
        Code::ZeroIdleTimeout,
        Code::IdleTimeoutOverflow,
        Code::ZeroWriteBufferLimit,
        Code::GuaranteedWithoutBudget,
        Code::BudgetWithinBatchWait,
        Code::BudgetBelowServiceFloor,
        Code::BestEffortWithBudget,
        Code::BudgetHeadroomThin,
    ];

    /// One-line description of what the code proves, for the rendered
    /// code table and tooling.
    pub fn description(&self) -> &'static str {
        match self {
            Code::ZeroStride => "convolution or pooling stride of zero",
            Code::ZeroExtent => "zero-extent kernel, window, channel or feature count",
            Code::KernelExceedsInput => "kernel larger than the (padded) input plane",
            Code::PoolExceedsInput => "pool window larger than the input plane",
            Code::PoolNotDividing => {
                "pool stride does not divide the input plane; trailing rows/columns dropped"
            }
            Code::LinearOnSpatial => "`Linear` applied to an unflattened spatial input",
            Code::NonSquareGlobalPool => "`GlobalAvgPool` on a non-square plane",
            Code::InceptionMismatch => "inception branches disagree on output spatial shape",
            Code::EmptyComposite => "composite layer with no branches or empty inner pipeline",
            Code::ResidualMismatch => "residual main and skip branches disagree on shape",
            Code::BadGeometry => "geometry rejected for a reason not covered by a specific code",
            Code::OverlappingPoolFusion => {
                "conv followed by an overlapping average pool (fusion needs window == stride)"
            }
            Code::ActivationBlocksFusion => {
                "`Conv -> ReLU -> AvgPool`; reordering would expose a fusable pair"
            }
            Code::NonConvPoolProducer => "non-overlapping average pool not produced by a conv",
            Code::CompositeNotCompilable => "composite layer in a sequential-only pipeline",
            Code::BatchNormNotFoldable => "batch norm not folded before fused compilation",
            Code::ZeroTileExtent => "tiling with a zero extent",
            Code::FootprintExceedsBuffer => "tiling footprint exceeds on-chip buffer capacity",
            Code::TileExceedsLayer => "tile extent exceeds the layer dimension it tiles",
            Code::AreaBudgetExceeded => "configuration exceeds the die area budget",
            Code::BufferBudgetExceeded => "configuration exceeds the on-chip memory budget",
            Code::SliceScalingMismatch => "MAC slice count off the slices-per-precision scaling",
            Code::DegenerateConfig => "degenerate accelerator configuration",
            Code::DatapathInconsistent => "MLCNN datapath enabled with no AR adders",
            Code::ZeroQueueCapacity => "serving queue with zero capacity",
            Code::ZeroMaxBatch => "micro-batcher with `max_batch` of zero",
            Code::ZeroServeWorkers => "serving worker pool with zero workers",
            Code::ExcessiveMaxWait => "micro-batch `max_wait` beyond the sanity ceiling",
            Code::WorkersExceedParallelism => "more serving workers than hardware threads",
            Code::BatchExceedsQueue => "`max_batch` larger than the submission queue",
            Code::ArenaBudgetExceeded => "worker workspaces exceed the arena memory budget",
            Code::ArtifactCorrupt => "model artifact corrupt (framing, magic, checksum)",
            Code::ArtifactParamMismatch => "artifact parameters disagree with its spec list",
            Code::ArtifactIncompilable => "artifact spec list cannot compile into a plan",
            Code::DuplicateRevision => "two artifacts claim the same model@revision",
            Code::ArtifactHashMismatch => "stored layer content hashes disagree with recomputed",
            Code::SegmentConflict => "dedup index maps one content hash to two segments",
            Code::PlanShapeChainBroken => "plan step shape chain has a gap",
            Code::PlanIllegalInPlace => "in-place op aliases its buffer illegally",
            Code::PlanArenaMismatch => "`buf_item_len` is not the exact activation LUB",
            Code::PlanColsMismatch => "`cols_item_len` is not the exact im2col LUB",
            Code::PlanParamMismatch => "baked parameters disagree with step geometry",
            Code::PlanBadStepGeometry => "step output shape underivable from input + op",
            Code::PlanRedundantStep => "step is provably dead (can never change its input)",
            Code::PlanSizeOverflow => "plan size arithmetic overflows usize",
            Code::PlanRoundingInvalid => "round_after placement contradicts the precision",
            Code::RangeConstant => "layer output interval is a single point (constant)",
            Code::RangeFp16Overflow => "FP16-rounded layer may exceed binary16 finite range",
            Code::RangeFp16Underflow => "FP16-rounded layer interval is entirely subnormal-zero",
            Code::RangeInt8Collapse => "INT8-rounded layer interval narrower than one grid step",
            Code::RangeSigmoidSaturated => "sigmoid input interval entirely in the saturated tail",
            Code::ZeroNetShards => "event loop with zero reactor shards",
            Code::ShardsExceedParallelism => "more reactor shards than hardware threads",
            Code::ZeroConnectionCap => "connection cap of zero; every socket dropped",
            Code::ZeroPipelineDepth => "per-connection pipeline depth of zero",
            Code::ExcessivePipelineDepth => "pipeline depth beyond the sanity ceiling",
            Code::PipelineOverrunsQueue => "pipeline depth larger than the service queue",
            Code::ZeroIdleTimeout => "idle timeout of zero reaps every pausing connection",
            Code::IdleTimeoutOverflow => "idle timeout beyond the epoll timeout range",
            Code::ZeroWriteBufferLimit => "write-buffer high-watermark of zero",
            Code::GuaranteedWithoutBudget => "guaranteed SLO class with no latency budget",
            Code::BudgetWithinBatchWait => "latency budget inside the micro-batching window",
            Code::BudgetBelowServiceFloor => {
                "budget below the oracle's single-item service prediction"
            }
            Code::BestEffortWithBudget => "best-effort SLO class carrying a latency budget",
            Code::BudgetHeadroomThin => "window plus full batch predicted over half the budget",
        }
    }

    /// The severity the code carries unless the reporter escalates it.
    pub fn default_severity(&self) -> Severity {
        match self {
            Code::PoolNotDividing
            | Code::LinearOnSpatial
            | Code::OverlappingPoolFusion
            | Code::ActivationBlocksFusion
            | Code::NonConvPoolProducer
            | Code::TileExceedsLayer
            | Code::SliceScalingMismatch
            | Code::DatapathInconsistent
            | Code::ExcessiveMaxWait
            | Code::WorkersExceedParallelism
            | Code::BatchExceedsQueue
            | Code::PlanRedundantStep
            | Code::RangeConstant
            | Code::RangeFp16Overflow
            | Code::RangeFp16Underflow
            | Code::RangeInt8Collapse
            | Code::RangeSigmoidSaturated
            | Code::ShardsExceedParallelism
            | Code::ExcessivePipelineDepth
            | Code::PipelineOverrunsQueue
            | Code::BudgetHeadroomThin => Severity::Warn,
            _ => Severity::Deny,
        }
    }
}

/// Render the full code registry as a GitHub-markdown table — the table
/// DESIGN.md embeds (a test keeps the two in sync, so the document can
/// never drift from the code).
pub fn code_table_markdown() -> String {
    let mut out =
        String::from("| Code | Default | Description |\n|------|---------|-------------|\n");
    for code in Code::ALL {
        out.push_str(&format!(
            "| {} | {} | {} |\n",
            code.as_str(),
            code.default_severity(),
            code.description()
        ));
    }
    out
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Half-open range of layer indices a diagnostic refers to, within the
/// spec list handed to the pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// First layer index covered.
    pub start: usize,
    /// One past the last layer index covered.
    pub end: usize,
}

impl Span {
    /// Span covering a single layer.
    pub fn layer(i: usize) -> Self {
        Span {
            start: i,
            end: i + 1,
        }
    }

    /// Span covering layers `start..end`.
    pub fn range(start: usize, end: usize) -> Self {
        Span { start, end }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.end == self.start + 1 {
            write!(f, "layer {}", self.start)
        } else {
            write!(f, "layers {}..{}", self.start, self.end)
        }
    }
}

/// One finding of an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Effective severity (after any escalation).
    pub severity: Severity,
    /// Layers concerned, when the finding is about a spec list.
    pub layer_span: Option<Span>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(span) = self.layer_span {
            write!(f, " at {span}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Collects diagnostics from the analysis passes.
///
/// A reporter is the unit of one lint run: passes `emit` into it, callers
/// then query `has_deny` / `pretty` / `to_json`. With
/// [`Reporter::deny_warnings`] every warning is escalated to a denial, the
/// moral equivalent of `-D warnings`.
#[derive(Debug, Default, Clone)]
pub struct Reporter {
    diags: Vec<Diagnostic>,
    deny_warnings: bool,
    /// Context prefix prepended to messages (e.g. a model name or an
    /// inception-branch path), maintained by [`Reporter::with_context`].
    context: Vec<String>,
}

impl Reporter {
    /// Empty reporter with default severities.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty reporter that escalates every warning to a denial.
    pub fn deny_warnings() -> Self {
        Reporter {
            deny_warnings: true,
            ..Self::default()
        }
    }

    /// Record a finding. Severity comes from the code's default, escalated
    /// under `deny_warnings`.
    pub fn emit(&mut self, code: Code, layer_span: Option<Span>, message: impl Into<String>) {
        let mut severity = code.default_severity();
        if self.deny_warnings {
            severity = Severity::Deny;
        }
        let message = if self.context.is_empty() {
            message.into()
        } else {
            format!("{}: {}", self.context.join(": "), message.into())
        };
        self.diags.push(Diagnostic {
            code,
            severity,
            layer_span,
            message,
        });
    }

    /// Record an already-built diagnostic (e.g. returned by a `validate`
    /// wrapper), escalating its severity under `deny_warnings`.
    pub fn push(&mut self, mut diag: Diagnostic) {
        if self.deny_warnings {
            diag.severity = Severity::Deny;
        }
        self.diags.push(diag);
    }

    /// Run `f` with `label` pushed onto the message context.
    pub fn with_context<R>(
        &mut self,
        label: impl Into<String>,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        self.context.push(label.into());
        let r = f(self);
        self.context.pop();
        r
    }

    /// Every recorded diagnostic, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Consume the reporter, returning its diagnostics.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// True when no diagnostics were recorded at all.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// True when at least one denial was recorded.
    pub fn has_deny(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Deny)
    }

    /// Count of diagnostics at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// First diagnostic carrying `code`, if any.
    pub fn find(&self, code: Code) -> Option<&Diagnostic> {
        self.diags.iter().find(|d| d.code == code)
    }

    /// Absorb another reporter's diagnostics (context prefixes already
    /// baked into the messages).
    pub fn absorb(&mut self, other: Reporter) {
        self.diags.extend(other.diags);
    }

    /// Human-readable rendering, one diagnostic per line plus a summary.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.count(Severity::Deny),
            self.count(Severity::Warn)
        ));
        out
    }

    /// JSON rendering: an array of diagnostic objects. Hand-rolled — the
    /// workspace carries no JSON dependency — with full string escaping.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"severity\":\"");
            out.push_str(match d.severity {
                Severity::Warn => "warning",
                Severity::Deny => "error",
            });
            out.push_str("\",\"layer_span\":");
            match d.layer_span {
                Some(s) => out.push_str(&format!("{{\"start\":{},\"end\":{}}}", s.start, s.end)),
                None => out.push_str("null"),
            }
            out.push_str(",\"message\":\"");
            out.push_str(&escape_json(&d.message));
            out.push_str("\"}");
        }
        out.push(']');
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_have_stable_strings_and_severities() {
        assert_eq!(Code::KernelExceedsInput.as_str(), "S003");
        assert_eq!(Code::OverlappingPoolFusion.as_str(), "F001");
        assert_eq!(Code::ZeroTileExtent.as_str(), "A001");
        assert_eq!(
            Code::FootprintExceedsBuffer.default_severity(),
            Severity::Deny
        );
        assert_eq!(Code::PoolNotDividing.default_severity(), Severity::Warn);
    }

    #[test]
    fn code_registry_is_globally_unique_with_descriptions() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for code in Code::ALL {
            let s = code.as_str();
            assert!(seen.insert(s), "duplicate diagnostic code {s}");
            assert!(
                !code.description().is_empty(),
                "{s} carries an empty description"
            );
            // the code string is family letter + 3 digits
            let (family, num) = s.split_at(1);
            assert!(
                matches!(family, "S" | "F" | "A" | "V" | "R" | "P" | "Q" | "N" | "D"),
                "{s}: unknown code family"
            );
            assert!(
                num.len() == 3 && num.chars().all(|c| c.is_ascii_digit()),
                "{s}: malformed code number"
            );
        }
    }

    #[test]
    fn design_md_embeds_the_rendered_code_table() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
        let design = std::fs::read_to_string(path).expect("DESIGN.md readable");
        let table = code_table_markdown();
        assert!(
            design.contains(&table),
            "DESIGN.md is out of sync with the diagnostic code registry; \
             regenerate its code table from `diag::code_table_markdown()`:\n{table}"
        );
    }

    #[test]
    fn deny_warnings_escalates() {
        let mut r = Reporter::new();
        r.emit(Code::PoolNotDividing, Some(Span::layer(2)), "drops a row");
        assert!(!r.has_deny());

        let mut r = Reporter::deny_warnings();
        r.emit(Code::PoolNotDividing, Some(Span::layer(2)), "drops a row");
        assert!(r.has_deny());
    }

    #[test]
    fn context_prefixes_messages() {
        let mut r = Reporter::new();
        r.with_context("lenet5", |r| {
            r.emit(Code::ZeroStride, Some(Span::layer(0)), "stride is zero")
        });
        assert!(r.diagnostics()[0].message.starts_with("lenet5: "));
    }

    #[test]
    fn pretty_lists_every_diag_and_a_summary() {
        let mut r = Reporter::new();
        r.emit(Code::ZeroStride, Some(Span::layer(0)), "stride is zero");
        r.emit(Code::PoolNotDividing, None, "drops a row");
        let p = r.pretty();
        assert!(p.contains("error[S001] at layer 0: stride is zero"));
        assert!(p.contains("warning[S005]: drops a row"));
        assert!(p.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_escapes_and_structures() {
        let mut r = Reporter::new();
        r.emit(
            Code::BadGeometry,
            Some(Span::range(1, 3)),
            "a \"quoted\"\nthing",
        );
        let j = r.to_json();
        assert_eq!(
            j,
            concat!(
                "[{\"code\":\"S011\",\"severity\":\"error\",",
                "\"layer_span\":{\"start\":1,\"end\":3},",
                "\"message\":\"a \\\"quoted\\\"\\nthing\"}]"
            )
        );
    }

    #[test]
    fn empty_reporter_is_clean_and_serializes() {
        let r = Reporter::new();
        assert!(r.is_clean());
        assert_eq!(r.to_json(), "[]");
    }
}
