//! SLO-configuration lints (`D0xx`).
//!
//! An SLO class is a promise: `guaranteed` work must finish inside its
//! latency budget, and the scheduler enforces it with admission control
//! and EDF batch formation (`mlcnn-sched` / `mlcnn-serve`). Several
//! mis-configurations make that promise unkeepable *statically* — before
//! any request flows — and this pass denies them at service construction,
//! the same way the V codes gate the batching knobs.
//!
//! As with the other serving lints, the input is raw scalars rather than
//! `mlcnn-sched` types: the sched crate sits above the checker (it
//! consumes `PlanView`), so `mlcnn-serve` flattens the oracle's
//! predictions into this view and calls in from `Service::spawn`.

use crate::diag::{Code, Reporter};

/// Raw view of one model's SLO configuration for linting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloConfigLint {
    /// Service/model name, used in messages.
    pub name: String,
    /// `true` for the `guaranteed` class, `false` for `best_effort`.
    pub guaranteed: bool,
    /// Latency budget in microseconds (`0` when no budget is attached).
    pub budget_micros: u64,
    /// Micro-batch coalescing window in microseconds.
    pub max_wait_micros: u64,
    /// Micro-batch size ceiling.
    pub max_batch: usize,
    /// Oracle-predicted service time of a single-item batch, µs.
    pub predicted_service_micros: u64,
    /// Oracle-predicted service time of a full `max_batch` batch, µs.
    pub predicted_batch_service_micros: u64,
}

/// Lint one SLO configuration.
pub fn check_slo_config(cfg: &SloConfigLint, reporter: &mut Reporter) {
    reporter.with_context(cfg.name.clone(), |reporter| {
        if cfg.guaranteed && cfg.budget_micros == 0 {
            reporter.emit(
                Code::GuaranteedWithoutBudget,
                None,
                "guaranteed class with no latency budget; the deadline the \
                 scheduler must enforce is undefined",
            );
        }
        if !cfg.guaranteed && cfg.budget_micros > 0 {
            reporter.emit(
                Code::BestEffortWithBudget,
                None,
                format!(
                    "best_effort class carries a {} µs budget; budgets are \
                     only enforced for guaranteed work, so this deadline \
                     would be silently ignored",
                    cfg.budget_micros
                ),
            );
        }
        // the remaining checks compare against the budget, so they only
        // apply when one is attached to a guaranteed class
        if !cfg.guaranteed || cfg.budget_micros == 0 {
            return;
        }
        if cfg.budget_micros <= cfg.max_wait_micros {
            reporter.emit(
                Code::BudgetWithinBatchWait,
                None,
                format!(
                    "latency budget of {} µs does not exceed the {} µs \
                     batching window; a request can expire before its batch \
                     even forms",
                    cfg.budget_micros, cfg.max_wait_micros
                ),
            );
        }
        if cfg.predicted_service_micros > 0 && cfg.budget_micros < cfg.predicted_service_micros {
            reporter.emit(
                Code::BudgetBelowServiceFloor,
                None,
                format!(
                    "latency budget of {} µs is below the oracle's {} µs \
                     single-item service prediction; no schedule can meet \
                     this deadline",
                    cfg.budget_micros, cfg.predicted_service_micros
                ),
            );
        }
        let worst = cfg
            .predicted_batch_service_micros
            .saturating_add(cfg.max_wait_micros);
        if cfg.predicted_batch_service_micros > 0 && worst > cfg.budget_micros / 2 {
            reporter.emit(
                Code::BudgetHeadroomThin,
                None,
                format!(
                    "full batching window plus a max_batch={} batch is a \
                     predicted {} µs, over half the {} µs budget; queueing \
                     slack is thin and admission will refuse aggressively",
                    cfg.max_batch, worst, cfg.budget_micros
                ),
            );
        }
    });
}

/// [`check_slo_config`] with denial diagnostics flattened into one
/// `"; "`-joined summary — the form `mlcnn_serve::Service::spawn` embeds
/// in its error value, matching [`crate::check_serve_config_summary`].
pub fn check_slo_config_summary(cfg: &SloConfigLint) -> Result<(), String> {
    let mut reporter = Reporter::new();
    check_slo_config(cfg, &mut reporter);
    if reporter.has_deny() {
        Err(reporter
            .diagnostics()
            .iter()
            .filter(|d| d.severity == crate::Severity::Deny)
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; "))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn sane() -> SloConfigLint {
        SloConfigLint {
            name: "svc".into(),
            guaranteed: true,
            budget_micros: 25_000,
            max_wait_micros: 2_000,
            max_batch: 8,
            predicted_service_micros: 900,
            predicted_batch_service_micros: 5_000,
        }
    }

    #[test]
    fn sane_config_is_clean() {
        let mut r = Reporter::new();
        check_slo_config(&sane(), &mut r);
        assert!(r.is_clean(), "{}", r.pretty());
        assert!(check_slo_config_summary(&sane()).is_ok());

        let best_effort = SloConfigLint {
            guaranteed: false,
            budget_micros: 0,
            ..sane()
        };
        let mut r = Reporter::new();
        check_slo_config(&best_effort, &mut r);
        assert!(r.is_clean(), "{}", r.pretty());
    }

    #[test]
    fn guaranteed_without_budget_denies_d001() {
        let mut cfg = sane();
        cfg.budget_micros = 0;
        let mut r = Reporter::new();
        check_slo_config(&cfg, &mut r);
        let d = r.find(Code::GuaranteedWithoutBudget).unwrap();
        assert_eq!(d.severity, Severity::Deny);
        // the budget-relative checks stay silent with no budget
        assert!(r.find(Code::BudgetWithinBatchWait).is_none());
        assert!(check_slo_config_summary(&cfg).is_err());
    }

    #[test]
    fn budget_inside_batch_window_denies_d002() {
        let mut cfg = sane();
        cfg.budget_micros = 2_000;
        cfg.predicted_service_micros = 100;
        cfg.predicted_batch_service_micros = 400;
        let mut r = Reporter::new();
        check_slo_config(&cfg, &mut r);
        let d = r.find(Code::BudgetWithinBatchWait).unwrap();
        assert_eq!(d.severity, Severity::Deny);
        assert!(check_slo_config_summary(&cfg).is_err());
    }

    #[test]
    fn budget_below_service_floor_denies_d003() {
        let mut cfg = sane();
        cfg.budget_micros = 500;
        cfg.max_wait_micros = 100;
        let mut r = Reporter::new();
        check_slo_config(&cfg, &mut r);
        let d = r.find(Code::BudgetBelowServiceFloor).unwrap();
        assert_eq!(d.severity, Severity::Deny);
        assert!(check_slo_config_summary(&cfg).is_err());
    }

    #[test]
    fn best_effort_with_budget_denies_d004() {
        let mut cfg = sane();
        cfg.guaranteed = false;
        let mut r = Reporter::new();
        check_slo_config(&cfg, &mut r);
        let d = r.find(Code::BestEffortWithBudget).unwrap();
        assert_eq!(d.severity, Severity::Deny);
        assert!(check_slo_config_summary(&cfg).is_err());
    }

    #[test]
    fn thin_headroom_warns_d005() {
        let mut cfg = sane();
        cfg.predicted_batch_service_micros = 15_000;
        let mut r = Reporter::new();
        check_slo_config(&cfg, &mut r);
        let d = r.find(Code::BudgetHeadroomThin).unwrap();
        assert_eq!(d.severity, Severity::Warn);
        // warnings never fail the construction gate
        assert!(check_slo_config_summary(&cfg).is_ok());
    }

    #[test]
    fn d_codes_have_stable_strings() {
        assert_eq!(Code::GuaranteedWithoutBudget.as_str(), "D001");
        assert_eq!(Code::BudgetWithinBatchWait.as_str(), "D002");
        assert_eq!(Code::BudgetBelowServiceFloor.as_str(), "D003");
        assert_eq!(Code::BestEffortWithBudget.as_str(), "D004");
        assert_eq!(Code::BudgetHeadroomThin.as_str(), "D005");
    }
}
