//! Quantization range analysis (`Q0xx` codes): interval propagation over
//! a [`PlanView`](crate::plan::PlanView).
//!
//! The executor's FP16/INT8 paths round activations after (almost) every
//! step — binary16 via round-to-nearest-even, INT8 via DoReFa PTQ with a
//! *dynamic* symmetric scale (`max|x| / 127`). Neither rounding can be
//! judged from the spec alone: whether a layer saturates binary16 or
//! collapses onto one INT8 grid level depends on the *value ranges*
//! flowing through it, which depend on the baked weights. This pass
//! derives those ranges statically:
//!
//! * the propagation state is one interval per *group* of contiguous
//!   elements in NCHW memory order — per channel while the tensor is
//!   spatial, per feature once a linear layer has run. A conv/linear
//!   channel maps grouped inputs through its sign-split per-group weight
//!   sums (`Σ_g pos_g·hi_g + neg_g·lo_g + b` is the tightest linear-form
//!   bound given per-group ranges — collapsing to one global `[lo, hi]`
//!   per layer compounds the widening layer over layer and flags healthy
//!   deep plans), ReLU clamps at zero, sigmoid lands in
//!   `[σ(lo), σ(hi)] ⊆ [0, 1]`, and pooling is convex (avg) or selective
//!   (max) — both preserve each group's bound;
//! * steps the plan rounds are then checked against their precision's
//!   failure modes (`Q002`–`Q004`), plus two precision-independent
//!   degeneracies (`Q001` constant layer, `Q005` saturated sigmoid);
//! * the per-step intervals are returned as a [`QRangeReport`] — the
//!   per-layer scale table a static `i8×i8→i32` requantizer needs (today
//!   the INT8 path re-derives scales dynamically per batch; the report is
//!   what lets a future kernel bake them).
//!
//! All `Q0xx` codes default to warnings: a wide interval is a *risk*
//! bound (the worst case over all inputs in the declared range), not a
//! proof that real traffic hits it.

use crate::diag::{Code, Reporter, Span};
use crate::plan::{ChannelProfile, OpView, PlanView};
use mlcnn_quant::Precision;

/// Largest finite binary16 value, as f64.
const F16_MAX: f64 = 65504.0;
/// Smallest positive binary16 subnormal (2⁻²⁴): anything strictly below
/// this in magnitude rounds to zero.
const F16_TINY: f64 = 5.960_464_477_539_063e-8;
/// Input magnitude beyond which `sigmoid` is constant at f32 resolution
/// (σ(17) rounds to exactly 1.0f32; σ(−17) ≈ 4·10⁻⁸ is below half an ulp
/// of 1 — the useful dynamic range is gone either way).
const SIGMOID_SAT: f64 = 17.0;

/// Declared input value range for the propagation. The zoo serves
/// normalized inputs, so the default is `[-1, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QRangeOptions {
    /// Smallest input value the plan will ever see.
    pub input_lo: f64,
    /// Largest input value the plan will ever see.
    pub input_hi: f64,
}

impl Default for QRangeOptions {
    fn default() -> Self {
        QRangeOptions {
            input_lo: -1.0,
            input_hi: 1.0,
        }
    }
}

/// One step's derived value interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRange {
    /// Step index in the plan.
    pub index: usize,
    /// Op name (see `OpView::name`).
    pub op: &'static str,
    /// Worst-case lower bound of the step's output values.
    pub lo: f64,
    /// Worst-case upper bound of the step's output values.
    pub hi: f64,
    /// The symmetric INT8 scale this interval implies
    /// (`max(|lo|, |hi|) / 127`) — what a static requantizer would bake
    /// for this layer.
    pub int8_scale: f64,
    /// Whether the plan rounds activations after this step.
    pub rounded: bool,
}

/// The per-layer range table [`check_qrange`] derives — consumed by the
/// bench report today and by the planned integer INT8 kernel tomorrow.
#[derive(Debug, Clone, PartialEq)]
pub struct QRangeReport {
    /// Precision of the analyzed plan.
    pub precision: Precision,
    /// Input interval the propagation assumed.
    pub input: (f64, f64),
    /// One entry per plan step, in execution order.
    pub steps: Vec<StepRange>,
}

impl QRangeReport {
    /// Render as a GitHub-markdown table (the bench report embeds this).
    pub fn markdown(&self) -> String {
        let mut out = String::from(
            "| step | op | lo | hi | int8 scale | rounded |\n\
             |------|----|----|----|------------|---------|\n",
        );
        for s in &self.steps {
            out.push_str(&format!(
                "| {} | {} | {:.6} | {:.6} | {:.6e} | {} |\n",
                s.index, s.op, s.lo, s.hi, s.int8_scale, s.rounded
            ));
        }
        out
    }

    /// JSON rendering (hand-rolled; the workspace carries no JSON dep).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"precision\":\"{}\",\"input\":[{},{}],\"steps\":[",
            self.precision, self.input.0, self.input.1
        );
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"op\":\"{}\",\"lo\":{},\"hi\":{},\
                 \"int8_scale\":{},\"rounded\":{}}}",
                s.index, s.op, s.lo, s.hi, s.int8_scale, s.rounded
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The propagation state: one interval per contiguous run of
/// `group_len` elements, in NCHW memory order. Spatial tensors group by
/// channel (`group_len` = plane size), linear outputs by feature
/// (`group_len` = 1). Invariant between steps:
/// `groups.len() · group_len` = the tensor's element count; whenever a
/// (hostile) view breaks it, the state collapses to its hull — sound,
/// just looser.
struct GroupState {
    groups: Vec<(f64, f64)>,
    group_len: usize,
}

impl GroupState {
    /// Global `[lo, hi]` over all groups.
    fn hull(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(l, h) in &self.groups {
            lo = lo.min(l);
            hi = hi.max(h);
        }
        if self.groups.is_empty() {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    fn elements(&self) -> Option<usize> {
        self.groups.len().checked_mul(self.group_len)
    }

    /// Widen to a single group spanning `elements` elements.
    fn collapse(&mut self, elements: usize) {
        let hull = self.hull();
        self.groups = vec![hull];
        self.group_len = elements.max(1);
    }

    fn map(&mut self, f: impl Fn(f64) -> f64) {
        for g in self.groups.iter_mut() {
            *g = (f(g.0), f(g.1));
        }
    }
}

/// Interval image of one conv/linear channel over the grouped state.
///
/// When the channel's per-input-group aggregates line up with the state
/// (`per_feature`: one group per input *feature*, matched by index into
/// the state's groups; otherwise one group per input *channel*, matched
/// one-to-one), the bound sums each group through its own sign-split
/// weights. On any mismatch — a `P005` finding the dataflow pass
/// reports — it degrades to the channel's global aggregate over the
/// state's hull.
fn channel_image(ch: &ChannelProfile, state: &GroupState, per_feature: bool) -> (f64, f64) {
    let aligned = if per_feature {
        state.elements() == Some(ch.per_input.len())
    } else {
        state.groups.len() == ch.per_input.len()
    };
    if aligned {
        let mut lo = ch.bias as f64;
        let mut hi = ch.bias as f64;
        for (g, &(p, n)) in ch.per_input.iter().enumerate() {
            let idx = if per_feature { g / state.group_len } else { g };
            let (gl, gh) = state.groups[idx];
            lo += p as f64 * gl + n as f64 * gh;
            hi += p as f64 * gh + n as f64 * gl;
        }
        (lo, hi)
    } else {
        let (gl, gh) = state.hull();
        let (pos, neg, b) = (ch.pos as f64, ch.neg as f64, ch.bias as f64);
        (pos * gl + neg * gh + b, pos * gh + neg * gl + b)
    }
}

/// Map a whole channel set; `None` when the view carries no channel
/// profiles (a `P005` mismatch — this pass degrades gracefully).
fn channels_image(
    channels: &[ChannelProfile],
    state: &GroupState,
    per_feature: bool,
    relu: bool,
) -> Option<Vec<(f64, f64)>> {
    if channels.is_empty() {
        return None;
    }
    Some(
        channels
            .iter()
            .map(|ch| {
                let (mut lo, mut hi) = channel_image(ch, state, per_feature);
                if relu {
                    lo = lo.max(0.0);
                    hi = hi.max(0.0);
                }
                (lo, hi)
            })
            .collect(),
    )
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Propagate value intervals through the plan, emitting `Q0xx`
/// diagnostics into `reporter` and returning the per-layer range table.
pub fn check_qrange(
    view: &PlanView,
    opts: &QRangeOptions,
    reporter: &mut Reporter,
) -> QRangeReport {
    let (in_lo, in_hi) = (
        opts.input_lo.min(opts.input_hi),
        opts.input_lo.max(opts.input_hi),
    );
    let mut state = GroupState {
        groups: vec![(in_lo, in_hi); view.input_shape.c.max(1)],
        group_len: view.input_shape.h.saturating_mul(view.input_shape.w).max(1),
    };
    let mut steps = Vec::with_capacity(view.steps.len());

    for (i, step) in view.steps.iter().enumerate() {
        let span = Some(Span::layer(i));

        // re-anchor the state against the step's declared input: a view
        // with a broken shape chain (P001's business) degrades to hulls
        if let Some(n) = step.in_shape.checked_len() {
            if state.elements() != Some(n) {
                state.collapse(n);
            }
        }

        let mut constant_candidate = false; // only parameterized compute steps
        match &step.op {
            OpView::Conv { channels, .. } => {
                if let Some(groups) = channels_image(channels, &state, false, false) {
                    state.groups = groups;
                    state.group_len = step.out_shape.h.saturating_mul(step.out_shape.w).max(1);
                }
                constant_candidate = true;
            }
            OpView::Fused { channels, relu, .. } => {
                // conv channels → avg-pool (convex: preserves each
                // channel's bound) → optional ReLU clamp
                if let Some(groups) = channels_image(channels, &state, false, *relu) {
                    state.groups = groups;
                    state.group_len = step.out_shape.h.saturating_mul(step.out_shape.w).max(1);
                }
                constant_candidate = true;
            }
            OpView::Linear { channels, .. } => {
                if let Some(groups) = channels_image(channels, &state, true, false) {
                    state.groups = groups;
                    state.group_len = 1;
                }
                constant_candidate = true;
            }
            OpView::ReLU => state.map(|x| x.max(0.0)),
            OpView::Sigmoid => {
                let (lo, hi) = state.hull();
                if lo >= SIGMOID_SAT || hi <= -SIGMOID_SAT {
                    reporter.emit(
                        Code::RangeSigmoidSaturated,
                        span,
                        format!(
                            "step {i}: sigmoid input interval [{lo:.3}, {hi:.3}] lies \
                             entirely in the saturated tail; the output is effectively \
                             constant {}",
                            if lo >= SIGMOID_SAT { 1 } else { 0 }
                        ),
                    );
                }
                state.map(sigmoid);
            }
            // avg-pool is a convex combination, max-pool a selection;
            // both keep each channel's values inside its interval.
            // Flatten moves nothing — the grouping survives it.
            OpView::AvgPool { .. } | OpView::MaxPool { .. } => {
                state.group_len = step.out_shape.h.saturating_mul(step.out_shape.w).max(1);
            }
            OpView::Flatten => {}
        }

        let (lo, hi) = state.hull();
        if constant_candidate && hi == lo {
            reporter.emit(
                Code::RangeConstant,
                span,
                format!(
                    "step {i} ({}) always computes the constant {lo}; the layer (and \
                     everything it feeds) is wasted compute, and INT8's dynamic scale \
                     degenerates on it",
                    step.op.name()
                ),
            );
        }

        if step.round_after {
            let mag = lo.abs().max(hi.abs());
            match view.precision {
                Precision::Fp32 => {} // P009's business, not ours
                Precision::Fp16 => {
                    if mag > F16_MAX {
                        reporter.emit(
                            Code::RangeFp16Overflow,
                            span,
                            format!(
                                "step {i} ({}) can reach magnitude {mag:.3e}, beyond \
                                 binary16's finite range (±{F16_MAX}); worst-case inputs \
                                 saturate to infinity",
                                step.op.name()
                            ),
                        );
                    } else if mag > 0.0 && mag < F16_TINY {
                        reporter.emit(
                            Code::RangeFp16Underflow,
                            span,
                            format!(
                                "step {i} ({}) is confined to [{lo:.3e}, {hi:.3e}], \
                                 entirely below binary16's smallest subnormal \
                                 ({F16_TINY:.3e}); the whole tensor rounds to zero",
                                step.op.name()
                            ),
                        );
                    }
                }
                Precision::Int8 => {
                    // dynamic symmetric PTQ: worst-case grid step is
                    // max|x| / 127
                    let width = hi - lo;
                    let grid = mag / 127.0;
                    if width > 0.0 && grid > 0.0 && width < grid {
                        reporter.emit(
                            Code::RangeInt8Collapse,
                            span,
                            format!(
                                "step {i} ({}) spans only {width:.3e} but sits at \
                                 magnitude {mag:.3e}; under the dynamic scale \
                                 (max|x|/127 = {grid:.3e}) the whole tensor lands on at \
                                 most two grid levels",
                                step.op.name()
                            ),
                        );
                    }
                }
            }
        }

        steps.push(StepRange {
            index: i,
            op: step.op.name(),
            lo,
            hi,
            int8_scale: lo.abs().max(hi.abs()) / 127.0,
            rounded: step.round_after,
        });
    }

    QRangeReport {
        precision: view.precision,
        input: (opts.input_lo, opts.input_hi),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ParamProfile, StepView};
    use mlcnn_tensor::Shape4;

    /// One linear step `1 → 1` with a single weight `w` and bias `b`.
    fn linear_view(precision: Precision, w: f32, b: f32, round_after: bool) -> PlanView {
        PlanView {
            precision,
            input_shape: Shape4::new(1, 1, 1, 1),
            output_shape: Shape4::new(1, 1, 1, 1),
            buf_item_len: 1,
            cols_item_len: 0,
            steps: vec![StepView {
                op: OpView::Linear {
                    in_features: 1,
                    out_features: 1,
                    weight: ParamProfile::of(&[w]),
                    bias: ParamProfile::of(&[b]),
                    channels: vec![ChannelProfile::of(&[w], b)],
                },
                in_shape: Shape4::new(1, 1, 1, 1),
                out_shape: Shape4::new(1, 1, 1, 1),
                round_after,
            }],
        }
    }

    fn run(view: &PlanView, opts: &QRangeOptions) -> (Reporter, QRangeReport) {
        let mut r = Reporter::new();
        let report = check_qrange(view, opts, &mut r);
        (r, report)
    }

    #[test]
    fn linear_interval_image_is_tight() {
        // w = 2, b = 1 over [-1, 1] → [-1, 3]
        let v = linear_view(Precision::Fp32, 2.0, 1.0, false);
        let (r, report) = run(&v, &QRangeOptions::default());
        assert!(r.is_clean(), "{}", r.pretty());
        assert_eq!((report.steps[0].lo, report.steps[0].hi), (-1.0, 3.0));
        assert!((report.steps[0].int8_scale - 3.0 / 127.0).abs() < 1e-12);
    }

    #[test]
    fn relu_clamps_and_sigmoid_brackets() {
        let mut v = linear_view(Precision::Fp32, 2.0, 1.0, false);
        v.steps.push(StepView {
            op: OpView::ReLU,
            in_shape: Shape4::new(1, 1, 1, 1),
            out_shape: Shape4::new(1, 1, 1, 1),
            round_after: false,
        });
        v.steps.push(StepView {
            op: OpView::Sigmoid,
            in_shape: Shape4::new(1, 1, 1, 1),
            out_shape: Shape4::new(1, 1, 1, 1),
            round_after: false,
        });
        let (r, report) = run(&v, &QRangeOptions::default());
        assert!(r.is_clean(), "{}", r.pretty());
        assert_eq!((report.steps[1].lo, report.steps[1].hi), (0.0, 3.0));
        let s = &report.steps[2];
        assert!(s.lo >= 0.0 && s.hi <= 1.0 && s.lo < s.hi);
    }

    #[test]
    fn constant_layer_is_q001() {
        let v = linear_view(Precision::Fp32, 0.0, 0.5, false);
        let (r, _) = run(&v, &QRangeOptions::default());
        assert!(r.find(Code::RangeConstant).is_some(), "{}", r.pretty());
    }

    #[test]
    fn fp16_overflow_is_q002_only_when_rounded_at_fp16() {
        // gain 1e6 over [-1, 1] blows past 65504…
        let v = linear_view(Precision::Fp16, 1.0e6, 0.0, true);
        let (r, _) = run(&v, &QRangeOptions::default());
        assert!(r.find(Code::RangeFp16Overflow).is_some(), "{}", r.pretty());
        assert!(!r.has_deny(), "Q codes are warnings");

        // …but the same plan at FP32 never rounds, so nothing fires
        let v = linear_view(Precision::Fp32, 1.0e6, 0.0, false);
        let (r, _) = run(&v, &QRangeOptions::default());
        assert!(r.is_clean(), "{}", r.pretty());
    }

    #[test]
    fn fp16_subnormal_collapse_is_q003() {
        let v = linear_view(Precision::Fp16, 1.0e-9, 0.0, true);
        let (r, _) = run(&v, &QRangeOptions::default());
        assert!(r.find(Code::RangeFp16Underflow).is_some(), "{}", r.pretty());
    }

    #[test]
    fn int8_narrow_offset_interval_is_q004() {
        // w = 0.001, b = 100 over [-1, 1] → [99.999, 100.001]: width 2e-3,
        // grid ≈ 0.79 — everything lands on one level
        let v = linear_view(Precision::Int8, 1.0e-3, 100.0, true);
        let (r, _) = run(&v, &QRangeOptions::default());
        assert!(r.find(Code::RangeInt8Collapse).is_some(), "{}", r.pretty());
    }

    #[test]
    fn saturated_sigmoid_is_q005() {
        let mut v = linear_view(Precision::Fp32, 1.0, 20.0, false);
        v.steps.push(StepView {
            op: OpView::Sigmoid,
            in_shape: Shape4::new(1, 1, 1, 1),
            out_shape: Shape4::new(1, 1, 1, 1),
            round_after: false,
        });
        let (r, report) = run(&v, &QRangeOptions::default());
        assert!(
            r.find(Code::RangeSigmoidSaturated).is_some(),
            "{}",
            r.pretty()
        );
        assert_eq!(report.steps[1].hi, 1.0f64.min(report.steps[1].hi));
    }

    #[test]
    fn report_renders_markdown_and_json() {
        let v = linear_view(Precision::Fp32, 2.0, 1.0, false);
        let (_, report) = run(&v, &QRangeOptions::default());
        let md = report.markdown();
        assert!(md.contains("| 0 | linear |"));
        let json = report.to_json();
        assert!(json.starts_with("{\"precision\":\"FP32\""), "{json}");
        assert!(json.contains("\"op\":\"linear\""));
    }
}
