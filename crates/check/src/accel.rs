//! Accelerator configuration and tiling lints (paper Table VII and the
//! ⟨Tm,Tn,Tr,Tc⟩ dataflow of Section VI).
//!
//! This module deliberately takes *raw scalars* rather than `mlcnn-accel`
//! types: the accelerator crate sits above the checker in the dependency
//! order (it calls into the checker from its simulators), so the checker
//! cannot name its types. `mlcnn_accel::AcceleratorConfig::validate` and
//! `mlcnn_accel::Tiling::validate` are thin adapters over these
//! functions.

use crate::diag::{Code, Reporter};

/// Raw view of an accelerator configuration for linting.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelConfigLint {
    /// Configuration name, used in messages.
    pub name: String,
    /// Operand width in bytes.
    pub bytes_per_element: usize,
    /// MAC slice count.
    pub mac_slices: usize,
    /// Expected slice count for this precision
    /// (`base_slices × slice_multiplier`, Table VII scaling).
    pub expected_slices: usize,
    /// AR adders per slice.
    pub ar_adders_per_slice: usize,
    /// Fused-datapath hardware present.
    pub mlcnn_datapath: bool,
    /// Off-chip bandwidth, bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// On-chip buffer in kB.
    pub buffer_kb: usize,
    /// Die area in mm².
    pub area_mm2: f64,
    /// Area budget the config must fit (Table VII: 1.52 mm²).
    pub area_budget_mm2: f64,
    /// Buffer budget the config must fit (Table VII: 134 kB).
    pub buffer_budget_kb: usize,
}

/// Lint one accelerator configuration.
pub fn check_accel_config(cfg: &AccelConfigLint, reporter: &mut Reporter) {
    reporter.with_context(cfg.name.clone(), |reporter| {
        if cfg.mac_slices == 0 {
            reporter.emit(Code::DegenerateConfig, None, "zero MAC slices");
        }
        if cfg.buffer_kb == 0 {
            reporter.emit(Code::DegenerateConfig, None, "zero on-chip buffer");
        }
        if cfg.bytes_per_element == 0 {
            reporter.emit(Code::DegenerateConfig, None, "zero-byte operand width");
        }
        if cfg.freq_mhz <= 0.0 || cfg.freq_mhz.is_nan() {
            reporter.emit(
                Code::DegenerateConfig,
                None,
                format!("non-positive clock {} MHz", cfg.freq_mhz),
            );
        }
        if cfg.dram_bytes_per_cycle <= 0.0 || cfg.dram_bytes_per_cycle.is_nan() {
            reporter.emit(
                Code::DegenerateConfig,
                None,
                format!(
                    "non-positive DRAM bandwidth {} B/cycle",
                    cfg.dram_bytes_per_cycle
                ),
            );
        }
        if cfg.area_mm2 > cfg.area_budget_mm2 {
            reporter.emit(
                Code::AreaBudgetExceeded,
                None,
                format!(
                    "area {:.3} mm² exceeds the {:.3} mm² budget",
                    cfg.area_mm2, cfg.area_budget_mm2
                ),
            );
        }
        if cfg.buffer_kb > cfg.buffer_budget_kb {
            reporter.emit(
                Code::BufferBudgetExceeded,
                None,
                format!(
                    "buffer {} kB exceeds the {} kB budget",
                    cfg.buffer_kb, cfg.buffer_budget_kb
                ),
            );
        }
        if cfg.mac_slices != 0 && cfg.mac_slices != cfg.expected_slices {
            reporter.emit(
                Code::SliceScalingMismatch,
                None,
                format!(
                    "{} MAC slices, but the Table VII slices-per-precision \
                     scaling gives {}",
                    cfg.mac_slices, cfg.expected_slices
                ),
            );
        }
        if cfg.mlcnn_datapath && cfg.ar_adders_per_slice == 0 {
            reporter.emit(
                Code::DatapathInconsistent,
                None,
                "MLCNN datapath enabled but the config has no AR adders",
            );
        }
    });
}

/// Raw view of a tiling decision for linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingLint {
    /// Output-channel tile extent.
    pub tm: usize,
    /// Input-channel tile extent.
    pub tn: usize,
    /// Output-row tile extent.
    pub tr: usize,
    /// Output-column tile extent.
    pub tc: usize,
    /// Layer kernel extent.
    pub k: usize,
    /// Layer stride.
    pub stride: usize,
    /// Buffer capacity in elements at the machine's precision.
    pub capacity_elements: usize,
    /// Layer extents `(M, N, R, C)` when known, for the
    /// tile-exceeds-layer check.
    pub layer_extents: Option<(usize, usize, usize, usize)>,
}

/// The on-chip footprint of a tile, with saturating arithmetic so that a
/// degenerate tile reads as "does not fit" instead of wrapping.
pub fn tile_footprint_elements(t: &TilingLint) -> usize {
    if t.tm == 0 || t.tn == 0 || t.tr == 0 || t.tc == 0 {
        return usize::MAX;
    }
    let in_h = t.stride.saturating_mul(t.tr - 1).saturating_add(t.k);
    let in_w = t.stride.saturating_mul(t.tc - 1).saturating_add(t.k);
    let in_tile = t.tn.saturating_mul(in_h).saturating_mul(in_w);
    let w_tile =
        t.tm.saturating_mul(t.tn)
            .saturating_mul(t.k)
            .saturating_mul(t.k);
    let out_tile = t.tm.saturating_mul(t.tr).saturating_mul(t.tc);
    in_tile.saturating_add(w_tile).saturating_add(out_tile)
}

/// Lint one tiling against its layer and buffer.
pub fn check_tiling(t: &TilingLint, reporter: &mut Reporter) {
    let extents = [("Tm", t.tm), ("Tn", t.tn), ("Tr", t.tr), ("Tc", t.tc)];
    let mut degenerate = false;
    for (name, v) in extents {
        if v == 0 {
            degenerate = true;
            reporter.emit(
                Code::ZeroTileExtent,
                None,
                format!("tile extent {name} is zero"),
            );
        }
    }
    if degenerate {
        // the footprint of a zero tile is meaningless; stop here
        return;
    }
    let footprint = tile_footprint_elements(t);
    if footprint > t.capacity_elements {
        reporter.emit(
            Code::FootprintExceedsBuffer,
            None,
            format!(
                "tile ⟨{},{},{},{}⟩ needs {footprint} elements on chip, \
                 buffer holds {}",
                t.tm, t.tn, t.tr, t.tc, t.capacity_elements
            ),
        );
    }
    if let Some((m, n, r, c)) = t.layer_extents {
        for (name, tile, layer) in [
            ("Tm", t.tm, m),
            ("Tn", t.tn, n),
            ("Tr", t.tr, r),
            ("Tc", t.tc, c),
        ] {
            if tile > layer {
                reporter.emit(
                    Code::TileExceedsLayer,
                    None,
                    format!("tile extent {name}={tile} exceeds the layer's {layer}"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn table7_like(name: &str, mult: usize) -> AccelConfigLint {
        AccelConfigLint {
            name: name.into(),
            bytes_per_element: 4 / mult.clamp(1, 4),
            mac_slices: 32 * mult,
            expected_slices: 32 * mult,
            ar_adders_per_slice: 2,
            mlcnn_datapath: true,
            dram_bytes_per_cycle: 12.0,
            freq_mhz: 500.0,
            buffer_kb: 134,
            area_mm2: 1.52,
            area_budget_mm2: 1.52,
            buffer_budget_kb: 134,
        }
    }

    #[test]
    fn table7_shaped_config_is_clean() {
        for (name, mult) in [("fp32", 1), ("fp16", 2), ("int8", 4)] {
            let mut r = Reporter::new();
            check_accel_config(&table7_like(name, mult), &mut r);
            assert!(r.is_clean(), "{name}: {}", r.pretty());
        }
    }

    #[test]
    fn budget_overruns_are_a004_a005() {
        let mut cfg = table7_like("big", 1);
        cfg.area_mm2 = 2.0;
        cfg.buffer_kb = 256;
        let mut r = Reporter::new();
        check_accel_config(&cfg, &mut r);
        assert!(r.find(Code::AreaBudgetExceeded).is_some());
        assert!(r.find(Code::BufferBudgetExceeded).is_some());
        assert!(r.has_deny());
    }

    #[test]
    fn slice_scaling_mismatch_warns_a006() {
        let mut cfg = table7_like("odd", 2);
        cfg.mac_slices = 48;
        let mut r = Reporter::new();
        check_accel_config(&cfg, &mut r);
        let d = r.find(Code::SliceScalingMismatch).unwrap();
        assert_eq!(d.severity, Severity::Warn);
    }

    #[test]
    fn degenerate_config_is_a007() {
        let mut cfg = table7_like("dead", 1);
        cfg.mac_slices = 0;
        cfg.freq_mhz = 0.0;
        let mut r = Reporter::new();
        check_accel_config(&cfg, &mut r);
        assert!(r.find(Code::DegenerateConfig).is_some());
        assert!(r.has_deny());
    }

    #[test]
    fn datapath_without_adders_warns_a008() {
        let mut cfg = table7_like("no-ar", 1);
        cfg.ar_adders_per_slice = 0;
        let mut r = Reporter::new();
        check_accel_config(&cfg, &mut r);
        assert_eq!(
            r.find(Code::DatapathInconsistent).unwrap().severity,
            Severity::Warn
        );
    }

    fn tiling(tm: usize, tn: usize, tr: usize, tc: usize, cap: usize) -> TilingLint {
        TilingLint {
            tm,
            tn,
            tr,
            tc,
            k: 3,
            stride: 1,
            capacity_elements: cap,
            layer_extents: None,
        }
    }

    #[test]
    fn zero_extent_tiling_is_a001() {
        let mut r = Reporter::new();
        check_tiling(&tiling(4, 0, 8, 8, 1 << 20), &mut r);
        let d = r.find(Code::ZeroTileExtent).unwrap();
        assert_eq!(d.severity, Severity::Deny);
        // and no spurious footprint diagnostic rides along
        assert!(r.find(Code::FootprintExceedsBuffer).is_none());
    }

    #[test]
    fn oversized_footprint_is_a002() {
        // ⟨4,2,8,8⟩ at k=3,s=1 needs 200+72+256 = 528 elements
        let mut r = Reporter::new();
        check_tiling(&tiling(4, 2, 8, 8, 527), &mut r);
        assert!(r.find(Code::FootprintExceedsBuffer).is_some());
        let mut r = Reporter::new();
        check_tiling(&tiling(4, 2, 8, 8, 528), &mut r);
        assert!(r.is_clean());
    }

    #[test]
    fn tile_exceeding_layer_warns_a003() {
        let mut t = tiling(64, 2, 8, 8, 1 << 20);
        t.layer_extents = Some((32, 2, 8, 8));
        let mut r = Reporter::new();
        check_tiling(&t, &mut r);
        assert_eq!(
            r.find(Code::TileExceedsLayer).unwrap().severity,
            Severity::Warn
        );
    }

    #[test]
    fn footprint_saturates_instead_of_wrapping() {
        let t = tiling(usize::MAX, usize::MAX, usize::MAX, usize::MAX, 100);
        assert_eq!(tile_footprint_elements(&t), usize::MAX);
        let z = tiling(0, 1, 1, 1, 100);
        assert_eq!(tile_footprint_elements(&z), usize::MAX);
    }
}
