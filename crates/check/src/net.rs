//! Network front-end configuration lints (`N0xx`).
//!
//! `mlcnn-net` composes sharded epoll reactors, per-connection request
//! pipelining, a global connection cap, and idle timeouts around a
//! `Dispatch` backend — knobs that interact with the serving queue and
//! the host's core count in ways that are easy to mis-set long before
//! any socket opens. As with the `V0xx` serving lints, this module
//! takes *raw scalars* rather than `mlcnn-net` types (the net crate
//! sits above the checker and calls in from `NetServer::spawn`,
//! mirroring the `Service::spawn` construction gate).

use crate::diag::{Code, Reporter};

/// Sanity ceiling for per-connection pipelining depth: beyond this a
/// single connection can monopolize a reactor's decode loop and the
/// service queue; real clients pipeline a handful to a few dozen.
pub const PIPELINE_CEILING: usize = 1024;

/// Idle-timeout ceiling in milliseconds: `epoll_wait` takes a C `int`
/// of milliseconds, so anything above this cannot be scheduled.
pub const IDLE_TIMEOUT_CEILING_MILLIS: u64 = i32::MAX as u64;

/// Raw view of an event-driven network configuration for linting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfigLint {
    /// Server name, used in messages.
    pub name: String,
    /// Reactor shard (event-loop thread) count.
    pub shards: usize,
    /// Hardware threads the host exposes (`0` when unknown — skips the
    /// oversubscription check).
    pub available_parallelism: usize,
    /// Global cap on concurrently open connections.
    pub max_connections: usize,
    /// Most in-flight pipelined requests one connection may hold before
    /// its reads are paused (backpressure).
    pub max_pipeline: usize,
    /// The backend service's bounded submission-queue capacity (`0`
    /// when unknown — skips the queue-interaction check).
    pub queue_capacity: usize,
    /// Idle-connection timeout in milliseconds.
    pub idle_timeout_millis: u64,
    /// Write-buffer high-watermark in bytes; a connection whose
    /// unflushed responses exceed it has its reads paused.
    pub write_buffer_limit: usize,
}

/// Lint one network front-end configuration.
pub fn check_net_config(cfg: &NetConfigLint, reporter: &mut Reporter) {
    reporter.with_context(cfg.name.clone(), |reporter| {
        if cfg.shards == 0 {
            reporter.emit(
                Code::ZeroNetShards,
                None,
                "reactor shard count is zero; no event loop would ever run",
            );
        }
        if cfg.available_parallelism > 0 && cfg.shards > cfg.available_parallelism {
            reporter.emit(
                Code::ShardsExceedParallelism,
                None,
                format!(
                    "{} reactor shards on a host with {} hardware threads; \
                     the surplus only adds context switching and cross-shard \
                     cache traffic",
                    cfg.shards, cfg.available_parallelism
                ),
            );
        }
        if cfg.max_connections == 0 {
            reporter.emit(
                Code::ZeroConnectionCap,
                None,
                "connection cap is zero; the acceptor would drop every socket",
            );
        }
        if cfg.max_pipeline == 0 {
            reporter.emit(
                Code::ZeroPipelineDepth,
                None,
                "pipeline depth is zero; a connection could never hold an \
                 in-flight request, deadlocking reads against backpressure",
            );
        }
        if cfg.max_pipeline > PIPELINE_CEILING {
            reporter.emit(
                Code::ExcessivePipelineDepth,
                None,
                format!(
                    "pipeline depth {} exceeds the {} sanity ceiling; one \
                     connection could monopolize its reactor and the service \
                     queue",
                    cfg.max_pipeline, PIPELINE_CEILING
                ),
            );
        }
        if cfg.queue_capacity > 0 && cfg.max_pipeline > cfg.queue_capacity {
            reporter.emit(
                Code::PipelineOverrunsQueue,
                None,
                format!(
                    "pipeline depth {} exceeds the service queue capacity {}; \
                     a single connection's burst alone forces queue-full \
                     rejections",
                    cfg.max_pipeline, cfg.queue_capacity
                ),
            );
        }
        if cfg.idle_timeout_millis == 0 {
            reporter.emit(
                Code::ZeroIdleTimeout,
                None,
                "idle timeout is zero; every connection would be reaped the \
                 moment it pauses between requests",
            );
        }
        if cfg.idle_timeout_millis > IDLE_TIMEOUT_CEILING_MILLIS {
            reporter.emit(
                Code::IdleTimeoutOverflow,
                None,
                format!(
                    "idle timeout of {} ms overflows the epoll timeout range \
                     ({} ms); the reaper could never schedule it",
                    cfg.idle_timeout_millis, IDLE_TIMEOUT_CEILING_MILLIS
                ),
            );
        }
        if cfg.write_buffer_limit == 0 {
            reporter.emit(
                Code::ZeroWriteBufferLimit,
                None,
                "write-buffer high-watermark is zero; backpressure would pause \
                 reads after every response, serializing the connection",
            );
        }
    });
}

/// [`check_net_config`] with denial diagnostics flattened into one
/// `"; "`-joined summary — the form `mlcnn_net::NetServer::spawn`
/// embeds in its error value, matching [`crate::check_serve_config_summary`].
pub fn check_net_config_summary(cfg: &NetConfigLint) -> Result<(), String> {
    let mut reporter = Reporter::new();
    check_net_config(cfg, &mut reporter);
    if reporter.has_deny() {
        Err(reporter
            .diagnostics()
            .iter()
            .filter(|d| d.severity == crate::Severity::Deny)
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; "))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn sane() -> NetConfigLint {
        NetConfigLint {
            name: "net".into(),
            shards: 2,
            available_parallelism: 4,
            max_connections: 10_000,
            max_pipeline: 64,
            queue_capacity: 4096,
            idle_timeout_millis: 60_000,
            write_buffer_limit: 1 << 20,
        }
    }

    #[test]
    fn sane_config_is_clean() {
        let mut r = Reporter::new();
        check_net_config(&sane(), &mut r);
        assert!(r.is_clean(), "{}", r.pretty());
        assert!(check_net_config_summary(&sane()).is_ok());
    }

    #[test]
    fn zero_shards_denies_n001() {
        let mut cfg = sane();
        cfg.shards = 0;
        let mut r = Reporter::new();
        check_net_config(&cfg, &mut r);
        assert_eq!(
            r.find(Code::ZeroNetShards).unwrap().severity,
            Severity::Deny
        );
        assert!(check_net_config_summary(&cfg).is_err());
    }

    #[test]
    fn shard_oversubscription_warns_n002_unless_unknown() {
        let mut cfg = sane();
        cfg.shards = 16;
        let mut r = Reporter::new();
        check_net_config(&cfg, &mut r);
        assert_eq!(
            r.find(Code::ShardsExceedParallelism).unwrap().severity,
            Severity::Warn
        );
        // warnings never fail the gate
        assert!(check_net_config_summary(&cfg).is_ok());
        cfg.available_parallelism = 0;
        let mut r = Reporter::new();
        check_net_config(&cfg, &mut r);
        assert!(r.find(Code::ShardsExceedParallelism).is_none());
    }

    #[test]
    fn zero_cap_and_pipeline_deny_n003_n004() {
        let mut cfg = sane();
        cfg.max_connections = 0;
        cfg.max_pipeline = 0;
        let mut r = Reporter::new();
        check_net_config(&cfg, &mut r);
        assert!(r.find(Code::ZeroConnectionCap).is_some());
        assert!(r.find(Code::ZeroPipelineDepth).is_some());
        assert!(check_net_config_summary(&cfg).is_err());
    }

    #[test]
    fn pipeline_bounds_warn_n005_n006() {
        let mut cfg = sane();
        cfg.max_pipeline = PIPELINE_CEILING + 1;
        let mut r = Reporter::new();
        check_net_config(&cfg, &mut r);
        assert_eq!(
            r.find(Code::ExcessivePipelineDepth).unwrap().severity,
            Severity::Warn
        );

        let mut cfg = sane();
        cfg.max_pipeline = cfg.queue_capacity + 1;
        let mut r = Reporter::new();
        check_net_config(&cfg, &mut r);
        assert_eq!(
            r.find(Code::PipelineOverrunsQueue).unwrap().severity,
            Severity::Warn
        );
        // unknown queue capacity skips the interaction check
        cfg.queue_capacity = 0;
        let mut r = Reporter::new();
        check_net_config(&cfg, &mut r);
        assert!(r.find(Code::PipelineOverrunsQueue).is_none());
    }

    #[test]
    fn idle_timeout_zero_and_overflow_deny_n007_n008() {
        let mut cfg = sane();
        cfg.idle_timeout_millis = 0;
        let mut r = Reporter::new();
        check_net_config(&cfg, &mut r);
        assert_eq!(
            r.find(Code::ZeroIdleTimeout).unwrap().severity,
            Severity::Deny
        );

        let mut cfg = sane();
        cfg.idle_timeout_millis = IDLE_TIMEOUT_CEILING_MILLIS + 1;
        let mut r = Reporter::new();
        check_net_config(&cfg, &mut r);
        assert_eq!(
            r.find(Code::IdleTimeoutOverflow).unwrap().severity,
            Severity::Deny
        );
        assert!(check_net_config_summary(&cfg).is_err());
    }

    #[test]
    fn zero_write_buffer_denies_n009() {
        let mut cfg = sane();
        cfg.write_buffer_limit = 0;
        let mut r = Reporter::new();
        check_net_config(&cfg, &mut r);
        assert_eq!(
            r.find(Code::ZeroWriteBufferLimit).unwrap().severity,
            Severity::Deny
        );
    }

    #[test]
    fn n_codes_have_stable_strings() {
        assert_eq!(Code::ZeroNetShards.as_str(), "N001");
        assert_eq!(Code::ShardsExceedParallelism.as_str(), "N002");
        assert_eq!(Code::ZeroConnectionCap.as_str(), "N003");
        assert_eq!(Code::ZeroPipelineDepth.as_str(), "N004");
        assert_eq!(Code::ExcessivePipelineDepth.as_str(), "N005");
        assert_eq!(Code::PipelineOverrunsQueue.as_str(), "N006");
        assert_eq!(Code::ZeroIdleTimeout.as_str(), "N007");
        assert_eq!(Code::IdleTimeoutOverflow.as_str(), "N008");
        assert_eq!(Code::ZeroWriteBufferLimit.as_str(), "N009");
    }
}
