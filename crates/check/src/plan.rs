//! Plan dataflow verifier (`P0xx` codes): symbolic execution of a
//! compiled `ExecutionPlan` over an abstract ping-pong workspace.
//!
//! PR 2 made the execution plan the single artifact every serving path
//! runs blindly — once compiled, nothing re-checks it. This pass closes
//! that gap: it walks a [`PlanView`] (the read-only introspection surface
//! `mlcnn_core::ExecutionPlan::view` exports) and proves, step by step,
//! the invariants the executor's safe-Rust but unchecked slice
//! arithmetic relies on:
//!
//! * **Shape chain** (`P001`): `step[i].out_shape == step[i+1].in_shape`,
//!   anchored at the plan's declared input and output shapes — the
//!   ping-pong buffers hand data between steps with no copies, so a
//!   single gap means a step reads another step's stale bytes.
//! * **In-place legality** (`P002`): ReLU/Sigmoid run *in place* on the
//!   current buffer and Flatten moves no data; each is legal only if it
//!   provably preserves what it aliases (shape, resp. element count).
//! * **Arena bounds** (`P003`/`P004`): `buf_item_len` and `cols_item_len`
//!   must be the *exact* least upper bounds of what the steps touch — an
//!   undersized arena is an out-of-bounds write at run time, an oversized
//!   one silently wastes `workers × batch` multiples of memory.
//! * **Parameter agreement** (`P005`): every baked weight/bias length
//!   must match the step's geometry, so a registry artifact cannot
//!   smuggle a truncated bias past compile.
//! * **Step geometry** (`P006`) and **rounding placement** (`P009`):
//!   each step's output shape is re-derived from its input shape and op,
//!   and the `round_after` flags are checked against the precision's
//!   rounding policy.
//! * **Dead steps** (`P007` warn) and **size overflow** (`P008`): a step
//!   that provably cannot change its input, and any shape/arena product
//!   that leaves `usize` (all arithmetic here is checked — hostile plans
//!   cannot crash the verifier, let alone the executor).
//!
//! The companion pass in [`crate::qrange`] propagates value intervals
//! over the same view.

use crate::diag::{Code, Reporter, Span};
use mlcnn_quant::Precision;
use mlcnn_tensor::Shape4;

/// Length and value range of one baked parameter tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamProfile {
    /// Element count of the baked tensor.
    pub len: usize,
    /// Smallest element value.
    pub min: f32,
    /// Largest element value.
    pub max: f32,
}

impl ParamProfile {
    /// Profile a slice (empty slices profile as `[0, 0]`).
    pub fn of(xs: &[f32]) -> Self {
        let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in xs {
            min = min.min(v);
            max = max.max(v);
        }
        if xs.is_empty() {
            min = 0.0;
            max = 0.0;
        }
        ParamProfile {
            len: xs.len(),
            min,
            max,
        }
    }
}

/// Per-output-channel weight aggregates: exactly what interval
/// propagation needs, without carrying the weights themselves.
///
/// For output channel `c`, the weights are sign-split *per input group*
/// (per input channel for conv, per input feature for linear): an input
/// whose group `g` carries the interval `[lo_g, hi_g]` contributes
/// `[pos_g·lo_g + neg_g·hi_g, pos_g·hi_g + neg_g·lo_g]`, and the channel's
/// output interval is the sum over groups plus the bias — the tightest
/// linear-form bound given per-group input ranges. (Summing the groups
/// first and using one global input interval is the same formula with
/// every `[lo_g, hi_g]` widened to the global hull; keeping the groups is
/// what stops deep plans from compounding that widening layer over
/// layer.)
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelProfile {
    /// Sum of the channel's positive weights (≥ 0), all groups.
    pub pos: f32,
    /// Sum of the channel's negative weights (≤ 0), all groups.
    pub neg: f32,
    /// The channel's bias term.
    pub bias: f32,
    /// `(pos, neg)` sign-split sums per input group, in input order.
    pub per_input: Vec<(f32, f32)>,
}

impl ChannelProfile {
    /// Aggregate one channel treating all its weights as a single input
    /// group.
    pub fn of(weights: &[f32], bias: f32) -> Self {
        Self::grouped(weights, 1, bias)
    }

    /// Aggregate one channel's weights split into `groups` equal
    /// contiguous chunks (conv: one chunk of `k²` taps per input channel;
    /// linear: one single-weight chunk per input feature). Falls back to
    /// a single group when `groups` does not divide the weight count.
    pub fn grouped(weights: &[f32], groups: usize, bias: f32) -> Self {
        let groups = if groups == 0 || !weights.len().is_multiple_of(groups) {
            1
        } else {
            groups
        };
        let per = weights.len() / groups.max(1);
        let mut per_input = Vec::with_capacity(groups);
        let (mut pos, mut neg) = (0.0_f32, 0.0_f32);
        for g in 0..groups {
            let (mut gp, mut gn) = (0.0_f32, 0.0_f32);
            for &w in &weights[g * per..(g + 1) * per] {
                if w > 0.0 {
                    gp += w;
                } else {
                    gn += w;
                }
            }
            pos += gp;
            neg += gn;
            per_input.push((gp, gn));
        }
        ChannelProfile {
            pos,
            neg,
            bias,
            per_input,
        }
    }
}

/// The op of one plan step, reduced to what static analysis needs.
#[derive(Debug, Clone, PartialEq)]
pub enum OpView {
    /// MLCNN fused conv + non-overlapping avg-pool (+ ReLU) group.
    Fused {
        /// Square kernel extent.
        k: usize,
        /// Convolution stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Pool window == pool stride.
        pool: usize,
        /// Whether the group ends in ReLU.
        relu: bool,
        /// Baked weight tensor profile (`out_c·in_c·k²` elements).
        weight: ParamProfile,
        /// Baked bias profile (`out_c` elements).
        bias: ParamProfile,
        /// One aggregate per output channel.
        channels: Vec<ChannelProfile>,
    },
    /// Plain convolution (im2col + GEMM).
    Conv {
        /// Square kernel extent.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Baked weight tensor profile (`out_c·in_c·k²` elements).
        weight: ParamProfile,
        /// Baked bias profile (`out_c` elements).
        bias: ParamProfile,
        /// One aggregate per output channel.
        channels: Vec<ChannelProfile>,
    },
    /// ReLU, in place.
    ReLU,
    /// Sigmoid, in place.
    Sigmoid,
    /// Average pooling.
    AvgPool {
        /// Window extent (square).
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Max pooling.
    MaxPool {
        /// Window extent (square).
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Flatten: shape bookkeeping only, no data movement.
    Flatten,
    /// Fully connected layer (weight pre-transposed at compile).
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Baked (transposed) weight profile (`in·out` elements).
        weight: ParamProfile,
        /// Baked bias profile (`out` elements).
        bias: ParamProfile,
        /// One aggregate per output feature.
        channels: Vec<ChannelProfile>,
    },
}

impl OpView {
    /// Short op name for messages and reports.
    pub fn name(&self) -> &'static str {
        match self {
            OpView::Fused { .. } => "fused-conv-pool",
            OpView::Conv { .. } => "conv",
            OpView::ReLU => "relu",
            OpView::Sigmoid => "sigmoid",
            OpView::AvgPool { .. } => "avg-pool",
            OpView::MaxPool { .. } => "max-pool",
            OpView::Flatten => "flatten",
            OpView::Linear { .. } => "linear",
        }
    }
}

/// One step of the plan: op plus declared per-item shapes and rounding.
#[derive(Debug, Clone, PartialEq)]
pub struct StepView {
    /// The op.
    pub op: OpView,
    /// Declared per-item input shape (batch dim 1).
    pub in_shape: Shape4,
    /// Declared per-item output shape (batch dim 1).
    pub out_shape: Shape4,
    /// Whether the precision's activation rounding runs after this step.
    pub round_after: bool,
}

/// Read-only introspection surface of a compiled `ExecutionPlan` — the
/// input of the `P0xx`/`Q0xx` passes, built by
/// `mlcnn_core::ExecutionPlan::view`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanView {
    /// Numeric precision the plan was compiled at.
    pub precision: Precision,
    /// Declared single-item input shape.
    pub input_shape: Shape4,
    /// Declared single-item output shape.
    pub output_shape: Shape4,
    /// Declared largest per-item activation buffer (elements).
    pub buf_item_len: usize,
    /// Declared largest per-item im2col scratch (elements).
    pub cols_item_len: usize,
    /// The executable steps, in order.
    pub steps: Vec<StepView>,
}

/// `n·c·h·w` through checked arithmetic; `None` when the product leaves
/// `usize`.
fn checked_len(s: Shape4) -> Option<usize> {
    s.checked_len()
}

/// Derived conv-style output extent `(in + 2·pad − k)/stride + 1`, all
/// checked; `None` on zero stride, overflow, or a kernel that does not
/// fit the padded input.
fn conv_out_extent(input: usize, k: usize, stride: usize, pad: usize) -> Option<usize> {
    if stride == 0 || k == 0 {
        return None;
    }
    let padded = input.checked_add(pad.checked_mul(2)?)?;
    if k > padded {
        return None;
    }
    Some((padded - k) / stride + 1)
}

/// The exact least upper bounds (`buf_item_len`, `cols_item_len`) the
/// steps require; `None` when any size product overflows (`P008`).
pub fn expected_arena(view: &PlanView) -> Option<(usize, usize)> {
    let mut buf = checked_len(view.input_shape)?;
    let mut cols = 0usize;
    for step in &view.steps {
        buf = buf.max(checked_len(step.out_shape)?);
        if let OpView::Conv { k, .. } = step.op {
            let taps = k.checked_mul(k)?;
            let out_len = step.out_shape.h.checked_mul(step.out_shape.w)?;
            let need = step.in_shape.c.checked_mul(taps)?.checked_mul(out_len)?;
            cols = cols.max(need);
        }
    }
    Some((buf, cols))
}

/// Run the dataflow verifier over a plan view, emitting `P0xx`
/// diagnostics into `reporter`. Spans index the plan's *steps* (not the
/// source spec list — fusion collapses spec groups into one step).
pub fn check_plan(view: &PlanView, reporter: &mut Reporter) {
    // ---- shape chain (P001), anchored at the declared endpoints ----
    let mut prev = view.input_shape;
    for (i, step) in view.steps.iter().enumerate() {
        if step.in_shape != prev {
            reporter.emit(
                Code::PlanShapeChainBroken,
                Some(Span::layer(i)),
                format!(
                    "step {i} ({}) consumes {} but the chain carries {prev}",
                    step.op.name(),
                    step.in_shape
                ),
            );
        }
        prev = step.out_shape;
    }
    if prev != view.output_shape {
        reporter.emit(
            Code::PlanShapeChainBroken,
            Some(Span::layer(view.steps.len().saturating_sub(1))),
            format!(
                "chain ends at {prev} but the plan declares output {}",
                view.output_shape
            ),
        );
    }

    // ---- per-step geometry, aliasing, parameters ----
    for (i, step) in view.steps.iter().enumerate() {
        check_step(i, step, reporter);
    }

    // ---- dead steps (P007): ops that provably cannot change data ----
    let mut prev_caps_at_zero = false; // output provably ≥ 0
    for (i, step) in view.steps.iter().enumerate() {
        match step.op {
            OpView::ReLU if prev_caps_at_zero => {
                reporter.emit(
                    Code::PlanRedundantStep,
                    Some(Span::layer(i)),
                    "ReLU over an input already proven nonnegative; the step is dead",
                );
            }
            _ => {}
        }
        prev_caps_at_zero = match step.op {
            OpView::ReLU | OpView::Sigmoid => true,
            OpView::Fused { relu, .. } => relu,
            // pooling preserves nonnegativity; flatten moves nothing
            OpView::AvgPool { .. } | OpView::MaxPool { .. } | OpView::Flatten => prev_caps_at_zero,
            OpView::Conv { .. } | OpView::Linear { .. } => false,
        };
    }

    // ---- arena bounds (P003/P004), overflow (P008) ----
    match expected_arena(view) {
        None => reporter.emit(
            Code::PlanSizeOverflow,
            None,
            "plan size arithmetic overflows usize; the arena cannot be sized",
        ),
        Some((buf, cols)) => {
            if view.buf_item_len != buf {
                let kind = if view.buf_item_len < buf {
                    "undersized arena (out-of-bounds writes at run time)"
                } else {
                    "silent overallocation"
                };
                reporter.emit(
                    Code::PlanArenaMismatch,
                    None,
                    format!(
                        "buf_item_len is {} but the exact least upper bound is {buf}: {kind}",
                        view.buf_item_len
                    ),
                );
            }
            if view.cols_item_len != cols {
                let kind = if view.cols_item_len < cols {
                    "undersized im2col scratch"
                } else {
                    "silent overallocation"
                };
                reporter.emit(
                    Code::PlanColsMismatch,
                    None,
                    format!(
                        "cols_item_len is {} but the exact least upper bound is {cols}: {kind}",
                        view.cols_item_len
                    ),
                );
            }
        }
    }

    // ---- rounding placement (P009) ----
    check_rounding(view, reporter);
}

/// Geometry, aliasing and parameter checks for one step.
fn check_step(i: usize, step: &StepView, reporter: &mut Reporter) {
    let span = Some(Span::layer(i));
    let name = step.op.name();
    let (in_len, out_len) = match (checked_len(step.in_shape), checked_len(step.out_shape)) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            reporter.emit(
                Code::PlanSizeOverflow,
                span,
                format!("step {i} ({name}): shape element count overflows usize"),
            );
            return;
        }
    };
    if in_len == 0 || out_len == 0 {
        reporter.emit(
            Code::PlanBadStepGeometry,
            span,
            format!(
                "step {i} ({name}): zero-element shape ({} -> {})",
                step.in_shape, step.out_shape
            ),
        );
        return;
    }
    if step.in_shape.n != 1 || step.out_shape.n != 1 {
        reporter.emit(
            Code::PlanBadStepGeometry,
            span,
            format!("step {i} ({name}): per-item shapes must have batch dim 1"),
        );
    }

    let expect_out = |reporter: &mut Reporter, want: Option<Shape4>| match want {
        Some(want) if want == step.out_shape => {}
        Some(want) => reporter.emit(
            Code::PlanBadStepGeometry,
            span,
            format!(
                "step {i} ({name}): declared output {} but geometry derives {want}",
                step.out_shape
            ),
        ),
        None => reporter.emit(
            Code::PlanBadStepGeometry,
            span,
            format!(
                "step {i} ({name}): output shape underivable from input {} (degenerate \
                 geometry or overflow)",
                step.in_shape
            ),
        ),
    };

    match &step.op {
        OpView::ReLU | OpView::Sigmoid => {
            // in place on the current ping-pong buffer: aliasing is legal
            // only when the step provably changes nothing about the layout
            if step.in_shape != step.out_shape {
                reporter.emit(
                    Code::PlanIllegalInPlace,
                    span,
                    format!(
                        "step {i} ({name}) runs in place but declares {} -> {}",
                        step.in_shape, step.out_shape
                    ),
                );
            }
        }
        OpView::Flatten => {
            if in_len != out_len {
                reporter.emit(
                    Code::PlanIllegalInPlace,
                    span,
                    format!(
                        "step {i} (flatten) moves no data but declares {in_len} -> {out_len} \
                         elements"
                    ),
                );
            }
            expect_out(reporter, Some(Shape4::new(1, 1, 1, in_len)));
        }
        OpView::Conv {
            k,
            stride,
            pad,
            weight,
            bias,
            channels,
        } => {
            let out_h = conv_out_extent(step.in_shape.h, *k, *stride, *pad);
            let out_w = conv_out_extent(step.in_shape.w, *k, *stride, *pad);
            expect_out(
                reporter,
                match (out_h, out_w) {
                    (Some(h), Some(w)) => Some(Shape4::new(1, step.out_shape.c, h, w)),
                    _ => None,
                },
            );
            check_conv_params(i, name, step, *k, weight, bias, channels, reporter);
        }
        OpView::Fused {
            k,
            stride,
            pad,
            pool,
            weight,
            bias,
            channels,
            ..
        } => {
            let conv_h = conv_out_extent(step.in_shape.h, *k, *stride, *pad);
            let conv_w = conv_out_extent(step.in_shape.w, *k, *stride, *pad);
            let pooled = |conv: Option<usize>| -> Option<usize> {
                let conv = conv?;
                if *pool == 0 || *pool > conv {
                    return None;
                }
                Some((conv - pool) / pool + 1)
            };
            expect_out(
                reporter,
                match (pooled(conv_h), pooled(conv_w)) {
                    (Some(h), Some(w)) => Some(Shape4::new(1, step.out_shape.c, h, w)),
                    _ => None,
                },
            );
            check_conv_params(i, name, step, *k, weight, bias, channels, reporter);
        }
        OpView::AvgPool { window, stride } | OpView::MaxPool { window, stride } => {
            let out = |input: usize| -> Option<usize> {
                if *stride == 0 || *window == 0 || *window > input {
                    return None;
                }
                Some((input - window) / stride + 1)
            };
            expect_out(
                reporter,
                match (out(step.in_shape.h), out(step.in_shape.w)) {
                    (Some(h), Some(w)) => Some(Shape4::new(1, step.in_shape.c, h, w)),
                    _ => None,
                },
            );
        }
        OpView::Linear {
            in_features,
            out_features,
            weight,
            bias,
            channels,
        } => {
            if *in_features != in_len {
                reporter.emit(
                    Code::PlanParamMismatch,
                    span,
                    format!(
                        "step {i} (linear): in_features {} but the input carries {in_len} \
                         elements",
                        in_features
                    ),
                );
            }
            expect_out(reporter, Some(Shape4::new(1, 1, 1, *out_features)));
            let want_w = in_features.checked_mul(*out_features);
            match want_w {
                None => reporter.emit(
                    Code::PlanSizeOverflow,
                    span,
                    format!("step {i} (linear): in×out weight length overflows usize"),
                ),
                Some(want) if weight.len != want => reporter.emit(
                    Code::PlanParamMismatch,
                    span,
                    format!(
                        "step {i} (linear): weight holds {} elements, geometry requires {want}",
                        weight.len
                    ),
                ),
                _ => {}
            }
            if bias.len != *out_features {
                reporter.emit(
                    Code::PlanParamMismatch,
                    span,
                    format!(
                        "step {i} (linear): bias holds {} entries, geometry requires {}",
                        bias.len, out_features
                    ),
                );
            }
            if channels.len() != *out_features {
                reporter.emit(
                    Code::PlanParamMismatch,
                    span,
                    format!(
                        "step {i} (linear): {} channel profiles for {} output features",
                        channels.len(),
                        out_features
                    ),
                );
            } else if let Some(ch) = channels
                .iter()
                .find(|ch| ch.per_input.len() != *in_features)
            {
                reporter.emit(
                    Code::PlanParamMismatch,
                    span,
                    format!(
                        "step {i} (linear): a channel profile splits its weights into {} \
                         input groups, geometry requires {} (one per input feature)",
                        ch.per_input.len(),
                        in_features
                    ),
                );
            }
        }
    }
}

/// Conv/fused weight+bias agreement with the step geometry (`P005`).
#[allow(clippy::too_many_arguments)]
fn check_conv_params(
    i: usize,
    name: &str,
    step: &StepView,
    k: usize,
    weight: &ParamProfile,
    bias: &ParamProfile,
    channels: &[ChannelProfile],
    reporter: &mut Reporter,
) {
    let span = Some(Span::layer(i));
    let want = step
        .out_shape
        .c
        .checked_mul(step.in_shape.c)
        .and_then(|x| x.checked_mul(k))
        .and_then(|x| x.checked_mul(k));
    match want {
        None => reporter.emit(
            Code::PlanSizeOverflow,
            span,
            format!("step {i} ({name}): weight length overflows usize"),
        ),
        Some(want) if weight.len != want => reporter.emit(
            Code::PlanParamMismatch,
            span,
            format!(
                "step {i} ({name}): weight holds {} elements, geometry \
                 {}x{}x{k}x{k} requires {want}",
                weight.len, step.out_shape.c, step.in_shape.c
            ),
        ),
        _ => {}
    }
    if bias.len != step.out_shape.c {
        reporter.emit(
            Code::PlanParamMismatch,
            span,
            format!(
                "step {i} ({name}): bias holds {} entries, geometry requires {} \
                 (one per output channel)",
                bias.len, step.out_shape.c
            ),
        );
    }
    if channels.len() != step.out_shape.c {
        reporter.emit(
            Code::PlanParamMismatch,
            span,
            format!(
                "step {i} ({name}): {} channel profiles for {} output channels",
                channels.len(),
                step.out_shape.c
            ),
        );
    } else if let Some(ch) = channels
        .iter()
        .find(|ch| ch.per_input.len() != step.in_shape.c)
    {
        reporter.emit(
            Code::PlanParamMismatch,
            span,
            format!(
                "step {i} ({name}): a channel profile splits its weights into {} input \
                 groups, geometry requires {} (one per input channel)",
                ch.per_input.len(),
                step.in_shape.c
            ),
        );
    }
}

/// `round_after` placement against the precision policy (`P009`).
///
/// Mirrors `ExecutionPlan::compile`: FP32 never rounds; FP16 rounds every
/// step except Flatten (which moves no data); INT8 rounds every
/// non-Flatten step except the plan's last (DoReFa leaves the logits
/// unquantized — unless the source spec list ended in a compiled-away
/// no-op such as Dropout, so the *last* step is allowed either way).
fn check_rounding(view: &PlanView, reporter: &mut Reporter) {
    let last = view.steps.len().saturating_sub(1);
    for (i, step) in view.steps.iter().enumerate() {
        let flat = matches!(step.op, OpView::Flatten);
        let want = match view.precision {
            Precision::Fp32 => Some(false),
            Precision::Fp16 => Some(!flat),
            Precision::Int8 => {
                if flat {
                    Some(false)
                } else if i == last {
                    None // either placement compiles legally; see docs
                } else {
                    Some(true)
                }
            }
        };
        if let Some(want) = want {
            if step.round_after != want {
                reporter.emit(
                    Code::PlanRoundingInvalid,
                    Some(Span::layer(i)),
                    format!(
                        "step {i} ({}) has round_after={} but the {} policy requires {}",
                        step.op.name(),
                        step.round_after,
                        view.precision,
                        want
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Reporter;

    /// A hand-built valid two-step view: conv 1→2 ch 3x3 on 4x4 (pad 1),
    /// then relu.
    fn tiny_view() -> PlanView {
        let conv_w = vec![0.1_f32; 2 * 9];
        let conv_b = vec![0.0_f32; 2];
        PlanView {
            precision: Precision::Fp32,
            input_shape: Shape4::new(1, 1, 4, 4),
            output_shape: Shape4::new(1, 2, 4, 4),
            buf_item_len: 32,
            cols_item_len: 9 * 16,
            steps: vec![
                StepView {
                    op: OpView::Conv {
                        k: 3,
                        stride: 1,
                        pad: 1,
                        weight: ParamProfile::of(&conv_w),
                        bias: ParamProfile::of(&conv_b),
                        channels: (0..2)
                            .map(|c| ChannelProfile::of(&conv_w[c * 9..(c + 1) * 9], conv_b[c]))
                            .collect(),
                    },
                    in_shape: Shape4::new(1, 1, 4, 4),
                    out_shape: Shape4::new(1, 2, 4, 4),
                    round_after: false,
                },
                StepView {
                    op: OpView::ReLU,
                    in_shape: Shape4::new(1, 2, 4, 4),
                    out_shape: Shape4::new(1, 2, 4, 4),
                    round_after: false,
                },
            ],
        }
    }

    fn run(view: &PlanView) -> Reporter {
        let mut r = Reporter::new();
        check_plan(view, &mut r);
        r
    }

    #[test]
    fn valid_view_is_clean() {
        let r = run(&tiny_view());
        assert!(r.is_clean(), "{}", r.pretty());
    }

    #[test]
    fn broken_shape_link_is_p001() {
        let mut v = tiny_view();
        v.steps[1].in_shape = Shape4::new(1, 3, 4, 4);
        let r = run(&v);
        assert!(
            r.find(Code::PlanShapeChainBroken).is_some(),
            "{}",
            r.pretty()
        );
    }

    #[test]
    fn in_place_shape_change_is_p002() {
        let mut v = tiny_view();
        v.steps[1].out_shape = Shape4::new(1, 2, 2, 8);
        let r = run(&v);
        assert!(r.find(Code::PlanIllegalInPlace).is_some(), "{}", r.pretty());
    }

    #[test]
    fn undersized_and_oversized_arena_are_p003() {
        for bad in [16, 33] {
            let mut v = tiny_view();
            v.buf_item_len = bad;
            let r = run(&v);
            assert!(r.find(Code::PlanArenaMismatch).is_some(), "{}", r.pretty());
        }
    }

    #[test]
    fn wrong_cols_scratch_is_p004() {
        let mut v = tiny_view();
        v.cols_item_len = 0;
        let r = run(&v);
        assert!(r.find(Code::PlanColsMismatch).is_some(), "{}", r.pretty());
    }

    #[test]
    fn truncated_bias_is_p005() {
        let mut v = tiny_view();
        if let OpView::Conv { bias, .. } = &mut v.steps[0].op {
            bias.len = 1;
        }
        let r = run(&v);
        assert!(r.find(Code::PlanParamMismatch).is_some(), "{}", r.pretty());
    }

    #[test]
    fn underivable_output_is_p006() {
        let mut v = tiny_view();
        v.steps[0].out_shape = Shape4::new(1, 2, 3, 4);
        v.steps[1].in_shape = Shape4::new(1, 2, 3, 4);
        v.steps[1].out_shape = Shape4::new(1, 2, 3, 4);
        v.output_shape = Shape4::new(1, 2, 3, 4);
        v.buf_item_len = 24;
        v.cols_item_len = 9 * 12;
        let r = run(&v);
        assert!(
            r.find(Code::PlanBadStepGeometry).is_some(),
            "{}",
            r.pretty()
        );
    }

    #[test]
    fn double_relu_is_p007_warning() {
        let mut v = tiny_view();
        let relu = v.steps[1].clone();
        v.steps.push(relu);
        let r = run(&v);
        let d = r.find(Code::PlanRedundantStep).expect("P007 expected");
        assert_eq!(d.severity, crate::Severity::Warn);
        assert!(!r.has_deny(), "{}", r.pretty());
    }

    #[test]
    fn overflowing_shape_is_p008() {
        let mut v = tiny_view();
        v.steps[0].out_shape = Shape4::new(1, usize::MAX, usize::MAX, 2);
        let r = run(&v);
        assert!(r.find(Code::PlanSizeOverflow).is_some(), "{}", r.pretty());
    }

    #[test]
    fn flipped_round_after_is_p009() {
        // FP32: any rounding is wrong
        let mut v = tiny_view();
        v.steps[0].round_after = true;
        let r = run(&v);
        assert!(
            r.find(Code::PlanRoundingInvalid).is_some(),
            "{}",
            r.pretty()
        );

        // FP16: a missing rounding is wrong
        let mut v = tiny_view();
        v.precision = Precision::Fp16;
        v.steps[0].round_after = true; // correct
        v.steps[1].round_after = false; // last step still requires rounding at FP16
        let r = run(&v);
        assert!(
            r.find(Code::PlanRoundingInvalid).is_some(),
            "{}",
            r.pretty()
        );
    }
}
