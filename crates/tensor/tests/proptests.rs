//! Property tests for the tensor substrate: algebraic identities the
//! reference kernels must satisfy (linearity, adjointness, path
//! equivalence) across randomized geometries.

use mlcnn_tensor::conv::{conv2d_direct, conv2d_im2col};
use mlcnn_tensor::pool::{avg_pool2d, max_pool2d, sum_pool2d};
use mlcnn_tensor::{init, Shape4, Tensor};
use proptest::prelude::*;

fn rand_tensor(seed: u64, shape: Shape4) -> Tensor<f32> {
    init::uniform(shape, -2.0, 2.0, &mut init::rng(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn conv_paths_agree(
        seed in 0u64..10_000,
        b in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        k in 1usize..5,
        s in 1usize..3,
        pad in 0usize..3,
        extra in 0usize..6,
    ) {
        let d = k + s + extra;
        let input = rand_tensor(seed, Shape4::new(b, cin, d, d));
        let weight = rand_tensor(seed + 1, Shape4::new(cout, cin, k, k));
        let bias: Vec<f32> = (0..cout).map(|i| i as f32 * 0.1 - 0.2).collect();
        let a = conv2d_direct(&input, &weight, Some(&bias), s, pad).unwrap();
        let g = conv2d_im2col(&input, &weight, Some(&bias), s, pad).unwrap();
        prop_assert!(a.approx_eq(&g, 1e-3), "diff {}", a.max_abs_diff(&g).unwrap());
    }

    #[test]
    fn convolution_is_linear_in_the_input(
        seed in 0u64..5_000,
        k in 1usize..4,
        extra in 0usize..5,
    ) {
        let d = k + 2 + extra;
        let x = rand_tensor(seed, Shape4::new(1, 2, d, d));
        let y = rand_tensor(seed + 1, Shape4::new(1, 2, d, d));
        let w = rand_tensor(seed + 2, Shape4::new(2, 2, k, k));
        // conv(x + y) == conv(x) + conv(y) (no bias)
        let lhs = conv2d_direct(&x.add(&y).unwrap(), &w, None, 1, 0).unwrap();
        let rhs = conv2d_direct(&x, &w, None, 1, 0)
            .unwrap()
            .add(&conv2d_direct(&y, &w, None, 1, 0).unwrap())
            .unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn avg_pool_commutes_with_scaling(
        seed in 0u64..5_000,
        scale in -3.0f32..3.0,
        p in 2usize..4,
    ) {
        let x = rand_tensor(seed, Shape4::new(1, 2, p * 3, p * 3));
        let a = avg_pool2d(&x.scale(scale), p, p).unwrap();
        let b = avg_pool2d(&x, p, p).unwrap().scale(scale);
        prop_assert!(a.approx_eq(&b, 1e-4));
    }

    #[test]
    fn sum_pool_is_area_times_avg_pool(seed in 0u64..5_000, p in 2usize..5) {
        let x = rand_tensor(seed, Shape4::new(1, 1, p * 2, p * 2));
        let s = sum_pool2d(&x, p, p).unwrap();
        let a = avg_pool2d(&x, p, p).unwrap().scale((p * p) as f32);
        prop_assert!(s.approx_eq(&a, 1e-3));
    }

    #[test]
    fn max_pool_dominates_avg_pool(seed in 0u64..5_000, p in 2usize..4) {
        let x = rand_tensor(seed, Shape4::new(1, 2, p * 3, p * 3));
        let mx = max_pool2d(&x, p, p).unwrap().values;
        let av = avg_pool2d(&x, p, p).unwrap();
        for (m, a) in mx.as_slice().iter().zip(av.as_slice()) {
            prop_assert!(m >= a, "max {m} < avg {a}");
        }
    }

    #[test]
    fn max_pool_argmax_points_at_the_max(seed in 0u64..5_000) {
        let x = rand_tensor(seed, Shape4::new(1, 1, 6, 6));
        let out = max_pool2d(&x, 2, 2).unwrap();
        let plane = x.plane_slice(0, 0);
        for (v, idx) in out.values.as_slice().iter().zip(out.argmax.as_slice()) {
            prop_assert_eq!(*v, plane[*idx as usize]);
        }
    }

    #[test]
    fn stride_one_pooling_of_constant_is_constant(c in -5.0f32..5.0, p in 2usize..4) {
        let x = Tensor::full(Shape4::new(1, 1, 8, 8), c);
        let a = avg_pool2d(&x, p, 1).unwrap();
        for &v in a.as_slice() {
            prop_assert!((v - c).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_items_are_independent(seed in 0u64..5_000) {
        // conv of a stacked batch == stack of per-item convs
        let a = rand_tensor(seed, Shape4::new(1, 2, 6, 6));
        let b = rand_tensor(seed + 1, Shape4::new(1, 2, 6, 6));
        let w = rand_tensor(seed + 2, Shape4::new(3, 2, 3, 3));
        let stacked = Tensor::stack_batch(&[a.clone(), b.clone()]).unwrap();
        let joint = conv2d_direct(&stacked, &w, None, 1, 1).unwrap();
        let ya = conv2d_direct(&a, &w, None, 1, 1).unwrap();
        let yb = conv2d_direct(&b, &w, None, 1, 1).unwrap();
        prop_assert!(joint.batch_item(0).unwrap().approx_eq(&ya, 1e-4));
        prop_assert!(joint.batch_item(1).unwrap().approx_eq(&yb, 1e-4));
    }
}
