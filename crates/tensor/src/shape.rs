//! Shape algebra for NCHW tensors and convolution/pooling geometry.
//!
//! The MLCNN paper's analytic model (Section V) is entirely a function of
//! geometry: filter size `K`, stride `S`, input dimension `D` and the
//! derived pooling-row width `N`. Centralizing the geometry arithmetic here
//! keeps the fused kernels, the op counters and the accelerator model in
//! exact agreement.

use crate::error::TensorError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a 2-D matrix (rows × cols).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape2 {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Shape2 {
    /// Create a matrix shape.
    pub const fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the shape holds no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Shape2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{}]", self.rows, self.cols)
    }
}

/// Shape of a 4-D tensor in NCHW order: batch, channels, height, width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape4 {
    /// Batch dimension.
    pub n: usize,
    /// Channel dimension.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape4 {
    /// Create an NCHW shape.
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w }
    }

    /// Shape of a single feature map `1×1×h×w`.
    pub const fn hw(h: usize, w: usize) -> Self {
        Self::new(1, 1, h, w)
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// [`Shape4::len`] through checked arithmetic: `None` when the
    /// element count overflows `usize`. Static analysis over untrusted
    /// shapes (plan verification, artifact scans) must use this — `len`
    /// wraps in release builds.
    pub const fn checked_len(&self) -> Option<usize> {
        match self.n.checked_mul(self.c) {
            None => None,
            Some(nc) => match nc.checked_mul(self.h) {
                None => None,
                Some(nch) => nch.checked_mul(self.w),
            },
        }
    }

    /// True when the shape holds no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat offset of `(n, c, h, w)` in row-major NCHW order.
    ///
    /// Callers are expected to pass in-range indices; [`Shape4::checked_index`]
    /// is the validating variant.
    pub const fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Validated flat offset of `(n, c, h, w)`.
    pub fn checked_index(
        &self,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
    ) -> Result<usize, TensorError> {
        if n >= self.n || c >= self.c || h >= self.h || w >= self.w {
            return Err(TensorError::OutOfBounds {
                what: format!("({n},{c},{h},{w}) in {self}"),
            });
        }
        Ok(self.index(n, c, h, w))
    }

    /// Number of elements in one feature map (`h*w`).
    pub const fn plane(&self) -> usize {
        self.h * self.w
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{}x{}x{}]", self.n, self.c, self.h, self.w)
    }
}

/// Geometry of a 2-D convolution: kernel, stride, padding and the derived
/// output extent.
///
/// Output extent follows the standard formula
/// `out = (in + 2*pad - k) / stride + 1` (floor division); construction
/// fails when the kernel does not fit the padded input or the stride is
/// zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Input spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Derived output height.
    pub out_h: usize,
    /// Derived output width.
    pub out_w: usize,
}

impl ConvGeometry {
    /// Build and validate a convolution geometry.
    pub fn new(
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, TensorError> {
        if stride == 0 {
            return Err(TensorError::BadGeometry {
                reason: "stride must be nonzero".into(),
            });
        }
        if k_h == 0 || k_w == 0 {
            return Err(TensorError::BadGeometry {
                reason: "kernel extent must be nonzero".into(),
            });
        }
        let padded_h = in_h + 2 * pad;
        let padded_w = in_w + 2 * pad;
        if k_h > padded_h || k_w > padded_w {
            return Err(TensorError::BadGeometry {
                reason: format!(
                    "kernel {k_h}x{k_w} larger than padded input {padded_h}x{padded_w}"
                ),
            });
        }
        let out_h = (padded_h - k_h) / stride + 1;
        let out_w = (padded_w - k_w) / stride + 1;
        Ok(Self {
            in_h,
            in_w,
            k_h,
            k_w,
            stride,
            pad,
            out_h,
            out_w,
        })
    }

    /// Square-kernel, unpadded shorthand used by the paper's sweeps.
    pub fn square(d: usize, k: usize, stride: usize) -> Result<Self, TensorError> {
        Self::new(d, d, k, k, stride, 0)
    }

    /// Number of multiply–accumulate positions per output element per input
    /// channel (`k_h * k_w`).
    pub const fn taps(&self) -> usize {
        self.k_h * self.k_w
    }

    /// Output element count.
    pub const fn out_len(&self) -> usize {
        self.out_h * self.out_w
    }
}

/// Geometry of a pooling window applied after a convolution, as fused by
/// MLCNN.
///
/// MLCNN's accelerator fuses a convolution with an immediately following
/// `p × p` average pool of stride `p` (the common non-overlapping case; the
/// paper's hardware divides by 4, i.e. `p = 2`, and GoogLeNet's global
/// pooling uses `p = 8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolGeometry {
    /// Pool window extent (square).
    pub window: usize,
    /// Pool stride.
    pub stride: usize,
    /// Input (i.e. conv output) spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
    /// Derived output height.
    pub out_h: usize,
    /// Derived output width.
    pub out_w: usize,
}

impl PoolGeometry {
    /// Build and validate a pooling geometry.
    pub fn new(
        in_h: usize,
        in_w: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self, TensorError> {
        if stride == 0 || window == 0 {
            return Err(TensorError::BadGeometry {
                reason: "pool window and stride must be nonzero".into(),
            });
        }
        if window > in_h || window > in_w {
            return Err(TensorError::BadGeometry {
                reason: format!("pool window {window} larger than input {in_h}x{in_w}"),
            });
        }
        let out_h = (in_h - window) / stride + 1;
        let out_w = (in_w - window) / stride + 1;
        Ok(Self {
            window,
            stride,
            in_h,
            in_w,
            out_h,
            out_w,
        })
    }

    /// Non-overlapping `p × p` pooling (stride == window), the MLCNN fused
    /// case.
    pub fn non_overlapping(in_h: usize, in_w: usize, p: usize) -> Result<Self, TensorError> {
        Self::new(in_h, in_w, p, p)
    }

    /// Number of inputs averaged per output (`window²`).
    pub const fn area(&self) -> usize {
        self.window * self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape4_index_roundtrip() {
        let s = Shape4::new(2, 3, 4, 5);
        let mut seen = vec![false; s.len()];
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    for w in 0..5 {
                        let i = s.index(n, c, h, w);
                        assert!(!seen[i], "duplicate index {i}");
                        seen[i] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&b| b), "index map not a bijection");
    }

    #[test]
    fn checked_index_rejects_out_of_range() {
        let s = Shape4::new(1, 1, 2, 2);
        assert!(s.checked_index(0, 0, 1, 1).is_ok());
        assert!(s.checked_index(0, 0, 2, 0).is_err());
        assert!(s.checked_index(1, 0, 0, 0).is_err());
    }

    #[test]
    fn conv_geometry_matches_standard_formula() {
        // 5x5 input, 2x2 kernel, stride 1: 4x4 output (paper Fig. 5 example).
        let g = ConvGeometry::square(5, 2, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (4, 4));
        // 28x28 input, 13x13 kernel, stride 1: 16-wide conv output row
        // (Section V GAR analysis).
        let g = ConvGeometry::square(28, 13, 1).unwrap();
        assert_eq!(g.out_w, 16);
        // Padding: 32x32, 3x3, stride 1, pad 1 keeps extent.
        let g = ConvGeometry::new(32, 32, 3, 3, 1, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (32, 32));
    }

    #[test]
    fn conv_geometry_rejects_degenerate() {
        assert!(ConvGeometry::square(5, 2, 0).is_err());
        assert!(ConvGeometry::square(5, 0, 1).is_err());
        assert!(ConvGeometry::square(3, 7, 1).is_err());
        // ... but a kernel that fits only thanks to padding is fine.
        assert!(ConvGeometry::new(3, 3, 7, 7, 1, 2).is_ok());
    }

    #[test]
    fn pool_geometry_non_overlapping() {
        let p = PoolGeometry::non_overlapping(4, 4, 2).unwrap();
        assert_eq!((p.out_h, p.out_w), (2, 2));
        assert_eq!(p.area(), 4);
        let p = PoolGeometry::non_overlapping(16, 16, 8).unwrap();
        assert_eq!((p.out_h, p.out_w), (2, 2));
    }

    #[test]
    fn pool_geometry_rejects_oversized_window() {
        assert!(PoolGeometry::non_overlapping(4, 4, 5).is_err());
        assert!(PoolGeometry::new(4, 4, 2, 0).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape4::new(1, 2, 3, 4).to_string(), "[1x2x3x4]");
        assert_eq!(Shape2::new(3, 4).to_string(), "[3x4]");
    }
}
