//! The dense NCHW [`Tensor`] container.

use crate::error::TensorError;
use crate::scalar::Scalar;
use crate::shape::Shape4;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A dense 4-D tensor in NCHW row-major layout.
///
/// This is the single data container used across the reproduction; vectors
/// and matrices are represented with degenerate leading dimensions
/// (`1×1×1×len`, `1×1×rows×cols`) which keeps every kernel signature
/// uniform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<T = f32> {
    shape: Shape4,
    data: Vec<T>,
}

impl<T: Scalar> Tensor<T> {
    /// Zero-filled tensor of the given shape.
    pub fn zeros(shape: Shape4) -> Self {
        Self {
            shape,
            data: vec![T::zero(); shape.len()],
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: Shape4, value: T) -> Self {
        Self {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Wrap an existing buffer; fails when the length disagrees with the
    /// shape.
    pub fn from_vec(shape: Shape4, data: Vec<T>) -> Result<Self> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                shape,
                len: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Build from a generator called with `(n, c, h, w)`.
    pub fn from_fn(shape: Shape4, mut f: impl FnMut(usize, usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        data.push(f(n, c, h, w));
                    }
                }
            }
        }
        Self { shape, data }
    }

    /// A `1×1×h×w` single-plane tensor from row-major rows.
    pub fn plane(h: usize, w: usize, data: Vec<T>) -> Result<Self> {
        Self::from_vec(Shape4::hw(h, w), data)
    }

    /// Shape accessor.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable flat view of the backing buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view of the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element access (unchecked shape arithmetic, panics on OOB like
    /// slice indexing).
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> T {
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut T {
        let i = self.shape.index(n, c, h, w);
        &mut self.data[i]
    }

    /// Checked element access.
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> Result<T> {
        Ok(self.data[self.shape.checked_index(n, c, h, w)?])
    }

    /// Checked element write.
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: T) -> Result<()> {
        let i = self.shape.checked_index(n, c, h, w)?;
        self.data[i] = v;
        Ok(())
    }

    /// The `h×w` plane `(n, c)` as a flat slice.
    pub fn plane_slice(&self, n: usize, c: usize) -> &[T] {
        let start = self.shape.index(n, c, 0, 0);
        &self.data[start..start + self.shape.plane()]
    }

    /// Mutable `h×w` plane `(n, c)`.
    pub fn plane_slice_mut(&mut self, n: usize, c: usize) -> &mut [T] {
        let start = self.shape.index(n, c, 0, 0);
        let plane = self.shape.plane();
        &mut self.data[start..start + plane]
    }

    /// Reinterpret with a new shape of identical length (free transpose-less
    /// reshape).
    pub fn reshape(self, shape: Shape4) -> Result<Self> {
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                shape,
                len: self.data.len(),
            });
        }
        Ok(Self {
            shape,
            data: self.data,
        })
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(T) -> T) -> Self {
        Self {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    pub fn zip_with(&self, other: &Self, f: impl Fn(T, T) -> T) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape,
                right: other.shape,
                op: "zip_with",
            });
        }
        Ok(Self {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Scale every element.
    pub fn scale(&self, k: T) -> Self {
        self.map(|v| v * k)
    }

    /// Accumulate `other` into `self` (`self += other`).
    pub fn add_assign(&mut self, other: &Self) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape,
                right: other.shape,
                op: "add_assign",
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> T {
        let mut acc = T::zero();
        for &v in &self.data {
            acc += v;
        }
        acc
    }

    /// Largest absolute elementwise difference from `other`, in `f32`.
    ///
    /// Returns an error on shape mismatch. This is the workhorse of every
    /// "fused == reference" equivalence test in the repo.
    pub fn max_abs_diff(&self, other: &Self) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape,
                right: other.shape,
                op: "max_abs_diff",
            });
        }
        let mut worst = 0.0_f32;
        for (&a, &b) in self.data.iter().zip(&other.data) {
            let d = (a.to_f32() - b.to_f32()).abs();
            if d > worst {
                worst = d;
            }
        }
        Ok(worst)
    }

    /// True when every element differs from `other` by at most `tol`
    /// (absolute, in `f32`).
    pub fn approx_eq(&self, other: &Self, tol: f32) -> bool {
        matches!(self.max_abs_diff(other), Ok(d) if d <= tol)
    }

    /// Extract batch item `n` as a `1×c×h×w` tensor.
    pub fn batch_item(&self, n: usize) -> Result<Self> {
        if n >= self.shape.n {
            return Err(TensorError::OutOfBounds {
                what: format!("batch index {n} in {}", self.shape),
            });
        }
        let per = self.shape.c * self.shape.plane();
        let start = n * per;
        Ok(Self {
            shape: Shape4::new(1, self.shape.c, self.shape.h, self.shape.w),
            data: self.data[start..start + per].to_vec(),
        })
    }

    /// Concatenate single-batch tensors along the batch axis.
    pub fn stack_batch(items: &[Self]) -> Result<Self> {
        let first = items.first().ok_or_else(|| TensorError::BadGeometry {
            reason: "stack_batch of zero tensors".into(),
        })?;
        let mut data = Vec::with_capacity(first.len() * items.len());
        let mut n_total = 0;
        for it in items {
            if (it.shape.c, it.shape.h, it.shape.w) != (first.shape.c, first.shape.h, first.shape.w)
            {
                return Err(TensorError::ShapeMismatch {
                    left: first.shape,
                    right: it.shape,
                    op: "stack_batch",
                });
            }
            n_total += it.shape.n;
            data.extend_from_slice(&it.data);
        }
        Ok(Self {
            shape: Shape4::new(n_total, first.shape.c, first.shape.h, first.shape.w),
            data,
        })
    }
}

impl Tensor<f32> {
    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Convert the element type (e.g. to `f64` for high-precision reference
    /// checks or `i32` for exact-arithmetic equivalence proofs — values are
    /// truncated in the latter case).
    pub fn cast<U: Scalar>(&self) -> Tensor<U> {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| U::from_f32(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: Shape4) -> Tensor<f32> {
        let mut i = 0.0;
        Tensor::from_fn(shape, |_, _, _, _| {
            i += 1.0;
            i
        })
    }

    #[test]
    fn zeros_and_full() {
        let t = Tensor::<f32>::zeros(Shape4::new(2, 1, 2, 2));
        assert_eq!(t.len(), 8);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        let t = Tensor::full(Shape4::hw(2, 2), 3.0_f32);
        assert_eq!(t.sum(), 12.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape4::hw(2, 2), vec![1.0_f32; 4]).is_ok());
        assert!(Tensor::from_vec(Shape4::hw(2, 2), vec![1.0_f32; 5]).is_err());
    }

    #[test]
    fn nchw_layout_is_row_major() {
        let t = seq(Shape4::new(1, 2, 2, 2));
        // n=0,c=0 plane: 1 2 / 3 4 ; c=1 plane: 5 6 / 7 8
        assert_eq!(t.at(0, 0, 0, 0), 1.0);
        assert_eq!(t.at(0, 0, 0, 1), 2.0);
        assert_eq!(t.at(0, 0, 1, 0), 3.0);
        assert_eq!(t.at(0, 1, 0, 0), 5.0);
        assert_eq!(t.plane_slice(0, 1), &[5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn get_set_checked() {
        let mut t = Tensor::<f32>::zeros(Shape4::hw(2, 2));
        t.set(0, 0, 1, 1, 9.0).unwrap();
        assert_eq!(t.get(0, 0, 1, 1).unwrap(), 9.0);
        assert!(t.get(0, 0, 2, 0).is_err());
        assert!(t.set(0, 1, 0, 0, 1.0).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = seq(Shape4::new(1, 1, 2, 6));
        let r = t.clone().reshape(Shape4::new(1, 3, 2, 2)).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(Shape4::new(1, 1, 5, 5)).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = seq(Shape4::hw(2, 2));
        let b = a.map(|v| v * 2.0);
        assert_eq!(a.add(&b).unwrap().sum(), 30.0);
        assert_eq!(b.sub(&a).unwrap().sum(), 10.0);
        assert_eq!(a.scale(3.0).sum(), 30.0);
        let mut c = a.clone();
        c.add_assign(&a).unwrap();
        assert!(c.approx_eq(&a.scale(2.0), 0.0));
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_panic() {
        let a = Tensor::<f32>::zeros(Shape4::hw(2, 2));
        let b = Tensor::<f32>::zeros(Shape4::hw(2, 3));
        assert!(a.add(&b).is_err());
        assert!(a.max_abs_diff(&b).is_err());
        assert!(!a.approx_eq(&b, 1e9));
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let a = seq(Shape4::hw(2, 2));
        let mut b = a.clone();
        *b.at_mut(0, 0, 1, 1) += 0.5;
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.approx_eq(&b, 0.5));
        assert!(!a.approx_eq(&b, 0.49));
    }

    #[test]
    fn batch_item_and_stack_roundtrip() {
        let t = seq(Shape4::new(3, 2, 2, 2));
        let items: Vec<_> = (0..3).map(|n| t.batch_item(n).unwrap()).collect();
        let restacked = Tensor::stack_batch(&items).unwrap();
        assert_eq!(restacked, t);
        assert!(t.batch_item(3).is_err());
        assert!(Tensor::<f32>::stack_batch(&[]).is_err());
    }

    #[test]
    fn stack_batch_rejects_heterogeneous_planes() {
        let a = Tensor::<f32>::zeros(Shape4::new(1, 1, 2, 2));
        let b = Tensor::<f32>::zeros(Shape4::new(1, 1, 2, 3));
        assert!(Tensor::stack_batch(&[a, b]).is_err());
    }

    #[test]
    fn cast_truncates_to_int() {
        let t = Tensor::plane(1, 3, vec![1.9_f32, -1.9, 3.0]).unwrap();
        let i: Tensor<i32> = t.cast();
        assert_eq!(i.as_slice(), &[1, -1, 3]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let t = Tensor::<f32>::zeros(Shape4::new(0, 1, 1, 1));
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn from_fn_ordering_matches_index() {
        let t = Tensor::from_fn(Shape4::new(2, 2, 2, 2), |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f32
        });
        assert_eq!(t.at(1, 1, 1, 1), 1111.0);
        assert_eq!(t.at(1, 0, 1, 0), 1010.0);
    }
}
