//! Small dense GEMM used by the im2col convolution path and the fully
//! connected layers.
//!
//! Matrices are flat row-major `&[T]` slices with explicit dimensions; this
//! module stays allocation-free in its inner loops and parallelizes over
//! output rows with rayon when the problem is large enough to amortize the
//! fork-join overhead.

use crate::scalar::Scalar;
use crate::shape::Shape2;
use rayon::prelude::*;

/// Below this many output elements the serial kernel wins; measured on the
/// bench suite (`gemm_parallel_crossover`).
const PAR_THRESHOLD: usize = 64 * 64;

/// `c = a(m×k) * b(k×n)`, row-major. Panics if slice lengths disagree with
/// the dimensions (these are internal-call-site invariants, not user input).
pub fn matmul<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    let mut c = vec![T::zero(); m * n];
    matmul_into(a, b, &mut c, m, k, n);
    c
}

/// Allocation-free GEMM: write `a(m×k) * b(k×n)` into `c` (overwritten).
/// This is the single kernel body behind [`matmul`] and the execution-plan
/// Linear/Conv ops, so both paths are bitwise identical by construction.
pub fn matmul_into<T: Scalar>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer/dim mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer/dim mismatch");
    assert_eq!(c.len(), m * n, "out buffer/dim mismatch");
    c.fill(T::zero());
    if m * n >= PAR_THRESHOLD {
        c.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| matmul_row(a, b, k, n, i, row));
    } else {
        for (i, row) in c.chunks_mut(n).enumerate() {
            matmul_row(a, b, k, n, i, row);
        }
    }
}

/// One output row of the GEMM, written ikj-order so the inner loop streams
/// both `b` and `row` contiguously (cache-friendly; see the perf-book notes
/// on iteration order).
#[inline]
fn matmul_row<T: Scalar>(a: &[T], b: &[T], k: usize, n: usize, i: usize, row: &mut [T]) {
    for p in 0..k {
        let aip = a[i * k + p];
        let brow = &b[p * n..(p + 1) * n];
        for (r, &bv) in row.iter_mut().zip(brow) {
            *r += aip * bv;
        }
    }
}

/// `y = a(m×k) * x(k)` matrix–vector product.
pub fn matvec<T: Scalar>(a: &[T], x: &[T], m: usize, k: usize) -> Vec<T> {
    assert_eq!(a.len(), m * k, "matrix buffer/dim mismatch");
    assert_eq!(x.len(), k, "vector length mismatch");
    (0..m)
        .map(|i| {
            let mut acc = T::zero();
            for (p, &xv) in x.iter().enumerate() {
                acc += a[i * k + p] * xv;
            }
            acc
        })
        .collect()
}

/// Out-of-place transpose of a row-major `rows×cols` matrix.
pub fn transpose<T: Scalar>(a: &[T], shape: Shape2) -> Vec<T> {
    assert_eq!(a.len(), shape.len(), "buffer/shape mismatch");
    let mut t = vec![T::zero(); a.len()];
    for i in 0..shape.rows {
        for j in 0..shape.cols {
            t[j * shape.rows + i] = a[i * shape.cols + j];
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2x2_known() {
        // |1 2| |5 6|   |19 22|
        // |3 4| |7 8| = |43 50|
        let c = matmul(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0], 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let eye = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        assert_eq!(matmul(&a, &eye, 4, 3, 3), a);
    }

    #[test]
    fn matmul_rectangular() {
        // 1x3 * 3x2
        let c = matmul(&[1.0, 2.0, 3.0], &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0], 1, 3, 2);
        assert_eq!(c, vec![14.0, 32.0]);
    }

    #[test]
    fn matmul_integer_exact() {
        let a: Vec<i64> = (1..=6).collect(); // 2x3
        let b: Vec<i64> = (1..=6).collect(); // 3x2
        assert_eq!(matmul(&a, &b, 2, 3, 2), vec![22, 28, 49, 64]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Force the parallel path with a 80x80 * 80x80 product and compare
        // against the obvious triple loop.
        let m = 80;
        let a: Vec<f32> = (0..m * m)
            .map(|v| ((v * 7 + 3) % 13) as f32 - 6.0)
            .collect();
        let b: Vec<f32> = (0..m * m)
            .map(|v| ((v * 5 + 1) % 11) as f32 - 5.0)
            .collect();
        let fast = matmul(&a, &b, m, m, m);
        let mut slow = vec![0.0_f32; m * m];
        for i in 0..m {
            for j in 0..m {
                let mut acc = 0.0;
                for p in 0..m {
                    acc += a[i * m + p] * b[p * m + j];
                }
                slow[i * m + j] = acc;
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a: Vec<f32> = (0..6).map(|v| v as f32).collect();
        let x = [1.0, -1.0, 2.0];
        assert_eq!(matvec(&a, &x, 2, 3), matmul(&a, &x, 2, 3, 1));
    }

    #[test]
    fn transpose_involution() {
        let a: Vec<f32> = (0..6).map(|v| v as f32).collect();
        let t = transpose(&a, Shape2::new(2, 3));
        assert_eq!(t, vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        let tt = transpose(&t, Shape2::new(3, 2));
        assert_eq!(tt, a);
    }

    #[test]
    #[should_panic(expected = "lhs buffer/dim mismatch")]
    fn matmul_panics_on_bad_dims() {
        let _ = matmul(&[1.0_f32; 3], &[1.0; 4], 2, 2, 2);
    }
}
