//! The [`Scalar`] numeric trait.
//!
//! MLCNN's kernels run at several precisions: `f32` (the paper's FP32
//! baseline), software binary16 (FP16, provided by `mlcnn-quant`), and
//! 8-bit fixed point (INT8). Writing the reference and fused kernels over a
//! small numeric trait lets one implementation serve all precisions, and —
//! crucially for testing — lets the RME/LAR/GAR equivalence proofs run in
//! *exact* integer arithmetic where `fused == reference` holds bit-for-bit.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Numeric element usable in tensor kernels.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + PartialEq
    + PartialOrd
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Lossy conversion from `f32` (kernels use it for averaging divisors
    /// and bias application).
    fn from_f32(v: f32) -> Self;
    /// Lossy conversion to `f32` (used for reporting and tolerance checks).
    fn to_f32(self) -> f32;
    /// Elementwise max, the building block of ReLU and max pooling.
    fn maximum(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
    /// `max(self, 0)` — ReLU.
    fn relu(self) -> Self {
        self.maximum(Self::zero())
    }
    /// Absolute value.
    fn abs(self) -> Self {
        if self < Self::zero() {
            -self
        } else {
            self
        }
    }
}

impl Scalar for f32 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_f32(v: f32) -> Self {
        v
    }
    fn to_f32(self) -> f32 {
        self
    }
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_f32(v: f32) -> Self {
        v as f64
    }
    fn to_f32(self) -> f32 {
        self as f32
    }
}

impl Scalar for i32 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn from_f32(v: f32) -> Self {
        v as i32
    }
    fn to_f32(self) -> f32 {
        self as f32
    }
}

impl Scalar for i64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn from_f32(v: f32) -> Self {
        v as i64
    }
    fn to_f32(self) -> f32 {
        self as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relu_generic<T: Scalar>(x: T) -> T {
        x.relu()
    }

    #[test]
    fn relu_clamps_negative_for_all_impls() {
        assert_eq!(relu_generic(-3.5_f32), 0.0);
        assert_eq!(relu_generic(2.5_f32), 2.5);
        assert_eq!(relu_generic(-3.5_f64), 0.0);
        assert_eq!(relu_generic(-7_i32), 0);
        assert_eq!(relu_generic(7_i32), 7);
        assert_eq!(relu_generic(-7_i64), 0);
    }

    #[test]
    fn maximum_is_total_on_non_nan() {
        assert_eq!(Scalar::maximum(3.0_f32, 4.0), 4.0);
        assert_eq!(Scalar::maximum(4.0_f32, 3.0), 4.0);
        assert_eq!((-4_i32).maximum(-3), -3);
    }

    #[test]
    fn abs_matches_std() {
        assert_eq!((-2.5_f32).abs(), 2.5);
        assert_eq!(Scalar::abs(-9_i32), 9);
        assert_eq!(Scalar::abs(9_i32), 9);
    }

    #[test]
    fn conversions_roundtrip_small_integers() {
        for v in -100..100 {
            assert_eq!(i32::from_f32(v as f32), v);
            assert_eq!((v as f32).to_f32(), v as f32);
        }
    }

    #[test]
    fn identities() {
        assert_eq!(f32::zero() + f32::one(), 1.0);
        assert_eq!(i64::one() * i64::one(), 1);
    }
}
