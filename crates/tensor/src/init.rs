//! Deterministic random initializers.
//!
//! Every stochastic experiment in the reproduction is seeded so that tables
//! regenerate identically run-to-run. Gaussian sampling is implemented via
//! Box–Muller on top of the uniform generator to avoid an extra dependency.

use crate::shape::Shape4;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Seeded PRNG used across the workspace.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via Box–Muller.
pub fn standard_normal(rng: &mut StdRng) -> f32 {
    // Guard against log(0).
    let u1: f32 = rng.random_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Tensor with elements drawn uniformly from `[lo, hi)`.
pub fn uniform(shape: Shape4, lo: f32, hi: f32, rng: &mut StdRng) -> Tensor<f32> {
    Tensor::from_fn(shape, |_, _, _, _| rng.random_range(lo..hi))
}

/// Tensor with elements drawn from `N(0, sigma²)`.
pub fn normal(shape: Shape4, sigma: f32, rng: &mut StdRng) -> Tensor<f32> {
    Tensor::from_fn(shape, |_, _, _, _| standard_normal(rng) * sigma)
}

/// Kaiming/He initialization for a conv weight of shape
/// `out_ch × in_ch × k × k`: `N(0, 2 / fan_in)` where
/// `fan_in = in_ch * k * k`. The standard choice for ReLU networks and what
/// keeps the deep reproduction models trainable.
pub fn kaiming(shape: Shape4, rng: &mut StdRng) -> Tensor<f32> {
    let fan_in = (shape.c * shape.h * shape.w).max(1);
    let sigma = (2.0 / fan_in as f32).sqrt();
    normal(shape, sigma, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let a = uniform(Shape4::hw(4, 4), -1.0, 1.0, &mut rng(7));
        let b = uniform(Shape4::hw(4, 4), -1.0, 1.0, &mut rng(7));
        assert_eq!(a, b);
        let c = uniform(Shape4::hw(4, 4), -1.0, 1.0, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(Shape4::new(1, 1, 32, 32), -0.25, 0.25, &mut rng(1));
        assert!(t.as_slice().iter().all(|&v| (-0.25..0.25).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let n = 20_000;
        let t = normal(Shape4::new(1, 1, 1, n), 1.0, &mut rng(2));
        let mean = t.mean();
        let var = t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let narrow = kaiming(Shape4::new(8, 4, 3, 3), &mut rng(3));
        let wide = kaiming(Shape4::new(8, 256, 3, 3), &mut rng(3));
        let var = |t: &Tensor<f32>| {
            let m = t.mean();
            t.as_slice().iter().map(|v| (v - m).powi(2)).sum::<f32>() / t.len() as f32
        };
        // fan_in 36 vs 2304: variance should differ by roughly 64x.
        let ratio = var(&narrow) / var(&wide);
        assert!(ratio > 30.0 && ratio < 130.0, "ratio {ratio}");
    }

    #[test]
    fn standard_normal_never_nan() {
        let mut r = rng(4);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut r).is_finite());
        }
    }
}
