//! # mlcnn-tensor
//!
//! Numerical substrate for the MLCNN reproduction: a small, strict,
//! NCHW-layout tensor library with reference convolution, pooling and
//! activation kernels.
//!
//! Everything in the higher-level crates — the trainable network framework,
//! the fused conv-pool operator with RME/LAR/GAR reuse, the quantizers and
//! the accelerator model — is validated against the *reference kernels*
//! defined here. The reference kernels are deliberately written as plain,
//! obviously-correct loop nests; performance-oriented variants (im2col +
//! GEMM, rayon-parallel batching) live alongside them and are property-tested
//! for equality.
//!
//! ## Layout
//!
//! * [`shape`] — shape algebra for 2-D and 4-D (NCHW) tensors and the
//!   convolution/pooling output-geometry arithmetic used throughout the
//!   paper's analytic model.
//! * [`scalar`] — the [`Scalar`](scalar::Scalar) numeric trait letting the
//!   same kernels run at `f32`, `f64` and integer precisions (and, via the
//!   `mlcnn-quant` crate, software `f16`).
//! * [`tensor`] — the dense [`Tensor`](tensor::Tensor) container.
//! * [`init`] — deterministic random initializers (uniform, Kaiming-style
//!   fan-in scaling) built on a seeded PRNG.
//! * [`linalg`] — the GEMM used by the im2col convolution path.
//! * [`im2col`] — im2col/col2im lowering.
//! * [`conv`] — direct and im2col convolution kernels.
//! * [`pool`] — average and max pooling (with argmax capture for backprop).
//! * [`activation`] — elementwise nonlinearities.
//! * [`parallel`] — rayon helpers for batch-parallel kernels.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod activation;
pub mod conv;
pub mod error;
pub mod im2col;
pub mod init;
pub mod linalg;
pub mod parallel;
pub mod pool;
pub mod scalar;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use scalar::Scalar;
pub use shape::{ConvGeometry, PoolGeometry, Shape2, Shape4};
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
