//! Error type shared by all tensor operations.

use crate::shape::Shape4;
use std::fmt;

/// Errors produced by tensor construction and kernel invocation.
///
/// The library is strict: shape mismatches are reported as errors rather
/// than being silently broadcast, because the MLCNN op-count accounting
/// depends on exact geometries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element buffer length does not match the product of the shape.
    LengthMismatch {
        /// Declared shape.
        shape: Shape4,
        /// Actual buffer length supplied.
        len: usize,
    },
    /// Two operands were expected to share a shape but do not.
    ShapeMismatch {
        /// Left operand shape.
        left: Shape4,
        /// Right operand shape.
        right: Shape4,
        /// Operation being attempted.
        op: &'static str,
    },
    /// A convolution/pooling geometry is impossible (e.g. kernel larger
    /// than padded input, zero stride).
    BadGeometry {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Index out of bounds.
    OutOfBounds {
        /// The offending flat or dimensional index description.
        what: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { shape, len } => write!(
                f,
                "buffer length {len} does not match shape {shape} (= {} elements)",
                shape.len()
            ),
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in `{op}`: {left} vs {right}")
            }
            TensorError::BadGeometry { reason } => write!(f, "bad geometry: {reason}"),
            TensorError::OutOfBounds { what } => write!(f, "index out of bounds: {what}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_facts() {
        let e = TensorError::LengthMismatch {
            shape: Shape4::new(1, 2, 3, 4),
            len: 7,
        };
        let s = e.to_string();
        assert!(s.contains('7'), "{s}");
        assert!(s.contains("24"), "{s}");

        let e = TensorError::BadGeometry {
            reason: "stride must be nonzero".into(),
        };
        assert!(e.to_string().contains("stride"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
