//! Elementwise nonlinearities.
//!
//! ReLU and Sigmoid, the two activations the paper discusses (Section II-A),
//! plus their derivatives for the training substrate. ReLU is defined over
//! any [`Scalar`]; Sigmoid requires a real exponential so it is `f32`-only.

use crate::scalar::Scalar;
use crate::tensor::Tensor;

/// `max(x, 0)` elementwise.
pub fn relu<T: Scalar>(input: &Tensor<T>) -> Tensor<T> {
    input.map(|v| v.relu())
}

/// In-place ReLU.
pub fn relu_inplace<T: Scalar>(input: &mut Tensor<T>) {
    input.map_inplace(|v| v.relu());
}

/// ReLU derivative mask: 1 where the *pre-activation* input was positive,
/// else 0. (The subgradient at exactly 0 is taken as 0, the common
/// convention.)
pub fn relu_mask<T: Scalar>(pre: &Tensor<T>) -> Tensor<T> {
    pre.map(|v| if v > T::zero() { T::one() } else { T::zero() })
}

/// Logistic sigmoid `1 / (1 + e^-x)` elementwise.
pub fn sigmoid(input: &Tensor<f32>) -> Tensor<f32> {
    input.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Sigmoid derivative `s(x) * (1 - s(x))` given the *pre-activation* input.
pub fn sigmoid_grad(pre: &Tensor<f32>) -> Tensor<f32> {
    pre.map(|v| {
        let s = 1.0 / (1.0 + (-v).exp());
        s * (1.0 - s)
    })
}

/// Row-wise softmax over a `B × classes` logits tensor laid out as
/// `B×1×1×classes`. Numerically stabilized by max subtraction.
pub fn softmax_rows(logits: &Tensor<f32>) -> Tensor<f32> {
    let s = logits.shape();
    let classes = s.c * s.h * s.w;
    let mut out = logits.clone();
    for n in 0..s.n {
        let row = &mut out.as_mut_slice()[n * classes..(n + 1) * classes];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += *v;
        }
        for v in row.iter_mut() {
            *v /= denom;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn relu_zeroes_negatives_only() {
        let t = Tensor::plane(1, 4, vec![-2.0, -0.0, 0.5, 3.0]).unwrap();
        let r = relu(&t);
        assert_eq!(r.as_slice(), &[0.0, 0.0, 0.5, 3.0]);
        let mut t2 = t.clone();
        relu_inplace(&mut t2);
        assert_eq!(t2, r);
    }

    #[test]
    fn relu_mask_matches_definition() {
        let t = Tensor::plane(1, 4, vec![-2.0, 0.0, 0.5, 3.0]).unwrap();
        assert_eq!(relu_mask(&t).as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_integer() {
        let t = Tensor::plane(1, 3, vec![-2.0, 0.0, 5.0])
            .unwrap()
            .cast::<i32>();
        assert_eq!(relu(&t).as_slice(), &[0, 0, 5]);
    }

    #[test]
    fn sigmoid_known_points() {
        let t = Tensor::plane(1, 3, vec![0.0, 100.0, -100.0]).unwrap();
        let s = sigmoid(&t);
        assert!((s.as_slice()[0] - 0.5).abs() < 1e-6);
        assert!((s.as_slice()[1] - 1.0).abs() < 1e-6);
        assert!(s.as_slice()[2].abs() < 1e-6);
    }

    #[test]
    fn sigmoid_grad_peaks_at_zero() {
        let t = Tensor::plane(1, 3, vec![-2.0, 0.0, 2.0]).unwrap();
        let g = sigmoid_grad(&t);
        assert!((g.as_slice()[1] - 0.25).abs() < 1e-6);
        assert!(g.as_slice()[0] < 0.25 && g.as_slice()[2] < 0.25);
        assert!((g.as_slice()[0] - g.as_slice()[2]).abs() < 1e-6, "symmetry");
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_vec(
            Shape4::new(2, 1, 1, 3),
            vec![1.0, 2.0, 3.0, -1.0, -1.0, -1.0],
        )
        .unwrap();
        let s = softmax_rows(&t);
        for n in 0..2 {
            let row = &s.as_slice()[n * 3..(n + 1) * 3];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        let r0 = &s.as_slice()[0..3];
        assert!(r0[0] < r0[1] && r0[1] < r0[2]);
        let r1 = &s.as_slice()[3..6];
        assert!((r1[0] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::plane(1, 2, vec![1000.0, 1001.0]).unwrap();
        let s = softmax_rows(&t);
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
        assert!((s.as_slice().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn relu_after_avgpool_equals_avgpool_after_relu_for_positive_inputs() {
        // Sanity check of the paper's reordering intuition in the regime
        // where it is exact: when all conv outputs are nonnegative the two
        // orders agree identically.
        use crate::pool::avg_pool2d;
        let t = Tensor::from_fn(Shape4::hw(4, 4), |_, _, h, w| (h * 4 + w) as f32);
        let a = relu(&avg_pool2d(&t, 2, 2).unwrap());
        let b = avg_pool2d(&relu(&t), 2, 2).unwrap();
        assert!(a.approx_eq(&b, 1e-6));
    }
}
