//! Convolution kernels.
//!
//! Two implementations of the same contract:
//!
//! * [`conv2d_direct`] — the obviously-correct seven-loop reference. Every
//!   other convolution in the repo (im2col, the MLCNN fused conv-pool, the
//!   quantized kernels, the accelerator functional model) is tested against
//!   it.
//! * [`conv2d_im2col`] — im2col + GEMM, the fast path used for training.
//!
//! Weights are `M × N × K × K` (out-channels × in-channels × kernel), inputs
//! `B × N × H × W`, matching the paper's Figure 1 notation.

use crate::error::TensorError;
use crate::im2col::im2col;
use crate::linalg::matmul;
use crate::scalar::Scalar;
use crate::shape::{ConvGeometry, Shape4};
use crate::tensor::Tensor;
use crate::Result;
use rayon::prelude::*;

/// Validate operand shapes and derive the output geometry for a conv call.
pub fn conv_geometry<T: Scalar>(
    input: &Tensor<T>,
    weight: &Tensor<T>,
    stride: usize,
    pad: usize,
) -> Result<ConvGeometry> {
    let ishape = input.shape();
    let wshape = weight.shape();
    if ishape.c != wshape.c {
        return Err(TensorError::ShapeMismatch {
            left: ishape,
            right: wshape,
            op: "conv2d (input channels vs weight in-channels)",
        });
    }
    if wshape.h != wshape.w {
        return Err(TensorError::BadGeometry {
            reason: format!(
                "only square kernels supported, got {}x{}",
                wshape.h, wshape.w
            ),
        });
    }
    ConvGeometry::new(ishape.h, ishape.w, wshape.h, wshape.w, stride, pad)
}

/// Direct (naïve) 2-D convolution with optional per-output-channel bias.
///
/// This is the reference semantics for the whole repository: cross-
/// correlation (no kernel flip), zero padding, floor-division output
/// extent.
pub fn conv2d_direct<T: Scalar>(
    input: &Tensor<T>,
    weight: &Tensor<T>,
    bias: Option<&[T]>,
    stride: usize,
    pad: usize,
) -> Result<Tensor<T>> {
    let geom = conv_geometry(input, weight, stride, pad)?;
    let ishape = input.shape();
    let wshape = weight.shape();
    if let Some(b) = bias {
        if b.len() != wshape.n {
            return Err(TensorError::BadGeometry {
                reason: format!("bias length {} != out channels {}", b.len(), wshape.n),
            });
        }
    }
    let out_shape = Shape4::new(ishape.n, wshape.n, geom.out_h, geom.out_w);
    let mut out = Tensor::zeros(out_shape);
    let pad = pad as isize;
    for n in 0..ishape.n {
        for m in 0..wshape.n {
            let b = bias.map_or(T::zero(), |b| b[m]);
            for oh in 0..geom.out_h {
                for ow in 0..geom.out_w {
                    let mut acc = T::zero();
                    for c in 0..ishape.c {
                        for kh in 0..geom.k_h {
                            let ih = (oh * stride + kh) as isize - pad;
                            if ih < 0 || ih as usize >= geom.in_h {
                                continue;
                            }
                            for kw in 0..geom.k_w {
                                let iw = (ow * stride + kw) as isize - pad;
                                if iw < 0 || iw as usize >= geom.in_w {
                                    continue;
                                }
                                acc += input.at(n, c, ih as usize, iw as usize)
                                    * weight.at(m, c, kh, kw);
                            }
                        }
                    }
                    *out.at_mut(n, m, oh, ow) = acc + b;
                }
            }
        }
    }
    Ok(out)
}

/// im2col + GEMM convolution; batch items are processed in parallel with
/// rayon. Semantics identical to [`conv2d_direct`].
pub fn conv2d_im2col<T: Scalar>(
    input: &Tensor<T>,
    weight: &Tensor<T>,
    bias: Option<&[T]>,
    stride: usize,
    pad: usize,
) -> Result<Tensor<T>> {
    let geom = conv_geometry(input, weight, stride, pad)?;
    let ishape = input.shape();
    let wshape = weight.shape();
    if let Some(b) = bias {
        if b.len() != wshape.n {
            return Err(TensorError::BadGeometry {
                reason: format!("bias length {} != out channels {}", b.len(), wshape.n),
            });
        }
    }
    let m = wshape.n;
    let k = wshape.c * geom.taps();
    let ncols = geom.out_len();
    let wmat = weight.as_slice(); // already M × (N*K*K) row-major

    let per_item: Vec<Vec<T>> = (0..ishape.n)
        .into_par_iter()
        .map(|n| {
            let cols = im2col(input, n, &geom);
            let mut prod = matmul(wmat, &cols, m, k, ncols);
            if let Some(b) = bias {
                for (mi, bm) in b.iter().enumerate() {
                    for v in &mut prod[mi * ncols..(mi + 1) * ncols] {
                        *v += *bm;
                    }
                }
            }
            prod
        })
        .collect();

    let mut data = Vec::with_capacity(ishape.n * m * ncols);
    for item in per_item {
        data.extend_from_slice(&item);
    }
    Tensor::from_vec(Shape4::new(ishape.n, m, geom.out_h, geom.out_w), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn direct_1x1_kernel_is_channel_mix() {
        // 1x1 conv over 2 channels == per-pixel weighted channel sum.
        let input = Tensor::from_fn(Shape4::new(1, 2, 2, 2), |_, c, h, w| {
            (c * 10 + h * 2 + w) as f32
        });
        let weight = Tensor::from_vec(Shape4::new(1, 2, 1, 1), vec![2.0, 3.0]).unwrap();
        let out = conv2d_direct(&input, &weight, None, 1, 0).unwrap();
        for h in 0..2 {
            for w in 0..2 {
                let expect = 2.0 * input.at(0, 0, h, w) + 3.0 * input.at(0, 1, h, w);
                assert_eq!(out.at(0, 0, h, w), expect);
            }
        }
    }

    #[test]
    fn direct_matches_hand_computed_2x2() {
        // Paper Fig. 5 setup: 5x5 input, 2x2 filter, unit stride.
        let input = Tensor::from_fn(Shape4::hw(5, 5), |_, _, h, w| (h * 5 + w) as f32);
        let weight = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, -1.0, 0.5, 2.0]).unwrap();
        let out = conv2d_direct(&input, &weight, None, 1, 0).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 1, 4, 4));
        // C00 = 1*0 -1*1 +0.5*5 +2*6 = 13.5
        assert_eq!(out.at(0, 0, 0, 0), 13.5);
        // C11 = 1*6 -1*7 +0.5*11 +2*12 = 28.5
        assert_eq!(out.at(0, 0, 1, 1), 28.5);
    }

    #[test]
    fn bias_is_added_per_output_channel() {
        let input = Tensor::full(Shape4::hw(3, 3), 1.0_f32);
        let weight = Tensor::full(Shape4::new(2, 1, 2, 2), 1.0_f32);
        let out = conv2d_direct(&input, &weight, Some(&[10.0, 20.0]), 1, 0).unwrap();
        assert_eq!(out.at(0, 0, 0, 0), 14.0);
        assert_eq!(out.at(0, 1, 0, 0), 24.0);
    }

    #[test]
    fn bad_bias_length_rejected() {
        let input = Tensor::full(Shape4::hw(3, 3), 1.0_f32);
        let weight = Tensor::full(Shape4::new(2, 1, 2, 2), 1.0_f32);
        assert!(conv2d_direct(&input, &weight, Some(&[1.0]), 1, 0).is_err());
        assert!(conv2d_im2col(&input, &weight, Some(&[1.0]), 1, 0).is_err());
    }

    #[test]
    fn channel_mismatch_rejected() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 3, 4, 4));
        let weight = Tensor::<f32>::zeros(Shape4::new(2, 2, 3, 3));
        assert!(conv2d_direct(&input, &weight, None, 1, 0).is_err());
    }

    #[test]
    fn im2col_path_matches_direct_randomized() {
        let mut rng = init::rng(42);
        for &(b, cin, cout, d, k, s, p) in &[
            (1usize, 1usize, 1usize, 5usize, 2usize, 1usize, 0usize),
            (2, 3, 4, 8, 3, 1, 1),
            (1, 2, 2, 9, 3, 2, 0),
            (3, 4, 8, 7, 5, 1, 2),
            (1, 1, 1, 6, 6, 1, 0),
        ] {
            let input = init::uniform(Shape4::new(b, cin, d, d), -1.0, 1.0, &mut rng);
            let weight = init::uniform(Shape4::new(cout, cin, k, k), -1.0, 1.0, &mut rng);
            let bias: Vec<f32> = (0..cout).map(|i| i as f32 * 0.1).collect();
            let a = conv2d_direct(&input, &weight, Some(&bias), s, p).unwrap();
            let bt = conv2d_im2col(&input, &weight, Some(&bias), s, p).unwrap();
            assert!(
                a.approx_eq(&bt, 1e-4),
                "mismatch at b={b} cin={cin} cout={cout} d={d} k={k} s={s} p={p}: {}",
                a.max_abs_diff(&bt).unwrap()
            );
        }
    }

    #[test]
    fn stride_2_halves_extent() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 1, 8, 8));
        let weight = Tensor::full(Shape4::new(1, 1, 2, 2), 1.0_f32);
        let out = conv2d_direct(&input, &weight, None, 2, 0).unwrap();
        assert_eq!((out.shape().h, out.shape().w), (4, 4));
    }

    #[test]
    fn integer_conv_is_exact() {
        let input =
            Tensor::from_fn(Shape4::hw(4, 4), |_, _, h, w| (h * 4 + w) as f32).cast::<i64>();
        let weight = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1_i64, 2, 3, 4]).unwrap();
        let direct = conv2d_direct(&input, &weight, None, 1, 0).unwrap();
        let gemm = conv2d_im2col(&input, &weight, None, 1, 0).unwrap();
        assert_eq!(direct, gemm);
        // top-left window 0,1,4,5 -> 0+2+12+20 = 34
        assert_eq!(direct.at(0, 0, 0, 0), 34);
    }
}
