//! Rayon helpers for batch-parallel kernels.
//!
//! The inference and training loops in the higher crates are
//! embarrassingly parallel over batch items (and often over output
//! channels). These helpers express the two recurring patterns — map a
//! batch and re-stack, and fill disjoint output planes in parallel — so the
//! call sites stay race-free by construction, per the rayon guide.

use crate::scalar::Scalar;
use crate::shape::Shape4;
use crate::tensor::Tensor;
use crate::Result;
use rayon::prelude::*;

/// Apply `f` to every batch item (as a `1×C×H×W` tensor) in parallel and
/// re-stack the results along the batch axis.
///
/// `f` must be deterministic per item; results are re-assembled in batch
/// order so the output is identical to the sequential loop.
pub fn par_map_batch<T, F>(input: &Tensor<T>, f: F) -> Result<Tensor<T>>
where
    T: Scalar,
    F: Fn(Tensor<T>) -> Result<Tensor<T>> + Sync + Send,
{
    let n = input.shape().n;
    let items: Vec<Result<Tensor<T>>> = (0..n)
        .into_par_iter()
        .map(|i| input.batch_item(i).and_then(&f))
        .collect();
    let mut ok = Vec::with_capacity(n);
    for item in items {
        ok.push(item?);
    }
    Tensor::stack_batch(&ok)
}

/// Fill the `(n, c)` planes of a fresh tensor of shape `shape` in parallel.
/// `f(n, c, plane)` writes one output plane; planes are disjoint slices so
/// no synchronization is needed.
pub fn par_fill_planes<T, F>(shape: Shape4, f: F) -> Tensor<T>
where
    T: Scalar,
    F: Fn(usize, usize, &mut [T]) + Sync + Send,
{
    let mut out = Tensor::zeros(shape);
    let plane = shape.plane();
    out.as_mut_slice()
        .par_chunks_mut(plane.max(1))
        .enumerate()
        .for_each(|(idx, chunk)| {
            let n = idx / shape.c.max(1);
            let c = idx % shape.c.max(1);
            f(n, c, chunk);
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::relu;

    #[test]
    fn par_map_batch_matches_sequential() {
        let t = Tensor::from_fn(Shape4::new(8, 2, 4, 4), |n, c, h, w| {
            (n as f32 - 3.5) * (c as f32 + 1.0) * ((h * 4 + w) as f32 - 7.5)
        });
        let par = par_map_batch(&t, |item| Ok(relu(&item))).unwrap();
        let seq = relu(&t);
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_batch_propagates_errors() {
        let t = Tensor::<f32>::zeros(Shape4::new(4, 1, 2, 2));
        let r = par_map_batch(&t, |item| {
            // shape mismatch error from zip
            let other = Tensor::<f32>::zeros(Shape4::new(1, 1, 3, 3));
            item.add(&other)
        });
        assert!(r.is_err());
    }

    #[test]
    fn par_fill_planes_writes_each_plane_once() {
        let shape = Shape4::new(3, 4, 2, 2);
        let t = par_fill_planes::<f32, _>(shape, |n, c, plane| {
            for (i, v) in plane.iter_mut().enumerate() {
                *v = (n * 100 + c * 10 + i) as f32;
            }
        });
        assert_eq!(t.at(2, 3, 1, 1), 233.0);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
        assert_eq!(t.at(1, 2, 0, 1), 121.0);
    }

    #[test]
    fn par_fill_planes_preserves_plane_independence() {
        // Every plane gets its (n, c) identity; no plane sees another's data.
        let shape = Shape4::new(2, 3, 1, 1);
        let t = par_fill_planes::<f32, _>(shape, |n, c, plane| {
            plane[0] = (n * 10 + c) as f32;
        });
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }
}
