//! im2col / col2im lowering.
//!
//! `im2col` unrolls the sliding convolution windows of an input feature map
//! into the columns of a matrix so that convolution becomes a single GEMM —
//! the classic lowering used by the DCNN baseline accelerator's software
//! model and by the fast training path in `mlcnn-nn`. `col2im` is its
//! scatter-add adjoint, needed for the convolution backward pass.

use crate::scalar::Scalar;
use crate::shape::ConvGeometry;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Unroll one batch item into a `(c*k_h*k_w) × (out_h*out_w)` row-major
/// matrix. Input positions that fall in the zero-padding contribute zeros.
pub fn im2col<T: Scalar>(input: &Tensor<T>, n: usize, geom: &ConvGeometry) -> Vec<T> {
    let shape = input.shape();
    let item_len = shape.c * shape.h * shape.w;
    let item = &input.as_slice()[n * item_len..(n + 1) * item_len];
    let mut out = vec![T::zero(); shape.c * geom.taps() * geom.out_len()];
    im2col_into(item, shape.c, geom, &mut out);
    out
}

/// Allocation-free [`im2col`] over a raw `channels × in_h × in_w` item
/// slice; every position of `out` is written (padding taps become zeros),
/// so the buffer may be reused without clearing. The per-channel row blocks
/// of the output matrix are disjoint, so channels unroll in parallel.
pub fn im2col_into<T: Scalar>(item: &[T], channels: usize, geom: &ConvGeometry, out: &mut [T]) {
    let cols = geom.out_len();
    let plane_len = geom.in_h * geom.in_w;
    assert_eq!(
        item.len(),
        channels * plane_len,
        "item buffer/geom mismatch"
    );
    assert_eq!(
        out.len(),
        channels * geom.taps() * cols,
        "col matrix size mismatch"
    );
    let pad = geom.pad as isize;
    out.par_chunks_mut((geom.taps() * cols).max(1))
        .enumerate()
        .for_each(|(c, block)| {
            let plane = &item[c * plane_len..(c + 1) * plane_len];
            for kh in 0..geom.k_h {
                for kw in 0..geom.k_w {
                    let row = kh * geom.k_w + kw;
                    let dst = &mut block[row * cols..(row + 1) * cols];
                    let mut col = 0;
                    for oh in 0..geom.out_h {
                        let ih = (oh * geom.stride + kh) as isize - pad;
                        for ow in 0..geom.out_w {
                            let iw = (ow * geom.stride + kw) as isize - pad;
                            dst[col] = if ih >= 0
                                && iw >= 0
                                && (ih as usize) < geom.in_h
                                && (iw as usize) < geom.in_w
                            {
                                plane[ih as usize * geom.in_w + iw as usize]
                            } else {
                                T::zero()
                            };
                            col += 1;
                        }
                    }
                }
            }
        });
}

/// Scatter-add adjoint of [`im2col`]: fold a `(c*k_h*k_w) × (out_h*out_w)`
/// matrix back onto an input-shaped plane set, summing overlapping windows.
/// Contributions that would land in the padding ring are dropped.
pub fn col2im<T: Scalar>(cols_mat: &[T], channels: usize, geom: &ConvGeometry) -> Vec<T> {
    let cols = geom.out_len();
    let rows = channels * geom.taps();
    assert_eq!(cols_mat.len(), rows * cols, "col matrix size mismatch");
    let mut out = vec![T::zero(); channels * geom.in_h * geom.in_w];
    let pad = geom.pad as isize;
    for c in 0..channels {
        let plane = &mut out[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for kh in 0..geom.k_h {
            for kw in 0..geom.k_w {
                let row = (c * geom.k_h + kh) * geom.k_w + kw;
                let src = &cols_mat[row * cols..(row + 1) * cols];
                let mut col = 0;
                for oh in 0..geom.out_h {
                    let ih = (oh * geom.stride + kh) as isize - pad;
                    for ow in 0..geom.out_w {
                        let iw = (ow * geom.stride + kw) as isize - pad;
                        if ih >= 0
                            && iw >= 0
                            && (ih as usize) < geom.in_h
                            && (iw as usize) < geom.in_w
                        {
                            plane[ih as usize * geom.in_w + iw as usize] += src[col];
                        }
                        col += 1;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    fn seq_plane(h: usize, w: usize) -> Tensor<f32> {
        Tensor::from_fn(Shape4::hw(h, w), |_, _, r, c| (r * w + c) as f32 + 1.0)
    }

    #[test]
    fn im2col_3x3_input_2x2_kernel() {
        // input 1..9 in 3x3; 2x2 windows stride 1 -> 4 columns of 4 taps.
        let t = seq_plane(3, 3);
        let g = ConvGeometry::square(3, 2, 1).unwrap();
        let m = im2col(&t, 0, &g);
        // rows are taps (kh,kw), columns are output positions.
        // tap (0,0): 1 2 4 5 ; tap (0,1): 2 3 5 6 ; tap (1,0): 4 5 7 8 ; tap (1,1): 5 6 8 9
        assert_eq!(
            m,
            vec![1., 2., 4., 5., 2., 3., 5., 6., 4., 5., 7., 8., 5., 6., 8., 9.]
        );
    }

    #[test]
    fn im2col_respects_stride() {
        let t = seq_plane(4, 4);
        let g = ConvGeometry::square(4, 2, 2).unwrap();
        let m = im2col(&t, 0, &g);
        // windows at (0,0),(0,2),(2,0),(2,2): top-left taps 1,3,9,11.
        assert_eq!(&m[0..4], &[1.0, 3.0, 9.0, 11.0]);
    }

    #[test]
    fn im2col_zero_pads() {
        let t = seq_plane(2, 2);
        let g = ConvGeometry::new(2, 2, 3, 3, 1, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (2, 2));
        let m = im2col(&t, 0, &g);
        // tap (0,0) looks one up-left of each output: all in padding except
        // output (1,1) which reads input (0,0)=1.
        assert_eq!(&m[0..4], &[0.0, 0.0, 0.0, 1.0]);
        // center tap (1,1) reads the input directly.
        let center_row = (3 + 1) * 4; // tap (1,1) of the 3x3 kernel
        assert_eq!(&m[center_row..center_row + 4], &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn im2col_multichannel_stacks_rows() {
        let t = Tensor::from_fn(Shape4::new(1, 2, 2, 2), |_, c, h, w| {
            (c * 100 + h * 2 + w) as f32
        });
        let g = ConvGeometry::square(2, 2, 1).unwrap();
        let m = im2col(&t, 0, &g);
        assert_eq!(m.len(), 2 * 4); // 2 channels * 4 taps, 1 output col
        assert_eq!(m, vec![0., 1., 2., 3., 100., 101., 102., 103.]);
    }

    #[test]
    fn im2col_into_overwrites_dirty_buffers() {
        // the workspace reuses the scratch buffer across ops; padding taps
        // must be written as zeros, not assumed zero.
        let t = seq_plane(2, 2);
        let g = ConvGeometry::new(2, 2, 3, 3, 1, 1).unwrap();
        let fresh = im2col(&t, 0, &g);
        let mut dirty = vec![7.5_f32; fresh.len()];
        im2col_into(t.as_slice(), 1, &g, &mut dirty);
        assert_eq!(fresh, dirty);
    }

    #[test]
    fn col2im_counts_window_coverage() {
        // Fold a matrix of ones: each input cell accumulates once per
        // window covering it. For 3x3 input / 2x2 kernel / stride 1 the
        // coverage map is 1 2 1 / 2 4 2 / 1 2 1.
        let g = ConvGeometry::square(3, 2, 1).unwrap();
        let ones = vec![1.0_f32; 4 * 4];
        let folded = col2im(&ones, 1, &g);
        assert_eq!(folded, vec![1., 2., 1., 2., 4., 2., 1., 2., 1.]);
    }

    #[test]
    fn col2im_drops_padding_contributions() {
        let g = ConvGeometry::new(2, 2, 3, 3, 1, 1).unwrap();
        let m = vec![1.0_f32; (3 * 3) * (2 * 2)];
        let folded = col2im(&m, 1, &g);
        // Every interior cell receives taps only from windows that overlap
        // it inside the valid area; total mass folded must be <= total mass
        // in the matrix (padding mass dropped).
        let total: f32 = folded.iter().sum();
        assert!(total < 36.0);
        assert!(total > 0.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity,
        // which is exactly what the conv backward pass relies on.
        let x = seq_plane(5, 5);
        let g = ConvGeometry::square(5, 3, 2).unwrap();
        let ix = im2col(&x, 0, &g);
        let y: Vec<f32> = (0..ix.len())
            .map(|i| ((i * 13 + 5) % 7) as f32 - 3.0)
            .collect();
        let lhs: f32 = ix.iter().zip(&y).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, 1, &g);
        let rhs: f32 = x.as_slice().iter().zip(&folded).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
