//! Pooling kernels: average pooling (MLCNN's preferred reduction, see
//! paper Section III-B) and max pooling (with argmax capture so `mlcnn-nn`
//! can route gradients).

use crate::error::TensorError;
use crate::parallel::par_fill_planes;
use crate::scalar::Scalar;
use crate::shape::{PoolGeometry, Shape4};
use crate::tensor::Tensor;
use crate::Result;

/// Validate the input against a window/stride pair and derive the pooled
/// geometry.
pub fn pool_geometry<T: Scalar>(
    input: &Tensor<T>,
    window: usize,
    stride: usize,
) -> Result<PoolGeometry> {
    let s = input.shape();
    PoolGeometry::new(s.h, s.w, window, stride)
}

/// Average-pool one `in_h × in_w` plane into `dst` (`out_h × out_w`).
///
/// The single kernel body behind [`avg_pool2d`] and the execution plan's
/// AvgPool op; both call it per plane, so the two paths are bitwise
/// identical. `scale` is the precomputed `1/area` multiplier (pass
/// `T::one()` for sum pooling).
pub fn avg_pool_plane_into<T: Scalar>(plane: &[T], g: &PoolGeometry, scale: T, dst: &mut [T]) {
    debug_assert_eq!(plane.len(), g.in_h * g.in_w);
    debug_assert_eq!(dst.len(), g.out_h * g.out_w);
    for oh in 0..g.out_h {
        for ow in 0..g.out_w {
            let mut acc = T::zero();
            for kh in 0..g.window {
                let row = (oh * g.stride + kh) * g.in_w;
                for kw in 0..g.window {
                    acc += plane[row + ow * g.stride + kw];
                }
            }
            dst[oh * g.out_w + ow] = acc * scale;
        }
    }
}

/// Average pooling.
///
/// Each output is the arithmetic mean of a `window × window` patch. For the
/// MLCNN fused case (`window == stride == 2`) this is exactly the `/4`
/// divide-by-shift the accelerator's preprocessing unit performs. Output
/// planes are disjoint, so they fill in parallel.
pub fn avg_pool2d<T: Scalar>(input: &Tensor<T>, window: usize, stride: usize) -> Result<Tensor<T>> {
    let g = pool_geometry(input, window, stride)?;
    let s = input.shape();
    let inv_area = T::one() / T::from_f32(g.area() as f32);
    Ok(par_fill_planes(
        Shape4::new(s.n, s.c, g.out_h, g.out_w),
        |n, c, dst| avg_pool_plane_into(input.plane_slice(n, c), &g, inv_area, dst),
    ))
}

/// Sum pooling: average pooling without the division. The MLCNN fused
/// operator works in the sum domain and defers the division, so exact
/// integer equivalence tests use this.
pub fn sum_pool2d<T: Scalar>(input: &Tensor<T>, window: usize, stride: usize) -> Result<Tensor<T>> {
    let g = pool_geometry(input, window, stride)?;
    let s = input.shape();
    Ok(par_fill_planes(
        Shape4::new(s.n, s.c, g.out_h, g.out_w),
        |n, c, dst| avg_pool_plane_into(input.plane_slice(n, c), &g, T::one(), dst),
    ))
}

/// Max pooling result: pooled values plus the flat in-plane index of each
/// window maximum (for gradient routing).
pub struct MaxPoolOut<T> {
    /// Pooled tensor.
    pub values: Tensor<T>,
    /// For each output element, the flat `h*w` index (within its plane) of
    /// the selected input. Same shape as `values`.
    pub argmax: Tensor<i32>,
}

/// Max-pool one `in_h × in_w` plane into `dst`, optionally recording the
/// flat in-plane argmax per output. Ties resolve to the first (row-major)
/// maximum. Shared by [`max_pool2d`] and the execution plan's MaxPool op.
pub fn max_pool_plane_into<T: Scalar>(
    plane: &[T],
    g: &PoolGeometry,
    dst: &mut [T],
    mut argmax: Option<&mut [i32]>,
) {
    debug_assert_eq!(plane.len(), g.in_h * g.in_w);
    debug_assert_eq!(dst.len(), g.out_h * g.out_w);
    for oh in 0..g.out_h {
        for ow in 0..g.out_w {
            let mut best_idx = (oh * g.stride) * g.in_w + ow * g.stride;
            let mut best = plane[best_idx];
            for kh in 0..g.window {
                let row = (oh * g.stride + kh) * g.in_w;
                for kw in 0..g.window {
                    let idx = row + ow * g.stride + kw;
                    if plane[idx] > best {
                        best = plane[idx];
                        best_idx = idx;
                    }
                }
            }
            dst[oh * g.out_w + ow] = best;
            if let Some(am) = argmax.as_deref_mut() {
                am[oh * g.out_w + ow] = best_idx as i32;
            }
        }
    }
}

/// Max pooling with argmax capture. Ties resolve to the first (row-major)
/// maximum, matching the common framework convention. The argmax planes are
/// computed in parallel; values are then gathered from the selected inputs,
/// which is exactly the value the scan found.
pub fn max_pool2d<T: Scalar>(
    input: &Tensor<T>,
    window: usize,
    stride: usize,
) -> Result<MaxPoolOut<T>> {
    let g = pool_geometry(input, window, stride)?;
    let s = input.shape();
    let out_shape = Shape4::new(s.n, s.c, g.out_h, g.out_w);
    let argmax = par_fill_planes::<i32, _>(out_shape, |n, c, am| {
        let mut scratch = vec![T::zero(); am.len()];
        max_pool_plane_into(input.plane_slice(n, c), &g, &mut scratch, Some(am));
    });
    let mut values = Tensor::zeros(out_shape);
    for n in 0..s.n {
        for c in 0..s.c {
            let plane = input.plane_slice(n, c);
            let am = argmax.plane_slice(n, c);
            for (v, &idx) in values.plane_slice_mut(n, c).iter_mut().zip(am) {
                *v = plane[idx as usize];
            }
        }
    }
    Ok(MaxPoolOut { values, argmax })
}

/// Global average pooling: collapse each feature map to a single value.
/// (GoogLeNet's final 8×8 pool on 32×32-derived inputs is a special case.)
pub fn global_avg_pool<T: Scalar>(input: &Tensor<T>) -> Result<Tensor<T>> {
    let s = input.shape();
    if s.h == 0 || s.w == 0 {
        return Err(TensorError::BadGeometry {
            reason: "global pooling of empty plane".into(),
        });
    }
    avg_pool2d(input, s.h.min(s.w), s.h.min(s.w)).and_then(|t| {
        if s.h == s.w {
            Ok(t)
        } else {
            Err(TensorError::BadGeometry {
                reason: format!("global pooling requires square planes, got {}x{}", s.h, s.w),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(h: usize, w: usize, v: Vec<f32>) -> Tensor<f32> {
        Tensor::plane(h, w, v).unwrap()
    }

    #[test]
    fn avg_pool_2x2_known_values() {
        let t = plane(2, 4, vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let p = avg_pool2d(&t, 2, 2).unwrap();
        assert_eq!(p.shape(), Shape4::hw(1, 2));
        assert_eq!(p.as_slice(), &[3.5, 5.5]);
    }

    #[test]
    fn sum_pool_is_area_times_avg() {
        let t = plane(4, 4, (1..=16).map(|v| v as f32).collect());
        let a = avg_pool2d(&t, 2, 2).unwrap();
        let s = sum_pool2d(&t, 2, 2).unwrap();
        assert!(s.approx_eq(&a.scale(4.0), 1e-6));
    }

    #[test]
    fn overlapping_avg_pool() {
        let t = plane(3, 3, vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let p = avg_pool2d(&t, 2, 1).unwrap();
        assert_eq!(p.shape(), Shape4::hw(2, 2));
        assert_eq!(p.as_slice(), &[3.0, 4.0, 6.0, 7.0]);
    }

    #[test]
    fn max_pool_values_and_argmax() {
        let t = plane(2, 2, vec![1., 9., 3., 4.]);
        let r = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(r.values.as_slice(), &[9.0]);
        assert_eq!(r.argmax.as_slice(), &[1]);
    }

    #[test]
    fn max_pool_tie_takes_first() {
        let t = plane(2, 2, vec![5., 5., 5., 5.]);
        let r = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(r.argmax.as_slice(), &[0]);
    }

    #[test]
    fn max_pool_negative_inputs() {
        // regression guard: initialization must come from the window, not 0.
        let t = plane(2, 2, vec![-4., -9., -3., -7.]);
        let r = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(r.values.as_slice(), &[-3.0]);
        assert_eq!(r.argmax.as_slice(), &[2]);
    }

    #[test]
    fn pool_rejects_oversized_window() {
        let t = plane(2, 2, vec![0.0; 4]);
        assert!(avg_pool2d(&t, 3, 1).is_err());
        assert!(max_pool2d(&t, 3, 1).is_err());
    }

    #[test]
    fn global_avg_pool_collapses_plane() {
        let t = plane(4, 4, (1..=16).map(|v| v as f32).collect());
        let g = global_avg_pool(&t).unwrap();
        assert_eq!(g.shape(), Shape4::hw(1, 1));
        assert_eq!(g.as_slice(), &[8.5]);
    }

    #[test]
    fn global_avg_pool_rejects_rectangles() {
        let t = Tensor::<f32>::zeros(Shape4::new(1, 1, 2, 4));
        assert!(global_avg_pool(&t).is_err());
    }

    #[test]
    fn multichannel_batched_pooling_is_independent() {
        let t = Tensor::from_fn(Shape4::new(2, 2, 2, 2), |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f32
        });
        let p = avg_pool2d(&t, 2, 2).unwrap();
        assert_eq!(p.shape(), Shape4::new(2, 2, 1, 1));
        assert_eq!(p.at(0, 0, 0, 0), (0.0 + 1.0 + 10.0 + 11.0) / 4.0);
        assert_eq!(p.at(1, 1, 0, 0), (1100.0 + 1101.0 + 1110.0 + 1111.0) / 4.0);
    }
}
