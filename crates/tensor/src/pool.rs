//! Pooling kernels: average pooling (MLCNN's preferred reduction, see
//! paper Section III-B) and max pooling (with argmax capture so `mlcnn-nn`
//! can route gradients).

use crate::error::TensorError;
use crate::scalar::Scalar;
use crate::shape::{PoolGeometry, Shape4};
use crate::tensor::Tensor;
use crate::Result;

/// Validate the input against a window/stride pair and derive the pooled
/// geometry.
pub fn pool_geometry<T: Scalar>(
    input: &Tensor<T>,
    window: usize,
    stride: usize,
) -> Result<PoolGeometry> {
    let s = input.shape();
    PoolGeometry::new(s.h, s.w, window, stride)
}

/// Average pooling.
///
/// Each output is the arithmetic mean of a `window × window` patch. For the
/// MLCNN fused case (`window == stride == 2`) this is exactly the `/4`
/// divide-by-shift the accelerator's preprocessing unit performs.
pub fn avg_pool2d<T: Scalar>(input: &Tensor<T>, window: usize, stride: usize) -> Result<Tensor<T>> {
    let g = pool_geometry(input, window, stride)?;
    let s = input.shape();
    let inv_area = T::one() / T::from_f32(g.area() as f32);
    let mut out = Tensor::zeros(Shape4::new(s.n, s.c, g.out_h, g.out_w));
    for n in 0..s.n {
        for c in 0..s.c {
            let plane = input.plane_slice(n, c);
            for oh in 0..g.out_h {
                for ow in 0..g.out_w {
                    let mut acc = T::zero();
                    for kh in 0..window {
                        let row = (oh * stride + kh) * s.w;
                        for kw in 0..window {
                            acc += plane[row + ow * stride + kw];
                        }
                    }
                    *out.at_mut(n, c, oh, ow) = acc * inv_area;
                }
            }
        }
    }
    Ok(out)
}

/// Sum pooling: average pooling without the division. The MLCNN fused
/// operator works in the sum domain and defers the division, so exact
/// integer equivalence tests use this.
pub fn sum_pool2d<T: Scalar>(input: &Tensor<T>, window: usize, stride: usize) -> Result<Tensor<T>> {
    let g = pool_geometry(input, window, stride)?;
    let s = input.shape();
    let mut out = Tensor::zeros(Shape4::new(s.n, s.c, g.out_h, g.out_w));
    for n in 0..s.n {
        for c in 0..s.c {
            let plane = input.plane_slice(n, c);
            for oh in 0..g.out_h {
                for ow in 0..g.out_w {
                    let mut acc = T::zero();
                    for kh in 0..window {
                        let row = (oh * stride + kh) * s.w;
                        for kw in 0..window {
                            acc += plane[row + ow * stride + kw];
                        }
                    }
                    *out.at_mut(n, c, oh, ow) = acc;
                }
            }
        }
    }
    Ok(out)
}

/// Max pooling result: pooled values plus the flat in-plane index of each
/// window maximum (for gradient routing).
pub struct MaxPoolOut<T> {
    /// Pooled tensor.
    pub values: Tensor<T>,
    /// For each output element, the flat `h*w` index (within its plane) of
    /// the selected input. Same shape as `values`.
    pub argmax: Tensor<i32>,
}

/// Max pooling with argmax capture. Ties resolve to the first (row-major)
/// maximum, matching the common framework convention.
pub fn max_pool2d<T: Scalar>(
    input: &Tensor<T>,
    window: usize,
    stride: usize,
) -> Result<MaxPoolOut<T>> {
    let g = pool_geometry(input, window, stride)?;
    let s = input.shape();
    let out_shape = Shape4::new(s.n, s.c, g.out_h, g.out_w);
    let mut values = Tensor::zeros(out_shape);
    let mut argmax = Tensor::<i32>::zeros(out_shape);
    for n in 0..s.n {
        for c in 0..s.c {
            let plane = input.plane_slice(n, c);
            for oh in 0..g.out_h {
                for ow in 0..g.out_w {
                    let mut best_idx = (oh * stride) * s.w + ow * stride;
                    let mut best = plane[best_idx];
                    for kh in 0..window {
                        let row = (oh * stride + kh) * s.w;
                        for kw in 0..window {
                            let idx = row + ow * stride + kw;
                            if plane[idx] > best {
                                best = plane[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    *values.at_mut(n, c, oh, ow) = best;
                    *argmax.at_mut(n, c, oh, ow) = best_idx as i32;
                }
            }
        }
    }
    Ok(MaxPoolOut { values, argmax })
}

/// Global average pooling: collapse each feature map to a single value.
/// (GoogLeNet's final 8×8 pool on 32×32-derived inputs is a special case.)
pub fn global_avg_pool<T: Scalar>(input: &Tensor<T>) -> Result<Tensor<T>> {
    let s = input.shape();
    if s.h == 0 || s.w == 0 {
        return Err(TensorError::BadGeometry {
            reason: "global pooling of empty plane".into(),
        });
    }
    avg_pool2d(input, s.h.min(s.w), s.h.min(s.w)).and_then(|t| {
        if s.h == s.w {
            Ok(t)
        } else {
            Err(TensorError::BadGeometry {
                reason: format!("global pooling requires square planes, got {}x{}", s.h, s.w),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(h: usize, w: usize, v: Vec<f32>) -> Tensor<f32> {
        Tensor::plane(h, w, v).unwrap()
    }

    #[test]
    fn avg_pool_2x2_known_values() {
        let t = plane(2, 4, vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let p = avg_pool2d(&t, 2, 2).unwrap();
        assert_eq!(p.shape(), Shape4::hw(1, 2));
        assert_eq!(p.as_slice(), &[3.5, 5.5]);
    }

    #[test]
    fn sum_pool_is_area_times_avg() {
        let t = plane(4, 4, (1..=16).map(|v| v as f32).collect());
        let a = avg_pool2d(&t, 2, 2).unwrap();
        let s = sum_pool2d(&t, 2, 2).unwrap();
        assert!(s.approx_eq(&a.scale(4.0), 1e-6));
    }

    #[test]
    fn overlapping_avg_pool() {
        let t = plane(3, 3, vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let p = avg_pool2d(&t, 2, 1).unwrap();
        assert_eq!(p.shape(), Shape4::hw(2, 2));
        assert_eq!(p.as_slice(), &[3.0, 4.0, 6.0, 7.0]);
    }

    #[test]
    fn max_pool_values_and_argmax() {
        let t = plane(2, 2, vec![1., 9., 3., 4.]);
        let r = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(r.values.as_slice(), &[9.0]);
        assert_eq!(r.argmax.as_slice(), &[1]);
    }

    #[test]
    fn max_pool_tie_takes_first() {
        let t = plane(2, 2, vec![5., 5., 5., 5.]);
        let r = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(r.argmax.as_slice(), &[0]);
    }

    #[test]
    fn max_pool_negative_inputs() {
        // regression guard: initialization must come from the window, not 0.
        let t = plane(2, 2, vec![-4., -9., -3., -7.]);
        let r = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(r.values.as_slice(), &[-3.0]);
        assert_eq!(r.argmax.as_slice(), &[2]);
    }

    #[test]
    fn pool_rejects_oversized_window() {
        let t = plane(2, 2, vec![0.0; 4]);
        assert!(avg_pool2d(&t, 3, 1).is_err());
        assert!(max_pool2d(&t, 3, 1).is_err());
    }

    #[test]
    fn global_avg_pool_collapses_plane() {
        let t = plane(4, 4, (1..=16).map(|v| v as f32).collect());
        let g = global_avg_pool(&t).unwrap();
        assert_eq!(g.shape(), Shape4::hw(1, 1));
        assert_eq!(g.as_slice(), &[8.5]);
    }

    #[test]
    fn global_avg_pool_rejects_rectangles() {
        let t = Tensor::<f32>::zeros(Shape4::new(1, 1, 2, 4));
        assert!(global_avg_pool(&t).is_err());
    }

    #[test]
    fn multichannel_batched_pooling_is_independent() {
        let t = Tensor::from_fn(Shape4::new(2, 2, 2, 2), |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f32
        });
        let p = avg_pool2d(&t, 2, 2).unwrap();
        assert_eq!(p.shape(), Shape4::new(2, 2, 1, 1));
        assert_eq!(p.at(0, 0, 0, 0), (0.0 + 1.0 + 10.0 + 11.0) / 4.0);
        assert_eq!(p.at(1, 1, 0, 0), (1100.0 + 1101.0 + 1110.0 + 1111.0) / 4.0);
    }
}
