//! Software IEEE 754 binary16.
//!
//! The accelerator's FP16 mode (Table VII) halves operand width to double
//! the MAC-slice count under the fixed area budget. To evaluate its
//! *numerics* we need a faithful binary16: conversions implement
//! round-to-nearest-even including the subnormal range, and every
//! arithmetic operation computes in `f32` then rounds back through
//! binary16 — the result a correctly-rounded FP16 FPU produces for a
//! single operation.

use mlcnn_tensor::Scalar;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// IEEE 754 binary16 value stored as its bit pattern.
#[derive(Clone, Copy, Serialize, Deserialize)]
pub struct F16(u16);

const EXP_MASK: u16 = 0x7c00;
const MAN_MASK: u16 = 0x03ff;
const SIGN_MASK: u16 = 0x8000;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest positive normal value (2⁻¹⁴).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Machine epsilon (2⁻¹⁰).
    pub const EPSILON: F16 = F16(0x1400);

    /// Construct from raw bits.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32_rne(v: f32) -> Self {
        let x = v.to_bits();
        let sign = ((x >> 16) & 0x8000) as u16;
        let exp32 = ((x >> 23) & 0xff) as i32;
        let man32 = x & 0x007f_ffff;

        if exp32 == 0xff {
            // Inf / NaN: preserve NaN-ness with a quiet payload.
            return if man32 != 0 {
                F16(sign | EXP_MASK | 0x0200 | ((man32 >> 13) as u16 & MAN_MASK))
            } else {
                F16(sign | EXP_MASK)
            };
        }

        let exp = exp32 - 127 + 15;
        if exp >= 0x1f {
            // overflow -> infinity
            return F16(sign | EXP_MASK);
        }
        if exp <= 0 {
            // subnormal (or underflow to zero)
            if exp < -10 {
                return F16(sign);
            }
            let man = man32 | 0x0080_0000; // implicit leading 1
            let shift = (14 - exp) as u32;
            let t = man >> shift;
            let rem = man & ((1u32 << shift) - 1);
            let half = 1u32 << (shift - 1);
            let t = if rem > half || (rem == half && t & 1 == 1) {
                t + 1
            } else {
                t
            };
            // t may carry into the normal range (0x400): that bit pattern is
            // exactly the smallest normal, so plain OR is correct.
            return F16(sign | t as u16);
        }

        // normal range: round 23-bit mantissa to 10 bits
        let mut t = man32 >> 13;
        let rem = man32 & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && t & 1 == 1) {
            t += 1;
        }
        let mut e = exp as u32;
        if t == 0x400 {
            t = 0;
            e += 1;
            if e >= 0x1f {
                return F16(sign | EXP_MASK);
            }
        }
        F16(sign | (e << 10) as u16 | t as u16)
    }

    /// Convert to `f32` (exact: every binary16 value is representable).
    pub fn to_f32_exact(self) -> f32 {
        let h = self.0;
        let sign = ((h & SIGN_MASK) as u32) << 16;
        let exp = ((h & EXP_MASK) >> 10) as u32;
        let man = (h & MAN_MASK) as u32;
        let bits = if exp == 0 {
            if man == 0 {
                sign // ±0
            } else {
                // subnormal: normalize into the f32 format
                let mut e: u32 = 113; // 127 - 15 + 1
                let mut m = man;
                while m & 0x400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= MAN_MASK as u32;
                sign | (e << 23) | (m << 13)
            }
        } else if exp == 0x1f {
            sign | 0x7f80_0000 | (man << 13) // inf / nan
        } else {
            sign | ((exp + 112) << 23) | (man << 13)
        };
        f32::from_bits(bits)
    }

    /// True for NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True for ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// True for finite values.
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f16", self.to_f32_exact())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32_exact())
    }
}

impl PartialEq for F16 {
    fn eq(&self, other: &Self) -> bool {
        // IEEE semantics: NaN != NaN, +0 == -0.
        self.to_f32_exact() == other.to_f32_exact()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32_exact().partial_cmp(&other.to_f32_exact())
    }
}

impl Default for F16 {
    fn default() -> Self {
        F16::ZERO
    }
}

macro_rules! f16_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32_rne(self.to_f32_exact() $op rhs.to_f32_exact())
            }
        }
    };
}

f16_binop!(Add, add, +);
f16_binop!(Sub, sub, -);
f16_binop!(Mul, mul, *);
f16_binop!(Div, div, /);

impl AddAssign for F16 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

impl Scalar for F16 {
    fn zero() -> Self {
        F16::ZERO
    }
    fn one() -> Self {
        F16::ONE
    }
    fn from_f32(v: f32) -> Self {
        F16::from_f32_rne(v)
    }
    fn to_f32(self) -> f32 {
        self.to_f32_exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(v: f32) -> f32 {
        F16::from_f32_rne(v).to_f32_exact()
    }

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let v = i as f32;
            assert_eq!(rt(v), v, "integer {i} should be exact in binary16");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f32_rne(1.0).to_bits(), 0x3c00);
        assert_eq!(F16::from_f32_rne(-2.0).to_bits(), 0xc000);
        assert_eq!(F16::from_f32_rne(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32_rne(65504.0).to_bits(), 0x7bff);
        assert_eq!(F16::from_f32_rne(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32_rne(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32_rne(70000.0).is_infinite());
        assert!(F16::from_f32_rne(-1e9).is_infinite());
        // 65520 is the midpoint between MAX (65504) and 2^16; ties-to-even
        // rounds up and overflows to infinity.
        assert!(F16::from_f32_rne(65521.0).is_infinite(), "rounds past MAX");
        assert_eq!(F16::from_f32_rne(65519.0).to_bits(), 0x7bff);
    }

    #[test]
    fn subnormals_roundtrip() {
        // smallest positive subnormal = 2^-24
        let tiny = 2.0_f32.powi(-24);
        assert_eq!(F16::from_f32_rne(tiny).to_bits(), 0x0001);
        assert_eq!(rt(tiny), tiny);
        // below half the smallest subnormal underflows to zero
        assert_eq!(F16::from_f32_rne(2.0_f32.powi(-26)).to_bits(), 0);
        // a mid-range subnormal
        let v = 2.0_f32.powi(-15);
        assert_eq!(rt(v), v);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even
        // keeps 1.0 (mantissa 0 is even).
        assert_eq!(rt(1.0 + 2.0_f32.powi(-11)), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even
        // picks 1+2^-9 (mantissa 2).
        assert_eq!(
            rt(1.0 + 3.0 * 2.0_f32.powi(-11)),
            1.0 + 2.0 * 2.0_f32.powi(-10)
        );
        // just above the tie rounds up
        assert_eq!(
            rt(1.0 + 2.0_f32.powi(-11) + 2.0_f32.powi(-20)),
            1.0 + 2.0_f32.powi(-10)
        );
    }

    #[test]
    fn nan_propagates_and_compares_false() {
        let n = F16::from_f32_rne(f32::NAN);
        assert!(n.is_nan());
        assert!(n.to_f32_exact().is_nan());
        assert_ne!(n, n);
    }

    #[test]
    fn negzero_equals_zero() {
        assert_eq!(F16::from_f32_rne(-0.0), F16::ZERO);
        assert_eq!((-F16::ZERO).to_bits(), 0x8000);
    }

    #[test]
    fn arithmetic_rounds_through_half_precision() {
        // 2048 + 1 is not representable (spacing is 2 there): stays 2048.
        let a = F16::from_f32_rne(2048.0);
        let b = F16::ONE;
        assert_eq!((a + b).to_f32_exact(), 2048.0);
        // but 2048 + 4 is fine
        let c = F16::from_f32_rne(4.0);
        assert_eq!((a + c).to_f32_exact(), 2052.0);
    }

    #[test]
    fn mul_div_neg() {
        let a = F16::from_f32_rne(3.5);
        let b = F16::from_f32_rne(-2.0);
        assert_eq!((a * b).to_f32_exact(), -7.0);
        assert_eq!((a / b).to_f32_exact(), -1.75);
        assert_eq!((-a).to_f32_exact(), -3.5);
    }

    #[test]
    fn scalar_trait_relu() {
        assert_eq!(F16::from_f32(-3.0).relu(), F16::ZERO);
        assert_eq!(F16::from_f32(3.0).relu(), F16::from_f32(3.0));
    }

    #[test]
    fn exhaustive_roundtrip_all_finite_bit_patterns() {
        // Every finite f16 -> f32 -> f16 must be the identity on bits
        // (modulo -0/+0 which differ in bits but we check bits exactly —
        // the conversion should preserve the sign of zero too).
        for bits in 0..=0xffffu16 {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32_rne(h.to_f32_exact());
            assert_eq!(
                back.to_bits(),
                bits,
                "roundtrip failed for bits {bits:#06x}"
            );
        }
    }

    #[test]
    fn conversion_is_monotone_on_a_grid() {
        let mut prev = f32::NEG_INFINITY;
        let mut x = -70000.0_f32;
        while x <= 70000.0 {
            let y = rt(x);
            assert!(y >= prev, "non-monotone at {x}: {y} < {prev}");
            prev = y;
            x += 13.7;
        }
    }

    #[test]
    fn tensor_kernels_run_at_f16() {
        use mlcnn_tensor::conv::conv2d_direct;
        use mlcnn_tensor::{Shape4, Tensor};
        let input =
            Tensor::from_fn(Shape4::hw(4, 4), |_, _, h, w| (h * 4 + w) as f32).cast::<F16>();
        let weight = Tensor::from_vec(
            Shape4::new(1, 1, 2, 2),
            vec![F16::ONE, F16::ONE, F16::ONE, F16::ONE],
        )
        .unwrap();
        let out = conv2d_direct(&input, &weight, None, 1, 0).unwrap();
        // window sums of 0..15 grid are exact at fp16 (small integers)
        assert_eq!(out.at(0, 0, 0, 0).to_f32_exact(), 0.0 + 1.0 + 4.0 + 5.0);
        assert_eq!(out.at(0, 0, 2, 2).to_f32_exact(), 10.0 + 11.0 + 14.0 + 15.0);
    }
}
