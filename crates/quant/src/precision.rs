//! Operand precision shared between the quantizers and the accelerator
//! model (Table VII).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Operand precision of a MAC slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit IEEE floating point (the paper's DCNN baseline and MLCNN
    /// FP32 mode).
    Fp32,
    /// 16-bit IEEE floating point.
    Fp16,
    /// 8-bit fixed point (DoReFa-quantized operands).
    Int8,
}

impl Precision {
    /// Operand width in bits.
    pub const fn bits(self) -> u32 {
        match self {
            Precision::Fp32 => 32,
            Precision::Fp16 => 16,
            Precision::Int8 => 8,
        }
    }

    /// Operand width in bytes.
    pub const fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }

    /// How many MAC slices fit in the paper's fixed 1.52 mm² area budget,
    /// relative to FP32 (Table VII: 32 → 64 → 128 slices).
    pub const fn slice_multiplier(self) -> usize {
        match self {
            Precision::Fp32 => 1,
            Precision::Fp16 => 2,
            Precision::Int8 => 4,
        }
    }

    /// All precisions in the order the paper reports them.
    pub const ALL: [Precision; 3] = [Precision::Fp32, Precision::Fp16, Precision::Int8];

    /// Stable single-byte tag used by binary artifact formats
    /// (`mlcnn-registry` bundles). Not the enum's discriminant — the tag is
    /// part of the on-disk format and must never follow a source reorder.
    pub const fn artifact_tag(self) -> u8 {
        match self {
            Precision::Fp32 => 0,
            Precision::Fp16 => 1,
            Precision::Int8 => 2,
        }
    }

    /// Inverse of [`Precision::artifact_tag`]; `None` for unknown tags.
    pub const fn from_artifact_tag(tag: u8) -> Option<Precision> {
        match tag {
            0 => Some(Precision::Fp32),
            1 => Some(Precision::Fp16),
            2 => Some(Precision::Int8),
            _ => None,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Fp32 => write!(f, "FP32"),
            Precision::Fp16 => write!(f, "FP16"),
            Precision::Int8 => write!(f, "INT8"),
        }
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    /// Parse a precision name, case-insensitively: `fp32`/`f32`,
    /// `fp16`/`f16`, `int8`/`i8`. The CLI surface for every binary that
    /// selects a datapath precision (serving config, load generator).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fp32" | "f32" => Ok(Precision::Fp32),
            "fp16" | "f16" => Ok(Precision::Fp16),
            "int8" | "i8" => Ok(Precision::Int8),
            other => Err(format!(
                "unknown precision '{other}' (expected fp32, fp16, or int8)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vii_slice_counts() {
        // Table VII: 32 MAC slices at FP32, 64 at FP16, 128 at INT8.
        const BASE: usize = 32;
        assert_eq!(BASE * Precision::Fp32.slice_multiplier(), 32);
        assert_eq!(BASE * Precision::Fp16.slice_multiplier(), 64);
        assert_eq!(BASE * Precision::Int8.slice_multiplier(), 128);
    }

    #[test]
    fn bits_and_bytes_consistent() {
        for p in Precision::ALL {
            assert_eq!(p.bytes() * 8, p.bits() as usize);
        }
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(Precision::Fp32.to_string(), "FP32");
        assert_eq!(Precision::Fp16.to_string(), "FP16");
        assert_eq!(Precision::Int8.to_string(), "INT8");
    }

    #[test]
    fn parse_round_trips_display_and_aliases() {
        for p in Precision::ALL {
            assert_eq!(p.to_string().parse::<Precision>().unwrap(), p);
        }
        assert_eq!("fp16".parse::<Precision>().unwrap(), Precision::Fp16);
        assert_eq!("i8".parse::<Precision>().unwrap(), Precision::Int8);
        assert!("bf16".parse::<Precision>().is_err());
    }

    #[test]
    fn display_from_str_round_trip_is_total() {
        // Every CLI/artifact rendering of a precision must parse back to
        // the same variant, in any casing, so command-line strings and
        // artifact metadata can never drift from the enum.
        for p in Precision::ALL {
            let shown = p.to_string();
            assert_eq!(shown.parse::<Precision>().unwrap(), p);
            assert_eq!(shown.to_ascii_lowercase().parse::<Precision>().unwrap(), p);
            assert_eq!(shown.to_ascii_uppercase().parse::<Precision>().unwrap(), p);
        }
        assert!("".parse::<Precision>().is_err());
        assert!("fp".parse::<Precision>().is_err());
    }

    #[test]
    fn artifact_tags_round_trip_and_reject_unknowns() {
        for p in Precision::ALL {
            assert_eq!(Precision::from_artifact_tag(p.artifact_tag()), Some(p));
        }
        // the three assigned tags are dense from zero; everything else is
        // an artifact decode error
        for tag in 3..=u8::MAX {
            assert_eq!(Precision::from_artifact_tag(tag), None);
        }
    }
}
