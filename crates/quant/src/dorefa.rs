//! DoReFa-style k-bit quantizers (paper Eqs. 8–9).
//!
//! * Activations (post-ReLU, bounded to `[0, 1]`):
//!   `r_o = quantize_k(r_i) = round((2^k − 1) · r_i) / (2^k − 1)` (Eq. 8).
//! * Weights (signed):
//!   `r_o = 2 · quantize_k( tanh(r_i) / (2·max|tanh(r)|) + 1/2 ) − 1`
//!   (Eq. 9), where the max runs over all weights of the layer.
//!
//! These are *fake-quantizers*: they return `f32` tensors whose values lie
//! exactly on the k-bit grid, which is how DoReFa trains (straight-through
//! estimator) and how the accuracy experiment of Fig. 12 evaluates INT8
//! MLCNN. The INT8 *datapath* representation of those grid values is
//! `mlcnn_quant::Fx8`.

use mlcnn_tensor::Tensor;

/// Uniform k-bit quantizer on `[0, 1]` (Eq. 8). Inputs are clamped to the
/// domain first, matching the "bounded activation" assumption.
pub fn quantize_unit(r: f32, k: u32) -> f32 {
    assert!((1..=16).contains(&k), "k must be in 1..=16");
    let levels = ((1u32 << k) - 1) as f32;
    let r = r.clamp(0.0, 1.0);
    (levels * r).round() / levels
}

/// Eq. 8 applied elementwise to a tensor of post-ReLU activations.
pub fn quantize_activations(t: &Tensor<f32>, k: u32) -> Tensor<f32> {
    t.map(|v| quantize_unit(v, k))
}

/// Eq. 9 applied to a layer's weight tensor: tanh-rescale into `[0, 1]`,
/// quantize, then affine back to `[-1, 1]`.
///
/// Returns the quantized weights together with the `max|tanh(w)|`
/// normalizer (needed to de-scale if the caller wants the original range).
pub fn quantize_weights(t: &Tensor<f32>, k: u32) -> (Tensor<f32>, f32) {
    let max_tanh = t
        .as_slice()
        .iter()
        .map(|v| v.tanh().abs())
        .fold(0.0_f32, f32::max);
    if max_tanh == 0.0 {
        // all-zero layer quantizes to all zeros
        return (t.clone(), 0.0);
    }
    let q = t.map(|v| {
        let unit = v.tanh() / (2.0 * max_tanh) + 0.5;
        2.0 * quantize_unit(unit, k) - 1.0
    });
    (q, max_tanh)
}

/// Eq. 9-style signed quantizer for *inputs that are not preceded by
/// ReLU* (the paper's input-layer case): values are tanh-squashed into
/// `[-1, 1]` and quantized on the signed grid.
pub fn quantize_signed(t: &Tensor<f32>, k: u32) -> Tensor<f32> {
    quantize_weights(t, k).0
}

/// Symmetric k-bit quantizer on `[-1, 1]`: `round(clamp(r)·L)/L` with
/// `L = 2^(k−1) − 1`. The post-training counterpart of Eq. 8: same grid
/// resolution, no training-time rescaling assumptions.
pub fn quantize_symmetric_unit(r: f32, k: u32) -> f32 {
    assert!((2..=16).contains(&k), "k must be in 2..=16");
    let levels = ((1u32 << (k - 1)) - 1) as f32;
    let r = r.clamp(-1.0, 1.0);
    (levels * r).round() / levels
}

/// Post-training weight quantization: snap to the symmetric k-bit grid
/// scaled by the layer's max absolute weight, *preserving the layer's
/// gain*. This is what evaluating an FP32-trained network at INT8
/// requires; Eq. 9's tanh transform is the quantization-aware-training
/// operator the paper trains with (see [`quantize_weights`]).
pub fn quantize_weights_ptq(t: &Tensor<f32>, k: u32) -> Tensor<f32> {
    let max = t.as_slice().iter().fold(0.0_f32, |m, v| m.max(v.abs()));
    if max == 0.0 {
        return t.clone();
    }
    t.map(|v| max * quantize_symmetric_unit(v / max, k))
}

/// Post-training activation quantization with dynamic range scaling: the
/// tensor's max magnitude sets the grid scale (standard dynamic PTQ).
pub fn quantize_activations_ptq(t: &Tensor<f32>, k: u32) -> Tensor<f32> {
    let mut out = t.clone();
    quantize_activations_ptq_slice(out.as_mut_slice(), k);
    out
}

/// In-place slice form of [`quantize_activations_ptq`] — the same fold
/// order and per-element transform, so the tensor wrapper and the
/// execution plan's activation-rounding step are bitwise identical.
pub fn quantize_activations_ptq_slice(xs: &mut [f32], k: u32) {
    let max = xs.iter().fold(0.0_f32, |m, v| m.max(v.abs()));
    if max == 0.0 {
        return;
    }
    for v in xs.iter_mut() {
        *v = max * quantize_symmetric_unit(*v / max, k);
    }
}

/// Worst-case and RMS quantization error of `q` against reference `r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantError {
    /// Largest absolute deviation.
    pub max_abs: f32,
    /// Root-mean-square deviation.
    pub rms: f32,
}

/// Measure elementwise quantization error.
pub fn quant_error(reference: &Tensor<f32>, quantized: &Tensor<f32>) -> QuantError {
    assert_eq!(reference.shape(), quantized.shape());
    let mut max_abs = 0.0_f32;
    let mut sq = 0.0_f64;
    for (&a, &b) in reference.as_slice().iter().zip(quantized.as_slice()) {
        let d = (a - b).abs();
        max_abs = max_abs.max(d);
        sq += (d as f64) * (d as f64);
    }
    QuantError {
        max_abs,
        rms: (sq / reference.len().max(1) as f64).sqrt() as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_tensor::{init, Shape4};

    #[test]
    fn quantize_unit_endpoints_are_fixed() {
        for k in [1, 2, 4, 8] {
            assert_eq!(quantize_unit(0.0, k), 0.0);
            assert_eq!(quantize_unit(1.0, k), 1.0);
        }
    }

    #[test]
    fn quantize_unit_1bit_is_threshold() {
        assert_eq!(quantize_unit(0.49, 1), 0.0);
        assert_eq!(quantize_unit(0.51, 1), 1.0);
    }

    #[test]
    fn quantize_unit_grid_spacing() {
        // k=2 -> levels {0, 1/3, 2/3, 1}
        assert_eq!(quantize_unit(0.30, 2), 1.0 / 3.0);
        assert_eq!(quantize_unit(0.55, 2), 2.0 / 3.0);
    }

    #[test]
    fn quantize_unit_clamps_domain() {
        assert_eq!(quantize_unit(-5.0, 4), 0.0);
        assert_eq!(quantize_unit(7.0, 4), 1.0);
    }

    #[test]
    fn quantize_unit_is_idempotent() {
        let mut rng = init::rng(3);
        let t = init::uniform(Shape4::hw(8, 8), 0.0, 1.0, &mut rng);
        let q1 = quantize_activations(&t, 8);
        let q2 = quantize_activations(&q1, 8);
        assert_eq!(q1, q2);
    }

    #[test]
    fn activation_error_bounded_by_half_step() {
        let mut rng = init::rng(4);
        let t = init::uniform(Shape4::hw(16, 16), 0.0, 1.0, &mut rng);
        for k in [2u32, 4, 8] {
            let q = quantize_activations(&t, k);
            let err = quant_error(&t, &q);
            let half_step = 0.5 / ((1u32 << k) - 1) as f32;
            assert!(
                err.max_abs <= half_step + 1e-6,
                "k={k}: {} > {half_step}",
                err.max_abs
            );
        }
    }

    #[test]
    fn weight_quantization_stays_in_unit_ball() {
        let mut rng = init::rng(5);
        let t = init::normal(Shape4::new(4, 4, 3, 3), 2.0, &mut rng);
        let (q, m) = quantize_weights(&t, 8);
        assert!(m > 0.0);
        assert!(q.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn weight_quantization_preserves_sign_and_order() {
        let t = Tensor::plane(1, 5, vec![-2.0, -0.5, 0.0, 0.5, 2.0]).unwrap();
        let (q, _) = quantize_weights(&t, 8);
        let s = q.as_slice();
        assert!(s[0] < s[1] && s[1] < s[2] && s[2] < s[3] && s[3] < s[4]);
        assert!(s[0] < 0.0 && s[4] > 0.0);
        assert!(s[2].abs() < 1e-2, "zero maps near zero, got {}", s[2]);
    }

    #[test]
    fn weight_quantization_hits_extremes() {
        // the largest-magnitude weight maps to ±1 exactly
        let t = Tensor::plane(1, 3, vec![-3.0, 0.1, 3.0]).unwrap();
        let (q, _) = quantize_weights(&t, 8);
        assert_eq!(q.as_slice()[0], -1.0);
        assert_eq!(q.as_slice()[2], 1.0);
    }

    #[test]
    fn all_zero_weights_stay_zero() {
        let t = Tensor::<f32>::zeros(Shape4::new(2, 2, 3, 3));
        let (q, m) = quantize_weights(&t, 8);
        assert_eq!(m, 0.0);
        assert!(q.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn more_bits_less_error() {
        let mut rng = init::rng(6);
        let t = init::normal(Shape4::new(8, 8, 3, 3), 0.5, &mut rng);
        let errs: Vec<f32> = [2u32, 4, 8]
            .iter()
            .map(|&k| {
                let (q, _) = quantize_weights(&t, k);
                quant_error(&t, &q).rms
            })
            .collect();
        assert!(errs[0] > errs[1] && errs[1] > errs[2], "{errs:?}");
    }

    #[test]
    fn signed_quantizer_is_odd_on_symmetric_input() {
        let t = Tensor::plane(1, 4, vec![-1.0, -0.25, 0.25, 1.0]).unwrap();
        let q = quantize_signed(&t, 8);
        let s = q.as_slice();
        assert!((s[0] + s[3]).abs() < 2e-2, "{s:?}");
        assert!((s[1] + s[2]).abs() < 2e-2, "{s:?}");
    }

    #[test]
    fn eight_bit_grid_values_fit_q6_datapath() {
        // every Eq.8 8-bit activation level must be representable in the
        // Fx8<6> operand format within half an LSB (they are ≤ 1.0).
        use crate::fixed::Q6;
        for i in 0..=255u32 {
            let v = i as f32 / 255.0;
            let fx = Q6::saturating_from_f32(v);
            assert!((fx.to_f32_exact() - v).abs() <= 0.5 / 64.0 + 1e-6);
        }
    }
}
