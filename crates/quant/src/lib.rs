//! # mlcnn-quant
//!
//! Precision substrate for the MLCNN reproduction.
//!
//! The paper evaluates the accelerator at three operand widths (Table VII):
//! 32-bit floating point, 16-bit floating point and 8-bit fixed point, and
//! quantizes weights/activations with the DoReFa-Net scheme (Eqs. 8–9).
//! None of that machinery exists in the offline crate set, so it is built
//! here from scratch:
//!
//! * [`f16`] — software IEEE 754 binary16 with round-to-nearest-even
//!   conversion and arithmetic that rounds through binary16 after every
//!   operation (matching what FP16 MAC hardware produces for single
//!   operations). Implements `mlcnn_tensor::Scalar`, so every kernel in the
//!   workspace runs at FP16 unchanged.
//! * [`fixed`] — saturating Q-format 8-bit fixed point (`Fx8`), the INT8
//!   operand model, plus widening i32 MAC helpers mirroring the
//!   accelerator's adder tree.
//! * [`dorefa`] — DoReFa-style k-bit quantizers: the straight-through
//!   uniform quantizer of Eq. 8 for post-ReLU activations and the
//!   tanh-rescaled weight quantizer of Eq. 9.
//! * [`precision`] — the [`Precision`](precision::Precision) enum shared
//!   with the accelerator model (bit width, MAC-slice multiplier under the
//!   fixed area budget, per-op energy class).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dorefa;
pub mod f16;
pub mod fixed;
pub mod precision;

pub use f16::F16;
pub use fixed::Fx8;
pub use precision::Precision;
