//! Saturating 8-bit Q-format fixed point — the INT8 operand model.
//!
//! The MLCNN accelerator's INT8 mode multiplies 8-bit fixed-point operands
//! in a Wallace-tree multiplier and accumulates in a wide adder tree.
//! [`Fx8<FRAC>`] models the *operand*: an `i8` holding `value · 2^FRAC`,
//! with round-to-nearest conversion and saturating arithmetic. The widening
//! MAC helpers ([`mac_i32`]) model the *datapath*: products and sums kept
//! in `i32` exactly, rounded once at writeback, which is how the hardware
//! avoids accumulation error.

use mlcnn_tensor::Scalar;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Q-format signed 8-bit fixed point with `FRAC` fractional bits.
///
/// Range: `[-2^(7-FRAC), 2^(7-FRAC) - 2^-FRAC]`; resolution `2^-FRAC`.
/// DoReFa-quantized operands live in `[-1, 1]`, so the workspace default is
/// `FRAC = 6` (range ±2, resolution 1/64), exported as [`Q6`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fx8<const FRAC: u32>(i8);

/// The workspace default format: Q2.6.
pub type Q6 = Fx8<6>;

impl<const FRAC: u32> Fx8<FRAC> {
    /// Scale factor `2^FRAC`.
    pub const SCALE: f32 = (1u32 << FRAC) as f32;

    /// Construct from the raw two's-complement representation.
    pub const fn from_raw(raw: i8) -> Self {
        Fx8(raw)
    }

    /// Raw representation.
    pub const fn raw(self) -> i8 {
        self.0
    }

    /// Largest representable value.
    pub const fn max_value() -> Self {
        Fx8(i8::MAX)
    }

    /// Smallest representable value.
    pub const fn min_value() -> Self {
        Fx8(i8::MIN)
    }

    /// Round-to-nearest, saturating conversion from `f32`.
    pub fn saturating_from_f32(v: f32) -> Self {
        let scaled = (v * Self::SCALE).round();
        Fx8(scaled.clamp(i8::MIN as f32, i8::MAX as f32) as i8)
    }

    /// Exact conversion to `f32`.
    pub fn to_f32_exact(self) -> f32 {
        self.0 as f32 / Self::SCALE
    }

    /// Widen to the `i32` accumulator domain (`value · 2^FRAC` as i32).
    pub const fn widen(self) -> i32 {
        self.0 as i32
    }

    /// Narrow an `i32` accumulator (in `2^(2·FRAC)` scale, i.e. a sum of
    /// raw products) back to the operand format with round-to-nearest and
    /// saturation — the writeback step of the INT8 datapath.
    pub fn narrow_product_sum(acc: i32) -> Self {
        let half = 1i32 << (FRAC - 1);
        // round half away from zero; shifting a negative value would round
        // toward -inf instead, so negate first.
        let rounded = if acc >= 0 {
            (acc + half) >> FRAC
        } else {
            -((-acc + half) >> FRAC)
        };
        Fx8(rounded.clamp(i8::MIN as i32, i8::MAX as i32) as i8)
    }
}

impl<const FRAC: u32> fmt::Debug for Fx8<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}q{}", self.to_f32_exact(), FRAC)
    }
}

impl<const FRAC: u32> fmt::Display for Fx8<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32_exact())
    }
}

impl<const FRAC: u32> Default for Fx8<FRAC> {
    fn default() -> Self {
        Fx8(0)
    }
}

impl<const FRAC: u32> Add for Fx8<FRAC> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fx8(self.0.saturating_add(rhs.0))
    }
}

impl<const FRAC: u32> AddAssign for Fx8<FRAC> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const FRAC: u32> Sub for Fx8<FRAC> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fx8(self.0.saturating_sub(rhs.0))
    }
}

impl<const FRAC: u32> Mul for Fx8<FRAC> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // widen, multiply exactly, round the 2·FRAC-scale product back.
        Self::narrow_product_sum(self.widen() * rhs.widen())
    }
}

impl<const FRAC: u32> Div for Fx8<FRAC> {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        if rhs.0 == 0 {
            // saturate like a hardware divider's overflow flag
            return if self.0 >= 0 {
                Self::max_value()
            } else {
                Self::min_value()
            };
        }
        let num = (self.widen() << FRAC) as i64;
        let den = rhs.widen() as i64;
        let q = (num + den.signum() * (den.abs() / 2)) / den; // round half away
        Fx8(q.clamp(i8::MIN as i64, i8::MAX as i64) as i8)
    }
}

impl<const FRAC: u32> Neg for Fx8<FRAC> {
    type Output = Self;
    fn neg(self) -> Self {
        Fx8(self.0.checked_neg().unwrap_or(i8::MAX))
    }
}

impl<const FRAC: u32> Scalar for Fx8<FRAC> {
    fn zero() -> Self {
        Fx8(0)
    }
    fn one() -> Self {
        Self::saturating_from_f32(1.0)
    }
    fn from_f32(v: f32) -> Self {
        Self::saturating_from_f32(v)
    }
    fn to_f32(self) -> f32 {
        self.to_f32_exact()
    }
}

/// Exact widening multiply–accumulate: `acc + Σ aᵢ·bᵢ` in the `2^(2·FRAC)`
/// accumulator scale. Mirrors the accelerator's adder tree, which never
/// rounds between taps.
pub fn mac_i32<const FRAC: u32>(acc: i32, a: &[Fx8<FRAC>], b: &[Fx8<FRAC>]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = acc;
    for (&x, &y) in a.iter().zip(b) {
        acc += x.widen() * y.widen();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_roundtrip_on_grid() {
        // every representable Q2.6 value roundtrips exactly
        for raw in i8::MIN..=i8::MAX {
            let v = Q6::from_raw(raw);
            assert_eq!(Q6::saturating_from_f32(v.to_f32_exact()), v);
        }
    }

    #[test]
    fn saturating_conversion_clamps() {
        assert_eq!(Q6::saturating_from_f32(100.0), Q6::max_value());
        assert_eq!(Q6::saturating_from_f32(-100.0), Q6::min_value());
        assert_eq!(Q6::max_value().to_f32_exact(), 127.0 / 64.0);
    }

    #[test]
    fn rounds_to_nearest() {
        // 1/128 is exactly half an LSB: f32::round rounds half away from 0.
        assert_eq!(Q6::saturating_from_f32(1.0 / 128.0).raw(), 1);
        assert_eq!(Q6::saturating_from_f32(0.99 / 128.0).raw(), 0);
        assert_eq!(Q6::saturating_from_f32(-1.0 / 128.0).raw(), -1);
    }

    #[test]
    fn add_saturates() {
        let a = Q6::saturating_from_f32(1.5);
        assert_eq!(a + a, Q6::max_value());
        let b = Q6::saturating_from_f32(-1.5);
        assert_eq!(b + b, Q6::min_value());
        assert_eq!(
            (Q6::saturating_from_f32(0.5) + Q6::saturating_from_f32(0.25)).to_f32_exact(),
            0.75
        );
    }

    #[test]
    fn mul_matches_real_arithmetic_within_half_lsb() {
        for araw in (-64..=64).step_by(7) {
            for braw in (-64..=64).step_by(5) {
                let a = Q6::from_raw(araw);
                let b = Q6::from_raw(braw);
                let exact = a.to_f32_exact() * b.to_f32_exact();
                let got = (a * b).to_f32_exact();
                assert!(
                    (got - exact).abs() <= 0.5 / 64.0 + 1e-6,
                    "{a:?} * {b:?} = {got}, want ~{exact}"
                );
            }
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        let x = Q6::saturating_from_f32(0.75);
        assert_eq!(x * Q6::one(), x);
        assert_eq!(x * Q6::zero(), Q6::zero());
    }

    #[test]
    fn neg_saturates_at_min() {
        assert_eq!((-Q6::min_value()).raw(), i8::MAX);
        assert_eq!((-Q6::saturating_from_f32(0.5)).to_f32_exact(), -0.5);
    }

    #[test]
    fn div_basic_and_by_zero() {
        let a = Q6::saturating_from_f32(1.0);
        let b = Q6::saturating_from_f32(0.5);
        // true quotient 2.0 exceeds max (127/64 ≈ 1.984): saturates
        assert_eq!(a / b, Q6::max_value());
        assert_eq!((b / a).to_f32_exact(), 0.5);
        assert_eq!(a / Q6::zero(), Q6::max_value());
        assert_eq!((-a) / Q6::zero(), Q6::min_value());
    }

    #[test]
    fn widening_mac_is_exact() {
        let a: Vec<Q6> = (1..=10).map(|i| Q6::from_raw(i * 3)).collect();
        let b: Vec<Q6> = (1..=10).map(|i| Q6::from_raw(i * -2)).collect();
        let acc = mac_i32(0, &a, &b);
        let expect: i32 = (1..=10).map(|i| (i * 3) * (i * -2)).sum();
        assert_eq!(acc, expect); // -6 * 385 = -2310, exact in i32
                                 // narrow once at the end: -2310 / 64 = -36.09… rounds to -36
        let narrowed = Q6::narrow_product_sum(acc);
        assert_eq!(narrowed.raw(), -36);
        // a sum beyond the operand range saturates at writeback
        assert_eq!(Q6::narrow_product_sum(-1 << 20), Q6::min_value());
        assert_eq!(Q6::narrow_product_sum(1 << 20), Q6::max_value());
    }

    #[test]
    fn narrow_product_sum_rounds_symmetric() {
        // +32 in 2^12 scale is half an output LSB -> rounds away from zero
        assert_eq!(Q6::narrow_product_sum(32).raw(), 1);
        assert_eq!(Q6::narrow_product_sum(-32).raw(), -1);
        assert_eq!(Q6::narrow_product_sum(31).raw(), 0);
    }

    #[test]
    fn scalar_trait_relu_and_ordering() {
        assert_eq!(Q6::from_f32(-0.5).relu(), Q6::zero());
        assert!(Q6::from_f32(0.25) < Q6::from_f32(0.5));
    }

    #[test]
    fn tensor_kernels_run_at_q6() {
        use mlcnn_tensor::pool::sum_pool2d;
        use mlcnn_tensor::{Shape4, Tensor};
        let t = Tensor::from_fn(Shape4::hw(2, 2), |_, _, h, w| {
            Q6::saturating_from_f32(0.25 * (h * 2 + w) as f32).to_f32_exact()
        })
        .cast::<Q6>();
        let s = sum_pool2d(&t, 2, 2).unwrap();
        assert_eq!(s.at(0, 0, 0, 0).to_f32_exact(), 0.0 + 0.25 + 0.5 + 0.75);
    }
}
