//! Property tests for the precision substrate.

use mlcnn_quant::dorefa;
use mlcnn_quant::fixed::Q6;
use mlcnn_quant::F16;
use mlcnn_tensor::{Shape4, Tensor};
use proptest::prelude::*;

proptest! {
    #[test]
    fn f16_conversion_error_within_half_ulp(v in -60000.0f32..60000.0) {
        let h = F16::from_f32_rne(v);
        let back = h.to_f32_exact();
        // ulp at |v|: 2^(floor(log2 |v|) - 10), floored at the subnormal step
        let ulp = if v == 0.0 {
            2.0f32.powi(-24)
        } else {
            let e = v.abs().log2().floor() as i32;
            2.0f32.powi((e - 10).max(-24))
        };
        prop_assert!(
            (back - v).abs() <= 0.5 * ulp + f32::EPSILON,
            "v={v} back={back} ulp={ulp}"
        );
    }

    #[test]
    fn f16_negation_commutes_with_conversion(v in -60000.0f32..60000.0) {
        let a = (-F16::from_f32_rne(v)).to_f32_exact();
        let b = F16::from_f32_rne(-v).to_f32_exact();
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn f16_ordering_preserved(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let (ha, hb) = (F16::from_f32_rne(a), F16::from_f32_rne(b));
        if a < b {
            prop_assert!(ha <= hb, "{a} < {b} but {ha:?} > {hb:?}");
        }
    }

    #[test]
    fn f16_addition_commutative(a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let (ha, hb) = (F16::from_f32_rne(a), F16::from_f32_rne(b));
        prop_assert_eq!((ha + hb).to_bits(), (hb + ha).to_bits());
    }

    #[test]
    fn q6_roundtrip_error_within_half_lsb(v in -1.9f32..1.9) {
        let q = Q6::saturating_from_f32(v);
        prop_assert!((q.to_f32_exact() - v).abs() <= 0.5 / 64.0 + 1e-6);
    }

    #[test]
    fn q6_add_is_commutative_and_bounded(a in -128i32..=127, b in -128i32..=127) {
        let (qa, qb) = (Q6::from_raw(a as i8), Q6::from_raw(b as i8));
        prop_assert_eq!(qa + qb, qb + qa);
        let sum = (qa + qb).to_f32_exact();
        prop_assert!((-2.0..2.0).contains(&sum));
    }

    #[test]
    fn q6_mul_error_bounded(a in -64i32..=64, b in -64i32..=64) {
        let (qa, qb) = (Q6::from_raw(a as i8), Q6::from_raw(b as i8));
        let exact = qa.to_f32_exact() * qb.to_f32_exact();
        if exact.abs() < 1.9 {
            prop_assert!(((qa * qb).to_f32_exact() - exact).abs() <= 0.5 / 64.0 + 1e-6);
        }
    }

    #[test]
    fn dorefa_activation_on_grid(v in -2.0f32..3.0, k in 1u32..9) {
        let q = dorefa::quantize_unit(v, k);
        let levels = ((1u32 << k) - 1) as f32;
        let snapped = (q * levels).round() / levels;
        prop_assert!((q - snapped).abs() < 1e-6, "{q} not on the {k}-bit grid");
        prop_assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn dorefa_weights_bounded_and_monotone(seed in 0u64..500, k in 2u32..9) {
        let mut rng = mlcnn_tensor::init::rng(seed);
        let t = mlcnn_tensor::init::normal(Shape4::hw(4, 4), 1.0, &mut rng);
        let (q, _) = dorefa::quantize_weights(&t, k);
        for (&a, &b) in t.as_slice().iter().zip(t.as_slice().iter().skip(1)) {
            let qa = q.as_slice()[t.as_slice().iter().position(|&x| x == a).unwrap()];
            let qb = q.as_slice()[t.as_slice().iter().position(|&x| x == b).unwrap()];
            if a < b {
                prop_assert!(qa <= qb, "monotonicity violated: {a}->{qa}, {b}->{qb}");
            }
        }
        prop_assert!(q.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn fake_quantization_is_idempotent(seed in 0u64..300, k in 2u32..9) {
        let mut rng = mlcnn_tensor::init::rng(seed);
        let t = mlcnn_tensor::init::uniform(Shape4::hw(4, 4), 0.0, 1.0, &mut rng);
        let once = dorefa::quantize_activations(&t, k);
        let twice = dorefa::quantize_activations(&once, k);
        prop_assert_eq!(once, twice);
    }
}

#[test]
fn f16_tensor_cast_roundtrip_on_grid_values() {
    // values exactly representable in f16 survive a tensor cast cycle
    let vals: Vec<f32> = vec![0.0, 0.5, -1.5, 2048.0, -0.125, 65504.0];
    let t = Tensor::plane(1, vals.len(), vals.clone()).unwrap();
    let f: Tensor<F16> = t.cast();
    let back: Vec<f32> = f.as_slice().iter().map(|h| h.to_f32_exact()).collect();
    assert_eq!(back, vals);
}
