//! End-to-end registry behavior against real directories: open-time
//! validation through the `R0xx` gate, routing, lazy compilation with the
//! bounded cache, and publish/rollback transitions.

use mlcnn_nn::spec::build_network;
use mlcnn_nn::LayerSpec;
use mlcnn_quant::Precision;
use mlcnn_registry::crc32::crc32;
use mlcnn_registry::{Artifact, ArtifactError, ModelRegistry, RegistryError};
use mlcnn_tensor::{Shape4, Tensor};
use std::path::PathBuf;

/// A fresh scratch directory under the OS temp root, unique per test and
/// per process, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("mlcnn-registry-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn write(&self, artifact: &Artifact) {
        std::fs::write(
            self.0.join(artifact.file_name()),
            artifact.encode().unwrap(),
        )
        .unwrap();
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A tiny trained model at a given revision; `seed` varies the weights so
/// different revisions produce different plans.
fn make(model: &str, revision: u64, seed: u64) -> Artifact {
    let specs = vec![
        LayerSpec::Conv {
            out_ch: 2,
            k: 3,
            stride: 1,
            pad: 0,
        },
        LayerSpec::ReLU,
        LayerSpec::Flatten,
        LayerSpec::Linear { out: 3 },
    ];
    let input = Shape4::new(1, 1, 6, 6);
    let mut net = build_network(&specs, input, seed).unwrap();
    Artifact {
        model: model.into(),
        revision,
        specs,
        input,
        precision: Precision::Fp32,
        params: net.export_params(),
    }
}

#[test]
fn open_routes_and_caches() {
    let dir = Scratch::new("open-routes");
    dir.write(&make("alpha", 1, 10));
    dir.write(&make("alpha", 2, 20));
    dir.write(&make("beta", 1, 30));
    // non-artifact files are ignored
    std::fs::write(dir.0.join("README.txt"), b"not a model").unwrap();

    let reg = ModelRegistry::open(&dir.0).unwrap();
    assert_eq!(reg.models(), vec!["alpha".to_string(), "beta".to_string()]);
    // active = highest revision on disk
    assert_eq!(reg.active("alpha").unwrap(), 2);
    assert_eq!(reg.active("beta").unwrap(), 1);

    let status = reg.status();
    assert_eq!(status.len(), 2);
    assert_eq!(status[0].model, "alpha");
    assert_eq!(status[0].revisions, vec![1, 2]);
    assert_eq!(status[0].precision, Precision::Fp32);

    // default revision resolves to the active one
    let (rev, plan) = reg.plan("alpha", None, Precision::Fp32).unwrap();
    assert_eq!(rev, 2);
    // second lookup is a cache hit on the same compiled plan
    let (_, plan2) = reg.plan("alpha", None, Precision::Fp32).unwrap();
    assert!(std::sync::Arc::ptr_eq(&plan, &plan2));
    assert_eq!(reg.cache().len(), 1);

    // pinned revision and a different precision are distinct entries
    let (rev1, _) = reg.plan("alpha", Some(1), Precision::Fp32).unwrap();
    assert_eq!(rev1, 1);
    reg.plan("alpha", Some(2), Precision::Int8).unwrap();
    assert_eq!(reg.cache().len(), 3);

    assert!(matches!(
        reg.plan("gamma", None, Precision::Fp32),
        Err(RegistryError::UnknownModel(_))
    ));
    assert!(matches!(
        reg.plan("alpha", Some(9), Precision::Fp32),
        Err(RegistryError::UnknownRevision { revision: 9, .. })
    ));
}

#[test]
fn publish_and_rollback_transitions() {
    let dir = Scratch::new("publish");
    dir.write(&make("m", 1, 1));
    dir.write(&make("m", 2, 2));
    dir.write(&make("m", 3, 3));
    let reg = ModelRegistry::open(&dir.0).unwrap();
    assert_eq!(reg.active("m").unwrap(), 3);

    // nothing published yet → nothing to roll back to
    assert!(matches!(
        reg.rollback("m"),
        Err(RegistryError::NoHistory(_))
    ));

    // publish an older revision (e.g. pinning back a regression)
    assert_eq!(reg.publish("m", 1).unwrap(), (1, 3));
    assert_eq!(reg.active("m").unwrap(), 1);
    // publishing the active revision is a no-op
    assert_eq!(reg.publish("m", 1).unwrap(), (1, 1));

    assert_eq!(reg.publish("m", 2).unwrap(), (2, 1));
    // rollback pops in publish order: 2 → 1 → 3 → empty
    assert_eq!(reg.rollback("m").unwrap(), (1, 2));
    assert_eq!(reg.rollback("m").unwrap(), (3, 1));
    assert!(matches!(
        reg.rollback("m"),
        Err(RegistryError::NoHistory(_))
    ));

    assert!(matches!(
        reg.publish("m", 7),
        Err(RegistryError::UnknownRevision { revision: 7, .. })
    ));
    assert!(matches!(
        reg.publish("nope", 1),
        Err(RegistryError::UnknownModel(_))
    ));
}

#[test]
fn corrupt_artifact_rejects_open_with_r001() {
    let dir = Scratch::new("corrupt");
    dir.write(&make("good", 1, 1));
    let mut bytes = make("bad", 1, 2).encode().unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(dir.0.join("bad@1.mlcnn"), &bytes).unwrap();

    let err = ModelRegistry::open(&dir.0).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("R001"), "missing R001 in: {msg}");
    assert!(msg.contains("bad@1.mlcnn"), "missing file name in: {msg}");
}

#[test]
fn truncated_artifact_rejects_open_with_r001() {
    let dir = Scratch::new("truncated");
    let bytes = make("m", 1, 1).encode().unwrap();
    std::fs::write(dir.0.join("m@1.mlcnn"), &bytes[..bytes.len() / 3]).unwrap();
    let msg = ModelRegistry::open(&dir.0).unwrap_err().to_string();
    assert!(msg.contains("R001"), "missing R001 in: {msg}");
}

#[test]
fn param_mismatch_rejects_open_with_r002() {
    let dir = Scratch::new("mismatch");
    let mut artifact = make("m", 1, 1);
    // conv bias with the wrong width
    artifact.params[1] =
        mlcnn_tensor::Tensor::from_vec(Shape4::new(1, 1, 1, 5), vec![0.0; 5]).unwrap();
    dir.write(&artifact);
    let msg = ModelRegistry::open(&dir.0).unwrap_err().to_string();
    assert!(msg.contains("R002"), "missing R002 in: {msg}");
}

#[test]
fn incompilable_spec_rejects_open_with_r003() {
    let dir = Scratch::new("incompilable");
    let mut artifact = make("m", 1, 1);
    artifact.specs.push(LayerSpec::BatchNorm);
    dir.write(&artifact);
    let msg = ModelRegistry::open(&dir.0).unwrap_err().to_string();
    assert!(msg.contains("R003"), "missing R003 in: {msg}");
}

#[test]
fn renamed_artifact_rejects_open() {
    // a file whose name claims a different identity than its metadata
    // must not route under either name
    let dir = Scratch::new("renamed");
    let artifact = make("m", 1, 1);
    std::fs::write(dir.0.join("other@5.mlcnn"), artifact.encode().unwrap()).unwrap();
    let msg = ModelRegistry::open(&dir.0).unwrap_err().to_string();
    assert!(msg.contains("R001"), "missing R001 in: {msg}");
    assert!(msg.contains("does not match"), "missing cause in: {msg}");
}

#[test]
fn empty_directory_rejects_open() {
    let dir = Scratch::new("empty");
    assert!(matches!(
        ModelRegistry::open(&dir.0),
        Err(RegistryError::Io(_))
    ));
}

#[test]
fn file_changed_under_registry_fails_at_plan_not_panic() {
    let dir = Scratch::new("swapped-file");
    dir.write(&make("m", 1, 1));
    let reg = ModelRegistry::open(&dir.0).unwrap();
    // overwrite the artifact with garbage after open — the lazy compile
    // path must surface a typed error
    std::fs::write(dir.0.join("m@1.mlcnn"), b"not an artifact").unwrap();
    assert!(matches!(
        reg.plan("m", None, Precision::Fp32),
        Err(RegistryError::Artifact {
            error: ArtifactError::Truncated(_) | ArtifactError::ChecksumMismatch { .. },
            ..
        })
    ));
}

#[test]
fn lru_byte_budget_is_respected_across_models() {
    let dir = Scratch::new("lru");
    dir.write(&make("a", 1, 1));
    dir.write(&make("b", 1, 2));
    dir.write(&make("c", 1, 3));
    // all three models are structurally identical, so one compiled plan's
    // estimated bytes is the per-entry cost; budget for exactly two
    let probe = ModelRegistry::open(&dir.0).unwrap();
    probe.plan("a", None, Precision::Fp32).unwrap();
    let per_plan = probe.cache().stats().resident_bytes;
    assert!(per_plan > 0, "plan cost estimate must be non-zero");
    drop(probe);

    let reg = ModelRegistry::open_with_cache(&dir.0, per_plan * 2).unwrap();
    reg.plan("a", None, Precision::Fp32).unwrap();
    reg.plan("b", None, Precision::Fp32).unwrap();
    reg.plan("c", None, Precision::Fp32).unwrap();
    assert_eq!(reg.cache().len(), 2, "byte budget not enforced");
    let stats = reg.cache().stats();
    assert_eq!(stats.resident_bytes, per_plan * 2);
    assert_eq!(stats.capacity_bytes, per_plan * 2);
    // evicted plans recompile transparently
    reg.plan("a", None, Precision::Fp32).unwrap();
}

/// Corrupt the first stored layer hash of an encoded artifact, fixing the
/// HASHES section CRC and the whole-file CRC so only the *content* lies —
/// the framing stays valid and decode must catch the mismatch itself.
fn flip_stored_hash(mut bytes: Vec<u8>, hash_count: usize) -> Vec<u8> {
    let payload_len = 4 + hash_count * 32;
    let len = bytes.len();
    // layout from the end: [..][HASHES payload][section CRC (4)][file CRC (4)]
    let payload_start = len - 8 - payload_len;
    bytes[payload_start + 4] ^= 0xFF; // first byte of the first hash
    let section_crc = crc32(&bytes[payload_start..payload_start + payload_len]);
    bytes[len - 8..len - 4].copy_from_slice(&section_crc.to_be_bytes());
    let file_crc = crc32(&bytes[..len - 4]);
    bytes[len - 4..].copy_from_slice(&file_crc.to_be_bytes());
    bytes
}

#[test]
fn stored_hash_mismatch_is_typed_and_rejects_open_with_r005() {
    let artifact = make("m", 1, 1);
    let bytes = flip_stored_hash(artifact.encode().unwrap(), 2);
    assert!(matches!(
        Artifact::decode(&bytes),
        Err(ArtifactError::HashMismatch(_))
    ));

    let dir = Scratch::new("hash-mismatch");
    std::fs::write(dir.0.join("m@1.mlcnn"), &bytes).unwrap();
    let msg = ModelRegistry::open(&dir.0).unwrap_err().to_string();
    assert!(msg.contains("R005"), "missing R005 in: {msg}");
    assert!(msg.contains("m@1.mlcnn"), "missing file name in: {msg}");
}

#[test]
fn pre_dedup_artifact_without_hashes_still_decodes() {
    // strip the trailing HASHES section (id + len + payload + CRC) and
    // re-seal the file CRC: the byte stream a pre-dedup writer produced
    let artifact = make("m", 1, 7);
    let mut bytes = artifact.encode().unwrap();
    let payload_len = 4 + 2 * 32;
    let section_len = 1 + 4 + payload_len + 4;
    let len = bytes.len();
    bytes.drain(len - 4 - section_len..len - 4);
    let len = bytes.len();
    let file_crc = crc32(&bytes[..len - 4]);
    bytes[len - 4..].copy_from_slice(&file_crc.to_be_bytes());

    let decoded = Artifact::decode(&bytes).unwrap();
    assert_eq!(decoded, artifact);
    decoded.validate().unwrap();
}

#[test]
fn install_cow_revision_shares_unchanged_layers() {
    let dir = Scratch::new("cow-install");
    let base = make("m", 1, 1);
    dir.write(&base);
    let reg = ModelRegistry::open(&dir.0).unwrap();

    // derive revision 2 replacing only the linear layer's parameters
    // (param-layer ordinal 1: conv is 0, linear is 1)
    let linear_layer = 1;
    let w_shape = base.params[2].shape();
    let b_shape = base.params[3].shape();
    let next = base
        .with_layer_params(
            2,
            linear_layer,
            Tensor::from_fn(w_shape, |_, _, h, w| (h as f32 - w as f32) / 8.0),
            Tensor::from_fn(b_shape, |_, _, _, w| w as f32 / 16.0),
        )
        .unwrap();
    assert_eq!(reg.install(&next).unwrap(), 2);
    // the file landed on disk and a re-open sees it
    assert!(dir.0.join("m@2.mlcnn").exists());

    // installing the same identity again is rejected
    assert!(matches!(
        reg.install(&next),
        Err(RegistryError::RevisionExists { revision: 2, .. })
    ));

    // active is still revision 1 until published
    assert_eq!(reg.active("m").unwrap(), 1);
    let (_, p1) = reg.plan("m", Some(1), Precision::Fp32).unwrap();
    let (_, p2) = reg.plan("m", Some(2), Precision::Fp32).unwrap();

    // the conv layer (unchanged) shares its baked segment; the linear
    // layer (replaced) does not
    let h1 = p1.param_handles();
    let h2 = p2.param_handles();
    assert_eq!(h1.len(), h2.len());
    let shared: Vec<bool> = h1
        .iter()
        .zip(&h2)
        .map(|(a, b)| a.addr() == b.addr())
        .collect();
    assert!(shared.iter().any(|&s| s), "no layer shared: {shared:?}");
    assert!(!shared.iter().all(|&s| s), "every layer shared: {shared:?}");
    assert!(reg.segment_stats().hits > 0, "dedup index saw no hits");

    reg.publish("m", 2).unwrap();
    assert_eq!(reg.active("m").unwrap(), 2);
}

#[test]
fn gc_reports_then_prunes_unreferenced_revisions() {
    let dir = Scratch::new("gc");
    dir.write(&make("m", 1, 1));
    dir.write(&make("m", 2, 2));
    dir.write(&make("m", 3, 3));
    let reg = ModelRegistry::open(&dir.0).unwrap();

    // active = 3; revisions 1 and 2 are unreachable
    let plan = reg.gc_plan();
    let ids: Vec<(String, u64)> = plan.iter().map(|c| (c.model.clone(), c.revision)).collect();
    assert_eq!(ids, vec![("m".to_string(), 1), ("m".to_string(), 2)]);
    assert!(plan.iter().all(|c| c.bytes > 0));

    // publishing 1 makes it reachable (history [3, 1]); only 2 collects
    reg.publish("m", 1).unwrap();
    reg.plan("m", Some(2), Precision::Fp32).unwrap();
    let pruned = reg.gc(true).unwrap();
    assert_eq!(pruned.len(), 1);
    assert_eq!(pruned[0].revision, 2);
    assert!(!dir.0.join("m@2.mlcnn").exists());
    assert!(dir.0.join("m@1.mlcnn").exists());
    assert!(dir.0.join("m@3.mlcnn").exists());

    // the pruned revision no longer routes and its plan left the cache
    assert!(matches!(
        reg.plan("m", Some(2), Precision::Fp32),
        Err(RegistryError::UnknownRevision { revision: 2, .. })
    ));
    assert!(reg.gc_plan().is_empty());
    // rollback history is intact: 1 -> 3
    assert_eq!(reg.rollback("m").unwrap(), (3, 1));
}

#[test]
fn identical_models_share_every_segment_across_names() {
    // two models with byte-identical layers: the second compilation
    // should allocate nothing new in the dedup index
    let dir = Scratch::new("cross-model-dedup");
    let a = make("a", 1, 42);
    let mut b = make("a", 1, 42);
    b.model = "b".into();
    dir.write(&a);
    dir.write(&b);
    let reg = ModelRegistry::open(&dir.0).unwrap();

    let (_, pa) = reg.plan("a", None, Precision::Fp32).unwrap();
    let before = reg.segment_stats().resident_bytes;
    let (_, pb) = reg.plan("b", None, Precision::Fp32).unwrap();
    let after = reg.segment_stats().resident_bytes;
    assert_eq!(before, after, "second model grew the dedup index");

    let ha = pa.param_handles();
    let hb = pb.param_handles();
    assert!(!ha.is_empty());
    for (x, y) in ha.iter().zip(&hb) {
        assert_eq!(x.addr(), y.addr(), "segment not shared across models");
    }
}
