//! End-to-end registry behavior against real directories: open-time
//! validation through the `R0xx` gate, routing, lazy compilation with the
//! bounded cache, and publish/rollback transitions.

use mlcnn_nn::spec::build_network;
use mlcnn_nn::LayerSpec;
use mlcnn_quant::Precision;
use mlcnn_registry::{Artifact, ArtifactError, ModelRegistry, RegistryError};
use mlcnn_tensor::Shape4;
use std::path::PathBuf;

/// A fresh scratch directory under the OS temp root, unique per test and
/// per process, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("mlcnn-registry-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn write(&self, artifact: &Artifact) {
        std::fs::write(
            self.0.join(artifact.file_name()),
            artifact.encode().unwrap(),
        )
        .unwrap();
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A tiny trained model at a given revision; `seed` varies the weights so
/// different revisions produce different plans.
fn make(model: &str, revision: u64, seed: u64) -> Artifact {
    let specs = vec![
        LayerSpec::Conv {
            out_ch: 2,
            k: 3,
            stride: 1,
            pad: 0,
        },
        LayerSpec::ReLU,
        LayerSpec::Flatten,
        LayerSpec::Linear { out: 3 },
    ];
    let input = Shape4::new(1, 1, 6, 6);
    let mut net = build_network(&specs, input, seed).unwrap();
    Artifact {
        model: model.into(),
        revision,
        specs,
        input,
        precision: Precision::Fp32,
        params: net.export_params(),
    }
}

#[test]
fn open_routes_and_caches() {
    let dir = Scratch::new("open-routes");
    dir.write(&make("alpha", 1, 10));
    dir.write(&make("alpha", 2, 20));
    dir.write(&make("beta", 1, 30));
    // non-artifact files are ignored
    std::fs::write(dir.0.join("README.txt"), b"not a model").unwrap();

    let reg = ModelRegistry::open(&dir.0).unwrap();
    assert_eq!(reg.models(), vec!["alpha".to_string(), "beta".to_string()]);
    // active = highest revision on disk
    assert_eq!(reg.active("alpha").unwrap(), 2);
    assert_eq!(reg.active("beta").unwrap(), 1);

    let status = reg.status();
    assert_eq!(status.len(), 2);
    assert_eq!(status[0].model, "alpha");
    assert_eq!(status[0].revisions, vec![1, 2]);
    assert_eq!(status[0].precision, Precision::Fp32);

    // default revision resolves to the active one
    let (rev, plan) = reg.plan("alpha", None, Precision::Fp32).unwrap();
    assert_eq!(rev, 2);
    // second lookup is a cache hit on the same compiled plan
    let (_, plan2) = reg.plan("alpha", None, Precision::Fp32).unwrap();
    assert!(std::sync::Arc::ptr_eq(&plan, &plan2));
    assert_eq!(reg.cache().len(), 1);

    // pinned revision and a different precision are distinct entries
    let (rev1, _) = reg.plan("alpha", Some(1), Precision::Fp32).unwrap();
    assert_eq!(rev1, 1);
    reg.plan("alpha", Some(2), Precision::Int8).unwrap();
    assert_eq!(reg.cache().len(), 3);

    assert!(matches!(
        reg.plan("gamma", None, Precision::Fp32),
        Err(RegistryError::UnknownModel(_))
    ));
    assert!(matches!(
        reg.plan("alpha", Some(9), Precision::Fp32),
        Err(RegistryError::UnknownRevision { revision: 9, .. })
    ));
}

#[test]
fn publish_and_rollback_transitions() {
    let dir = Scratch::new("publish");
    dir.write(&make("m", 1, 1));
    dir.write(&make("m", 2, 2));
    dir.write(&make("m", 3, 3));
    let reg = ModelRegistry::open(&dir.0).unwrap();
    assert_eq!(reg.active("m").unwrap(), 3);

    // nothing published yet → nothing to roll back to
    assert!(matches!(
        reg.rollback("m"),
        Err(RegistryError::NoHistory(_))
    ));

    // publish an older revision (e.g. pinning back a regression)
    assert_eq!(reg.publish("m", 1).unwrap(), (1, 3));
    assert_eq!(reg.active("m").unwrap(), 1);
    // publishing the active revision is a no-op
    assert_eq!(reg.publish("m", 1).unwrap(), (1, 1));

    assert_eq!(reg.publish("m", 2).unwrap(), (2, 1));
    // rollback pops in publish order: 2 → 1 → 3 → empty
    assert_eq!(reg.rollback("m").unwrap(), (1, 2));
    assert_eq!(reg.rollback("m").unwrap(), (3, 1));
    assert!(matches!(
        reg.rollback("m"),
        Err(RegistryError::NoHistory(_))
    ));

    assert!(matches!(
        reg.publish("m", 7),
        Err(RegistryError::UnknownRevision { revision: 7, .. })
    ));
    assert!(matches!(
        reg.publish("nope", 1),
        Err(RegistryError::UnknownModel(_))
    ));
}

#[test]
fn corrupt_artifact_rejects_open_with_r001() {
    let dir = Scratch::new("corrupt");
    dir.write(&make("good", 1, 1));
    let mut bytes = make("bad", 1, 2).encode().unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(dir.0.join("bad@1.mlcnn"), &bytes).unwrap();

    let err = ModelRegistry::open(&dir.0).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("R001"), "missing R001 in: {msg}");
    assert!(msg.contains("bad@1.mlcnn"), "missing file name in: {msg}");
}

#[test]
fn truncated_artifact_rejects_open_with_r001() {
    let dir = Scratch::new("truncated");
    let bytes = make("m", 1, 1).encode().unwrap();
    std::fs::write(dir.0.join("m@1.mlcnn"), &bytes[..bytes.len() / 3]).unwrap();
    let msg = ModelRegistry::open(&dir.0).unwrap_err().to_string();
    assert!(msg.contains("R001"), "missing R001 in: {msg}");
}

#[test]
fn param_mismatch_rejects_open_with_r002() {
    let dir = Scratch::new("mismatch");
    let mut artifact = make("m", 1, 1);
    // conv bias with the wrong width
    artifact.params[1] =
        mlcnn_tensor::Tensor::from_vec(Shape4::new(1, 1, 1, 5), vec![0.0; 5]).unwrap();
    dir.write(&artifact);
    let msg = ModelRegistry::open(&dir.0).unwrap_err().to_string();
    assert!(msg.contains("R002"), "missing R002 in: {msg}");
}

#[test]
fn incompilable_spec_rejects_open_with_r003() {
    let dir = Scratch::new("incompilable");
    let mut artifact = make("m", 1, 1);
    artifact.specs.push(LayerSpec::BatchNorm);
    dir.write(&artifact);
    let msg = ModelRegistry::open(&dir.0).unwrap_err().to_string();
    assert!(msg.contains("R003"), "missing R003 in: {msg}");
}

#[test]
fn renamed_artifact_rejects_open() {
    // a file whose name claims a different identity than its metadata
    // must not route under either name
    let dir = Scratch::new("renamed");
    let artifact = make("m", 1, 1);
    std::fs::write(dir.0.join("other@5.mlcnn"), artifact.encode().unwrap()).unwrap();
    let msg = ModelRegistry::open(&dir.0).unwrap_err().to_string();
    assert!(msg.contains("R001"), "missing R001 in: {msg}");
    assert!(msg.contains("does not match"), "missing cause in: {msg}");
}

#[test]
fn empty_directory_rejects_open() {
    let dir = Scratch::new("empty");
    assert!(matches!(
        ModelRegistry::open(&dir.0),
        Err(RegistryError::Io(_))
    ));
}

#[test]
fn file_changed_under_registry_fails_at_plan_not_panic() {
    let dir = Scratch::new("swapped-file");
    dir.write(&make("m", 1, 1));
    let reg = ModelRegistry::open(&dir.0).unwrap();
    // overwrite the artifact with garbage after open — the lazy compile
    // path must surface a typed error
    std::fs::write(dir.0.join("m@1.mlcnn"), b"not an artifact").unwrap();
    assert!(matches!(
        reg.plan("m", None, Precision::Fp32),
        Err(RegistryError::Artifact {
            error: ArtifactError::Truncated(_) | ArtifactError::ChecksumMismatch { .. },
            ..
        })
    ));
}

#[test]
fn lru_bound_is_respected_across_models() {
    let dir = Scratch::new("lru");
    dir.write(&make("a", 1, 1));
    dir.write(&make("b", 1, 2));
    dir.write(&make("c", 1, 3));
    let reg = ModelRegistry::open_with_cache(&dir.0, 2).unwrap();
    reg.plan("a", None, Precision::Fp32).unwrap();
    reg.plan("b", None, Precision::Fp32).unwrap();
    reg.plan("c", None, Precision::Fp32).unwrap();
    assert_eq!(reg.cache().len(), 2, "LRU bound not enforced");
    // evicted plans recompile transparently
    reg.plan("a", None, Precision::Fp32).unwrap();
}
