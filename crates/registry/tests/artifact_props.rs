//! Hostile-input properties of the `.mlcnn` codec: `Artifact::decode` is
//! total over arbitrary bytes — every input either decodes or returns a
//! typed [`ArtifactError`]; it never panics, and implausible counts are
//! rejected before they can drive allocations.

use mlcnn_nn::spec::build_network;
use mlcnn_nn::LayerSpec;
use mlcnn_quant::Precision;
use mlcnn_registry::Artifact;
use mlcnn_tensor::Shape4;
use proptest::prelude::*;

fn sample() -> Artifact {
    let specs = vec![
        LayerSpec::Conv {
            out_ch: 2,
            k: 3,
            stride: 1,
            pad: 1,
        },
        LayerSpec::ReLU,
        LayerSpec::MaxPool {
            window: 2,
            stride: 2,
        },
        LayerSpec::Flatten,
        LayerSpec::Linear { out: 4 },
    ];
    let input = Shape4::new(1, 1, 8, 8);
    let mut net = build_network(&specs, input, 11).unwrap();
    Artifact {
        model: "prop-model".into(),
        revision: 2,
        specs,
        input,
        precision: Precision::Fp16,
        params: net.export_params(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Artifact::decode(&bytes);
    }

    /// Random bytes behind a valid-looking header never panic either —
    /// this drives the section framing and count-guard paths that pure
    /// noise rarely reaches (the whole-file CRC rejects noise up front,
    /// so recompute the trailer to let the structure parser run).
    #[test]
    fn framed_garbage_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut bytes = Vec::with_capacity(payload.len() + 10);
        bytes.extend_from_slice(b"MLCA");
        bytes.extend_from_slice(&1u16.to_be_bytes());
        bytes.extend_from_slice(&payload);
        let crc = {
            // CRC-32 IEEE, bitwise — small and local so the test does not
            // reach into the crate's private hasher
            let mut state = !0u32;
            for &b in &bytes {
                state ^= b as u32;
                for _ in 0..8 {
                    state = if state & 1 != 0 { (state >> 1) ^ 0xEDB8_8320 } else { state >> 1 };
                }
            }
            !state
        };
        bytes.extend_from_slice(&crc.to_be_bytes());
        prop_assert!(Artifact::decode(&bytes).is_err() || Artifact::decode(&bytes).is_ok());
    }

    /// Every strict prefix of a valid artifact is rejected (no panic, no
    /// accidental acceptance of a truncation).
    #[test]
    fn any_prefix_is_rejected(cut in any::<u64>()) {
        let bytes = sample().encode().unwrap();
        let len = (cut as usize) % bytes.len();
        prop_assert!(Artifact::decode(&bytes[..len]).is_err(), "prefix {len} accepted");
    }

    /// Any non-identity single-byte change to a valid artifact is
    /// rejected — the whole-file checksum leaves no blind spots.
    #[test]
    fn any_byte_mutation_is_rejected(offset in any::<u64>(), xor in 1u8..=255) {
        let mut bytes = sample().encode().unwrap();
        let i = (offset as usize) % bytes.len();
        bytes[i] ^= xor;
        prop_assert!(Artifact::decode(&bytes).is_err(), "mutation at {i} accepted");
    }
}
