//! `mlcnn-registry` — operate on a registry directory from the shell.
//!
//! ```text
//! mlcnn-registry status DIR
//! mlcnn-registry gc DIR [--prune]
//! ```
//!
//! `status` opens the directory through the full `R0xx` validation gate
//! and prints every model's revisions, active revision, and the dedup
//! index occupancy. `gc` lists the revisions unreachable from any
//! publish/rollback history — with a fresh open that is every revision
//! except each model's newest — and with `--prune` deletes them from
//! disk. Exit code is non-zero on any error, including an unopenable
//! registry, so the tool is scriptable.

use std::process::ExitCode;

use mlcnn_registry::ModelRegistry;

fn usage() -> String {
    "usage: mlcnn-registry status DIR | mlcnn-registry gc DIR [--prune]".into()
}

fn cmd_status(dir: &str) -> Result<(), String> {
    let reg = ModelRegistry::open(dir).map_err(|e| e.to_string())?;
    for status in reg.status() {
        let revisions: Vec<String> = status.revisions.iter().map(u64::to_string).collect();
        println!(
            "{}: active {} of [{}] (default {:?})",
            status.model,
            status.active,
            revisions.join(", "),
            status.precision
        );
    }
    let stats = reg.segment_stats();
    println!(
        "dedup index: {} live segments, {} bytes resident, {} hits / {} misses",
        stats.live, stats.resident_bytes, stats.hits, stats.misses
    );
    Ok(())
}

fn cmd_gc(dir: &str, prune: bool) -> Result<(), String> {
    let reg = ModelRegistry::open(dir).map_err(|e| e.to_string())?;
    let candidates = reg.gc(prune).map_err(|e| e.to_string())?;
    if candidates.is_empty() {
        println!("mlcnn-registry gc: nothing unreferenced");
        return Ok(());
    }
    let mut total = 0u64;
    for c in &candidates {
        total += c.bytes;
        println!(
            "{} {}@{} ({} bytes) {}",
            if prune { "pruned" } else { "unreferenced" },
            c.model,
            c.revision,
            c.bytes,
            c.file.display()
        );
    }
    println!(
        "mlcnn-registry gc: {} revision(s), {} bytes{}",
        candidates.len(),
        total,
        if prune {
            " reclaimed"
        } else {
            " reclaimable (re-run with --prune to delete)"
        }
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("status") => match args.as_slice() {
            [_, dir] => cmd_status(dir),
            _ => Err(usage()),
        },
        Some("gc") => match args.as_slice() {
            [_, dir] => cmd_gc(dir, false),
            [_, dir, flag] if flag == "--prune" => cmd_gc(dir, true),
            _ => Err(usage()),
        },
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlcnn-registry: {e}");
            ExitCode::FAILURE
        }
    }
}
