//! The model registry: a directory of versioned `.mlcnn` artifacts with
//! atomic publish/rollback and lazy, LRU-bounded plan compilation.
//!
//! # Layout on disk
//!
//! A registry root holds flat `name@revision.mlcnn` files; nothing else
//! with the `.mlcnn` extension is allowed, and anything else is ignored:
//!
//! ```text
//! zoo/
//!   lenet5@1.mlcnn
//!   lenet5@2.mlcnn
//!   vgg-mini@1.mlcnn
//! ```
//!
//! # Open-time validation
//!
//! [`ModelRegistry::open`] decodes and validates **every** artifact before
//! the registry exists: each file either passes in full (checksums, spec
//! gate, parameter shapes, trial compile) or contributes an `R0xx` denial
//! — and any denial fails `open`. A live registry therefore can never hit
//! a bad artifact at request time; a rejected one names every offender in
//! one pass.
//!
//! # Revisions and publish state
//!
//! Each model's revisions are totally ordered by their `u64` revision
//! number; the *active* revision starts at the highest on disk. `publish`
//! pushes a new active revision onto the model's history stack and
//! `rollback` pops back to the previous one — the serving router layers
//! its hot-swap on these transitions. All publish state is in memory: the
//! directory is the artifact store, the registry is the routing table.

use crate::artifact::{parse_file_name, Artifact, ARTIFACT_EXT};
use crate::cache::{PlanCache, PlanKey};
use crate::error::{ArtifactError, RegistryError};
use mlcnn_check::{check_registry_scan_summary, ArtifactFinding, ArtifactLint};
use mlcnn_core::{ExecutionPlan, SegmentStats, SegmentStore};
use mlcnn_quant::Precision;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default byte budget for resident compiled plans (estimated as baked
/// parameters + single-request arena per plan, counted as-if-unshared).
pub const DEFAULT_PLAN_CACHE_BYTES: usize = 256 << 20;

/// One revision of one model as the scan recorded it.
#[derive(Debug, Clone)]
struct Revision {
    file: PathBuf,
    /// Default serving precision recorded in the artifact's metadata.
    precision: Precision,
}

/// Mutable publish state of one model.
#[derive(Debug, Clone)]
struct ModelState {
    revisions: BTreeMap<u64, Revision>,
    /// Publish history; the last entry is the active revision. Never
    /// empty — a model exists only if at least one artifact scanned clean.
    history: Vec<u64>,
}

/// A validated, routable view of a registry directory. Cheap to share
/// (`Arc<ModelRegistry>`): lookups take a short mutex, compiled plans are
/// `Arc`s out of the [`PlanCache`].
#[derive(Debug)]
pub struct ModelRegistry {
    root: PathBuf,
    models: Mutex<BTreeMap<String, ModelState>>,
    cache: PlanCache,
    /// Content-addressed dedup index: every plan this registry compiles
    /// interns its baked layer segments here, so structurally identical
    /// layers — across revisions of one model or across models — share
    /// one weight allocation. Weak-referenced: the store pins nothing.
    segments: Arc<SegmentStore>,
}

/// One revision `gc` found unreachable from any publish/rollback history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcCandidate {
    /// Model name.
    pub model: String,
    /// Unreferenced revision.
    pub revision: u64,
    /// Artifact file backing it.
    pub file: PathBuf,
    /// On-disk size of that file (0 when unreadable).
    pub bytes: u64,
}

/// Immutable snapshot of one model's routing state, for status surfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStatus {
    /// Model name.
    pub model: String,
    /// Currently active revision.
    pub active: u64,
    /// Every revision on disk, ascending.
    pub revisions: Vec<u64>,
    /// Default precision of the active revision's artifact.
    pub precision: Precision,
}

impl ModelRegistry {
    /// Open a registry rooted at `dir`, validating every `.mlcnn` artifact
    /// through the `R0xx` lint gate. Fails if the directory is unreadable,
    /// holds no valid artifacts, or any artifact is corrupt, inconsistent,
    /// or a duplicate identity.
    pub fn open(dir: impl AsRef<Path>) -> Result<ModelRegistry, RegistryError> {
        Self::open_with_cache(dir, DEFAULT_PLAN_CACHE_BYTES)
    }

    /// [`ModelRegistry::open`] with an explicit compiled-plan cache byte
    /// budget.
    pub fn open_with_cache(
        dir: impl AsRef<Path>,
        plan_cache_bytes: usize,
    ) -> Result<ModelRegistry, RegistryError> {
        let root = dir.as_ref().to_path_buf();
        let segments = Arc::new(SegmentStore::new());
        let mut lints: Vec<ArtifactLint> = Vec::new();
        let mut scanned: Vec<(String, Artifact, PathBuf)> = Vec::new();

        let mut files: Vec<PathBuf> = std::fs::read_dir(&root)
            .map_err(|e| RegistryError::Io(format!("{}: {e}", root.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_file() && p.extension().and_then(|e| e.to_str()) == Some(ARTIFACT_EXT))
            .collect();
        files.sort();

        for path in files {
            let file = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let lint = match std::fs::read(&path) {
                Err(e) => ArtifactLint {
                    file: file.clone(),
                    model: String::new(),
                    revision: 0,
                    finding: ArtifactFinding::Corrupt(format!("unreadable: {e}")),
                },
                Ok(bytes) => match Artifact::decode(&bytes) {
                    Err(ArtifactError::HashMismatch(why)) => ArtifactLint {
                        file: file.clone(),
                        model: String::new(),
                        revision: 0,
                        finding: ArtifactFinding::HashMismatch(why),
                    },
                    Err(e) => ArtifactLint {
                        file: file.clone(),
                        model: String::new(),
                        revision: 0,
                        finding: ArtifactFinding::Corrupt(e.to_string()),
                    },
                    Ok(artifact) => {
                        // the trial compile runs through the shared store,
                        // so open both proves compilability and exercises
                        // the dedup index's conflict check (R006)
                        let finding = match artifact.validate_shared(&segments) {
                            Ok(()) => ArtifactFinding::Ok,
                            Err(ArtifactError::SpecParamMismatch(why)) => {
                                ArtifactFinding::ParamMismatch(why)
                            }
                            Err(ArtifactError::Incompilable(why)) => {
                                ArtifactFinding::Incompilable(why)
                            }
                            Err(ArtifactError::HashMismatch(why)) => {
                                ArtifactFinding::HashMismatch(why)
                            }
                            Err(other) => ArtifactFinding::Corrupt(other.to_string()),
                        };
                        let lint = ArtifactLint {
                            file: file.clone(),
                            model: artifact.model.clone(),
                            revision: artifact.revision,
                            finding,
                        };
                        // the identity the *file name* claims must match
                        // the identity the artifact's metadata claims, or
                        // renamed files would silently route wrong
                        let lint = match parse_file_name(&file) {
                            Some((m, r)) if m == artifact.model && r == artifact.revision => lint,
                            _ => ArtifactLint {
                                finding: ArtifactFinding::Corrupt(format!(
                                    "file name does not match artifact identity {}@{}",
                                    artifact.model, artifact.revision
                                )),
                                ..lint
                            },
                        };
                        if lint.finding == ArtifactFinding::Ok {
                            scanned.push((file.clone(), artifact, path));
                        }
                        lint
                    }
                },
            };
            lints.push(lint);
        }

        check_registry_scan_summary(&lints).map_err(RegistryError::Rejected)?;
        if scanned.is_empty() {
            return Err(RegistryError::Io(format!(
                "{}: no .mlcnn artifacts found",
                root.display()
            )));
        }

        let mut models: BTreeMap<String, ModelState> = BTreeMap::new();
        for (_, artifact, path) in scanned {
            models
                .entry(artifact.model.clone())
                .or_insert_with(|| ModelState {
                    revisions: BTreeMap::new(),
                    history: Vec::new(),
                })
                .revisions
                .insert(
                    artifact.revision,
                    Revision {
                        file: path,
                        precision: artifact.precision,
                    },
                );
        }
        for state in models.values_mut() {
            let newest = *state.revisions.keys().next_back().expect("non-empty");
            state.history.push(newest);
        }

        Ok(ModelRegistry {
            root,
            models: Mutex::new(models),
            cache: PlanCache::new(plan_cache_bytes),
            segments,
        })
    }

    /// The directory this registry routes for.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Status of every model, sorted by name.
    pub fn status(&self) -> Vec<ModelStatus> {
        let models = self.models.lock().expect("registry poisoned");
        models
            .iter()
            .map(|(name, state)| {
                let active = *state.history.last().expect("non-empty history");
                ModelStatus {
                    model: name.clone(),
                    active,
                    revisions: state.revisions.keys().copied().collect(),
                    precision: state.revisions[&active].precision,
                }
            })
            .collect()
    }

    /// Model names, sorted.
    pub fn models(&self) -> Vec<String> {
        let models = self.models.lock().expect("registry poisoned");
        models.keys().cloned().collect()
    }

    /// The currently active revision of `model`.
    pub fn active(&self, model: &str) -> Result<u64, RegistryError> {
        let models = self.models.lock().expect("registry poisoned");
        let state = models
            .get(model)
            .ok_or_else(|| RegistryError::UnknownModel(model.to_string()))?;
        Ok(*state.history.last().expect("non-empty history"))
    }

    /// Default serving precision the artifact of `(model, revision)`
    /// recorded at pack time.
    pub fn default_precision(
        &self,
        model: &str,
        revision: u64,
    ) -> Result<Precision, RegistryError> {
        let models = self.models.lock().expect("registry poisoned");
        let state = models
            .get(model)
            .ok_or_else(|| RegistryError::UnknownModel(model.to_string()))?;
        state
            .revisions
            .get(&revision)
            .map(|r| r.precision)
            .ok_or(RegistryError::UnknownRevision {
                model: model.to_string(),
                revision,
            })
    }

    /// Compiled plan for `(model, revision, precision)`; `revision = None`
    /// means the active revision. Lazily loads and compiles on first use,
    /// then serves from the bounded LRU. The returned revision says which
    /// artifact actually backs the plan.
    pub fn plan(
        &self,
        model: &str,
        revision: Option<u64>,
        precision: Precision,
    ) -> Result<(u64, Arc<ExecutionPlan>), RegistryError> {
        let (revision, file) = {
            let models = self.models.lock().expect("registry poisoned");
            let state = models
                .get(model)
                .ok_or_else(|| RegistryError::UnknownModel(model.to_string()))?;
            let revision = match revision {
                Some(r) => {
                    if !state.revisions.contains_key(&r) {
                        return Err(RegistryError::UnknownRevision {
                            model: model.to_string(),
                            revision: r,
                        });
                    }
                    r
                }
                None => *state.history.last().expect("non-empty history"),
            };
            (revision, state.revisions[&revision].file.clone())
        };

        let key = PlanKey {
            model: model.to_string(),
            revision,
            precision,
        };
        if let Some(plan) = self.cache.get(&key) {
            return Ok((revision, plan));
        }

        // compile outside the registry lock: compilation is the slow path
        // and must not stall routing lookups
        let file_name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let bytes = std::fs::read(&file)
            .map_err(|e| RegistryError::Io(format!("{}: {e}", file.display())))?;
        let artifact = Artifact::load(&bytes).map_err(|error| RegistryError::Artifact {
            file: file_name.clone(),
            error,
        })?;
        if artifact.model != model || artifact.revision != revision {
            return Err(RegistryError::Artifact {
                file: file_name,
                error: ArtifactError::Malformed(format!(
                    "file now claims {}@{} (expected {model}@{revision})",
                    artifact.model, artifact.revision
                )),
            });
        }
        let plan = artifact
            .compile_shared(precision, &self.segments)
            .map_err(|error| RegistryError::Artifact {
                file: file_name,
                error,
            })?;
        Ok((revision, self.cache.insert(key, Arc::new(plan))))
    }

    /// Validate `artifact` through the dedup index, write it into the
    /// registry directory, and make its revision routable (but *not*
    /// active — use [`ModelRegistry::publish`] to switch traffic; a brand
    /// new model's first revision becomes active immediately). This is
    /// the copy-on-write publish path: an artifact derived with
    /// [`Artifact::with_layer_params`] shares every unchanged layer's
    /// baked weights with its predecessor once compiled.
    ///
    /// Installing a `model@revision` that already exists is rejected —
    /// published artifacts are immutable.
    pub fn install(&self, artifact: &Artifact) -> Result<u64, RegistryError> {
        let file_name = artifact.file_name();
        let wrap = |error: ArtifactError| RegistryError::Artifact {
            file: file_name.clone(),
            error,
        };
        artifact.validate_shared(&self.segments).map_err(wrap)?;
        let bytes = artifact.encode().map_err(wrap)?;

        let mut models = self.models.lock().expect("registry poisoned");
        if let Some(state) = models.get(&artifact.model) {
            if state.revisions.contains_key(&artifact.revision) {
                return Err(RegistryError::RevisionExists {
                    model: artifact.model.clone(),
                    revision: artifact.revision,
                });
            }
        }
        let path = self.root.join(&file_name);
        std::fs::write(&path, &bytes)
            .map_err(|e| RegistryError::Io(format!("{}: {e}", path.display())))?;
        let state = models
            .entry(artifact.model.clone())
            .or_insert_with(|| ModelState {
                revisions: BTreeMap::new(),
                history: Vec::new(),
            });
        state.revisions.insert(
            artifact.revision,
            Revision {
                file: path,
                precision: artifact.precision,
            },
        );
        if state.history.is_empty() {
            state.history.push(artifact.revision);
        }
        Ok(artifact.revision)
    }

    /// Revisions unreachable from any model's publish/rollback history:
    /// neither active nor anywhere on a history stack a rollback could
    /// return to. Pure report — nothing is modified.
    pub fn gc_plan(&self) -> Vec<GcCandidate> {
        let models = self.models.lock().expect("registry poisoned");
        let mut out = Vec::new();
        for (name, state) in models.iter() {
            for (&revision, rev) in &state.revisions {
                if !state.history.contains(&revision) {
                    let bytes = std::fs::metadata(&rev.file).map(|m| m.len()).unwrap_or(0);
                    out.push(GcCandidate {
                        model: name.clone(),
                        revision,
                        file: rev.file.clone(),
                        bytes,
                    });
                }
            }
        }
        out
    }

    /// [`ModelRegistry::gc_plan`], optionally pruning: with `prune` the
    /// unreferenced revisions are deleted from disk, deregistered from
    /// routing, and their cached plans evicted. Returns what was (or
    /// would be) collected.
    pub fn gc(&self, prune: bool) -> Result<Vec<GcCandidate>, RegistryError> {
        let candidates = self.gc_plan();
        if !prune {
            return Ok(candidates);
        }
        let mut models = self.models.lock().expect("registry poisoned");
        for c in &candidates {
            if let Some(state) = models.get_mut(&c.model) {
                // re-check under the lock: a racing publish may have made
                // the revision reachable since the plan was computed
                if state.history.contains(&c.revision) {
                    continue;
                }
                state.revisions.remove(&c.revision);
            }
            match std::fs::remove_file(&c.file) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(RegistryError::Io(format!("{}: {e}", c.file.display())));
                }
            }
            self.cache.evict_revision(&c.model, c.revision);
        }
        Ok(candidates)
    }

    /// Make `revision` the active revision of `model`, pushing the current
    /// active onto the history. Publishing the already-active revision is
    /// a no-op. Returns `(active, previous)`.
    pub fn publish(&self, model: &str, revision: u64) -> Result<(u64, u64), RegistryError> {
        let mut models = self.models.lock().expect("registry poisoned");
        let state = models
            .get_mut(model)
            .ok_or_else(|| RegistryError::UnknownModel(model.to_string()))?;
        if !state.revisions.contains_key(&revision) {
            return Err(RegistryError::UnknownRevision {
                model: model.to_string(),
                revision,
            });
        }
        let previous = *state.history.last().expect("non-empty history");
        if previous != revision {
            state.history.push(revision);
        }
        Ok((revision, previous))
    }

    /// Revert `model` to the revision active before the last publish.
    /// Returns `(active, previous)` where `previous` is the revision just
    /// deactivated. Fails with [`RegistryError::NoHistory`] when nothing
    /// has been published since `open`.
    pub fn rollback(&self, model: &str) -> Result<(u64, u64), RegistryError> {
        let mut models = self.models.lock().expect("registry poisoned");
        let state = models
            .get_mut(model)
            .ok_or_else(|| RegistryError::UnknownModel(model.to_string()))?;
        if state.history.len() < 2 {
            return Err(RegistryError::NoHistory(model.to_string()));
        }
        let previous = state.history.pop().expect("checked length");
        let active = *state.history.last().expect("checked length");
        Ok((active, previous))
    }

    /// The plan cache, for instrumentation.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The content-addressed dedup index every plan compiles through.
    pub fn segments(&self) -> &Arc<SegmentStore> {
        &self.segments
    }

    /// Occupancy of the dedup index: live unique segments, hit/miss
    /// counters, and resident bytes of *unique* layer parameters — the
    /// honest multi-tenant memory figure (the plan cache's own stats
    /// count as-if-unshared).
    pub fn segment_stats(&self) -> SegmentStats {
        self.segments.stats()
    }
}
