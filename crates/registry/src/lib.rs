//! # mlcnn-registry — versioned model artifacts and multi-model routing
//!
//! The artifact and registry layer under the MLCNN serving stack: trained
//! networks are packed into self-describing, checksummed `.mlcnn` bundles
//! ([`artifact`]), and a directory of such bundles becomes a routable,
//! hot-swappable model catalog ([`ModelRegistry`]).
//!
//! The crate sits between `mlcnn-nn`/`mlcnn-core` (which define specs,
//! parameters, and plan compilation) and `mlcnn-serve` (which owns
//! sockets, batching, and the hot-swap router). It owns three things:
//!
//! - **The `.mlcnn` format** — magic, version, CRC-32-guarded sections for
//!   metadata, the layer-spec list, and the parameter tensors. A decoded
//!   artifact compiles to an [`mlcnn_core::ExecutionPlan`] bitwise
//!   identical to compiling the same specs and parameters directly.
//! - **Load-time validation** — truncation, checksum mismatches,
//!   spec/parameter disagreement, and incompilable specs are typed
//!   [`ArtifactError`]s, surfaced through the `R0xx` diagnostic codes in
//!   `mlcnn-check`. A registry that opens cleanly cannot fail on an
//!   artifact at request time.
//! - **Routing state** — per-model revision catalogs with an active
//!   revision, publish/rollback history, and a byte-budgeted LRU of
//!   lazily compiled plans ([`cache::PlanCache`]).
//! - **Content-addressed dedup** — every plan the registry compiles goes
//!   through a shared [`mlcnn_core::SegmentStore`], so structurally
//!   identical layers (across revisions and across models) share one
//!   baked weight allocation; [`Artifact::with_layer_params`] derives a
//!   new revision copy-on-write, and the `.mlcnn` HASHES section pins
//!   each layer's content hash at pack time (`R005` on mismatch).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod crc32;
pub mod error;
pub mod registry;

pub use artifact::{
    artifact_file_name, parse_file_name, validate_model_name, Artifact, LayerHash, LAYER_HASH_LEN,
};
pub use cache::{CacheStats, PlanCache, PlanKey};
pub use error::{ArtifactError, RegistryError};
pub use registry::{GcCandidate, ModelRegistry, ModelStatus, DEFAULT_PLAN_CACHE_BYTES};
