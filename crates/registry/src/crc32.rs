//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every `.mlcnn` artifact section and the whole-file trailer.
//!
//! Hand-rolled because the workspace carries no compression/hashing
//! dependency; the table is built in a `const` context so there is no
//! runtime initialization to race on.

/// Byte-at-a-time lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 state; feed bytes with [`Hasher::update`], read the
/// digest with [`Hasher::finalize`].
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// Fresh hasher (initial state all-ones, per the standard).
    pub fn new() -> Self {
        Hasher { state: !0 }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The digest of everything absorbed so far (the hasher stays usable).
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_digest() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Hasher::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = b"model artifact body".to_vec();
        let clean = crc32(&data);
        data[5] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
