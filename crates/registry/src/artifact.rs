//! The versioned `.mlcnn` model bundle: one file carrying everything the
//! serving stack needs to stand a model up — architecture, geometry,
//! default precision, and trained parameters — with enough integrity
//! checking that a torn or tampered file is rejected at *load* time,
//! never at request time.
//!
//! ```text
//! "MLCA" | u16 version | 3-4 sections | u32 CRC-32(all preceding bytes)
//!
//! section      := u8 id | u32 byte-len | payload | u32 CRC-32(payload)
//! META    (1)  := u16 name-len | name UTF-8 | u64 revision
//!                 | u32 n,c,h,w (input) | u8 precision tag
//! SPECS   (2)  := u32 count | spec*          (tagged, recursive)
//! PARAMS  (3)  := u32 count | tensor*        (u32 n,c,h,w | f32 LE data)
//! HASHES  (4)  := u32 count | 32-byte SHA-256*   (optional; one per
//!                 param-bearing layer, in execution order)
//! ```
//!
//! The HASHES section is the content-addressing layer: each entry is the
//! SHA-256 of one `(LayerSpec, params)` pair ([`Artifact::layer_hashes`]),
//! the key the registry's dedup index shares parameter segments under.
//! The section is optional and the version stays 1: files packed before
//! it existed simply end at PARAMS and still decode. When present, decode
//! recomputes every hash and rejects the file on any disagreement
//! ([`ArtifactError::HashMismatch`], surfaced as `R005` by the registry
//! scan) — a hash that does not match its layer means the file was
//! assembled inconsistently or tampered with section-by-section.
//!
//! Integers are big-endian and floats little-endian, matching the
//! `mlcnn_nn::serialize` checkpoint and `mlcnn_serve::wire` conventions;
//! the PARAMS tensor layout is byte-for-byte the checkpoint's, so packing
//! a trained network preserves its weights exactly. The spec list is a
//! hand-rolled tagged encoding (the workspace's `serde` is a no-op
//! stand-in; every serializer in the tree is hand-rolled).
//!
//! **Contract:** a decoded artifact's `(specs, params, input)` triple is
//! the same data `ExecutionPlan::compile` takes, so compiling a loaded
//! artifact is *bitwise identical* to compiling the source network
//! directly — the round-trip parity the serving tests pin down.

use crate::crc32::{crc32, Hasher};
use crate::error::ArtifactError;
use bytes::BufMut;
use mlcnn_core::content::Sha256;
use mlcnn_core::{ExecutionPlan, PlanOptions, SegmentStore};
use mlcnn_nn::spec::propagate_shape;
use mlcnn_nn::LayerSpec;
use mlcnn_quant::Precision;
use mlcnn_tensor::{Shape4, Tensor};

/// File extension of a packed artifact.
pub const ARTIFACT_EXT: &str = "mlcnn";

/// Leading magic of every artifact.
pub const MAGIC: &[u8; 4] = b"MLCA";

/// Format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Longest legal model name (bytes).
pub const MAX_MODEL_NAME: usize = 64;

const SEC_META: u8 = 1;
const SEC_SPECS: u8 = 2;
const SEC_PARAMS: u8 = 3;
const SEC_HASHES: u8 = 4;

/// Byte length of one layer content hash (SHA-256).
pub const LAYER_HASH_LEN: usize = 32;

/// SHA-256 content hash of one `(LayerSpec, params)` pair.
pub type LayerHash = [u8; LAYER_HASH_LEN];

/// Deepest composite nesting the spec codec will follow — far above any
/// real model, low enough that hostile input cannot overflow the stack.
const MAX_SPEC_DEPTH: usize = 32;

/// One versioned model bundle, in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Model name (registry routing key; also the file-name stem).
    pub model: String,
    /// Revision number (≥ 1; higher is newer).
    pub revision: u64,
    /// The layer pipeline.
    pub specs: Vec<LayerSpec>,
    /// Single-item input shape (`n` = 1).
    pub input: Shape4,
    /// Default serving precision recorded at pack time.
    pub precision: Precision,
    /// Parameter tensors in `Network::export_params` order.
    pub params: Vec<Tensor<f32>>,
}

/// Check a model name: 1–64 bytes of ASCII alphanumerics, `-`, `_` or
/// `.`, not starting with `.` or `-` (it doubles as a file-name stem and
/// a wire routing key).
pub fn validate_model_name(name: &str) -> Result<(), ArtifactError> {
    if name.is_empty() {
        return Err(ArtifactError::Malformed("empty model name".into()));
    }
    if name.len() > MAX_MODEL_NAME {
        return Err(ArtifactError::Malformed(format!(
            "model name longer than {MAX_MODEL_NAME} bytes"
        )));
    }
    if name.starts_with('.') || name.starts_with('-') {
        return Err(ArtifactError::Malformed(format!(
            "model name '{name}' may not start with '.' or '-'"
        )));
    }
    if let Some(bad) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')))
    {
        return Err(ArtifactError::Malformed(format!(
            "model name '{name}' contains illegal character '{bad}'"
        )));
    }
    Ok(())
}

/// The canonical registry file name for a `(model, revision)` identity.
pub fn artifact_file_name(model: &str, revision: u64) -> String {
    format!("{model}@{revision}.{ARTIFACT_EXT}")
}

/// Parse a registry file name back into its `(model, revision)` identity;
/// `None` when the name is not of the `name@rev.mlcnn` form.
pub fn parse_file_name(file: &str) -> Option<(String, u64)> {
    let stem = file.strip_suffix(&format!(".{ARTIFACT_EXT}"))?;
    let (model, rev) = stem.rsplit_once('@')?;
    let revision: u64 = rev.parse().ok()?;
    if revision == 0 || validate_model_name(model).is_err() {
        return None;
    }
    Some((model.to_string(), revision))
}

impl Artifact {
    /// The registry file name this artifact packs to.
    pub fn file_name(&self) -> String {
        artifact_file_name(&self.model, self.revision)
    }

    /// Encode as a complete `.mlcnn` byte stream (all checksums filled in).
    /// Fails on an illegal model name, a zero revision, or extents beyond
    /// the format's `u32` fields — a successfully encoded artifact always
    /// decodes.
    pub fn encode(&self) -> Result<Vec<u8>, ArtifactError> {
        validate_model_name(&self.model)?;
        if self.revision == 0 {
            return Err(ArtifactError::Malformed(
                "revision 0 is reserved; revisions start at 1".into(),
            ));
        }

        let mut meta = Vec::with_capacity(32 + self.model.len());
        meta.put_u16(self.model.len() as u16);
        meta.put_slice(self.model.as_bytes());
        meta.put_u64(self.revision);
        for dim in [self.input.n, self.input.c, self.input.h, self.input.w] {
            meta.put_u32(u32_dim(dim, "input extent")?);
        }
        meta.put_u8(self.precision.artifact_tag());

        let mut specs = Vec::new();
        specs.put_u32(u32_dim(self.specs.len(), "spec count")?);
        for spec in &self.specs {
            encode_spec(spec, &mut specs)?;
        }

        let mut params = Vec::new();
        params.put_u32(u32_dim(self.params.len(), "tensor count")?);
        for t in &self.params {
            let s = t.shape();
            for dim in [s.n, s.c, s.h, s.w] {
                params.put_u32(u32_dim(dim, "tensor extent")?);
            }
            for &v in t.as_slice() {
                params.put_f32_le(v);
            }
        }

        // HASHES: one SHA-256 per param-bearing layer. Only writable when
        // the parameter list lines up with the specs — a misaligned
        // artifact (which `validate` rejects anyway) still encodes, just
        // without content hashes.
        let hashes = match self.layer_hashes() {
            Ok(hs) => {
                let mut buf = Vec::with_capacity(4 + hs.len() * LAYER_HASH_LEN);
                buf.put_u32(u32_dim(hs.len(), "hash count")?);
                for h in &hs {
                    buf.put_slice(h);
                }
                Some(buf)
            }
            Err(_) => None,
        };

        let mut out = Vec::with_capacity(6 + meta.len() + specs.len() + params.len() + 81);
        out.put_slice(MAGIC);
        out.put_u16(VERSION);
        let mut sections = vec![
            (SEC_META, &meta),
            (SEC_SPECS, &specs),
            (SEC_PARAMS, &params),
        ];
        if let Some(h) = &hashes {
            sections.push((SEC_HASHES, h));
        }
        for (id, payload) in sections {
            out.put_u8(id);
            out.put_u32(u32_dim(payload.len(), "section length")?);
            out.put_slice(payload);
            out.put_u32(crc32(payload));
        }
        out.put_u32(crc32(&out));
        Ok(out)
    }

    /// Decode a byte stream. Structural validation only — framing, section
    /// order, per-section and whole-file checksums, tag legality, and
    /// length sanity (no count is trusted before the bytes backing it are
    /// known to exist, so hostile input cannot trigger huge allocations).
    /// Semantic validation is [`Artifact::validate`].
    pub fn decode(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
        // Whole-file trailer first: any flip anywhere is "corrupt",
        // reported against the file before section parsing can mis-blame
        // the flipped section.
        if bytes.len() < MAGIC.len() + 2 + 4 {
            return Err(ArtifactError::Truncated("file header"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_be_bytes(trailer.try_into().expect("4-byte slice"));
        let computed = crc32(body);
        if stored != computed {
            return Err(ArtifactError::ChecksumMismatch {
                section: "file",
                stored,
                computed,
            });
        }

        let mut cur = Cursor::new(body);
        let magic: [u8; 4] = cur.take(4, "magic")?.try_into().expect("4-byte slice");
        if &magic != MAGIC {
            return Err(ArtifactError::BadMagic(magic));
        }
        let version = cur.u16("version")?;
        if version != VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }

        let meta = cur.section(SEC_META, "META")?;
        let specs = cur.section(SEC_SPECS, "SPECS")?;
        let params = cur.section(SEC_PARAMS, "PARAMS")?;
        // optional content-hash section (absent in pre-dedup files)
        let hashes = if cur.is_empty() {
            None
        } else {
            Some(decode_hashes(cur.section(SEC_HASHES, "HASHES")?)?)
        };
        if !cur.is_empty() {
            return Err(ArtifactError::Malformed(format!(
                "{} trailing bytes after final section",
                cur.remaining()
            )));
        }

        let (model, revision, input, precision) = decode_meta(meta)?;
        let specs = decode_specs(specs)?;
        let params = decode_params(params)?;
        let artifact = Artifact {
            model,
            revision,
            specs,
            input,
            precision,
            params,
        };
        // Stored hashes must agree with the layers actually present: the
        // per-section CRCs prove each section arrived intact, the content
        // hashes prove the sections belong *together*.
        if let Some(stored) = hashes {
            let computed = artifact.layer_hashes().map_err(|e| {
                ArtifactError::HashMismatch(format!(
                    "HASHES section present but the layers are unhashable: {e}"
                ))
            })?;
            if stored.len() != computed.len() {
                return Err(ArtifactError::HashMismatch(format!(
                    "HASHES section carries {} hashes, specs have {} param-bearing layers",
                    stored.len(),
                    computed.len()
                )));
            }
            for (i, (s, c)) in stored.iter().zip(&computed).enumerate() {
                if s != c {
                    return Err(ArtifactError::HashMismatch(format!(
                        "layer {i}: stored content hash {} != recomputed {}",
                        mlcnn_core::content::hex(s),
                        mlcnn_core::content::hex(c)
                    )));
                }
            }
        }
        Ok(artifact)
    }

    /// Semantic validation: the model name is legal, the spec list passes
    /// the plan-compile gate, every parameter tensor has exactly the shape
    /// its spec requires, and a trial FP32 compile succeeds — so a
    /// validated artifact can never fail at request time.
    pub fn validate(&self) -> Result<(), ArtifactError> {
        self.validate_inner(None)
    }

    fn validate_inner(&self, store: Option<&SegmentStore>) -> Result<(), ArtifactError> {
        validate_model_name(&self.model)?;
        if self.revision == 0 {
            return Err(ArtifactError::Malformed("revision 0 is reserved".into()));
        }
        mlcnn_check::check_compile_summary(&self.specs, self.input)
            .map_err(ArtifactError::Incompilable)?;
        let expected = expected_param_shapes(&self.specs, self.input)?;
        if expected.len() != self.params.len() {
            return Err(ArtifactError::SpecParamMismatch(format!(
                "specs require {} parameter tensors, artifact carries {}",
                expected.len(),
                self.params.len()
            )));
        }
        for (i, (want, got)) in expected.iter().zip(&self.params).enumerate() {
            if got.shape() != *want {
                return Err(ArtifactError::SpecParamMismatch(format!(
                    "parameter tensor {i} is {}, specs require {want}",
                    got.shape()
                )));
            }
        }
        // The static gate and the shape walk cover everything the compiler
        // checks, but the compiler is the authority — run it once, then
        // run the P0xx dataflow verifier over the compiled plan in deny
        // mode: trial-compile is where untrusted bytes become an
        // executable plan, so the plan itself must prove its invariants
        // (gap-free shape chain, exact arena bounds, legal aliasing)
        // before the registry will ever serve this artifact.
        let plan = match store {
            Some(store) => self.compile_shared(Precision::Fp32, store)?,
            None => self.compile(Precision::Fp32)?,
        };
        plan.verify().map_err(ArtifactError::Incompilable)
    }

    /// Compile into an [`ExecutionPlan`] at `precision`. Same inputs and
    /// options as the direct `ExecutionPlan::compile` path, hence bitwise
    /// identical plans.
    pub fn compile(&self, precision: Precision) -> Result<ExecutionPlan, ArtifactError> {
        ExecutionPlan::compile(
            &self.specs,
            &self.params,
            self.input,
            PlanOptions::default().with_precision(precision),
        )
        .map_err(|e| ArtifactError::Incompilable(e.to_string()))
    }

    /// Decode *and* validate — the only loading path the registry uses.
    pub fn load(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
        let artifact = Artifact::decode(bytes)?;
        artifact.validate()?;
        Ok(artifact)
    }

    /// Indices (into `specs`) of the param-bearing layers, in execution
    /// order — the layers that carry a `[weight, bias]` pair and get a
    /// content hash.
    pub fn param_layer_specs(&self) -> Vec<usize> {
        self.specs
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, LayerSpec::Conv { .. } | LayerSpec::Linear { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-layer content hashes: for each param-bearing layer, the
    /// SHA-256 over its canonical spec encoding and its `[weight, bias]`
    /// shapes + FP32 bytes. This is the identity the registry's dedup
    /// index keys on and the HASHES section stores — deterministic across
    /// machines (fixed-width big-endian dims, little-endian floats, no
    /// ambient state). Fails when the parameter list does not line up
    /// with the specs.
    pub fn layer_hashes(&self) -> Result<Vec<LayerHash>, ArtifactError> {
        let layers = self.param_layer_specs();
        if self.params.len() != layers.len() * 2 {
            return Err(ArtifactError::SpecParamMismatch(format!(
                "cannot hash layers: specs require {} parameter tensors, artifact carries {}",
                layers.len() * 2,
                self.params.len()
            )));
        }
        let mut out = Vec::with_capacity(layers.len());
        for (li, &si) in layers.iter().enumerate() {
            let mut spec_bytes = Vec::new();
            encode_spec(&self.specs[si], &mut spec_bytes)?;
            let mut h = Sha256::new();
            h.update(b"mlcnn-layer-v1");
            h.update(&spec_bytes);
            for t in &self.params[li * 2..li * 2 + 2] {
                let s = t.shape();
                h.update_usize(s.n);
                h.update_usize(s.c);
                h.update_usize(s.h);
                h.update_usize(s.w);
                h.update_f32(t.as_slice());
            }
            out.push(h.finish());
        }
        Ok(out)
    }

    /// Copy-on-write derivation: a new artifact at `revision` identical to
    /// this one except that param-bearing layer `layer` (0-based, in
    /// execution order) carries the given `[weight, bias]`. Every other
    /// layer's tensors are shared structurally — packed, their content
    /// hashes are unchanged, so a registry opening both revisions keeps
    /// one resident copy of everything but the replaced layer.
    pub fn with_layer_params(
        &self,
        revision: u64,
        layer: usize,
        weight: Tensor<f32>,
        bias: Tensor<f32>,
    ) -> Result<Artifact, ArtifactError> {
        let layers = self.param_layer_specs();
        if self.params.len() != layers.len() * 2 {
            return Err(ArtifactError::SpecParamMismatch(format!(
                "specs require {} parameter tensors, artifact carries {}",
                layers.len() * 2,
                self.params.len()
            )));
        }
        if layer >= layers.len() {
            return Err(ArtifactError::Malformed(format!(
                "layer index {layer} out of range: artifact has {} param-bearing layers",
                layers.len()
            )));
        }
        let mut derived = self.clone();
        derived.revision = revision;
        derived.params[layer * 2] = weight;
        derived.params[layer * 2 + 1] = bias;
        derived.validate()?;
        Ok(derived)
    }

    /// [`Artifact::compile`] through a content-addressed [`SegmentStore`]:
    /// baked parameter segments are shared with every other plan compiled
    /// through the same store whose source layer hashes identically. The
    /// plan is bitwise identical to the unshared compile.
    pub fn compile_shared(
        &self,
        precision: Precision,
        store: &SegmentStore,
    ) -> Result<ExecutionPlan, ArtifactError> {
        ExecutionPlan::compile_shared(
            &self.specs,
            &self.params,
            self.input,
            PlanOptions::default().with_precision(precision),
            store,
        )
        .map_err(|e| ArtifactError::Incompilable(e.to_string()))
    }

    /// [`Artifact::validate`] whose trial compile runs through `store`, so
    /// a registry open that validates many revisions bakes each unique
    /// layer once instead of once per revision.
    pub fn validate_shared(&self, store: &SegmentStore) -> Result<(), ArtifactError> {
        self.validate_inner(Some(store))
    }
}

/// Parameter-tensor shapes a sequential spec list requires, in
/// `Network::export_params` order (conv and linear layers contribute a
/// `[weight, bias]` pair each). Callers run the compile gate first, so
/// composites/batch-norm are already rejected; they are still reported
/// here rather than panicked on.
fn expected_param_shapes(specs: &[LayerSpec], input: Shape4) -> Result<Vec<Shape4>, ArtifactError> {
    let mut shapes = Vec::new();
    let mut s = Shape4::new(1, input.c, input.h, input.w);
    for spec in specs {
        match spec {
            LayerSpec::Conv { out_ch, k, .. } => {
                shapes.push(Shape4::new(*out_ch, s.c, *k, *k));
                shapes.push(Shape4::new(1, 1, 1, *out_ch));
            }
            LayerSpec::Linear { out } => {
                shapes.push(Shape4::new(1, 1, *out, s.c * s.h * s.w));
                shapes.push(Shape4::new(1, 1, 1, *out));
            }
            LayerSpec::Inception { .. }
            | LayerSpec::DenseBlock { .. }
            | LayerSpec::Residual { .. }
            | LayerSpec::BatchNorm => {
                return Err(ArtifactError::Incompilable(
                    "composite or batch-norm layer in a sequential artifact".into(),
                ))
            }
            _ => {}
        }
        s = propagate_shape(std::slice::from_ref(spec), s)
            .map_err(|e| ArtifactError::Incompilable(e.to_string()))?;
    }
    Ok(shapes)
}

fn u32_dim(v: usize, what: &str) -> Result<u32, ArtifactError> {
    u32::try_from(v).map_err(|_| ArtifactError::Malformed(format!("{what} {v} exceeds u32")))
}

// ---------------------------------------------------------------------
// Section payload codecs
// ---------------------------------------------------------------------

fn decode_meta(payload: &[u8]) -> Result<(String, u64, Shape4, Precision), ArtifactError> {
    let mut cur = Cursor::new(payload);
    let name_len = cur.u16("model name length")? as usize;
    if name_len > MAX_MODEL_NAME {
        return Err(ArtifactError::Malformed(format!(
            "model name length {name_len} exceeds {MAX_MODEL_NAME}"
        )));
    }
    let name = std::str::from_utf8(cur.take(name_len, "model name")?)
        .map_err(|_| ArtifactError::Malformed("model name is not UTF-8".into()))?
        .to_string();
    validate_model_name(&name)?;
    let revision = cur.u64("revision")?;
    let n = cur.u32("input n")? as usize;
    let c = cur.u32("input c")? as usize;
    let h = cur.u32("input h")? as usize;
    let w = cur.u32("input w")? as usize;
    let tag = cur.u8("precision tag")?;
    let precision = Precision::from_artifact_tag(tag)
        .ok_or_else(|| ArtifactError::Malformed(format!("unknown precision tag {tag}")))?;
    if !cur.is_empty() {
        return Err(ArtifactError::Malformed(
            "trailing bytes in META section".into(),
        ));
    }
    Ok((name, revision, Shape4::new(n, c, h, w), precision))
}

fn decode_specs(payload: &[u8]) -> Result<Vec<LayerSpec>, ArtifactError> {
    let mut cur = Cursor::new(payload);
    let specs = decode_spec_list(&mut cur, 0)?;
    if !cur.is_empty() {
        return Err(ArtifactError::Malformed(
            "trailing bytes in SPECS section".into(),
        ));
    }
    Ok(specs)
}

fn decode_params(payload: &[u8]) -> Result<Vec<Tensor<f32>>, ArtifactError> {
    let mut cur = Cursor::new(payload);
    let count = cur.u32("tensor count")? as usize;
    // every tensor costs at least its 16-byte shape header, so a count the
    // remaining bytes cannot back is hostile — reject before allocating
    if count > cur.remaining() / 16 {
        return Err(ArtifactError::Malformed(format!(
            "tensor count {count} exceeds what {} payload bytes can hold",
            cur.remaining()
        )));
    }
    let mut tensors = Vec::with_capacity(count);
    for i in 0..count {
        let n = cur.u32("tensor shape")? as usize;
        let c = cur.u32("tensor shape")? as usize;
        let h = cur.u32("tensor shape")? as usize;
        let w = cur.u32("tensor shape")? as usize;
        let len = checked_elements(n, c, h, w).ok_or_else(|| {
            ArtifactError::Malformed(format!("tensor {i} shape [{n}x{c}x{h}x{w}] overflows"))
        })?;
        let byte_len = len
            .checked_mul(4)
            .filter(|&b| b <= cur.remaining())
            .ok_or(ArtifactError::Truncated("tensor data"))?;
        let data_bytes = cur.take(byte_len, "tensor data")?;
        let mut data = Vec::with_capacity(len);
        for chunk in data_bytes.chunks_exact(4) {
            data.push(f32::from_le_bytes(chunk.try_into().expect("4-byte chunk")));
        }
        tensors.push(
            Tensor::from_vec(Shape4::new(n, c, h, w), data)
                .map_err(|e| ArtifactError::Malformed(e.to_string()))?,
        );
    }
    if !cur.is_empty() {
        return Err(ArtifactError::Malformed(
            "trailing bytes in PARAMS section".into(),
        ));
    }
    Ok(tensors)
}

fn decode_hashes(payload: &[u8]) -> Result<Vec<LayerHash>, ArtifactError> {
    let mut cur = Cursor::new(payload);
    let count = cur.u32("hash count")? as usize;
    if count > cur.remaining() / LAYER_HASH_LEN {
        return Err(ArtifactError::Malformed(format!(
            "hash count {count} exceeds what {} payload bytes can hold",
            cur.remaining()
        )));
    }
    let mut hashes = Vec::with_capacity(count);
    for _ in 0..count {
        let bytes = cur.take(LAYER_HASH_LEN, "layer hash")?;
        hashes.push(bytes.try_into().expect("32-byte slice"));
    }
    if !cur.is_empty() {
        return Err(ArtifactError::Malformed(
            "trailing bytes in HASHES section".into(),
        ));
    }
    Ok(hashes)
}

/// `n·c·h·w` without overflow; `None` when the product leaves `usize`.
fn checked_elements(n: usize, c: usize, h: usize, w: usize) -> Option<usize> {
    n.checked_mul(c)?.checked_mul(h)?.checked_mul(w)
}

// ---------------------------------------------------------------------
// LayerSpec codec (tagged, recursive, depth- and length-guarded)
// ---------------------------------------------------------------------

const TAG_CONV: u8 = 0;
const TAG_RELU: u8 = 1;
const TAG_SIGMOID: u8 = 2;
const TAG_AVG_POOL: u8 = 3;
const TAG_MAX_POOL: u8 = 4;
const TAG_GLOBAL_AVG_POOL: u8 = 5;
const TAG_FLATTEN: u8 = 6;
const TAG_LINEAR: u8 = 7;
const TAG_INCEPTION: u8 = 8;
const TAG_DENSE_BLOCK: u8 = 9;
const TAG_BATCH_NORM: u8 = 10;
const TAG_DROPOUT: u8 = 11;
const TAG_RESIDUAL: u8 = 12;

fn encode_spec(spec: &LayerSpec, out: &mut Vec<u8>) -> Result<(), ArtifactError> {
    match spec {
        LayerSpec::Conv {
            out_ch,
            k,
            stride,
            pad,
        } => {
            out.put_u8(TAG_CONV);
            for v in [*out_ch, *k, *stride, *pad] {
                out.put_u32(u32_dim(v, "conv field")?);
            }
        }
        LayerSpec::ReLU => out.put_u8(TAG_RELU),
        LayerSpec::Sigmoid => out.put_u8(TAG_SIGMOID),
        LayerSpec::AvgPool { window, stride } => {
            out.put_u8(TAG_AVG_POOL);
            out.put_u32(u32_dim(*window, "pool window")?);
            out.put_u32(u32_dim(*stride, "pool stride")?);
        }
        LayerSpec::MaxPool { window, stride } => {
            out.put_u8(TAG_MAX_POOL);
            out.put_u32(u32_dim(*window, "pool window")?);
            out.put_u32(u32_dim(*stride, "pool stride")?);
        }
        LayerSpec::GlobalAvgPool => out.put_u8(TAG_GLOBAL_AVG_POOL),
        LayerSpec::Flatten => out.put_u8(TAG_FLATTEN),
        LayerSpec::Linear { out: features } => {
            out.put_u8(TAG_LINEAR);
            out.put_u32(u32_dim(*features, "linear features")?);
        }
        LayerSpec::Inception { branches } => {
            out.put_u8(TAG_INCEPTION);
            out.put_u32(u32_dim(branches.len(), "branch count")?);
            for branch in branches {
                encode_spec_list(branch, out)?;
            }
        }
        LayerSpec::DenseBlock { inner } => {
            out.put_u8(TAG_DENSE_BLOCK);
            encode_spec_list(inner, out)?;
        }
        LayerSpec::BatchNorm => out.put_u8(TAG_BATCH_NORM),
        LayerSpec::Dropout { percent } => {
            out.put_u8(TAG_DROPOUT);
            out.put_u8(*percent);
        }
        LayerSpec::Residual { inner, projector } => {
            out.put_u8(TAG_RESIDUAL);
            encode_spec_list(inner, out)?;
            encode_spec_list(projector, out)?;
        }
    }
    Ok(())
}

fn encode_spec_list(specs: &[LayerSpec], out: &mut Vec<u8>) -> Result<(), ArtifactError> {
    out.put_u32(u32_dim(specs.len(), "spec count")?);
    for spec in specs {
        encode_spec(spec, out)?;
    }
    Ok(())
}

fn decode_spec_list(cur: &mut Cursor<'_>, depth: usize) -> Result<Vec<LayerSpec>, ArtifactError> {
    if depth > MAX_SPEC_DEPTH {
        return Err(ArtifactError::Malformed(format!(
            "spec nesting deeper than {MAX_SPEC_DEPTH}"
        )));
    }
    let count = cur.u32("spec count")? as usize;
    // every spec costs at least its tag byte
    if count > cur.remaining() {
        return Err(ArtifactError::Malformed(format!(
            "spec count {count} exceeds what {} payload bytes can hold",
            cur.remaining()
        )));
    }
    let mut specs = Vec::with_capacity(count);
    for _ in 0..count {
        specs.push(decode_spec(cur, depth)?);
    }
    Ok(specs)
}

fn decode_spec(cur: &mut Cursor<'_>, depth: usize) -> Result<LayerSpec, ArtifactError> {
    let tag = cur.u8("spec tag")?;
    Ok(match tag {
        TAG_CONV => LayerSpec::Conv {
            out_ch: cur.u32("conv out_ch")? as usize,
            k: cur.u32("conv k")? as usize,
            stride: cur.u32("conv stride")? as usize,
            pad: cur.u32("conv pad")? as usize,
        },
        TAG_RELU => LayerSpec::ReLU,
        TAG_SIGMOID => LayerSpec::Sigmoid,
        TAG_AVG_POOL => LayerSpec::AvgPool {
            window: cur.u32("pool window")? as usize,
            stride: cur.u32("pool stride")? as usize,
        },
        TAG_MAX_POOL => LayerSpec::MaxPool {
            window: cur.u32("pool window")? as usize,
            stride: cur.u32("pool stride")? as usize,
        },
        TAG_GLOBAL_AVG_POOL => LayerSpec::GlobalAvgPool,
        TAG_FLATTEN => LayerSpec::Flatten,
        TAG_LINEAR => LayerSpec::Linear {
            out: cur.u32("linear features")? as usize,
        },
        TAG_INCEPTION => {
            let branches = cur.u32("branch count")? as usize;
            if branches > cur.remaining() {
                return Err(ArtifactError::Malformed(format!(
                    "branch count {branches} exceeds payload"
                )));
            }
            let mut out = Vec::with_capacity(branches);
            for _ in 0..branches {
                out.push(decode_spec_list(cur, depth + 1)?);
            }
            LayerSpec::Inception { branches: out }
        }
        TAG_DENSE_BLOCK => LayerSpec::DenseBlock {
            inner: decode_spec_list(cur, depth + 1)?,
        },
        TAG_BATCH_NORM => LayerSpec::BatchNorm,
        TAG_DROPOUT => LayerSpec::Dropout {
            percent: cur.u8("dropout percent")?,
        },
        TAG_RESIDUAL => LayerSpec::Residual {
            inner: decode_spec_list(cur, depth + 1)?,
            projector: decode_spec_list(cur, depth + 1)?,
        },
        other => {
            return Err(ArtifactError::Malformed(format!(
                "unknown spec tag {other}"
            )))
        }
    })
}

// ---------------------------------------------------------------------
// Bounds-checked cursor (never panics on truncated input)
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ArtifactError> {
        if self.buf.len() < n {
            return Err(ArtifactError::Truncated(what));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ArtifactError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ArtifactError> {
        Ok(u16::from_be_bytes(
            self.take(2, what)?.try_into().expect("2-byte slice"),
        ))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ArtifactError> {
        Ok(u32::from_be_bytes(
            self.take(4, what)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ArtifactError> {
        Ok(u64::from_be_bytes(
            self.take(8, what)?.try_into().expect("8-byte slice"),
        ))
    }

    /// Read one framed section: the id must match, the length must be
    /// backed by real bytes, and the payload CRC must hold.
    fn section(&mut self, id: u8, name: &'static str) -> Result<&'a [u8], ArtifactError> {
        let got = self.u8("section id")?;
        if got != id {
            return Err(ArtifactError::Malformed(format!(
                "expected section {id} ({name}), found {got}"
            )));
        }
        let len = self.u32("section length")? as usize;
        let payload = self.take(len, "section payload")?;
        let stored = self.u32("section checksum")?;
        let mut h = Hasher::new();
        h.update(payload);
        let computed = h.finalize();
        if stored != computed {
            return Err(ArtifactError::ChecksumMismatch {
                section: name,
                stored,
                computed,
            });
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_nn::spec::build_network;

    /// A small conv + pool + linear pipeline with real initialized
    /// parameters, packed at revision 3.
    fn sample() -> Artifact {
        let specs = vec![
            LayerSpec::Conv {
                out_ch: 4,
                k: 3,
                stride: 1,
                pad: 1,
            },
            LayerSpec::ReLU,
            LayerSpec::AvgPool {
                window: 2,
                stride: 2,
            },
            LayerSpec::Flatten,
            LayerSpec::Linear { out: 5 },
        ];
        let input = Shape4::new(1, 1, 8, 8);
        let mut net = build_network(&specs, input, 7).unwrap();
        Artifact {
            model: "tiny-conv".into(),
            revision: 3,
            specs,
            input,
            precision: Precision::Int8,
            params: net.export_params(),
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let artifact = sample();
        let bytes = artifact.encode().unwrap();
        let decoded = Artifact::decode(&bytes).unwrap();
        assert_eq!(decoded, artifact);
        decoded.validate().unwrap();
        // a round-tripped artifact re-encodes to the identical byte stream
        assert_eq!(decoded.encode().unwrap(), bytes);
    }

    #[test]
    fn loaded_artifact_compiles_bitwise_identically() {
        let artifact = sample();
        let direct = ExecutionPlan::compile(
            &artifact.specs,
            &artifact.params,
            artifact.input,
            PlanOptions::default().with_precision(Precision::Fp16),
        )
        .unwrap();
        let bytes = artifact.encode().unwrap();
        let loaded = Artifact::load(&bytes).unwrap();
        let via_artifact = loaded.compile(Precision::Fp16).unwrap();

        let input = Tensor::from_vec(
            artifact.input,
            (0..artifact.input.len())
                .map(|i| (i as f32 * 0.37).sin())
                .collect(),
        )
        .unwrap();
        let mut ws = mlcnn_core::Workspace::new();
        let a = direct.forward(&input, &mut ws).unwrap();
        let b = via_artifact.forward(&input, &mut ws).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "plans diverged bitwise");
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode().unwrap();
        // Flipping any one byte anywhere must fail decode (whole-file CRC
        // catches all of them; earlier structural errors are also fine).
        // Step through the stream to keep the test fast yet cover every
        // region: header, each section, payloads, checksums, trailer.
        for i in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                Artifact::decode(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode().unwrap();
        for len in (0..bytes.len()).step_by(5).chain([bytes.len() - 1]) {
            assert!(
                Artifact::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let good = sample().encode().unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0..4].copy_from_slice(b"NOPE");
        let tail = bad_magic.len() - 4;
        let crc = crc32(&bad_magic[..tail]).to_be_bytes();
        bad_magic[tail..].copy_from_slice(&crc);
        assert!(matches!(
            Artifact::decode(&bad_magic),
            Err(ArtifactError::BadMagic(m)) if &m == b"NOPE"
        ));

        let mut bad_version = good.clone();
        bad_version[4..6].copy_from_slice(&99u16.to_be_bytes());
        let tail = bad_version.len() - 4;
        let crc = crc32(&bad_version[..tail]).to_be_bytes();
        bad_version[tail..].copy_from_slice(&crc);
        assert!(matches!(
            Artifact::decode(&bad_version),
            Err(ArtifactError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn flipped_body_without_fixed_trailer_is_checksum_mismatch() {
        let bytes = sample().encode().unwrap();
        let mut corrupt = bytes.clone();
        corrupt[20] ^= 0x01;
        assert!(matches!(
            Artifact::decode(&corrupt),
            Err(ArtifactError::ChecksumMismatch {
                section: "file",
                ..
            })
        ));
    }

    #[test]
    fn param_shape_disagreement_fails_validate() {
        let mut artifact = sample();
        // swap the conv bias for a wrong-shaped tensor
        artifact.params[1] = Tensor::from_vec(Shape4::new(1, 1, 1, 3), vec![0.0; 3]).unwrap();
        assert!(matches!(
            artifact.validate(),
            Err(ArtifactError::SpecParamMismatch(_))
        ));
        // decode alone accepts it (structure is fine); load rejects it
        let bytes = artifact.encode().unwrap();
        assert!(Artifact::decode(&bytes).is_ok());
        assert!(matches!(
            Artifact::load(&bytes),
            Err(ArtifactError::SpecParamMismatch(_))
        ));
    }

    #[test]
    fn missing_param_tensor_fails_validate() {
        let mut artifact = sample();
        artifact.params.pop();
        assert!(matches!(
            artifact.validate(),
            Err(ArtifactError::SpecParamMismatch(_))
        ));
    }

    #[test]
    fn incompilable_spec_fails_validate() {
        let mut artifact = sample();
        artifact.specs.push(LayerSpec::BatchNorm);
        assert!(matches!(
            artifact.validate(),
            Err(ArtifactError::Incompilable(_))
        ));
    }

    #[test]
    fn model_name_rules() {
        for good in ["a", "lenet5", "vgg-mini", "mlp_2.1", "X9"] {
            validate_model_name(good).unwrap();
        }
        for bad in ["", ".hidden", "-flag", "a b", "a@1", "a/b", "ünïcode"] {
            assert!(validate_model_name(bad).is_err(), "accepted '{bad}'");
        }
        assert!(validate_model_name(&"x".repeat(MAX_MODEL_NAME)).is_ok());
        assert!(validate_model_name(&"x".repeat(MAX_MODEL_NAME + 1)).is_err());
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(artifact_file_name("lenet5", 7), "lenet5@7.mlcnn");
        assert_eq!(
            parse_file_name("lenet5@7.mlcnn"),
            Some(("lenet5".into(), 7))
        );
        assert_eq!(sample().file_name(), "tiny-conv@3.mlcnn");
        for bad in [
            "lenet5.mlcnn",    // no revision
            "lenet5@0.mlcnn",  // revision 0 reserved
            "lenet5@x.mlcnn",  // non-numeric revision
            "lenet5@7.bin",    // wrong extension
            "@7.mlcnn",        // empty model
            ".hidden@1.mlcnn", // illegal name
        ] {
            assert_eq!(parse_file_name(bad), None, "accepted '{bad}'");
        }
    }

    #[test]
    fn revision_zero_is_rejected() {
        let mut artifact = sample();
        artifact.revision = 0;
        assert!(artifact.encode().is_err());
        assert!(artifact.validate().is_err());
    }

    #[test]
    fn nested_specs_round_trip() {
        // Composite layers are not servable, but the codec must still
        // round-trip them faithfully (packing rejects them at validate,
        // not by silently mangling the encoding).
        let specs = vec![LayerSpec::Residual {
            inner: vec![
                LayerSpec::Conv {
                    out_ch: 2,
                    k: 3,
                    stride: 1,
                    pad: 1,
                },
                LayerSpec::ReLU,
            ],
            projector: vec![],
        }];
        let artifact = Artifact {
            model: "nested".into(),
            revision: 1,
            specs,
            input: Shape4::new(1, 2, 4, 4),
            precision: Precision::Fp32,
            params: vec![],
        };
        let bytes = artifact.encode().unwrap();
        assert_eq!(Artifact::decode(&bytes).unwrap(), artifact);
    }
}
