//! Byte-budgeted LRU cache of compiled execution plans.
//!
//! Compiling a plan re-reads the artifact and bakes its weights — cheap
//! enough to do lazily, expensive enough not to redo per request. The
//! registry keys plans by `(model, revision, precision)` and bounds the
//! cache by *estimated resident bytes*, not entry count: a plan's cost is
//! its baked parameter bytes plus its single-request arena high-water
//! mark ([`ExecutionPlan::resident_param_bytes`] +
//! [`ExecutionPlan::arena_bytes`]). Counting entries would let a handful
//! of large models blow the memory envelope that dozens of small ones
//! respect; counting bytes makes the bound mean what operators configure.
//!
//! The estimate is deliberately an *as-if-unshared* upper bound: plans
//! compiled through the dedup [`SegmentStore`](mlcnn_core::SegmentStore)
//! share weight `Arc`s, so true incremental cost can be far lower. The
//! cache stays conservative — eviction under dedup happens earlier than
//! strictly necessary, never later.
//!
//! Entries are `Arc<ExecutionPlan>`, so eviction never tears a plan out
//! from under a live `Service` — the service holds its own `Arc` and the
//! plan is freed only when the last holder drops it. The most recently
//! inserted entry is never evicted by its own insertion: even a plan
//! larger than the whole budget is admitted alone, because the caller is
//! about to use it and recompiling every request would be worse.

use mlcnn_core::ExecutionPlan;
use mlcnn_quant::Precision;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: one compiled plan per `(model, revision, precision)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Model name.
    pub model: String,
    /// Artifact revision.
    pub revision: u64,
    /// Datapath precision the plan was compiled at.
    pub precision: Precision,
}

struct Entry {
    plan: Arc<ExecutionPlan>,
    /// Estimated resident cost: baked parameter bytes + single-request
    /// arena bytes, computed once at insert.
    bytes: usize,
    /// Logical timestamp of the last hit (monotone counter, not wall
    /// clock — only the ordering matters).
    last_used: u64,
}

/// Point-in-time occupancy of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of plans currently resident.
    pub entries: usize,
    /// Estimated resident bytes across all entries (as-if-unshared:
    /// parameter bytes + per-plan arena, ignoring dedup sharing).
    pub resident_bytes: usize,
    /// Configured byte budget.
    pub capacity_bytes: usize,
}

/// Byte-budgeted LRU of compiled plans. All methods are `&self`; the
/// interior mutex makes the cache shareable across the registry's
/// callers.
pub struct PlanCache {
    capacity_bytes: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity_bytes", &stats.capacity_bytes)
            .field("entries", &stats.entries)
            .field("resident_bytes", &stats.resident_bytes)
            .finish()
    }
}

struct Inner {
    entries: HashMap<PlanKey, Entry>,
    resident_bytes: usize,
    clock: u64,
}

/// Estimated resident cost of one cached plan: baked parameter bytes
/// plus the batch-1 arena high-water mark.
fn plan_bytes(plan: &ExecutionPlan) -> usize {
    plan.resident_param_bytes()
        .saturating_add(plan.arena_bytes(1))
}

impl PlanCache {
    /// Cache evicting least-recently-used plans once estimated resident
    /// bytes exceed `capacity_bytes`. The newest entry is always admitted
    /// regardless of size, so any budget (including `0`) holds at least
    /// one plan.
    pub fn new(capacity_bytes: usize) -> Self {
        PlanCache {
            capacity_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                resident_bytes: 0,
                clock: 0,
            }),
        }
    }

    /// Configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Number of plans currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .entries
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy snapshot: entry count, estimated resident bytes, budget.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("plan cache poisoned");
        CacheStats {
            entries: inner.entries.len(),
            resident_bytes: inner.resident_bytes,
            capacity_bytes: self.capacity_bytes,
        }
    }

    /// Look up a plan, refreshing its recency on hit.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<ExecutionPlan>> {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.clock += 1;
        let now = inner.clock;
        let entry = inner.entries.get_mut(key)?;
        entry.last_used = now;
        Some(Arc::clone(&entry.plan))
    }

    /// Insert a freshly compiled plan, then evict least-recently-used
    /// entries (never the one just inserted) until estimated resident
    /// bytes fit the budget. Returns the inserted plan (or, if a racing
    /// caller beat us to the same key, the plan already resident — so
    /// concurrent compilers converge on one instance).
    pub fn insert(&self, key: PlanKey, plan: Arc<ExecutionPlan>) -> Arc<ExecutionPlan> {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.clock += 1;
        let now = inner.clock;
        if let Some(existing) = inner.entries.get_mut(&key) {
            existing.last_used = now;
            return Arc::clone(&existing.plan);
        }
        let bytes = plan_bytes(&plan);
        inner.resident_bytes = inner.resident_bytes.saturating_add(bytes);
        inner.entries.insert(
            key.clone(),
            Entry {
                plan: Arc::clone(&plan),
                bytes,
                last_used: now,
            },
        );
        while inner.resident_bytes > self.capacity_bytes && inner.entries.len() > 1 {
            // O(n) scan is fine at registry scale (the cache holds tens
            // of plans, not thousands).
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("len > 1 so a non-inserted entry exists");
            if let Some(evicted) = inner.entries.remove(&victim) {
                inner.resident_bytes = inner.resident_bytes.saturating_sub(evicted.bytes);
            }
        }
        plan
    }

    /// Drop every cached plan for one `(model, revision)` across all
    /// precisions — used when `gc` prunes a revision.
    pub fn evict_revision(&self, model: &str, revision: u64) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        let mut freed = 0usize;
        inner.entries.retain(|k, e| {
            let keep = k.model != model || k.revision != revision;
            if !keep {
                freed = freed.saturating_add(e.bytes);
            }
            keep
        });
        inner.resident_bytes = inner.resident_bytes.saturating_sub(freed);
    }

    /// Drop every cached plan for `model` (all revisions and precisions) —
    /// used when a model's artifacts are republished in place or pruned
    /// by `gc`.
    pub fn evict_model(&self, model: &str) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        let mut freed = 0usize;
        inner.entries.retain(|k, e| {
            let keep = k.model != model;
            if !keep {
                freed = freed.saturating_add(e.bytes);
            }
            keep
        });
        inner.resident_bytes = inner.resident_bytes.saturating_sub(freed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_core::PlanOptions;
    use mlcnn_nn::LayerSpec;
    use mlcnn_tensor::{Shape4, Tensor};

    fn tiny_plan() -> Arc<ExecutionPlan> {
        // 1×4 input through a 2-feature linear layer: the smallest
        // compilable pipeline.
        let specs = [LayerSpec::Flatten, LayerSpec::Linear { out: 2 }];
        let params = [
            Tensor::from_vec(Shape4::new(1, 1, 2, 4), vec![0.5; 8]).unwrap(),
            Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![0.0; 2]).unwrap(),
        ];
        let input = Shape4::new(1, 1, 1, 4);
        Arc::new(ExecutionPlan::compile(&specs, &params, input, PlanOptions::default()).unwrap())
    }

    fn key(model: &str, revision: u64) -> PlanKey {
        PlanKey {
            model: model.into(),
            revision,
            precision: Precision::Fp32,
        }
    }

    /// Budget for exactly `n` copies of the tiny test plan.
    fn budget_for(n: usize) -> usize {
        plan_bytes(&tiny_plan()) * n
    }

    #[test]
    fn byte_budget_is_enforced_with_lru_eviction() {
        let cache = PlanCache::new(budget_for(2));
        cache.insert(key("a", 1), tiny_plan());
        cache.insert(key("b", 1), tiny_plan());
        // touch "a" so "b" is the LRU victim
        assert!(cache.get(&key("a", 1)).is_some());
        cache.insert(key("c", 1), tiny_plan());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("a", 1)).is_some());
        assert!(cache.get(&key("b", 1)).is_none());
        assert!(cache.get(&key("c", 1)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.resident_bytes, budget_for(2));
        assert!(stats.resident_bytes <= stats.capacity_bytes);
    }

    #[test]
    fn stats_track_bytes_through_insert_and_evict() {
        let cache = PlanCache::new(budget_for(8));
        let per_plan = plan_bytes(&tiny_plan());
        assert_eq!(
            cache.stats(),
            CacheStats {
                entries: 0,
                resident_bytes: 0,
                capacity_bytes: per_plan * 8,
            }
        );
        cache.insert(key("a", 1), tiny_plan());
        cache.insert(key("a", 2), tiny_plan());
        cache.insert(key("b", 1), tiny_plan());
        assert_eq!(cache.stats().resident_bytes, per_plan * 3);
        cache.evict_model("a");
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().resident_bytes, per_plan);
    }

    #[test]
    fn insert_is_idempotent_per_key() {
        let cache = PlanCache::new(budget_for(4));
        let first = cache.insert(key("a", 1), tiny_plan());
        let second = cache.insert(key("a", 1), tiny_plan());
        // the racing insert converges on the resident plan
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().resident_bytes, plan_bytes(&tiny_plan()));
    }

    #[test]
    fn evict_model_clears_all_revisions() {
        let cache = PlanCache::new(budget_for(8));
        cache.insert(key("a", 1), tiny_plan());
        cache.insert(key("a", 2), tiny_plan());
        cache.insert(key("b", 1), tiny_plan());
        cache.evict_model("a");
        assert!(cache.get(&key("a", 1)).is_none());
        assert!(cache.get(&key("a", 2)).is_none());
        assert!(cache.get(&key("b", 1)).is_some());
    }

    #[test]
    fn oversized_entry_is_still_admitted_alone() {
        // a zero-byte budget cannot hold any plan "within budget", but the
        // newest insert is never its own victim — the cache degrades to
        // capacity one instead of thrashing to zero
        let cache = PlanCache::new(0);
        cache.insert(key("a", 1), tiny_plan());
        assert!(cache.get(&key("a", 1)).is_some());
        assert_eq!(cache.len(), 1);
        cache.insert(key("b", 1), tiny_plan());
        assert!(cache.get(&key("a", 1)).is_none(), "LRU must still evict");
        assert!(cache.get(&key("b", 1)).is_some());
    }
}
