//! Bounded LRU cache of compiled execution plans.
//!
//! Compiling a plan re-reads the artifact and bakes its weights — cheap
//! enough to do lazily, expensive enough not to redo per request. The
//! registry keys plans by `(model, revision, precision)` and keeps at most
//! a fixed number of compiled plans alive; the least-recently-used entry
//! is evicted when a new compilation would exceed the bound.
//!
//! Entries are `Arc<ExecutionPlan>`, so eviction never tears a plan out
//! from under a live `Service` — the service holds its own `Arc` and the
//! plan is freed only when the last holder drops it.

use mlcnn_core::ExecutionPlan;
use mlcnn_quant::Precision;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: one compiled plan per `(model, revision, precision)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Model name.
    pub model: String,
    /// Artifact revision.
    pub revision: u64,
    /// Datapath precision the plan was compiled at.
    pub precision: Precision,
}

struct Entry {
    plan: Arc<ExecutionPlan>,
    /// Logical timestamp of the last hit (monotone counter, not wall
    /// clock — only the ordering matters).
    last_used: u64,
}

/// Bounded LRU of compiled plans. All methods are `&self`; the interior
/// mutex makes the cache shareable across the registry's callers.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

struct Inner {
    entries: HashMap<PlanKey, Entry>,
    clock: u64,
}

impl PlanCache {
    /// Cache holding at most `capacity` compiled plans (minimum 1 — a
    /// zero-capacity cache would recompile on every request).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
            }),
        }
    }

    /// Maximum number of resident plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of plans currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .entries
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a plan, refreshing its recency on hit.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<ExecutionPlan>> {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.clock += 1;
        let now = inner.clock;
        let entry = inner.entries.get_mut(key)?;
        entry.last_used = now;
        Some(Arc::clone(&entry.plan))
    }

    /// Insert a freshly compiled plan, evicting the least-recently-used
    /// entry if the cache is full. Returns the inserted plan (or, if a
    /// racing caller beat us to the same key, the plan already resident —
    /// so concurrent compilers converge on one instance).
    pub fn insert(&self, key: PlanKey, plan: Arc<ExecutionPlan>) -> Arc<ExecutionPlan> {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.clock += 1;
        let now = inner.clock;
        if let Some(existing) = inner.entries.get_mut(&key) {
            existing.last_used = now;
            return Arc::clone(&existing.plan);
        }
        if inner.entries.len() >= self.capacity {
            // O(n) scan is fine at registry scale (capacity is tens of
            // plans, not thousands).
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
            }
        }
        inner.entries.insert(
            key,
            Entry {
                plan: Arc::clone(&plan),
                last_used: now,
            },
        );
        plan
    }

    /// Drop every cached plan for `model` (all revisions and precisions) —
    /// used when a model's artifacts are republished in place.
    pub fn evict_model(&self, model: &str) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.entries.retain(|k, _| k.model != model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_core::PlanOptions;
    use mlcnn_nn::LayerSpec;
    use mlcnn_tensor::{Shape4, Tensor};

    fn tiny_plan() -> Arc<ExecutionPlan> {
        // 1×4 input through a 2-feature linear layer: the smallest
        // compilable pipeline.
        let specs = [LayerSpec::Flatten, LayerSpec::Linear { out: 2 }];
        let params = [
            Tensor::from_vec(Shape4::new(1, 1, 2, 4), vec![0.5; 8]).unwrap(),
            Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![0.0; 2]).unwrap(),
        ];
        let input = Shape4::new(1, 1, 1, 4);
        Arc::new(ExecutionPlan::compile(&specs, &params, input, PlanOptions::default()).unwrap())
    }

    fn key(model: &str, revision: u64) -> PlanKey {
        PlanKey {
            model: model.into(),
            revision,
            precision: Precision::Fp32,
        }
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let cache = PlanCache::new(2);
        cache.insert(key("a", 1), tiny_plan());
        cache.insert(key("b", 1), tiny_plan());
        // touch "a" so "b" is the LRU victim
        assert!(cache.get(&key("a", 1)).is_some());
        cache.insert(key("c", 1), tiny_plan());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("a", 1)).is_some());
        assert!(cache.get(&key("b", 1)).is_none());
        assert!(cache.get(&key("c", 1)).is_some());
    }

    #[test]
    fn insert_is_idempotent_per_key() {
        let cache = PlanCache::new(4);
        let first = cache.insert(key("a", 1), tiny_plan());
        let second = cache.insert(key("a", 1), tiny_plan());
        // the racing insert converges on the resident plan
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evict_model_clears_all_revisions() {
        let cache = PlanCache::new(8);
        cache.insert(key("a", 1), tiny_plan());
        cache.insert(key("a", 2), tiny_plan());
        cache.insert(key("b", 1), tiny_plan());
        cache.evict_model("a");
        assert!(cache.get(&key("a", 1)).is_none());
        assert!(cache.get(&key("a", 2)).is_none());
        assert!(cache.get(&key("b", 1)).is_some());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = PlanCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(key("a", 1), tiny_plan());
        assert!(cache.get(&key("a", 1)).is_some());
    }
}
