//! Typed error surface of the artifact codec and the registry.

use std::fmt;

/// Why an `.mlcnn` artifact failed to decode or validate.
///
/// Every variant is a *typed* rejection — hostile or torn input maps to a
/// specific class, never a panic — so the registry can translate each into
/// its `R0xx` diagnostic code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The byte stream ended before the named structure was complete.
    Truncated(&'static str),
    /// The leading magic bytes are not `MLCA`.
    BadMagic([u8; 4]),
    /// The header names a format version this build does not read.
    UnsupportedVersion(u16),
    /// A section or the whole-file trailer failed its CRC-32.
    ChecksumMismatch {
        /// What the checksum covered (`"META"`, `"SPECS"`, `"PARAMS"`,
        /// or `"file"`).
        section: &'static str,
        /// Checksum stored in the artifact.
        stored: u32,
        /// Checksum computed over the bytes actually present.
        computed: u32,
    },
    /// Structurally invalid content: a bad enum tag, an implausible count,
    /// non-UTF-8 text, an illegal model name, or trailing bytes.
    Malformed(String),
    /// The parameter tensors disagree with the shapes the spec list
    /// requires.
    SpecParamMismatch(String),
    /// The spec list cannot be compiled into an execution plan.
    Incompilable(String),
    /// The stored HASHES section disagrees with the layer content hashes
    /// recomputed from the decoded specs and parameters — the sections
    /// passed their CRCs individually but do not belong together
    /// (surfaced as `R005` by the registry scan).
    HashMismatch(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated(what) => write!(f, "truncated before {what}"),
            ArtifactError::BadMagic(m) => write!(f, "bad magic {m:?} (expected \"MLCA\")"),
            ArtifactError::UnsupportedVersion(v) => write!(f, "unsupported artifact version {v}"),
            ArtifactError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "{section} checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            ArtifactError::Malformed(why) => write!(f, "malformed artifact: {why}"),
            ArtifactError::SpecParamMismatch(why) => {
                write!(f, "parameters disagree with specs: {why}")
            }
            ArtifactError::Incompilable(why) => write!(f, "spec list not plan-compilable: {why}"),
            ArtifactError::HashMismatch(why) => {
                write!(f, "layer content hash mismatch: {why}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Why a registry operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Filesystem access failed (rendered `io::Error`).
    Io(String),
    /// The scan was rejected by the `R0xx` lint gate; carries the joined
    /// denial diagnostics.
    Rejected(String),
    /// The named model is not in the registry.
    UnknownModel(String),
    /// The named model has no such revision.
    UnknownRevision {
        /// Model name.
        model: String,
        /// Requested revision.
        revision: u64,
    },
    /// Rollback was requested but the model's publish history holds only
    /// the currently active revision.
    NoHistory(String),
    /// `install` was asked to write a `model@revision` that already
    /// exists — published artifacts are immutable.
    RevisionExists {
        /// Model name.
        model: String,
        /// Revision that already exists.
        revision: u64,
    },
    /// An artifact that validated at `open` later failed to load or
    /// compile (e.g. the file changed on disk underneath the registry).
    Artifact {
        /// File name within the registry root.
        file: String,
        /// The underlying decode/validate failure.
        error: ArtifactError,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry I/O failed: {e}"),
            RegistryError::Rejected(diags) => write!(f, "registry scan rejected: {diags}"),
            RegistryError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
            RegistryError::UnknownRevision { model, revision } => {
                write!(f, "model '{model}' has no revision {revision}")
            }
            RegistryError::NoHistory(model) => {
                write!(
                    f,
                    "model '{model}' has no previous revision to roll back to"
                )
            }
            RegistryError::RevisionExists { model, revision } => {
                write!(f, "model '{model}' already has revision {revision}")
            }
            RegistryError::Artifact { file, error } => write!(f, "{file}: {error}"),
        }
    }
}

impl std::error::Error for RegistryError {}
