//! Fig. 14 as a benchmark: per-layer dense vs MLCNN op counting across
//! the full evaluation-model zoo, plus the reuse-mode ablation
//! (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcnn_core::opcount::{dense_layer_counts, fused_layer_counts, model_reductions};
use mlcnn_core::reuse_sim::ReuseMode;
use mlcnn_nn::zoo;
use std::hint::black_box;

fn bench_fig14_per_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_flop_reductions");
    for model in zoo::evaluation_models(100) {
        group.bench_with_input(BenchmarkId::from_parameter(&model.name), &model, |b, m| {
            b.iter(|| black_box(model_reductions(black_box(m))))
        });
    }
    group.finish();
}

fn bench_reuse_mode_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reuse_modes");
    let model = zoo::lenet5(100);
    let g = &model.convs[1]; // C2, the paper's highlighted layer
    for (label, mode) in [
        ("rme_only", ReuseMode::None),
        ("rme_lar", ReuseMode::Lar),
        ("rme_gar", ReuseMode::Gar),
        ("mlcnn_both", ReuseMode::Both),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| black_box(fused_layer_counts(black_box(g), 2, mode)))
        });
    }
    group.bench_function("dense_baseline", |b| {
        b.iter(|| black_box(dense_layer_counts(black_box(g))))
    });
    group.finish();
}

criterion_group!(benches, bench_fig14_per_model, bench_reuse_mode_ablation);
criterion_main!(benches);
