//! Figs. 3/4/12's machinery as benchmarks: training-epoch and inference
//! throughput of the reduced models on the synthetic datasets, original
//! vs reordered order (Table I's trainable counterparts). Kept small —
//! the point is relative cost, not a soak test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcnn_core::reorder::reorder_activation_pool;
use mlcnn_data::shapes::{generate, ShapesConfig};
use mlcnn_nn::spec::build_network;
use mlcnn_nn::train::{fit, TrainConfig};
use mlcnn_nn::zoo;
use std::hint::black_box;

fn bench_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_training_epoch");
    group.sample_size(10);
    let data = generate(ShapesConfig::cifar10_like(4, 1));
    let input = data.item_shape().unwrap();
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        ..Default::default()
    };
    for (label, specs) in [
        ("lenet5_original", zoo::lenet5_spec(10)),
        (
            "lenet5_reordered",
            reorder_activation_pool(&zoo::lenet5_spec(10)).specs,
        ),
        ("vgg_mini_original", zoo::vgg_mini_spec(2, 10)),
        (
            "vgg_mini_reordered",
            reorder_activation_pool(&zoo::vgg_mini_spec(2, 10)).specs,
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &specs, |b, specs| {
            b.iter(|| {
                let mut net = build_network(specs, input, 3).unwrap();
                black_box(fit(&mut net, &data, &cfg).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_inference");
    group.sample_size(20);
    let data = generate(ShapesConfig::cifar10_like(4, 2));
    let input = data.item_shape().unwrap();
    let batch = data.batches(16).next().unwrap();
    for (label, specs) in [
        ("lenet5", zoo::lenet5_spec(10)),
        ("googlenet_mini", zoo::googlenet_mini_spec(2, 10)),
        ("densenet_mini", zoo::densenet_mini_spec(2, 10)),
    ] {
        let mut net = build_network(&specs, input, 3).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| black_box(net.forward(black_box(&batch.images)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch, bench_inference);
criterion_main!(benches);
