//! Substrate microbenchmarks: GEMM, direct vs im2col convolution, and
//! pooling — validating the performance assumptions the training and
//! kernel code rely on (e.g. the rayon parallel crossover in `linalg`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcnn_tensor::conv::{conv2d_direct, conv2d_im2col};
use mlcnn_tensor::linalg::matmul;
use mlcnn_tensor::pool::{avg_pool2d, max_pool2d};
use mlcnn_tensor::{init, Shape4};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for &n in &[32usize, 64, 128, 256] {
        let mut rng = init::rng(1);
        let a = init::uniform(Shape4::new(1, 1, n, n), -1.0, 1.0, &mut rng);
        let b = init::uniform(Shape4::new(1, 1, n, n), -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bench, &n| {
            bench.iter(|| black_box(matmul(a.as_slice(), b.as_slice(), n, n, n)))
        });
    }
    group.finish();
}

fn bench_conv_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_direct_vs_im2col");
    group.sample_size(15);
    let mut rng = init::rng(2);
    let input = init::uniform(Shape4::new(4, 16, 32, 32), -1.0, 1.0, &mut rng);
    let weight = init::uniform(Shape4::new(32, 16, 3, 3), -0.5, 0.5, &mut rng);
    group.bench_function("direct", |b| {
        b.iter(|| black_box(conv2d_direct(&input, &weight, None, 1, 1).unwrap()))
    });
    group.bench_function("im2col_gemm", |b| {
        b.iter(|| black_box(conv2d_im2col(&input, &weight, None, 1, 1).unwrap()))
    });
    group.finish();
}

fn bench_pooling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooling");
    group.sample_size(30);
    let mut rng = init::rng(3);
    let input = init::uniform(Shape4::new(4, 32, 32, 32), -1.0, 1.0, &mut rng);
    group.bench_function("avg_2x2", |b| {
        b.iter(|| black_box(avg_pool2d(&input, 2, 2).unwrap()))
    });
    group.bench_function("max_2x2", |b| {
        b.iter(|| black_box(max_pool2d(&input, 2, 2).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_conv_paths, bench_pooling);
criterion_main!(benches);
