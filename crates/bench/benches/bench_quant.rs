//! Fig. 12's machinery as benchmarks: binary16 conversion, DoReFa
//! quantization and the INT8 fixed-point MAC path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcnn_quant::dorefa;
use mlcnn_quant::fixed::{mac_i32, Q6};
use mlcnn_quant::F16;
use mlcnn_tensor::{init, Shape4};
use std::hint::black_box;

fn bench_f16_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_f16_roundtrip");
    let mut rng = init::rng(1);
    let data = init::uniform(Shape4::new(1, 1, 64, 64), -100.0, 100.0, &mut rng);
    group.bench_function("tensor_4096_elems", |b| {
        b.iter(|| {
            for &v in data.as_slice() {
                black_box(F16::from_f32_rne(black_box(v)).to_f32_exact());
            }
        })
    });
    group.finish();
}

fn bench_dorefa(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_dorefa");
    let mut rng = init::rng(2);
    let weights = init::normal(Shape4::new(32, 16, 3, 3), 0.5, &mut rng);
    let acts = init::uniform(Shape4::new(1, 32, 16, 16), 0.0, 1.0, &mut rng);
    for &k in &[2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::new("weights_eq9", k), &k, |b, &k| {
            b.iter(|| black_box(dorefa::quantize_weights(black_box(&weights), k)))
        });
        group.bench_with_input(BenchmarkId::new("activations_eq8", k), &k, |b, &k| {
            b.iter(|| black_box(dorefa::quantize_activations(black_box(&acts), k)))
        });
    }
    group.finish();
}

fn bench_int8_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_int8_mac");
    let a: Vec<Q6> = (0..1024).map(|i| Q6::from_raw((i % 127) as i8)).collect();
    let b_ops: Vec<Q6> = (0..1024)
        .map(|i| Q6::from_raw((i % 63) as i8 - 31))
        .collect();
    group.bench_function("widening_mac_1024", |bench| {
        bench.iter(|| black_box(mac_i32(0, black_box(&a), black_box(&b_ops))))
    });
    group.finish();
}

criterion_group!(benches, bench_f16_conversion, bench_dorefa, bench_int8_mac);
criterion_main!(benches);
