//! The headline microbenchmark: the MLCNN fused conv-pool kernel against
//! the dense `conv → avg-pool → ReLU` reference, at the paper's fused
//! layer geometries. This is where RME/LAR/GAR turn into wall-clock time
//! on a CPU substrate (Figs. 13/14's software-level counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcnn_core::FusedConvPool;
use mlcnn_tensor::{init, Shape4};
use std::hint::black_box;

struct Geometry {
    label: &'static str,
    in_ch: usize,
    out_ch: usize,
    d: usize,
    k: usize,
    pad: usize,
    pool: usize,
}

/// Representative fused layers from the evaluation models.
const GEOMETRIES: [Geometry; 4] = [
    // LeNet-5 C2: 6→16, 5x5 kernel, 14x14 input, 2x2 pool
    Geometry {
        label: "lenet_c2",
        in_ch: 6,
        out_ch: 16,
        d: 14,
        k: 5,
        pad: 0,
        pool: 2,
    },
    // VGG-16 C2-like (narrowed): 32→32, 3x3, 32x32, 2x2 pool
    Geometry {
        label: "vgg_c2_narrow",
        in_ch: 32,
        out_ch: 32,
        d: 32,
        k: 3,
        pad: 1,
        pool: 2,
    },
    // DenseNet transition-like: 1x1 kernel, 2x2 pool
    Geometry {
        label: "densenet_transition",
        in_ch: 64,
        out_ch: 32,
        d: 16,
        k: 1,
        pad: 0,
        pool: 2,
    },
    // GoogLeNet 5b-like: 3x3 kernel feeding the 8x8 global pool
    Geometry {
        label: "googlenet_5b_8x8pool",
        in_ch: 64,
        out_ch: 64,
        d: 8,
        k: 3,
        pad: 1,
        pool: 8,
    },
];

fn bench_fused_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_conv_pool_vs_dense");
    group.sample_size(20);
    for g in &GEOMETRIES {
        let mut rng = init::rng(7);
        let input = init::uniform(Shape4::new(1, g.in_ch, g.d, g.d), -1.0, 1.0, &mut rng);
        let weight = init::uniform(
            Shape4::new(g.out_ch, g.in_ch, g.k, g.k),
            -0.5,
            0.5,
            &mut rng,
        );
        let bias = vec![0.01_f32; g.out_ch];
        let fused = FusedConvPool::new(weight, bias, 1, g.pad, g.pool).unwrap();
        group.bench_with_input(BenchmarkId::new("mlcnn_fused", g.label), &fused, |b, f| {
            b.iter(|| black_box(f.forward(black_box(&input)).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("dense_reference", g.label),
            &fused,
            |b, f| b.iter(|| black_box(f.reference(black_box(&input)).unwrap())),
        );
    }
    group.finish();
}

fn bench_whole_model_fused_inference(c: &mut Criterion) {
    use mlcnn_core::fused_net::FusedNetwork;
    use mlcnn_core::reorder::reorder_activation_pool;
    use mlcnn_nn::spec::build_network;
    use mlcnn_nn::zoo;

    let mut group = c.benchmark_group("whole_model_inference");
    group.sample_size(15);
    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let input = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, input, 9).unwrap();
    let params = net.export_params();
    let fused = FusedNetwork::compile(&specs, &params, input).unwrap();
    let x = init::uniform(Shape4::new(4, 3, 32, 32), -1.0, 1.0, &mut init::rng(5));
    group.bench_function("lenet5_layerwise", |b| {
        b.iter(|| black_box(net.forward(black_box(&x)).unwrap()))
    });
    group.bench_function("lenet5_mlcnn_fused", |b| {
        b.iter(|| black_box(fused.forward(black_box(&x)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fused_vs_dense,
    bench_whole_model_fused_inference
);
criterion_main!(benches);
