//! Figs. 13 & 15 as benchmarks: whole-model cycle/energy simulation on
//! every Table VII machine, plus the tiling-search cost (the dataflow
//! ablation of DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcnn_accel::config::AcceleratorConfig;
use mlcnn_accel::cycle::simulate_model;
use mlcnn_accel::dataflow::search_tiling;
use mlcnn_accel::energy::EnergyModel;
use mlcnn_nn::zoo;
use std::hint::black_box;

fn bench_fig13_fig15_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_fig15_model_simulation");
    group.sample_size(10);
    let em = EnergyModel::default();
    for model in [zoo::lenet5(100), zoo::vgg16(100), zoo::googlenet(100)] {
        for cfg in AcceleratorConfig::table7() {
            let label = format!("{}_{}", model.name, cfg.name.replace(' ', "_"));
            group.bench_with_input(
                BenchmarkId::from_parameter(&label),
                &(&model, &cfg),
                |b, (m, cfg)| b.iter(|| black_box(simulate_model(m, cfg, &em))),
            );
        }
    }
    group.finish();
}

fn bench_tiling_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tiling_search");
    let model = zoo::vgg16(100);
    let cap_fp32 = 134 * 1024 / 4;
    for name in ["C2", "C7", "C13"] {
        let g = model.convs.iter().find(|c| c.name == name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), g, |b, g| {
            b.iter(|| black_box(search_tiling(black_box(g), cap_fp32)))
        });
    }
    group.finish();
}

fn bench_tile_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_schedule_trace");
    let cfg = AcceleratorConfig::mlcnn_fp32();
    let model = zoo::vgg16(100);
    for name in ["C2", "C7"] {
        let g = model.convs.iter().find(|c| c.name == name).unwrap();
        let (tiling, _) = search_tiling(g, cfg.buffer_elements()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), g, |b, g| {
            b.iter(|| black_box(mlcnn_accel::trace::trace_layer(g, &cfg, &tiling)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig13_fig15_simulation,
    bench_tiling_search,
    bench_tile_trace
);
criterion_main!(benches);
