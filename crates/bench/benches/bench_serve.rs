//! Serving-runtime benchmarks: the end-to-end cost of a request through
//! the micro-batching service against the bare plan call it wraps.
//!
//! * `serve_dispatch` — single closed-loop `infer` through the service
//!   (full submit → batch → execute → respond path) vs the raw
//!   `plan.forward` on the same input: the price of the runtime.
//! * `serve_batched_pipeline` — 64 pipelined requests through a
//!   `max_batch = 16` service vs an otherwise-identical `max_batch = 1`
//!   service: what dynamic batching buys on a dispatch-bound model.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcnn_core::Workspace;
use mlcnn_quant::Precision;
use mlcnn_serve::{find_model, ServeConfig, Service};
use mlcnn_tensor::{init, Shape4};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_serve_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_dispatch");
    group.sample_size(20);
    let model = find_model("mlp-mini").unwrap();
    let plan = Arc::new(model.compile(Precision::Fp32).unwrap());
    let x = init::uniform(Shape4::new(1, 3, 8, 8), -1.0, 1.0, &mut init::rng(3));
    let mut ws = Workspace::for_plan(&plan, 1);
    group.bench_function("mlp_mini_bare_plan_forward", |b| {
        b.iter(|| black_box(plan.forward(black_box(&x), &mut ws).unwrap()))
    });
    let svc = Service::spawn(
        Arc::clone(&plan),
        ServeConfig::default().with_batching(1, Duration::ZERO),
    )
    .unwrap();
    group.bench_function("mlp_mini_service_closed_loop", |b| {
        b.iter(|| black_box(svc.infer(black_box(x.clone())).unwrap()))
    });
    group.finish();
}

fn bench_serve_batched_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_batched_pipeline");
    group.sample_size(15);
    let model = find_model("mlp-mini").unwrap();
    let plan = Arc::new(model.compile(Precision::Fp32).unwrap());
    let x = init::uniform(Shape4::new(1, 3, 8, 8), -1.0, 1.0, &mut init::rng(5));
    let run = |svc: &Service| {
        let tickets: Vec<_> = (0..64).map(|_| svc.submit(x.clone()).unwrap()).collect();
        for t in tickets {
            black_box(t.wait().unwrap());
        }
    };
    let batched = Service::spawn(
        Arc::clone(&plan),
        ServeConfig::default()
            .with_batching(16, Duration::from_micros(200))
            .with_queue(256),
    )
    .unwrap();
    group.bench_function("pipeline64_max_batch16", |b| b.iter(|| run(&batched)));
    let unbatched = Service::spawn(
        Arc::clone(&plan),
        ServeConfig::default()
            .with_batching(1, Duration::ZERO)
            .with_queue(256),
    )
    .unwrap();
    group.bench_function("pipeline64_max_batch1", |b| b.iter(|| run(&unbatched)));
    group.finish();
}

criterion_group!(benches, bench_serve_dispatch, bench_serve_batched_pipeline);
criterion_main!(benches);
