//! Tables II–VI as benchmarks: the closed-form analytic model and the
//! memoized reuse simulator, at every published sweep point. The analytic
//! path is O(1); the simulator walks the actual reuse bookkeeping, so its
//! time scales with the geometry — both are verified to agree in the test
//! suite and measured here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcnn_core::analytic;
use mlcnn_core::reuse_sim::{simulate_row, ReuseMode};
use std::hint::black_box;

fn bench_lar_tables(c: &mut Criterion) {
    // Tables II & III
    let mut group = c.benchmark_group("table2_table3_lar");
    for &k in &[2usize, 5, 11] {
        group.bench_with_input(BenchmarkId::new("closed_form", k), &k, |b, &k| {
            b.iter(|| black_box(analytic::adds_per_output_with_lar(black_box(k), 1)))
        });
        group.bench_with_input(BenchmarkId::new("simulator", k), &k, |b, &k| {
            b.iter(|| black_box(simulate_row(black_box(k), k + 1, 1, 2, ReuseMode::Lar)))
        });
    }
    group.finish();
}

fn bench_gar_tables(c: &mut Criterion) {
    // Tables IV, V & VI
    let mut group = c.benchmark_group("table4_5_6_gar");
    for &(k, d, s) in &[(13usize, 28usize, 1usize), (13, 28, 5), (13, 224, 1)] {
        let label = format!("k{k}_d{d}_s{s}");
        group.bench_with_input(
            BenchmarkId::new("closed_form", &label),
            &(k, d, s),
            |b, &(k, d, s)| b.iter(|| black_box(analytic::row_adds_with_gar(k, d, s))),
        );
        group.bench_with_input(
            BenchmarkId::new("simulator", &label),
            &(k, d, s),
            |b, &(k, d, s)| b.iter(|| black_box(simulate_row(k, d, s, 2, ReuseMode::Gar))),
        );
    }
    group.finish();
}

fn bench_full_table_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tablegen_sweeps");
    group.bench_function("tables_2_through_6", |b| {
        b.iter(|| {
            black_box(mlcnn_bench::sweeps::table2());
            black_box(mlcnn_bench::sweeps::table3());
            black_box(mlcnn_bench::sweeps::table4());
            black_box(mlcnn_bench::sweeps::table5());
            black_box(mlcnn_bench::sweeps::table6());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lar_tables,
    bench_gar_tables,
    bench_full_table_generation
);
criterion_main!(benches);
