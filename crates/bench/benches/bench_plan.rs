//! Execution-plan benchmarks: the compiled plan against the legacy
//! layerwise network, the Linear transpose-hoist regression, and
//! batch-parallel scaling.
//!
//! * `plan_vs_legacy` — whole-model LeNet-5 inference: the layerwise
//!   trainable network, the fused pipeline, and the compiled plan with a
//!   reused workspace (zero steady-state allocation).
//! * `linear_transpose_hoist` — the satellite regression: the old
//!   `FusedNetwork` Linear stage re-transposed its weight on every
//!   forward; the plan transposes once at compile. Benching both forms
//!   keeps the hoist honest.
//! * `plan_batch_parallel` — `forward_batch` fan-out vs the sequential
//!   in-workspace loop at batch 8.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcnn_core::reorder::reorder_activation_pool;
use mlcnn_core::{EvalPlan, FusedNetwork, PlanOptions, Workspace};
use mlcnn_nn::spec::build_network;
use mlcnn_nn::zoo;
use mlcnn_tensor::linalg::{matmul, transpose};
use mlcnn_tensor::{init, Shape2, Shape4};
use std::hint::black_box;

fn bench_plan_vs_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_vs_legacy");
    group.sample_size(15);
    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let input = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, input, 9).unwrap();
    let params = net.export_params();
    let fused = FusedNetwork::compile(&specs, &params, input).unwrap();
    let plan = net.eval_plan(PlanOptions::default()).unwrap();
    let x = init::uniform(Shape4::new(4, 3, 32, 32), -1.0, 1.0, &mut init::rng(5));
    group.bench_function("lenet5_layerwise_network", |b| {
        b.iter(|| black_box(net.forward(black_box(&x)).unwrap()))
    });
    group.bench_function("lenet5_fused_network", |b| {
        b.iter(|| black_box(fused.forward(black_box(&x)).unwrap()))
    });
    let mut ws = Workspace::for_plan(&plan, 4);
    group.bench_function("lenet5_plan_reused_workspace", |b| {
        b.iter(|| black_box(plan.forward(black_box(&x), &mut ws).unwrap()))
    });
    group.finish();
}

fn bench_linear_transpose_hoist(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_transpose_hoist");
    group.sample_size(20);
    // LeNet FC1-like geometry: 400 -> 120, batch 8
    let (batch, in_f, out_f) = (8usize, 400usize, 120usize);
    let mut rng = init::rng(3);
    let w = init::uniform(Shape4::new(out_f, 1, 1, in_f), -0.5, 0.5, &mut rng);
    let x = init::uniform(Shape4::new(batch, 1, 1, in_f), -1.0, 1.0, &mut rng);
    // the pre-plan FusedNetwork behavior: transpose on every call
    group.bench_function("transpose_every_forward", |b| {
        b.iter(|| {
            let w_t = transpose(w.as_slice(), Shape2::new(out_f, in_f));
            black_box(matmul(black_box(x.as_slice()), &w_t, batch, in_f, out_f))
        })
    });
    // the plan behavior: transpose once at compile
    let w_t = transpose(w.as_slice(), Shape2::new(out_f, in_f));
    group.bench_function("transpose_hoisted_to_compile", |b| {
        b.iter(|| {
            black_box(matmul(
                black_box(x.as_slice()),
                black_box(&w_t),
                batch,
                in_f,
                out_f,
            ))
        })
    });
    group.finish();
}

fn bench_plan_batch_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_batch_parallel");
    group.sample_size(15);
    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let input = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, input, 9).unwrap();
    let plan = net.eval_plan(PlanOptions::default()).unwrap();
    let x = init::uniform(Shape4::new(8, 3, 32, 32), -1.0, 1.0, &mut init::rng(7));
    let mut ws = Workspace::for_plan(&plan, 8);
    group.bench_function("batch8_sequential_workspace", |b| {
        b.iter(|| black_box(plan.forward(black_box(&x), &mut ws).unwrap()))
    });
    group.bench_function("batch8_forward_batch", |b| {
        b.iter(|| black_box(plan.forward_batch(black_box(&x)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_plan_vs_legacy,
    bench_linear_transpose_hoist,
    bench_plan_batch_parallel
);
criterion_main!(benches);
