//! Accuracy experiments: Fig. 3 (reordering), Fig. 4 (average vs max
//! pooling) and Fig. 12 (quantized MLCNN).
//!
//! Per the substitution policy (DESIGN.md §2) these train on the
//! deterministic synthetic `shapes` datasets standing in for
//! CIFAR-10/100. Absolute accuracies are not comparable to the paper's;
//! the *relative* orderings are the reproduction target:
//!
//! * reordered (AP+ReLU) ≈ original (ReLU+AP), both ≥ All-Conv on the
//!   hard (100-class) task;
//! * average pooling ≥ max pooling for most models;
//! * quantized MLCNN (INT8) within ~1% of MLCNN.

use crate::format::{f, table};
use crate::{row, Report};
use mlcnn_core::quantized::evaluate_quantized;
use mlcnn_core::reorder::{reorder_activation_pool, to_all_conv_full};
use mlcnn_data::shapes::{generate, ShapesConfig};
use mlcnn_data::Dataset;
use mlcnn_nn::spec::build_network;
use mlcnn_nn::train::{evaluate, fit, TrainConfig};
use mlcnn_nn::zoo;
use mlcnn_nn::{LayerSpec, Network};
use mlcnn_quant::Precision;
#[cfg(test)]
use mlcnn_tensor::Shape4;
use mlcnn_tensor::Tensor;

/// Sizing knobs for the training experiments.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyConfig {
    /// Items per class for the 10-class dataset.
    pub per_class_10: usize,
    /// Items per class for the 100-class dataset.
    pub per_class_100: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Channel-width scale for the reduced models.
    pub width: usize,
    /// Learning rate.
    pub lr: f32,
    /// Restrict to the two cheapest models (smoke-test mode).
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        Self {
            per_class_10: 48,
            per_class_100: 10,
            epochs: 12,
            width: 4,
            lr: 0.02,
            quick: false,
            seed: 42,
        }
    }
}

impl AccuracyConfig {
    /// A configuration small enough for CI smoke tests.
    pub fn quick() -> Self {
        Self {
            per_class_10: 8,
            per_class_100: 2,
            epochs: 3,
            width: 2,
            lr: 0.02,
            quick: true,
            seed: 42,
        }
    }
}

/// The model roster for the accuracy experiments.
pub fn model_specs(cfg: &AccuracyConfig, classes: usize) -> Vec<(String, Vec<LayerSpec>)> {
    let mut v = vec![
        ("LeNet5".to_string(), zoo::lenet5_spec(classes)),
        (
            "VGG-mini".to_string(),
            zoo::vgg_mini_spec(cfg.width, classes),
        ),
    ];
    if !cfg.quick {
        v.push((
            "GoogLeNet-mini".to_string(),
            zoo::googlenet_mini_spec(cfg.width, classes),
        ));
        v.push((
            "DenseNet-mini".to_string(),
            zoo::densenet_mini_spec(cfg.width, classes),
        ));
    }
    v
}

fn datasets(cfg: &AccuracyConfig) -> Vec<(String, Dataset, Dataset)> {
    let mut out = Vec::new();
    let c10 = generate(ShapesConfig::cifar10_like(cfg.per_class_10, cfg.seed));
    let (tr, te) = c10.split(0.75);
    out.push(("shapes-10 (CIFAR-10 stand-in)".into(), tr, te));
    if !cfg.quick {
        let c100 = generate(ShapesConfig::cifar100_like(cfg.per_class_100, cfg.seed + 1));
        let (tr, te) = c100.split(0.75);
        out.push(("shapes-100 (CIFAR-100 stand-in)".into(), tr, te));
    }
    out
}

fn train_eval(
    specs: &[LayerSpec],
    train: &Dataset,
    test: &Dataset,
    cfg: &AccuracyConfig,
) -> (f32, f32) {
    let input = train.item_shape().expect("nonempty dataset");
    let mut net = build_network(specs, input, cfg.seed).expect("spec builds");
    let tc = TrainConfig {
        epochs: cfg.epochs,
        batch_size: 16,
        lr: cfg.lr,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: cfg.seed,
        ..Default::default()
    };
    fit(&mut net, train, &tc).expect("training runs");
    let stats = evaluate(&mut net, test, &[1, 5], 16).expect("eval runs");
    (stats.at(1).unwrap(), stats.at(5).unwrap())
}

/// Fig. 3: top-1/top-5 accuracy of original vs reordered vs All-Conv.
pub fn fig3(cfg: &AccuracyConfig) -> Report {
    let mut rows = vec![row!["dataset", "model", "variant", "top-1", "top-5"]];
    for (ds_name, train, test) in datasets(cfg) {
        for (model, specs) in model_specs(cfg, train.num_classes()) {
            let input = train.item_shape().expect("nonempty dataset");
            let variants = [
                ("ReLU+AP (original)", specs.clone()),
                ("AP+ReLU (reordered)", reorder_activation_pool(&specs).specs),
                (
                    "All-Conv",
                    to_all_conv_full(&specs, input).expect("all-conv transform"),
                ),
            ];
            for (vname, vspecs) in variants {
                let (t1, t5) = train_eval(&vspecs, &train, &test, cfg);
                rows.push(row![
                    ds_name,
                    model,
                    vname,
                    f(t1 as f64, 3),
                    f(t5 as f64, 3)
                ]);
            }
        }
    }
    Report::new(
        "fig3",
        "Influence of reordering activation and pooling on accuracy (paper Fig. 3)",
        table(&rows),
    )
}

fn swap_avg_for_max(specs: &[LayerSpec]) -> Vec<LayerSpec> {
    specs
        .iter()
        .map(|s| match s {
            LayerSpec::AvgPool { window, stride } => LayerSpec::MaxPool {
                window: *window,
                stride: *stride,
            },
            LayerSpec::Inception { branches } => LayerSpec::Inception {
                branches: branches.iter().map(|b| swap_avg_for_max(b)).collect(),
            },
            LayerSpec::DenseBlock { inner } => LayerSpec::DenseBlock {
                inner: swap_avg_for_max(inner),
            },
            other => other.clone(),
        })
        .collect()
}

/// Fig. 4: average pooling vs max pooling.
pub fn fig4(cfg: &AccuracyConfig) -> Report {
    let mut rows = vec![row!["dataset", "model", "pooling", "top-1"]];
    for (ds_name, train, test) in datasets(cfg) {
        for (model, specs) in model_specs(cfg, train.num_classes()) {
            let (avg1, _) = train_eval(&specs, &train, &test, cfg);
            let (max1, _) = train_eval(&swap_avg_for_max(&specs), &train, &test, cfg);
            rows.push(row![ds_name, model, "average", f(avg1 as f64, 3)]);
            rows.push(row![ds_name, model, "max", f(max1 as f64, 3)]);
        }
    }
    Report::new(
        "fig4",
        "Average vs max pooling accuracy (paper Fig. 4)",
        table(&rows),
    )
}

/// Snapshot all parameter tensors of a network
/// (thin wrapper over [`Network::export_params`], kept for harness use).
pub fn export_params(net: &mut Network) -> Vec<Tensor<f32>> {
    net.export_params()
}

/// Restore parameters captured by [`export_params`] into a freshly built
/// network of identical architecture.
pub fn import_params(net: &mut Network, params: &[Tensor<f32>]) {
    net.import_params(params);
}

/// Fig. 12: DCNN vs MLCNN vs quantized MLCNN accuracy.
pub fn fig12(cfg: &AccuracyConfig) -> Report {
    let mut rows = vec![row!["dataset", "model", "variant", "top-1"]];
    for (ds_name, train, test) in datasets(cfg) {
        for (model, specs) in model_specs(cfg, train.num_classes()) {
            let input = train.item_shape().unwrap();
            // DCNN: original order
            let (dcnn, _) = train_eval(&specs, &train, &test, cfg);
            rows.push(row![ds_name, model, "DCNN FP32", f(dcnn as f64, 3)]);
            // MLCNN: reordered, trained once, evaluated at each precision
            let reordered = reorder_activation_pool(&specs).specs;
            let mut net = build_network(&reordered, input, cfg.seed).unwrap();
            let tc = TrainConfig {
                epochs: cfg.epochs,
                batch_size: 16,
                lr: cfg.lr,
                momentum: 0.9,
                weight_decay: 1e-4,
                seed: cfg.seed,
                ..Default::default()
            };
            fit(&mut net, &train, &tc).unwrap();
            let trained = export_params(&mut net);
            for precision in Precision::ALL {
                let mut fresh = build_network(&reordered, input, cfg.seed).unwrap();
                import_params(&mut fresh, &trained);
                let stats = evaluate_quantized(&mut fresh, &test, precision, &[1], 16).unwrap();
                rows.push(row![
                    ds_name,
                    model,
                    format!("MLCNN {precision}"),
                    f(stats.at(1).unwrap() as f64, 3)
                ]);
            }
        }
    }
    Report::new(
        "fig12",
        "Accuracy of DCNN vs MLCNN vs quantized MLCNN (paper Fig. 12)",
        table(&rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig3_produces_all_variant_rows() {
        let r = fig3(&AccuracyConfig::quick());
        // 1 dataset x 2 models x 3 variants + header + rule
        assert_eq!(r.body.lines().count(), 2 + 6);
        assert!(r.body.contains("All-Conv"));
        assert!(r.body.contains("AP+ReLU"));
    }

    #[test]
    fn quick_fig4_compares_poolings() {
        let r = fig4(&AccuracyConfig::quick());
        assert_eq!(r.body.lines().count(), 2 + 4);
        assert!(r.body.contains("average"));
        assert!(r.body.contains("max"));
    }

    #[test]
    fn quick_fig12_covers_all_precisions() {
        let r = fig12(&AccuracyConfig::quick());
        // 2 models x (1 DCNN + 3 precisions)
        assert_eq!(r.body.lines().count(), 2 + 8);
        for needle in ["DCNN FP32", "MLCNN FP32", "MLCNN FP16", "MLCNN INT8"] {
            assert!(r.body.contains(needle), "{needle}");
        }
    }

    #[test]
    fn export_import_roundtrips_parameters() {
        let specs = zoo::lenet5_spec(10);
        let input = Shape4::new(1, 3, 32, 32);
        let mut a = build_network(&specs, input, 1).unwrap();
        let params = export_params(&mut a);
        let mut b = build_network(&specs, input, 999).unwrap();
        import_params(&mut b, &params);
        let x = mlcnn_tensor::init::uniform(
            Shape4::new(2, 3, 32, 32),
            -1.0,
            1.0,
            &mut mlcnn_tensor::init::rng(5),
        );
        let ya = a.forward(&x).unwrap();
        let yb = b.forward(&x).unwrap();
        assert_eq!(ya, yb);
    }

    #[test]
    fn swap_avg_for_max_recurses() {
        let specs = vec![LayerSpec::DenseBlock {
            inner: vec![LayerSpec::AvgPool {
                window: 2,
                stride: 2,
            }],
        }];
        let swapped = swap_avg_for_max(&specs);
        if let LayerSpec::DenseBlock { inner } = &swapped[0] {
            assert!(matches!(inner[0], LayerSpec::MaxPool { .. }));
        } else {
            panic!("lost the dense block");
        }
    }
}
