//! Table VII, Fig. 13 (speedups) and Fig. 15 (energy breakdown).

use crate::format::{f, table};
use crate::{row, Report};
use mlcnn_accel::config::AcceleratorConfig;
use mlcnn_accel::cycle::{
    fused_layer_speedups, mean_energy_gain, mean_speedup, simulate_model, ModelPerf,
};
use mlcnn_accel::energy::EnergyModel;
use mlcnn_nn::zoo;

/// Table VII report.
pub fn table7() -> Report {
    let mut rows = vec![row![
        "",
        "#MAC slices",
        "bitwidth",
        "area (mm^2)",
        "on-chip memory (kB)",
        "DRAM B/cycle",
        "freq (MHz)"
    ]];
    for c in AcceleratorConfig::table7() {
        rows.push(row![
            c.name,
            c.mac_slices,
            c.precision.bits(),
            c.area_mm2,
            c.buffer_kb,
            c.dram_bytes_per_cycle,
            c.freq_mhz
        ]);
    }
    Report::new(
        "table7",
        "Accelerator configurations (paper Table VII)",
        table(&rows),
    )
}

/// Simulate all evaluation models on all machines.
pub fn simulate_all() -> Vec<(String, ModelPerf, Vec<ModelPerf>)> {
    let em = EnergyModel::default();
    let base_cfg = AcceleratorConfig::dcnn_fp32();
    zoo::evaluation_models(100)
        .into_iter()
        .map(|m| {
            let base = simulate_model(&m, &base_cfg, &em);
            let variants = AcceleratorConfig::mlcnn_variants()
                .iter()
                .map(|c| simulate_model(&m, c, &em))
                .collect();
            (m.name.clone(), base, variants)
        })
        .collect()
}

/// Paper headline averages for Fig. 13 / Fig. 15.
pub const PAPER_SPEEDUPS: [f64; 3] = [3.2, 6.2, 12.8];
/// Paper headline energy-efficiency gains.
pub const PAPER_ENERGY: [f64; 3] = [2.9, 5.9, 11.3];

/// Fig. 13: per-layer speedups of MLCNN FP32/FP16/INT8 over the DCNN
/// FP32 baseline.
pub fn fig13() -> Report {
    let sims = simulate_all();
    let mut rows = vec![row!["model", "layer", "FP32 x", "FP16 x", "INT8 x"]];
    let mut means = [vec![], vec![], vec![]];
    for (model, base, variants) in &sims {
        let per_variant: Vec<Vec<(String, f64)>> = variants
            .iter()
            .map(|v| fused_layer_speedups(base, v))
            .collect();
        for (i, (layer, fp32)) in per_variant[0].iter().enumerate() {
            rows.push(row![
                model,
                layer,
                f(*fp32, 2),
                f(per_variant[1][i].1, 2),
                f(per_variant[2][i].1, 2)
            ]);
        }
        for (vi, v) in variants.iter().enumerate() {
            means[vi].push(mean_speedup(base, v));
        }
    }
    let geo = |v: &Vec<f64>| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    rows.push(row![
        "AVERAGE",
        "(geomean)",
        f(geo(&means[0]), 2),
        f(geo(&means[1]), 2),
        f(geo(&means[2]), 2)
    ]);
    rows.push(row![
        "paper",
        "(average)",
        PAPER_SPEEDUPS[0],
        PAPER_SPEEDUPS[1],
        PAPER_SPEEDUPS[2]
    ]);
    Report::new(
        "fig13",
        "Speedup of MLCNN over DCNN FP32 per fused layer (paper Fig. 13)",
        table(&rows),
    )
}

/// Fig. 15: energy breakdown (DRAM / buffer / MAC / static) per machine
/// per model, plus efficiency gains.
pub fn fig15() -> Report {
    let sims = simulate_all();
    let mut rows = vec![row![
        "model",
        "machine",
        "DRAM uJ",
        "buffer uJ",
        "MAC uJ",
        "static uJ",
        "total uJ",
        "gain x"
    ]];
    let mut means = [vec![], vec![], vec![]];
    for (model, base, variants) in &sims {
        let fused_names: Vec<String> = variants[0]
            .fused_layers()
            .iter()
            .map(|l| l.name.clone())
            .collect();
        let fused_total = |perf: &ModelPerf| {
            let mut e = mlcnn_accel::EnergyBreakdown::default();
            for l in &perf.layers {
                if fused_names.contains(&l.name) {
                    e.accumulate(&l.energy);
                }
            }
            e
        };
        let base_e = fused_total(base);
        rows.push(row![
            model,
            base.machine,
            f(base_e.dram_nj / 1000.0, 1),
            f(base_e.buffer_nj / 1000.0, 1),
            f(base_e.mac_nj / 1000.0, 1),
            f(base_e.static_nj / 1000.0, 1),
            f(base_e.total_nj() / 1000.0, 1),
            "1.00"
        ]);
        for (vi, v) in variants.iter().enumerate() {
            let e = fused_total(v);
            let gain = mean_energy_gain(base, v);
            means[vi].push(gain);
            rows.push(row![
                model,
                v.machine,
                f(e.dram_nj / 1000.0, 1),
                f(e.buffer_nj / 1000.0, 1),
                f(e.mac_nj / 1000.0, 1),
                f(e.static_nj / 1000.0, 1),
                f(e.total_nj() / 1000.0, 1),
                f(gain, 2)
            ]);
        }
    }
    let geo = |v: &Vec<f64>| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    rows.push(row![
        "AVERAGE",
        "FP32/FP16/INT8 gains",
        f(geo(&means[0]), 2),
        f(geo(&means[1]), 2),
        f(geo(&means[2]), 2),
        "",
        "paper:",
        format!(
            "{}/{}/{}",
            PAPER_ENERGY[0], PAPER_ENERGY[1], PAPER_ENERGY[2]
        )
    ]);
    Report::new(
        "fig15",
        "Energy breakdown and efficiency vs DCNN (paper Fig. 15)",
        table(&rows),
    )
}

/// The measured headline averages `(speedups, energy gains)` for the
/// three precisions — asserted against the paper bands in tests and
/// recorded in EXPERIMENTS.md.
pub fn headline() -> ([f64; 3], [f64; 3]) {
    let sims = simulate_all();
    let mut s = [vec![], vec![], vec![]];
    let mut e = [vec![], vec![], vec![]];
    for (_, base, variants) in &sims {
        for (vi, v) in variants.iter().enumerate() {
            s[vi].push(mean_speedup(base, v));
            e[vi].push(mean_energy_gain(base, v));
        }
    }
    let geo = |v: &Vec<f64>| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    (
        [geo(&s[0]), geo(&s[1]), geo(&s[2])],
        [geo(&e[0]), geo(&e[1]), geo(&e[2])],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_speedups_land_in_the_paper_bands() {
        let (s, e) = headline();
        // ±40% of the paper's averages — the substrate is a model, not
        // the authors' RTL, but the factors must be in the same regime.
        for (i, (&got, &paper)) in s.iter().zip(&PAPER_SPEEDUPS).enumerate() {
            assert!(
                (paper * 0.6..paper * 1.4).contains(&got),
                "speedup[{i}] {got} vs paper {paper}"
            );
        }
        for (i, (&got, &paper)) in e.iter().zip(&PAPER_ENERGY).enumerate() {
            assert!(
                (paper * 0.6..paper * 1.4).contains(&got),
                "energy[{i}] {got} vs paper {paper}"
            );
        }
        // and the paper's qualitative ordering: speedup roughly doubles
        // per precision step
        assert!(s[1] > 1.6 * s[0] && s[1] < 2.4 * s[0]);
        assert!(s[2] > 1.6 * s[1] && s[2] < 2.4 * s[1]);
    }

    #[test]
    fn table7_prints_four_machines() {
        let r = table7();
        assert_eq!(r.body.lines().count(), 2 + 4);
        assert!(r.body.contains("128"));
    }

    #[test]
    fn fig13_covers_all_fused_layers_plus_summary() {
        let r = fig13();
        // 3 + 5 + 12 + 2 fused layers + header + rule + 2 summary rows
        assert_eq!(r.body.lines().count(), 2 + 22 + 2);
    }

    #[test]
    fn fig15_breakdown_rows_are_complete() {
        let r = fig15();
        // per model: 1 baseline + 3 variants; 4 models; + header/rule + summary
        assert_eq!(r.body.lines().count(), 2 + 16 + 1);
    }
}

/// Extension (paper Conclusions): ResNet-18 on the MLCNN machines. The
/// paper claims "the convolutional layers with pooling in ResNet-18 can
/// benefit from MLCNN with layer reordering and cross-layer
/// optimization" — this quantifies that claim with the same cycle model.
pub fn resnet_extension() -> Report {
    let em = EnergyModel::default();
    let model = zoo::resnet18(100);
    let base = simulate_model(&model, &AcceleratorConfig::dcnn_fp32(), &em);
    let mut rows = vec![row![
        "machine",
        "fused layer",
        "layer speedup x",
        "whole-model speedup x",
        "energy gain x"
    ]];
    for cfg in AcceleratorConfig::mlcnn_variants() {
        let fast = simulate_model(&model, &cfg, &em);
        let per_layer = fused_layer_speedups(&base, &fast);
        let whole = base.total_cycles as f64 / fast.total_cycles as f64;
        let energy = mean_energy_gain(&base, &fast);
        for (name, s) in &per_layer {
            rows.push(row![cfg.name, name, f(*s, 2), f(whole, 2), f(energy, 2)]);
        }
    }
    Report::new(
        "resnet_ext",
        "Extension: ResNet-18 under MLCNN (paper Conclusions claim)",
        table(&rows),
    )
}

#[cfg(test)]
mod resnet_ext_tests {
    use super::*;

    #[test]
    fn resnet_fused_layer_gains_like_the_paper_claims() {
        let r = resnet_extension();
        // one fused layer per machine row; the layer gains on every
        // machine, though modestly at FP32 — ResNet-18's single fusable
        // layer (512ch 3x3 at 4x4) is weight-traffic-bound, an honest
        // nuance to the paper's claim.
        let mut seen = 0;
        for line in r.body.lines().skip(2) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let layer_speedup: f64 = cells[cells.len() - 3].parse().unwrap();
            assert!(layer_speedup > 1.2, "{line}");
            seen += 1;
        }
        assert_eq!(seen, 3, "three machines, one fused layer each");
    }
}

/// Area breakdown per Table VII machine (the Design Compiler stand-in):
/// every machine must fit the one 1.52 mm² budget.
pub fn area_report() -> Report {
    use mlcnn_accel::area::{die_area, AreaModel};
    let m = AreaModel::default();
    let mut rows = vec![row![
        "machine",
        "MAC mm^2",
        "AR mm^2",
        "SRAM mm^2",
        "overhead mm^2",
        "total mm^2",
        "budget mm^2"
    ]];
    for cfg in AcceleratorConfig::table7() {
        let a = die_area(&m, &cfg);
        rows.push(row![
            cfg.name,
            f(a.mac_mm2, 3),
            f(a.ar_mm2, 3),
            f(a.sram_mm2, 3),
            f(a.overhead_mm2, 3),
            f(a.total_mm2(), 3),
            cfg.area_mm2
        ]);
    }
    Report::new(
        "area",
        "Die area breakdown under the Table VII budget",
        table(&rows),
    )
}

#[cfg(test)]
mod area_report_tests {
    use super::*;

    #[test]
    fn area_report_covers_all_machines_within_budget() {
        let r = area_report();
        assert_eq!(r.body.lines().count(), 2 + 4);
        for line in r.body.lines().skip(2) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let total: f64 = cells[cells.len() - 2].parse().unwrap();
            let budget: f64 = cells[cells.len() - 1].parse().unwrap();
            assert!(total <= budget * 1.02, "{line}");
        }
    }
}
