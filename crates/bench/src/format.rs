//! Minimal text-table rendering for the experiment reports.

/// Render rows as an aligned text table. The first row is the header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(cell);
            if i + 1 < cols {
                for _ in 0..w.saturating_sub(cell.chars().count()) + 2 {
                    out.push(' ');
                }
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Shorthand for building a row from displayable cells.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        vec![$($cell.to_string()),*]
    };
}

/// Format a float with fixed precision.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns_and_rules_header() {
        let t = table(&[
            vec!["K".into(), "adds".into()],
            vec!["11".into(), "483".into()],
            vec!["2".into(), "15".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // the "adds" column starts at the same offset in every row
        let col = lines[0].find("adds").unwrap();
        assert_eq!(lines[2].find("483").unwrap(), col);
        assert_eq!(lines[3].find("15").unwrap(), col);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(table(&[]), "");
    }

    #[test]
    fn row_macro_stringifies() {
        let r: Vec<String> = row!["a", 1, 2.5];
        assert_eq!(r, vec!["a", "1", "2.5"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(2.25911, 2), "2.26");
        assert_eq!(f(55.6004, 1), "55.6");
    }
}
