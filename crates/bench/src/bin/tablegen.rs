//! Regenerate the paper's tables and figures as text reports.
//!
//! ```text
//! tablegen [--quick] [all | lint | planlint | table1 | table2 | ... |
//!           table7 | fig3 | fig4 | fig12 | fig13 | fig14 | fig15 |
//!           limits | ablation]
//! ```
//!
//! `--quick` shrinks the training experiments (figs. 3/4/12) to
//! smoke-test size. With no experiment argument, everything that does not
//! require training is printed (`all` adds the training figures too).

use mlcnn_bench::accuracy::AccuracyConfig;
use mlcnn_bench::{
    ablation, accel_report, accuracy, flops, lint, model_stats, robustness, sweeps, Report,
};

fn cheap_reports() -> Vec<Report> {
    vec![
        lint::lint_report(),
        lint::plan_lint_report(),
        model_stats::table1(),
        sweeps::table2(),
        sweeps::table3(),
        sweeps::table4(),
        sweeps::table5(),
        sweeps::table6(),
        sweeps::limits(),
        accel_report::table7(),
        accel_report::fig13(),
        flops::fig14(),
        accel_report::fig15(),
        ablation::ablation_reuse(),
        ablation::ablation_tiling(),
        ablation::ablation_preprocess(),
        accel_report::resnet_extension(),
        accel_report::area_report(),
    ]
}

fn main() {
    // static analysis gates everything: broken declarative inputs would
    // make every generated number garbage
    if let Err(findings) = lint::gate() {
        eprintln!("[tablegen] static analysis found fatal problems:\n{findings}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let acc_cfg = if quick {
        AccuracyConfig::quick()
    } else {
        AccuracyConfig::default()
    };

    let select = |id: &str| -> Option<Report> {
        match id {
            "lint" => Some(lint::lint_report()),
            "planlint" => Some(lint::plan_lint_report()),
            "table1" => Some(model_stats::table1()),
            "table2" => Some(sweeps::table2()),
            "table3" => Some(sweeps::table3()),
            "table4" => Some(sweeps::table4()),
            "table5" => Some(sweeps::table5()),
            "table6" => Some(sweeps::table6()),
            "limits" => Some(sweeps::limits()),
            "table7" => Some(accel_report::table7()),
            "fig3" => Some(accuracy::fig3(&acc_cfg)),
            "fig4" => Some(accuracy::fig4(&acc_cfg)),
            "fig12" => Some(accuracy::fig12(&acc_cfg)),
            "fig13" => Some(accel_report::fig13()),
            "fig14" => Some(flops::fig14()),
            "fig15" => Some(accel_report::fig15()),
            "resnet_ext" => Some(accel_report::resnet_extension()),
            "area" => Some(accel_report::area_report()),
            "robustness" => Some(robustness::robustness(&acc_cfg)),
            _ => None,
        }
    };

    if wanted.is_empty() {
        for r in cheap_reports() {
            println!("{}", r.render());
        }
        eprintln!(
            "note: training figures skipped by default; run `tablegen all` \
             (or fig3/fig4/fig12) to include them"
        );
        return;
    }

    for w in wanted {
        match w.as_str() {
            "all" => {
                for r in cheap_reports() {
                    println!("{}", r.render());
                }
                eprintln!(
                    "[tablegen] training fig3 ({} mode)...",
                    if quick { "quick" } else { "full" }
                );
                println!("{}", accuracy::fig3(&acc_cfg).render());
                eprintln!("[tablegen] training fig4...");
                println!("{}", accuracy::fig4(&acc_cfg).render());
                eprintln!("[tablegen] training fig12...");
                println!("{}", accuracy::fig12(&acc_cfg).render());
                eprintln!("[tablegen] training robustness extension...");
                println!("{}", robustness::robustness(&acc_cfg).render());
            }
            "ablation" => {
                println!("{}", ablation::ablation_reuse().render());
                println!("{}", ablation::ablation_tiling().render());
                println!("{}", ablation::ablation_preprocess().render());
            }
            id => match select(id) {
                Some(r) => println!("{}", r.render()),
                None => {
                    eprintln!("unknown experiment `{id}`");
                    std::process::exit(2);
                }
            },
        }
    }
}
