//! Plan-vs-legacy throughput smoke for CI: run LeNet-5 inference through
//! the layerwise network and the compiled execution plan, verify they
//! agree, and write the timings to `BENCH_plan.json`.
//!
//! This is a smoke gate, not a benchmark suite — it exists so CI notices
//! if the plan path stops working or grossly regresses. Speedups are
//! reported honestly: on a single-core runner the batch-parallel number
//! will hover around 1×, and the gate only checks correctness.
//!
//! ```text
//! plan_smoke [output-path]   # default BENCH_plan.json
//! ```

use mlcnn_core::reorder::reorder_activation_pool;
use mlcnn_core::{EvalPlan, PlanOptions, Workspace};
use mlcnn_nn::spec::build_network;
use mlcnn_nn::zoo;
use mlcnn_tensor::{init, Shape4};
use std::time::Instant;

const BATCH: usize = 8;
const WARMUP: usize = 3;
const ITERS: usize = 20;

fn time_ms<F: FnMut()>(mut f: F) -> f64 {
    for _ in 0..WARMUP {
        f();
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / ITERS as f64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_plan.json".to_string());

    let specs = reorder_activation_pool(&zoo::lenet5_spec(10)).specs;
    let input = Shape4::new(1, 3, 32, 32);
    let mut net = build_network(&specs, input, 9).expect("lenet builds");
    let plan = net
        .eval_plan(PlanOptions::default())
        .expect("lenet compiles to a plan");
    let x = init::uniform(Shape4::new(BATCH, 3, 32, 32), -1.0, 1.0, &mut init::rng(5));

    // correctness first: the plan must agree with the legacy network
    // (fused groups change summation order, so equality is approximate
    // here; the bitwise guarantees live in tests/plan_equivalence.rs)
    let legacy_out = net.forward(&x).expect("legacy forward");
    let mut ws = Workspace::for_plan(&plan, BATCH);
    let plan_out = plan.forward(&x, &mut ws).expect("plan forward");
    assert_eq!(legacy_out.shape(), plan_out.shape());
    assert!(
        plan_out.approx_eq(&legacy_out, 1e-3),
        "plan diverged from the legacy network: {}",
        plan_out.max_abs_diff(&legacy_out).unwrap()
    );
    let batch_out = plan.forward_batch(&x).expect("batch-parallel forward");
    assert_eq!(batch_out, plan_out, "forward_batch diverged");

    let legacy_ms = time_ms(|| {
        let _ = net.forward(&x).unwrap();
    });
    let plan_ms = time_ms(|| {
        let _ = plan.forward(&x, &mut ws).unwrap();
    });
    let batch_ms = time_ms(|| {
        let _ = plan.forward_batch(&x).unwrap();
    });

    let threads = rayon::current_num_threads();
    let json = format!(
        "{{\n  \"model\": \"lenet5-reordered\",\n  \"batch\": {BATCH},\n  \"iters\": {ITERS},\n  \"threads\": {threads},\n  \"legacy_network_ms_per_batch\": {legacy_ms:.4},\n  \"plan_ms_per_batch\": {plan_ms:.4},\n  \"plan_forward_batch_ms_per_batch\": {batch_ms:.4},\n  \"speedup_plan_vs_legacy\": {:.3},\n  \"speedup_forward_batch_vs_plan\": {:.3}\n}}\n",
        legacy_ms / plan_ms,
        plan_ms / batch_ms,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_plan.json");
    println!("{json}");
    println!(
        "[plan_smoke] wrote {out_path} ({} thread{})",
        threads,
        if threads == 1 { "" } else { "s" }
    );
}
