//! Shift-robustness experiment (extension).
//!
//! The paper's Section II-B justification for keeping pooling — "pooling
//! not only contributes to dimension reduction but also alleviates the
//! sensitivity of outputs to shifts and distortions" — is asserted, not
//! measured. This experiment measures it: train the pooled network and
//! its All-Conv counterpart on identical data, then evaluate both on test
//! sets translated by 0–3 pixels. The pooled network should degrade more
//! gracefully, which is the reason MLCNN reorders pooling instead of
//! removing it.

use crate::accuracy::AccuracyConfig;
use crate::format::{f, table};
use crate::Report;
use mlcnn_core::reorder::to_all_conv_full;
use mlcnn_data::augment::shifted_dataset;
use mlcnn_data::shapes::{generate, ShapesConfig};
use mlcnn_nn::spec::build_network;
use mlcnn_nn::train::{evaluate, fit, TrainConfig};
use mlcnn_nn::zoo;

/// Accuracy of one variant across shift magnitudes.
#[derive(Debug, Clone)]
pub struct ShiftCurve {
    /// Variant label.
    pub variant: String,
    /// `(shift, top-1)` pairs.
    pub points: Vec<(isize, f32)>,
}

/// Run the experiment, returning the two curves.
pub fn shift_curves(cfg: &AccuracyConfig) -> Vec<ShiftCurve> {
    let data = generate(ShapesConfig::cifar10_like(cfg.per_class_10, cfg.seed + 7));
    let (train, test) = data.split(0.75);
    let input = train.item_shape().expect("nonempty");
    let tc = TrainConfig {
        epochs: cfg.epochs,
        batch_size: 16,
        lr: cfg.lr,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: cfg.seed,
        ..Default::default()
    };
    let pooled = zoo::lenet5_spec(10);
    let allconv = to_all_conv_full(&pooled, input).expect("transform");
    let shifts: &[isize] = if cfg.quick { &[0, 2] } else { &[0, 1, 2, 3] };
    [("pooled (LeNet-5)", pooled), ("All-Conv", allconv)]
        .into_iter()
        .map(|(label, specs)| {
            let mut net = build_network(&specs, input, cfg.seed).expect("builds");
            fit(&mut net, &train, &tc).expect("trains");
            let points = shifts
                .iter()
                .map(|&s| {
                    let shifted = shifted_dataset(&test, s, s);
                    let acc = evaluate(&mut net, &shifted, &[1], 16)
                        .expect("evaluates")
                        .at(1)
                        .unwrap();
                    (s, acc)
                })
                .collect();
            ShiftCurve {
                variant: label.into(),
                points,
            }
        })
        .collect()
}

/// The robustness report.
pub fn robustness(cfg: &AccuracyConfig) -> Report {
    let curves = shift_curves(cfg);
    let shifts: Vec<isize> = curves[0].points.iter().map(|(s, _)| *s).collect();
    let mut header = vec!["variant".to_string()];
    header.extend(shifts.iter().map(|s| format!("shift {s}px")));
    header.push("retained at max shift".into());
    let mut rows = vec![header];
    for c in &curves {
        let base = c.points[0].1.max(1e-6);
        let last = c.points.last().unwrap().1;
        let mut row = vec![c.variant.clone()];
        row.extend(c.points.iter().map(|(_, a)| f(*a as f64, 3)));
        row.push(f((last / base) as f64, 3));
        rows.push(row);
    }
    Report::new(
        "robustness",
        "Extension: shift robustness of pooled vs All-Conv networks (Section II-B claim)",
        table(&rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_robustness_runs_and_reports_both_variants() {
        let r = robustness(&AccuracyConfig::quick());
        assert_eq!(r.body.lines().count(), 2 + 2);
        assert!(r.body.contains("pooled"));
        assert!(r.body.contains("All-Conv"));
    }

    #[test]
    fn accuracy_degrades_with_shift_for_both() {
        let curves = shift_curves(&AccuracyConfig::quick());
        for c in curves {
            let first = c.points.first().unwrap().1;
            let last = c.points.last().unwrap().1;
            assert!(
                last <= first + 0.15,
                "{}: shifted accuracy should not improve much ({first} -> {last})",
                c.variant
            );
        }
    }
}
