//! Ablation studies for the design choices DESIGN.md §6 calls out.

use crate::format::{f, table};
use crate::{row, Report};
use mlcnn_accel::config::AcceleratorConfig;
use mlcnn_accel::cycle::{simulate_layer, LayerContext};
use mlcnn_accel::dataflow::{compulsory_traffic, search_tiling};
use mlcnn_accel::energy::EnergyModel;
use mlcnn_core::opcount::{dense_layer_counts, fused_layer_counts};
use mlcnn_core::reuse_sim::ReuseMode;
use mlcnn_nn::zoo;

/// Reuse-scheme ablation: additions under RME-only, +LAR, +GAR, +both,
/// per fused layer of the evaluation models.
pub fn ablation_reuse() -> Report {
    let mut rows = vec![row![
        "model",
        "layer",
        "dense adds",
        "RME only",
        "RME+LAR",
        "RME+GAR",
        "MLCNN (both)"
    ]];
    for model in zoo::evaluation_models(100) {
        for g in model.fused_convs() {
            let p = g.pool.unwrap().window;
            let dense = dense_layer_counts(g).adds;
            let none = fused_layer_counts(g, p, ReuseMode::None).adds;
            let lar = fused_layer_counts(g, p, ReuseMode::Lar).adds;
            let gar = fused_layer_counts(g, p, ReuseMode::Gar).adds;
            let both = fused_layer_counts(g, p, ReuseMode::Both).adds;
            rows.push(row![model.name, g.name, dense, none, lar, gar, both]);
        }
    }
    Report::new(
        "ablation_reuse",
        "Addition counts under each reuse scheme (RME/LAR/GAR ablation)",
        table(&rows),
    )
}

/// Tiling sweep: DRAM traffic of a representative VGG layer as the buffer
/// budget varies, against the compulsory lower bound.
pub fn ablation_tiling() -> Report {
    let model = zoo::vgg16(100);
    let g = model
        .convs
        .iter()
        .find(|c| c.name == "C7")
        .expect("VGG16 has a C7");
    let compulsory = compulsory_traffic(g).total();
    let mut rows = vec![row![
        "buffer kB (FP32)",
        "tiling <Tm,Tn,Tr,Tc>",
        "traffic elems",
        "x compulsory"
    ]];
    for kb in [16usize, 32, 64, 134, 256, 1024, 8192] {
        let cap = kb * 1024 / 4;
        match search_tiling(g, cap) {
            Some((t, traffic)) => rows.push(row![
                kb,
                format!("<{},{},{},{}>", t.tm, t.tn, t.tr, t.tc),
                traffic.total(),
                f(traffic.total() as f64 / compulsory as f64, 2)
            ]),
            None => rows.push(row![kb, "(does not fit)", "-", "-"]),
        }
    }
    Report::new(
        "ablation_tiling",
        "Loop-tiling sweep on VGG16 C7: DRAM traffic vs buffer capacity",
        table(&rows),
    )
}

/// Preprocessing writeback ablation: fused-chain traffic with and without
/// the pair-add unit.
pub fn ablation_preprocess() -> Report {
    let em = EnergyModel::default();
    let cfg = AcceleratorConfig::mlcnn_fp32();
    let mut rows = vec![row![
        "model",
        "layer",
        "traffic w/o preprocess (B)",
        "traffic w/ preprocess (B)",
        "saved %"
    ]];
    for model in zoo::evaluation_models(100) {
        let fusable: Vec<bool> = model
            .convs
            .iter()
            .map(|g| g.pool.map(|p| p.avg).unwrap_or(false))
            .collect();
        for (i, g) in model.convs.iter().enumerate() {
            if !fusable[i] {
                continue;
            }
            let ctx = LayerContext {
                input_preprocessed: i > 0,
                output_preprocessed: fusable.get(i + 1).copied().unwrap_or(false),
            };
            let with = simulate_layer(g, &cfg, &em, ctx);
            let without = simulate_layer(g, &cfg, &em, LayerContext::default());
            let saved = 100.0 * (1.0 - with.traffic_bytes as f64 / without.traffic_bytes as f64);
            rows.push(row![
                model.name,
                g.name,
                without.traffic_bytes,
                with.traffic_bytes,
                f(saved, 1)
            ]);
        }
    }
    Report::new(
        "ablation_preprocess",
        "Preprocessing pair-add writeback: fused-layer DRAM traffic",
        table(&rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_ablation_is_monotone() {
        let r = ablation_reuse();
        for line in r.body.lines().skip(2) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let vals: Vec<u64> = cells[cells.len() - 4..]
                .iter()
                .map(|v| v.parse().unwrap())
                .collect();
            // none >= lar >= both and none >= gar >= both
            assert!(vals[0] >= vals[1], "{line}");
            assert!(vals[1] >= vals[3], "{line}");
            assert!(vals[0] >= vals[2], "{line}");
            assert!(vals[2] >= vals[3], "{line}");
        }
    }

    #[test]
    fn tiling_ablation_shows_decreasing_traffic() {
        let r = ablation_tiling();
        let mut prev = u64::MAX;
        let mut seen = 0;
        for line in r.body.lines().skip(2) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if let Ok(t) = cells[2].parse::<u64>() {
                assert!(t <= prev, "{line}");
                prev = t;
                seen += 1;
            }
        }
        assert!(seen >= 4, "too few fitting buffer sizes");
    }

    #[test]
    fn preprocessing_saves_traffic_somewhere() {
        let r = ablation_preprocess();
        let any_saving = r.body.lines().skip(2).any(|line| {
            line.split_whitespace()
                .last()
                .and_then(|v| v.parse::<f64>().ok())
                .map(|v| v > 5.0)
                .unwrap_or(false)
        });
        assert!(
            any_saving,
            "no layer shows preprocessing savings:\n{}",
            r.body
        );
    }
}
