//! Fig. 14: percentage of FLOPs (multiplications and additions) reduced
//! by MLCNN, per fused layer, per model.

use crate::format::{f, table};
use crate::{row, Report};
use mlcnn_core::opcount::{model_reductions, LayerReduction};
use mlcnn_nn::zoo;

/// All Fig. 14 data: per-model per-layer reductions.
pub fn fig14_data() -> Vec<(String, Vec<LayerReduction>)> {
    zoo::evaluation_models(100)
        .into_iter()
        .map(|m| {
            let r = model_reductions(&m);
            (m.name, r)
        })
        .collect()
}

/// Fig. 14 report.
pub fn fig14() -> Report {
    let mut rows = vec![row![
        "model",
        "layer",
        "mult red.%",
        "add red.%",
        "dense mults",
        "mlcnn mults",
        "dense adds",
        "mlcnn adds"
    ]];
    for (model, reds) in fig14_data() {
        for r in reds {
            rows.push(row![
                model,
                r.name,
                f(r.mult_reduction_pct, 1),
                f(r.add_reduction_pct, 2),
                r.dense.mults,
                r.mlcnn.mults,
                r.dense.adds,
                r.mlcnn.adds
            ]);
        }
    }
    Report::new(
        "fig14",
        "Percentage of FLOPs reduced by MLCNN (paper Fig. 14)",
        table(&rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_evaluation_model_is_covered() {
        let data = fig14_data();
        let names: Vec<&str> = data.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["DenseNet", "VGG16", "GoogLeNet", "LeNet5"]);
        // fused-layer counts per Section VII
        let counts: Vec<usize> = data.iter().map(|(_, r)| r.len()).collect();
        assert_eq!(counts, [3, 5, 12, 2]);
    }

    #[test]
    fn paper_shape_checks() {
        let data = fig14_data();
        let by_name =
            |n: &str| -> &Vec<LayerReduction> { &data.iter().find(|(m, _)| m == n).unwrap().1 };
        // DenseNet: 75% mults, ~0% adds
        for r in by_name("DenseNet") {
            assert!((r.mult_reduction_pct - 75.0).abs() < 0.5, "{r:?}");
            assert!(r.add_reduction_pct.abs() < 3.0, "{r:?}");
        }
        // GoogLeNet: contains ~98% layers (the 8x8 pooled 5b module)
        let g_max = by_name("GoogLeNet")
            .iter()
            .map(|r| r.mult_reduction_pct)
            .fold(f64::MIN, f64::max);
        assert!(g_max > 98.0);
        // LeNet5 C2 is the addition-reduction champion among the
        // 2×2-pooled models (the paper's "51.52%, highest" claim). Our
        // model additionally grants GoogLeNet's 8×8-global-pool layers
        // large within-output reuse that the paper's 2×2-specific AR
        // hardware would not — a documented divergence (EXPERIMENTS.md).
        let lenet_max = by_name("LeNet5")
            .iter()
            .map(|r| r.add_reduction_pct)
            .fold(f64::MIN, f64::max);
        assert!((45.0..60.0).contains(&lenet_max), "LeNet max {lenet_max}");
        for (name, reds) in &data {
            if name == "LeNet5" {
                continue;
            }
            for r in reds {
                let is_8x8_pool = name == "GoogLeNet" && r.name.starts_with("i5b");
                if !is_8x8_pool {
                    assert!(
                        r.add_reduction_pct <= lenet_max,
                        "{name}/{}: {} > LeNet max {lenet_max}",
                        r.name,
                        r.add_reduction_pct
                    );
                }
            }
        }
    }

    #[test]
    fn report_renders_all_fused_layers() {
        let r = fig14();
        assert_eq!(r.body.lines().count(), 2 + 3 + 5 + 12 + 2);
    }
}
