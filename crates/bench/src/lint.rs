//! The static-analysis report: run `mlcnn-check` over everything the
//! harness is about to measure — the model zoo's spec lists, the Table
//! VII accelerator configs, and the tilings the dataflow search picks for
//! every conv layer — and render the findings as one report.
//!
//! `tablegen` runs [`gate`] before generating anything: a denial means
//! the declarative inputs are broken and every downstream number would be
//! garbage, so it refuses to continue. Warnings are expected — the
//! pre-reorder zoo specs deliberately contain `conv → ReLU → avg-pool`
//! patterns (that is the paper's motivating story) and are reported, not
//! fatal.

use crate::Report;
use mlcnn_accel::dataflow::search_tiling;
use mlcnn_accel::AcceleratorConfig;
use mlcnn_check::{check_plan, check_qrange, lint_network, QRangeOptions, Reporter};
use mlcnn_nn::zoo;
use mlcnn_nn::LayerSpec;
use mlcnn_quant::Precision;
use mlcnn_serve::serving_zoo;
use mlcnn_tensor::Shape4;

/// The spec lists the harness trains and compiles, with their lint input
/// shapes.
pub fn zoo_specs(classes: usize) -> Vec<(&'static str, Vec<LayerSpec>, Shape4)> {
    let input = Shape4::new(1, 3, 32, 32);
    vec![
        ("lenet5", zoo::lenet5_spec(classes), input),
        ("vgg_mini", zoo::vgg_mini_spec(3, classes), input),
        (
            "googlenet_mini",
            zoo::googlenet_mini_spec(2, classes),
            input,
        ),
        ("densenet_mini", zoo::densenet_mini_spec(4, classes), input),
        ("resnet_mini", zoo::resnet_mini_spec(4, classes), input),
    ]
}

/// Run the full suite and collect every diagnostic into one reporter.
pub fn run_suite(deny_warnings: bool) -> Reporter {
    let mut all = if deny_warnings {
        Reporter::deny_warnings()
    } else {
        Reporter::new()
    };

    // 1. network specs: shapes + fusion legality
    for (name, specs, input) in zoo_specs(10) {
        let r = lint_network(name, &specs, input, deny_warnings);
        all.absorb(r);
    }

    // 2. accelerator configurations
    for cfg in AcceleratorConfig::table7() {
        for d in cfg.validate() {
            all.push(d);
        }
    }

    // 3. the tilings the dataflow search actually picks
    for model in zoo::table1_models(10) {
        let cap = AcceleratorConfig::mlcnn_fp32().buffer_elements();
        for g in &model.convs {
            match search_tiling(g, cap) {
                Some((t, _)) => {
                    for d in t.validate(g, cap) {
                        all.push(d);
                    }
                }
                None => all.emit(
                    mlcnn_check::Code::FootprintExceedsBuffer,
                    None,
                    format!("{}/{}: no tiling fits the buffer", model.name, g.name),
                ),
            }
        }
    }
    all
}

/// The lint report for `tablegen`.
pub fn lint_report() -> Report {
    let r = run_suite(false);
    let mut body = r.pretty();
    if r.is_clean() {
        body = "all specs, configs and tilings clean\n".into();
    }
    Report::new("lint", "Static analysis (mlcnn-check)", body)
}

/// The post-lowering report: run the `P0xx` dataflow verifier and the
/// `Q0xx` range analysis over every serving-zoo plan at every precision,
/// and append the INT8 per-layer scale table a static requantizer would
/// bake. The diagnostics section must render clean — `mlcnn-lint --plans`
/// enforces the same invariant in CI.
pub fn plan_lint_report() -> Report {
    let mut all = Reporter::new();
    let mut body = String::new();
    for model in serving_zoo() {
        for precision in Precision::ALL {
            let label = format!("{}@{precision}", model.name);
            match model.compile(precision) {
                Ok(plan) => {
                    let view = plan.view();
                    let report = all.with_context(&label, |r| {
                        check_plan(&view, r);
                        check_qrange(&view, &QRangeOptions::default(), r)
                    });
                    if precision == Precision::Int8 {
                        body.push_str(&format!("\n### {label} layer ranges\n\n"));
                        body.push_str(&report.markdown());
                    }
                }
                Err(e) => all.emit(
                    mlcnn_check::Code::ArtifactIncompilable,
                    None,
                    format!("{label}: {e}"),
                ),
            }
        }
    }
    let findings = if all.is_clean() {
        "all compiled plans verify clean at FP32/FP16/INT8\n".into()
    } else {
        all.pretty()
    };
    Report::new(
        "planlint",
        "Plan verification (P0xx dataflow + Q0xx ranges)",
        format!("{findings}{body}"),
    )
}

/// Gate the harness: `Err` with the rendered findings when any denial is
/// present.
pub fn gate() -> Result<(), String> {
    let r = run_suite(false);
    if r.has_deny() {
        Err(r.pretty())
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_check::Severity;

    #[test]
    fn suite_has_no_denials() {
        let r = run_suite(false);
        assert!(!r.has_deny(), "{}", r.pretty());
        assert!(gate().is_ok());
    }

    #[test]
    fn suite_reports_the_pre_reorder_warnings() {
        // the zoo's original specs carry conv→ReLU→pool patterns by design
        let r = run_suite(false);
        assert!(r.count(Severity::Warn) > 0, "{}", r.pretty());
        assert!(r.find(mlcnn_check::Code::ActivationBlocksFusion).is_some());
    }

    #[test]
    fn report_renders() {
        let rep = lint_report();
        assert_eq!(rep.id, "lint");
        assert!(!rep.body.is_empty());
    }

    #[test]
    fn plan_report_is_clean_and_carries_int8_scale_tables() {
        let rep = plan_lint_report();
        assert_eq!(rep.id, "planlint");
        assert!(
            rep.body.starts_with("all compiled plans verify clean"),
            "{}",
            rep.body
        );
        // one scale table per serving-zoo model
        assert_eq!(
            rep.body.matches("layer ranges").count(),
            serving_zoo().len(),
            "{}",
            rep.body
        );
        assert!(rep
            .body
            .contains("| step | op | lo | hi | int8 scale | rounded |"));
    }
}
