//! Tables II–VI: the addition-reuse sweeps.
//!
//! Every table prints three sources side by side:
//! * the paper's published numbers (hard-coded expectations),
//! * the closed-form analytic model (`mlcnn_core::analytic`),
//! * the memoized reuse simulator (`mlcnn_core::reuse_sim`) — the ground
//!   truth the closed forms are proven against.

use crate::format::{f, table};
use crate::{row, Report};
use mlcnn_core::analytic;
use mlcnn_core::reuse_sim::{simulate_row, ReuseMode};

/// Paper-published `(param, without, with)` rows for a sweep table.
type Published = &'static [(usize, u64, u64)];

const TABLE2_PAPER: Published = &[
    (11, 483, 373),
    (9, 323, 251),
    (7, 195, 153),
    (5, 99, 79),
    (3, 35, 29),
    (2, 15, 13),
];

const TABLE3_PAPER: Published = &[
    (1, 483, 373),
    (2, 483, 384),
    (3, 483, 395),
    (4, 483, 406),
    (5, 483, 417),
    (6, 483, 428),
    (11, 483, 483),
];

const TABLE4_PAPER: Published = &[
    (3, 455, 347),
    (5, 1188, 693),
    (13, 5400, 2397),
    (15, 6293, 2783),
    (17, 6930, 3105),
];

const TABLE5_PAPER: Published = &[(1, 5400, 2397), (3, 2025, 1479), (5, 1350, 1233)];

const TABLE6_PAPER: Published = &[(28, 5400, 2397), (32, 6750, 2889), (224, 71550, 26505)];

fn reduction(wo: u64, w: u64) -> f64 {
    100.0 * (1.0 - w as f64 / wo as f64)
}

/// Table II: LAR vs filter size (unit stride, one pooled output).
pub fn table2() -> Report {
    let mut rows = vec![row![
        "K",
        "w/o LAR",
        "w/ LAR",
        "red.%",
        "paper w/o",
        "paper w/",
        "sim"
    ]];
    for &(k, pwo, pw) in TABLE2_PAPER {
        let wo = analytic::adds_per_output_without(k);
        let w = analytic::adds_per_output_with_lar(k, 1);
        let sim = simulate_row(k, k + 1, 1, 2, ReuseMode::Lar).total();
        rows.push(row![
            format!("{k}x{k}"),
            wo,
            w,
            f(reduction(wo, w), 1),
            pwo,
            pw,
            sim
        ]);
    }
    Report::new(
        "table2",
        "Impact of filter size on LAR (unit stride)",
        table(&rows),
    )
}

/// Table III: LAR vs step size (K = 11).
pub fn table3() -> Report {
    let mut rows = vec![row![
        "S",
        "w/o LAR",
        "w/ LAR",
        "red.%",
        "paper w/o",
        "paper w/",
        "sim"
    ]];
    for &(s, pwo, pw) in TABLE3_PAPER {
        let wo = analytic::adds_per_output_without(11);
        let w = analytic::adds_per_output_with_lar(11, s);
        let sim = simulate_row(11, 11 + s, s, 2, ReuseMode::Lar).total();
        rows.push(row![s, wo, w, f(reduction(wo, w), 1), pwo, pw, sim]);
    }
    Report::new(
        "table3",
        "Impact of step size on LAR (11x11 filter)",
        table(&rows),
    )
}

fn gar_table(
    id: &str,
    title: &str,
    rows_in: Published,
    label: &str,
    geom: impl Fn(usize) -> (usize, usize, usize),
) -> Report {
    let mut rows = vec![row![
        label,
        "w/o GAR",
        "w/ GAR",
        "red.%",
        "paper w/o",
        "paper w/",
        "sim"
    ]];
    for &(p, pwo, pw) in rows_in {
        let (k, d, s) = geom(p);
        let wo = analytic::row_adds_without(k, d, s);
        let w = analytic::row_adds_with_gar(k, d, s);
        let sim = simulate_row(k, d, s, 2, ReuseMode::Gar).total();
        rows.push(row![p, wo, w, f(reduction(wo, w), 1), pwo, pw, sim]);
    }
    Report::new(id, title, table(&rows))
}

/// Table IV: GAR vs filter size (28×28 input, unit stride).
pub fn table4() -> Report {
    gar_table(
        "table4",
        "Impact of filter size on GAR (28x28 input, unit stride)",
        TABLE4_PAPER,
        "K",
        |k| (k, 28, 1),
    )
}

/// Table V: GAR vs step size (K = 13, 28×28 input).
pub fn table5() -> Report {
    gar_table(
        "table5",
        "Impact of step size on GAR (13x13 filter, 28x28 input)",
        TABLE5_PAPER,
        "S",
        |s| (13, 28, s),
    )
}

/// Table VI: GAR vs input dimension (K = 13, unit stride).
pub fn table6() -> Report {
    gar_table(
        "table6",
        "Impact of input dimension on GAR (13x13 filter, unit stride)",
        TABLE6_PAPER,
        "D",
        |d| (13, d, 1),
    )
}

/// Equations (4)–(7): the asymptotic limits, measured.
pub fn limits() -> Report {
    let mut rows = vec![row!["quantity", "paper limit", "measured (large param)"]];
    rows.push(row![
        "LAR reduction, K→inf (Eq.4)",
        "25%",
        f(100.0 * analytic::lar_reduction_rate(5000, 1), 2)
    ]);
    rows.push(row![
        "GAR reduction, D→inf, K=13 (Eq.5/6)",
        "63.6%",
        f(100.0 * analytic::gar_reduction_rate(13, 500_000, 1), 2)
    ]);
    rows.push(row![
        "LAR+GAR reduction, K→inf (Eq.7)",
        "75%",
        f(100.0 * analytic::both_reduction_rate(301, 10_000, 1), 2)
    ]);
    rows.push(row![
        "RME mult cut, 2x2 pool",
        "75%",
        f(100.0 * analytic::rme_mult_reduction(2), 2)
    ]);
    rows.push(row![
        "RME mult cut, 8x8 pool",
        "98%",
        f(100.0 * analytic::rme_mult_reduction(8), 2)
    ]);
    Report::new("limits", "Equations (4)-(7) asymptotics", table(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_columns_match(report: &Report) {
        // analytic column == paper column on every row (columns 2/3 vs 5/6)
        for line in report.body.lines().skip(2) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cells[1], cells[4], "w/o mismatch in {line}");
            assert_eq!(cells[2], cells[5], "w/ mismatch in {line}");
        }
    }

    #[test]
    fn tables_2_through_6_reproduce_paper_exactly() {
        for r in [table2(), table3(), table4(), table5(), table6()] {
            assert_columns_match(&r);
        }
    }

    #[test]
    fn simulator_column_matches_analytic_for_gar_tables() {
        for r in [table4(), table5(), table6()] {
            for line in r.body.lines().skip(2) {
                let cells: Vec<&str> = line.split_whitespace().collect();
                assert_eq!(cells[2], cells[6], "sim mismatch in {line}");
            }
        }
    }

    #[test]
    fn limits_report_contains_the_constants() {
        let body = limits().body;
        assert!(body.contains("25%"));
        assert!(body.contains("63.6%"));
        assert!(body.contains("75%"));
        assert!(body.contains("98.44") || body.contains("98.4"));
    }
}
