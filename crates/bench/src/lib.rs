//! # mlcnn-bench
//!
//! The experiment harness: one driver per table and figure of the MLCNN
//! paper's evaluation, each returning typed data plus a formatted text
//! table. The `tablegen` binary prints them; `EXPERIMENTS.md` records
//! paper-vs-measured for each.
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Table I (model stats) | [`model_stats::table1`] |
//! | Fig. 3 (reordering accuracy) | [`accuracy::fig3`] |
//! | Fig. 4 (avg vs max pooling) | [`accuracy::fig4`] |
//! | Tables II–VI (reuse sweeps) | [`sweeps`] |
//! | Table VII (accelerator configs) | [`accel_report::table7`] |
//! | Fig. 12 (quantized accuracy) | [`accuracy::fig12`] |
//! | Fig. 13 (speedups) | [`accel_report::fig13`] |
//! | Fig. 14 (FLOP reductions) | [`flops::fig14`] |
//! | Fig. 15 (energy breakdown) | [`accel_report::fig15`] |
//! | Ablations (DESIGN.md §6) | [`ablation`] |
//! | Extensions (ResNet-18, shift robustness) | [`accel_report::resnet_extension`], [`robustness`] |
//! | Static analysis (specs/configs/tilings) | [`lint`] |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod accel_report;
pub mod accuracy;
pub mod flops;
pub mod format;
pub mod lint;
pub mod model_stats;
pub mod robustness;
pub mod sweeps;

/// A rendered experiment: identifier, title and a preformatted text body.
#[derive(Debug, Clone)]
pub struct Report {
    /// Short id (`table2`, `fig13`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Preformatted text table(s).
    pub body: String,
}

impl Report {
    /// Assemble a report.
    pub fn new(id: &str, title: &str, body: String) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            body,
        }
    }

    /// Render with a header, ready to print.
    pub fn render(&self) -> String {
        format!("==== {} — {} ====\n{}\n", self.id, self.title, self.body)
    }
}
