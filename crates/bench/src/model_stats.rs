//! Table I: conv-layer and learnable-parameter counts of the model zoo.

use crate::format::table;
use crate::{row, Report};
use mlcnn_nn::zoo::{self, ModelDesc};

/// Paper Table I values: (name, conv layers, parameters). The GoogLeNet
/// parameter cell is printed as "6166250K" in the paper, which is a raw
/// count (≈6.2M) mislabelled as thousands; we compare against the raw
/// reading.
pub const PAPER_TABLE1: [(&str, usize, u64); 4] = [
    ("LeNet5", 3, 62_000),
    ("VGG16", 13, 14_728_000),
    ("VGG19", 16, 20_040_000),
    ("GoogLeNet", 57, 6_166_250),
];

/// Table I data row.
#[derive(Debug, Clone)]
pub struct ModelStats {
    /// Model name.
    pub name: String,
    /// Convolutional layer count.
    pub conv_layers: usize,
    /// Learnable parameter count.
    pub params: u64,
    /// Layers MLCNN can fuse.
    pub fused_layers: usize,
    /// Dense-conv MACs per inference.
    pub macs: u64,
}

/// Compute the stats for one model.
pub fn stats(m: &ModelDesc) -> ModelStats {
    ModelStats {
        name: m.name.clone(),
        conv_layers: m.conv_layer_count(),
        params: m.param_count(),
        fused_layers: m.fused_convs().len(),
        macs: m.total_macs(),
    }
}

/// Table I report (plus the DenseNet row used by Figs. 13–15 and the
/// fused-layer counts from Section VII).
pub fn table1() -> Report {
    let mut rows = vec![row![
        "model",
        "conv layers",
        "params",
        "paper params",
        "fused layers",
        "MACs/inference"
    ]];
    let mut models = zoo::table1_models(100);
    models.push(zoo::densenet121(100));
    for m in &models {
        let s = stats(m);
        let paper = PAPER_TABLE1
            .iter()
            .find(|(n, _, _)| *n == s.name)
            .map(|(_, _, p)| p.to_string())
            .unwrap_or_else(|| "-".into());
        rows.push(row![
            s.name,
            s.conv_layers,
            s.params,
            paper,
            s.fused_layers,
            s.macs
        ]);
    }
    Report::new(
        "table1",
        "Convolutional layers and learnable parameters (paper Table I)",
        table(&rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_layer_counts_match_paper() {
        for (name, layers, _) in PAPER_TABLE1 {
            let m = match name {
                "LeNet5" => zoo::lenet5(100),
                "VGG16" => zoo::vgg16(100),
                "VGG19" => zoo::vgg19(100),
                "GoogLeNet" => zoo::googlenet(100),
                _ => unreachable!(),
            };
            assert_eq!(m.conv_layer_count(), layers, "{name}");
        }
    }

    #[test]
    fn param_counts_are_within_ten_percent_of_paper() {
        for (name, _, paper) in PAPER_TABLE1 {
            let m = match name {
                "LeNet5" => zoo::lenet5(10),
                "VGG16" => zoo::vgg16(10),
                "VGG19" => zoo::vgg19(10),
                "GoogLeNet" => zoo::googlenet(100),
                _ => unreachable!(),
            };
            let ours = m.param_count() as f64;
            let ratio = ours / paper as f64;
            assert!(
                (0.85..1.15).contains(&ratio),
                "{name}: ours {ours} vs paper {paper} (ratio {ratio:.3})"
            );
        }
    }

    #[test]
    fn report_has_five_model_rows() {
        let r = table1();
        assert_eq!(r.body.lines().count(), 2 + 5);
        assert!(r.body.contains("DenseNet"));
    }
}
