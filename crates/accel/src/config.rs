//! Accelerator configurations (paper Table VII).
//!
//! Four machines share one silicon budget (1.52 mm², 134 kB on-chip
//! memory): the dense-CNN baseline at FP32 and the MLCNN accelerator at
//! FP32/FP16/INT8. Narrower operands buy proportionally more MAC slices
//! under the fixed area — 32 → 64 → 128 — which is where the quantized
//! speedups beyond the arithmetic savings come from.

use mlcnn_quant::Precision;
use serde::{Deserialize, Serialize};

/// One accelerator instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Human-readable name as Table VII labels it.
    pub name: String,
    /// Operand precision of the datapath.
    pub precision: Precision,
    /// Number of MAC slices (one multiply per slice per cycle).
    pub mac_slices: usize,
    /// Addition-reuse adders per MAC slice (the AR unit has two addition
    /// units per block, Fig. 7b).
    pub ar_adders_per_slice: usize,
    /// Whether the fused-layer datapath (AR units, preprocessing,
    /// reconfiguration) is present. `false` = the DCNN baseline.
    pub mlcnn_datapath: bool,
    /// Off-chip bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// On-chip buffer capacity in kB (input+weight+output buffers).
    pub buffer_kb: usize,
    /// Die area in mm² (constant across Table VII).
    pub area_mm2: f64,
}

/// The fixed Table VII area budget.
pub const AREA_MM2: f64 = 1.52;
/// The fixed Table VII on-chip memory budget in kB.
pub const BUFFER_KB: usize = 134;
/// Baseline slice count at FP32.
pub const BASE_SLICES: usize = 32;
/// Modelled clock (45 nm-class accelerator).
pub const FREQ_MHZ: f64 = 500.0;
/// Modelled off-chip bandwidth (bytes per cycle; ≈6 GB/s at 500 MHz, a
/// single DDR3-class channel).
pub const DRAM_BYTES_PER_CYCLE: f64 = 12.0;

impl AcceleratorConfig {
    fn base(name: &str, precision: Precision, mlcnn: bool) -> Self {
        Self {
            name: name.into(),
            precision,
            mac_slices: BASE_SLICES * precision.slice_multiplier(),
            ar_adders_per_slice: 2,
            mlcnn_datapath: mlcnn,
            dram_bytes_per_cycle: DRAM_BYTES_PER_CYCLE,
            freq_mhz: FREQ_MHZ,
            buffer_kb: BUFFER_KB,
            area_mm2: AREA_MM2,
        }
    }

    /// Table VII column 1: the dense-CNN FP32 baseline.
    pub fn dcnn_fp32() -> Self {
        Self::base("DCNN FP32", Precision::Fp32, false)
    }

    /// Table VII column 2: MLCNN at FP32.
    pub fn mlcnn_fp32() -> Self {
        Self::base("MLCNN FP32", Precision::Fp32, true)
    }

    /// Table VII column 3: MLCNN at FP16 (64 slices).
    pub fn mlcnn_fp16() -> Self {
        Self::base("MLCNN FP16", Precision::Fp16, true)
    }

    /// Table VII column 4: quantized MLCNN at INT8 (128 slices).
    pub fn mlcnn_int8() -> Self {
        Self::base("MLCNN INT8", Precision::Int8, true)
    }

    /// All four Table VII columns in order.
    pub fn table7() -> Vec<Self> {
        vec![
            Self::dcnn_fp32(),
            Self::mlcnn_fp32(),
            Self::mlcnn_fp16(),
            Self::mlcnn_int8(),
        ]
    }

    /// The three MLCNN precisions of Figs. 13/15.
    pub fn mlcnn_variants() -> Vec<Self> {
        vec![Self::mlcnn_fp32(), Self::mlcnn_fp16(), Self::mlcnn_int8()]
    }

    /// Buffer capacity in bytes.
    pub fn buffer_bytes(&self) -> usize {
        self.buffer_kb * 1024
    }

    /// Buffer capacity in *elements* at this precision.
    pub fn buffer_elements(&self) -> usize {
        self.buffer_bytes() / self.precision.bytes()
    }

    /// Peak multiplications per cycle.
    pub fn macs_per_cycle(&self) -> usize {
        self.mac_slices
    }

    /// Peak AR-unit additions per cycle.
    pub fn ar_adds_per_cycle(&self) -> usize {
        self.mac_slices * self.ar_adders_per_slice
    }

    /// Lint this configuration against the Table VII invariants: area and
    /// buffer budgets (`A004`/`A005`), slices-per-precision scaling
    /// (`A006`, warning), degenerate parameters (`A007`) and a fused
    /// datapath without AR adders (`A008`, warning).
    pub fn validate(&self) -> Vec<mlcnn_check::Diagnostic> {
        let mut reporter = mlcnn_check::Reporter::new();
        let lint = mlcnn_check::AccelConfigLint {
            name: self.name.clone(),
            bytes_per_element: self.precision.bytes(),
            mac_slices: self.mac_slices,
            expected_slices: BASE_SLICES * self.precision.slice_multiplier(),
            ar_adders_per_slice: self.ar_adders_per_slice,
            mlcnn_datapath: self.mlcnn_datapath,
            dram_bytes_per_cycle: self.dram_bytes_per_cycle,
            freq_mhz: self.freq_mhz,
            buffer_kb: self.buffer_kb,
            area_mm2: self.area_mm2,
            area_budget_mm2: AREA_MM2,
            buffer_budget_kb: BUFFER_KB,
        };
        mlcnn_check::check_accel_config(&lint, &mut reporter);
        reporter.into_diagnostics()
    }

    /// `validate`, keeping only the denials.
    pub fn validate_errors(&self) -> Vec<mlcnn_check::Diagnostic> {
        self.validate()
            .into_iter()
            .filter(|d| d.severity == mlcnn_check::Severity::Deny)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_matches_paper() {
        let t = AcceleratorConfig::table7();
        assert_eq!(t.len(), 4);
        let slices: Vec<usize> = t.iter().map(|c| c.mac_slices).collect();
        assert_eq!(slices, vec![32, 32, 64, 128]);
        let bits: Vec<u32> = t.iter().map(|c| c.precision.bits()).collect();
        assert_eq!(bits, vec![32, 32, 16, 8]);
        for c in &t {
            assert_eq!(c.area_mm2, 1.52);
            assert_eq!(c.buffer_kb, 134);
        }
        assert!(!t[0].mlcnn_datapath);
        assert!(t[1..].iter().all(|c| c.mlcnn_datapath));
    }

    #[test]
    fn every_table7_config_validates_cleanly() {
        for cfg in AcceleratorConfig::table7() {
            let diags = cfg.validate();
            assert!(diags.is_empty(), "{}: {diags:?}", cfg.name);
        }
    }

    #[test]
    fn validate_rejects_budget_overruns() {
        let mut cfg = AcceleratorConfig::mlcnn_fp32();
        cfg.area_mm2 = 3.0;
        cfg.buffer_kb = 512;
        let denies = cfg.validate_errors();
        assert!(denies
            .iter()
            .any(|d| d.code == mlcnn_check::Code::AreaBudgetExceeded));
        assert!(denies
            .iter()
            .any(|d| d.code == mlcnn_check::Code::BufferBudgetExceeded));
    }

    #[test]
    fn buffer_elements_scale_with_precision() {
        assert_eq!(
            AcceleratorConfig::mlcnn_fp32().buffer_elements() * 4,
            AcceleratorConfig::mlcnn_int8().buffer_elements()
        );
    }

    #[test]
    fn throughput_scales_with_slices() {
        assert_eq!(AcceleratorConfig::mlcnn_int8().macs_per_cycle(), 128);
        assert_eq!(AcceleratorConfig::mlcnn_fp32().ar_adds_per_cycle(), 64);
    }
}
