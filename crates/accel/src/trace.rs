//! Tile-level schedule tracing.
//!
//! The aggregate cycle model in [`crate::cycle`] assumes perfect overlap
//! of compute and off-chip transfers through the multi-bank buffer:
//! `layer cycles = max(compute, memory)`. This module *earns* that
//! assumption: it simulates the layer's tile schedule event by event —
//! double-buffered loads, per-tile compute, overlapped writeback — and
//! reports the true makespan and resource utilization. The tests show the
//! makespan converges to the aggregate model's maximum as soon as there
//! are a handful of tiles (the pipeline fill/drain amortizes away), which
//! is exactly when the aggregate model is used.

use crate::config::AcceleratorConfig;
use crate::cycle::runs_fused;
use crate::dataflow::{dram_traffic, Tiling};
use mlcnn_core::opcount::{dense_layer_counts, mlcnn_layer_counts};
use mlcnn_nn::zoo::ConvLayerGeom;
use serde::{Deserialize, Serialize};

/// One tile's lifetime in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileEvent {
    /// Tile index in schedule order.
    pub tile: usize,
    /// DRAM load interval (start, end) in cycles.
    pub load: (u64, u64),
    /// Compute interval.
    pub compute: (u64, u64),
    /// Writeback interval.
    pub store: (u64, u64),
}

/// A traced layer schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TileTrace {
    /// Per-tile events in schedule order.
    pub events: Vec<TileEvent>,
    /// Total makespan in cycles.
    pub makespan: u64,
    /// Cycles the MAC array was busy.
    pub compute_busy: u64,
    /// Cycles the DRAM channel was busy (loads + stores).
    pub dram_busy: u64,
}

impl TileTrace {
    /// MAC-array utilization over the makespan.
    pub fn compute_utilization(&self) -> f64 {
        self.compute_busy as f64 / self.makespan.max(1) as f64
    }

    /// DRAM-channel utilization over the makespan.
    pub fn dram_utilization(&self) -> f64 {
        self.dram_busy as f64 / self.makespan.max(1) as f64
    }
}

/// Trace a layer's tile schedule under a tiling.
///
/// Model: tiles execute in a fixed order; the DRAM channel is a single
/// resource serving loads and stores FIFO; tile `i+1`'s load may start as
/// soon as the channel is free (double buffering — one tile of lookahead);
/// tile `i`'s compute starts when its load completed and the previous
/// compute finished; its store queues on the channel after compute.
pub fn trace_layer(g: &ConvLayerGeom, cfg: &AcceleratorConfig, tiling: &Tiling) -> TileTrace {
    let fused = runs_fused(g, cfg);
    let ops = if fused {
        mlcnn_layer_counts(g)
    } else {
        dense_layer_counts(g)
    };
    let traffic = dram_traffic(g, tiling);

    let n_tiles = (g.out_ch.div_ceil(tiling.tm)
        * g.in_ch.div_ceil(tiling.tn)
        * g.out_h().div_ceil(tiling.tr)
        * g.out_w().div_ceil(tiling.tc))
    .max(1);

    // even split of the layer's totals across tiles (the schedule is what
    // we are studying, not intra-tile variation)
    let compute_total = ops.mults.div_ceil(cfg.macs_per_cycle() as u64);
    let compute_per_tile = compute_total.div_ceil(n_tiles as u64).max(1);
    let load_bytes = (traffic.input_reads + traffic.weight_reads) * cfg.precision.bytes() as u64;
    let store_bytes = traffic.output_writes * cfg.precision.bytes() as u64;
    let load_per_tile =
        ((load_bytes as f64 / n_tiles as f64) / cfg.dram_bytes_per_cycle).ceil() as u64;
    let store_per_tile =
        ((store_bytes as f64 / n_tiles as f64) / cfg.dram_bytes_per_cycle).ceil() as u64;

    let mut events: Vec<TileEvent> = Vec::with_capacity(n_tiles);
    let mut channel_free = 0u64; // DRAM channel availability
    let mut compute_free = 0u64; // MAC array availability
                                 // the previous tile's writeback is deferred until after the next
                                 // tile's load has been issued, so the channel prefetches during
                                 // compute instead of stalling on the store's compute dependency.
    let mut pending_store: Option<(usize, u64)> = None;

    for i in 0..n_tiles {
        // double buffering: load i may not start before compute of i-2
        // finished (its buffer bank is still in use until then)
        let bank_free = if i >= 2 { events[i - 2].compute.1 } else { 0 };
        let load_start = channel_free.max(bank_free);
        let load_end = load_start + load_per_tile;
        channel_free = load_end;

        let compute_start = load_end.max(compute_free);
        let compute_end = compute_start + compute_per_tile;
        compute_free = compute_end;

        events.push(TileEvent {
            tile: i,
            load: (load_start, load_end),
            compute: (compute_start, compute_end),
            store: (0, 0), // filled when the deferred writeback issues
        });

        if let Some((j, prev_compute_end)) = pending_store.take() {
            let store_start = channel_free.max(prev_compute_end);
            let store_end = store_start + store_per_tile;
            channel_free = store_end;
            events[j].store = (store_start, store_end);
        }
        pending_store = Some((i, compute_end));
    }
    if let Some((j, prev_compute_end)) = pending_store {
        let store_start = channel_free.max(prev_compute_end);
        events[j].store = (store_start, store_start + store_per_tile);
    }

    let makespan = events
        .iter()
        .map(|e| e.store.1.max(e.compute.1))
        .max()
        .unwrap_or(0);
    TileTrace {
        makespan,
        compute_busy: compute_per_tile * n_tiles as u64,
        dram_busy: (load_per_tile + store_per_tile) * n_tiles as u64,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::search_tiling;
    use mlcnn_nn::zoo::{self, PoolAfter};

    fn geom() -> ConvLayerGeom {
        ConvLayerGeom {
            name: "t".into(),
            in_ch: 16,
            out_ch: 32,
            in_h: 32,
            in_w: 32,
            k: 3,
            stride: 1,
            pad: 1,
            pool: Some(PoolAfter::avg2()),
        }
    }

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::mlcnn_fp32()
    }

    #[test]
    fn schedule_is_well_formed() {
        let g = geom();
        let cfg = cfg();
        let (tiling, _) = search_tiling(&g, cfg.buffer_elements()).unwrap();
        let trace = trace_layer(&g, &cfg, &tiling);
        assert!(!trace.events.is_empty());
        let mut prev_compute_end = 0;
        for e in &trace.events {
            // intervals ordered within a tile
            assert!(e.load.0 <= e.load.1);
            assert!(e.load.1 <= e.compute.0, "compute before load done: {e:?}");
            assert!(e.compute.1 <= e.store.0, "store before compute done: {e:?}");
            // compute is serialized on the single MAC array
            assert!(e.compute.0 >= prev_compute_end);
            prev_compute_end = e.compute.1;
        }
    }

    #[test]
    fn dram_channel_never_double_booked() {
        let g = geom();
        let cfg = cfg();
        let (tiling, _) = search_tiling(&g, cfg.buffer_elements()).unwrap();
        let trace = trace_layer(&g, &cfg, &tiling);
        // collect all channel intervals and check pairwise disjointness
        let mut intervals: Vec<(u64, u64)> = trace
            .events
            .iter()
            .flat_map(|e| [e.load, e.store])
            .filter(|(a, b)| a != b)
            .collect();
        intervals.sort();
        for w in intervals.windows(2) {
            assert!(w[0].1 <= w[1].0, "channel overlap: {w:?}");
        }
    }

    #[test]
    fn makespan_bounded_by_resources() {
        let g = geom();
        let cfg = cfg();
        let (tiling, _) = search_tiling(&g, cfg.buffer_elements()).unwrap();
        let trace = trace_layer(&g, &cfg, &tiling);
        // lower bound: the busier resource; upper bound: fully serial
        let lower = trace.compute_busy.max(trace.dram_busy);
        assert!(trace.makespan >= lower);
        assert!(trace.makespan <= trace.compute_busy + trace.dram_busy + 10);
    }

    #[test]
    fn overlap_approaches_the_aggregate_model_with_many_tiles() {
        // with enough tiles, makespan ≈ max(compute, dram) — the cycle
        // model's assumption
        let g = geom();
        let cfg = cfg();
        // force many tiles with a small tiling
        let tiling = Tiling {
            tm: 4,
            tn: 4,
            tr: 8,
            tc: 8,
        };
        let trace = trace_layer(&g, &cfg, &tiling);
        assert!(trace.events.len() >= 64);
        let lower = trace.compute_busy.max(trace.dram_busy) as f64;
        let slack = trace.makespan as f64 / lower;
        assert!(
            slack < 1.15,
            "double buffering should hide most transfer time: slack {slack}"
        );
    }

    #[test]
    fn utilizations_are_fractions_and_one_resource_saturates() {
        let g = geom();
        let cfg = cfg();
        let tiling = Tiling {
            tm: 4,
            tn: 4,
            tr: 8,
            tc: 8,
        };
        let trace = trace_layer(&g, &cfg, &tiling);
        let cu = trace.compute_utilization();
        let du = trace.dram_utilization();
        assert!((0.0..=1.0).contains(&cu));
        assert!((0.0..=1.0).contains(&du));
        assert!(
            cu.max(du) > 0.8,
            "bottleneck resource should be busy: {cu} {du}"
        );
    }

    #[test]
    fn traces_run_for_every_vgg_layer() {
        let cfg = cfg();
        for g in &zoo::vgg16(10).convs {
            let (tiling, _) = search_tiling(g, cfg.buffer_elements()).unwrap();
            let trace = trace_layer(g, &cfg, &tiling);
            assert!(trace.makespan > 0, "{}", g.name);
        }
    }
}
