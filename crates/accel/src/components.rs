//! Cycle-steppable functional models of the MLCNN microarchitecture
//! (paper Figs. 7, 9–11): FIFOs, shift registers, the addition-reuse (AR)
//! unit, MAC slices and the preprocessing unit.
//!
//! These models are the reproduction's stand-in for the authors' Verilog
//! RTL: they reproduce the *dataflow* — which value moves through which
//! register on which cycle — and are validated end-to-end against the
//! fused kernel of `mlcnn-core` (see `fused_pipeline_matches_kernel`).
//! The aggregate cycle model in [`crate::cycle`] abstracts them into
//! throughput numbers; these models justify those numbers.

use mlcnn_tensor::Scalar;
use std::collections::VecDeque;

/// A bounded hardware FIFO.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    buf: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Create with a fixed capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity FIFO");
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Push; returns `false` (and drops nothing) when full.
    pub fn push(&mut self, v: T) -> bool {
        if self.buf.len() == self.capacity {
            return false;
        }
        self.buf.push_back(v);
        true
    }

    /// Pop the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when at capacity (back-pressure condition).
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }
}

/// A fixed-depth shift register chain.
#[derive(Debug, Clone)]
pub struct ShiftRegister<T: Copy + Default> {
    regs: Vec<T>,
}

impl<T: Copy + Default> ShiftRegister<T> {
    /// Create with `depth` stages initialized to default.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0);
        Self {
            regs: vec![T::default(); depth],
        }
    }

    /// Shift a value in at stage 0; returns the value falling out of the
    /// last stage.
    pub fn shift(&mut self, v: T) -> T {
        let out = *self.regs.last().expect("nonempty");
        for i in (1..self.regs.len()).rev() {
            self.regs[i] = self.regs[i - 1];
        }
        self.regs[0] = v;
        out
    }

    /// Read a stage.
    pub fn peek(&self, stage: usize) -> T {
        self.regs[stage]
    }

    /// Number of stages.
    pub fn depth(&self) -> usize {
        self.regs.len()
    }
}

/// Output of one AR-unit cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArOutput<T> {
    /// The half addition produced this cycle.
    pub ha: T,
    /// A completed block sum, once enough half additions are buffered.
    pub g: Option<T>,
}

/// The addition-reuse unit (paper Fig. 7b / Fig. 10) for the 2×2-pool
/// fused mode: two addition units, a register pair and a small FIFO.
///
/// Each cycle it receives two vertically adjacent operands (the column
/// stream of rows `a` and `a+S`), performs the **half addition** on adder
/// 1, holds the result in the shift registers, and once the horizontally
/// `S`-spaced partner is available performs the **full addition** (block
/// sum) on adder 2 — one HA and up to one G per cycle, exactly the
/// two-adders-per-AR-block throughput the cycle model assumes.
#[derive(Debug, Clone)]
pub struct ArUnit<T: Scalar> {
    spacing: usize,
    ha_window: VecDeque<T>,
    adds_performed: u64,
}

impl<T: Scalar> ArUnit<T> {
    /// Create for horizontal spacing `S` (the convolution stride).
    pub fn new(spacing: usize) -> Self {
        assert!(spacing > 0);
        Self {
            spacing,
            ha_window: VecDeque::with_capacity(spacing + 1),
            adds_performed: 0,
        }
    }

    /// Start a new row of half additions (clears the HA window).
    pub fn start_row(&mut self) {
        self.ha_window.clear();
    }

    /// One cycle: consume the vertical operand pair, emit the HA and
    /// possibly a completed block sum.
    pub fn step(&mut self, top: T, bottom: T) -> ArOutput<T> {
        let ha = top + bottom;
        self.adds_performed += 1;
        self.ha_window.push_back(ha);
        let g = if self.ha_window.len() > self.spacing {
            let left = self.ha_window.pop_front().expect("nonempty");
            self.adds_performed += 1;
            Some(left + ha)
        } else {
            None
        };
        ArOutput { ha, g }
    }

    /// Additions performed since construction.
    pub fn adds_performed(&self) -> u64 {
        self.adds_performed
    }

    /// Stream a whole plane (row-major `rows × cols`) through the unit,
    /// returning the block-sum plane `(rows−S) × (cols−S)` it produces.
    pub fn stream_plane(&mut self, plane: &[T], rows: usize, cols: usize) -> Vec<T> {
        assert_eq!(plane.len(), rows * cols);
        let s = self.spacing;
        assert!(rows > s && cols > s, "plane too small for spacing {s}");
        let mut g = Vec::with_capacity((rows - s) * (cols - s));
        for a in 0..rows - s {
            self.start_row();
            for b in 0..cols {
                let out = self.step(plane[a * cols + b], plane[(a + s) * cols + b]);
                if let Some(v) = out.g {
                    g.push(v);
                }
            }
        }
        g
    }
}

/// A MAC slice (paper Fig. 11): a weight register file, a pipelined
/// multiplier (PE) and an accumulator fed by the AR unit's block-sum
/// stream.
#[derive(Debug, Clone)]
pub struct MacSlice<T: Scalar> {
    weights: Vec<T>,
    acc: T,
    taps_consumed: usize,
    cycles: u64,
    pipeline_depth: u64,
}

impl<T: Scalar> MacSlice<T> {
    /// Create with the slice's weight register contents (one fused
    /// window: `N·K²` factored weights) and the PE pipeline depth (3 for
    /// the paper's FP32 PE).
    pub fn new(weights: Vec<T>, pipeline_depth: u64) -> Self {
        assert!(!weights.is_empty());
        Self {
            weights,
            acc: T::zero(),
            taps_consumed: 0,
            cycles: 0,
            pipeline_depth,
        }
    }

    /// Consume one block-sum operand; returns the completed accumulation
    /// when the last tap has been multiplied.
    pub fn consume(&mut self, g: T) -> Option<T> {
        let w = self.weights[self.taps_consumed];
        self.acc += w * g;
        self.taps_consumed += 1;
        self.cycles += 1;
        if self.taps_consumed == self.weights.len() {
            let out = self.acc;
            self.acc = T::zero();
            self.taps_consumed = 0;
            Some(out)
        } else {
            None
        }
    }

    /// Cycles consumed, including the pipeline fill.
    pub fn cycles(&self) -> u64 {
        self.cycles + self.pipeline_depth
    }
}

/// The preprocessing unit (paper Fig. 9): divide-by-shift for the pooled
/// average, bias add, activation, and the pair-add applied before DRAM
/// writeback when the consumer is a fused layer.
#[derive(Debug, Clone, Copy)]
pub struct Preprocess {
    /// `S1 = 0`: fused conv-pool mode (divide by the pool area).
    pub fused_mode: bool,
    /// Pool window (division by `window²` when in fused mode).
    pub pool_window: usize,
    /// `S2 = 1`: consumer is fused, pair-add outputs before writeback.
    pub pair_add_writeback: bool,
}

impl Preprocess {
    /// Finalize one accumulator value: divide (fused mode), add bias,
    /// apply ReLU.
    pub fn finalize(&self, acc: f32, bias: f32) -> f32 {
        let v = if self.fused_mode {
            acc / (self.pool_window * self.pool_window) as f32
        } else {
            acc
        };
        (v + bias).max(0.0)
    }

    /// Apply the S2 path to an output column: pair-add vertically
    /// adjacent values (halving the data sent to DRAM).
    pub fn writeback(&self, column: &[f32]) -> Vec<f32> {
        if !self.pair_add_writeback {
            return column.to_vec();
        }
        column.chunks(2).map(|c| c.iter().sum()).collect()
    }
}

/// Wire AR unit → MAC slice → preprocessing for one single-channel fused
/// layer and run it to completion. Returns the outputs and total cycles.
/// This is the end-to-end "RTL" path validated against
/// `mlcnn_core::FusedConvPool`.
pub fn run_fused_pipeline(
    input: &[f32],
    rows: usize,
    cols: usize,
    weights: &[f32],
    k: usize,
    bias: f32,
) -> (Vec<f32>, u64) {
    assert_eq!(weights.len(), k * k);
    // phase 1+2: AR unit streams the plane into block sums
    let mut ar = ArUnit::new(1);
    let g = ar.stream_plane(input, rows, cols);
    let g_rows = rows - 1;
    let g_cols = cols - 1;
    // phase 3: the MAC slice walks pooled windows over the block sums
    // conv output (rows−k+1) pooled by a non-overlapping 2×2 window
    let out_h = (rows - k - 1) / 2 + 1;
    let out_w = (cols - k - 1) / 2 + 1;
    let mut mac = MacSlice::new(weights.to_vec(), 3);
    let pre = Preprocess {
        fused_mode: true,
        pool_window: 2,
        pair_add_writeback: false,
    };
    let mut out = Vec::with_capacity(out_h * out_w);
    for x in 0..out_h {
        for y in 0..out_w {
            let mut done = None;
            for i in 0..k {
                for j in 0..k {
                    let a = 2 * x + i;
                    let b = 2 * y + j;
                    debug_assert!(a < g_rows && b < g_cols);
                    done = mac.consume(g[a * g_cols + b]);
                }
            }
            let acc = done.expect("window complete");
            out.push(pre.finalize(acc, bias));
        }
    }
    // AR and MAC run concurrently; the pipeline time is the longer stream
    let ar_cycles = (g_rows * cols) as u64; // one vertical pair per cycle
    (out, ar_cycles.max(mac.cycles()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_core::FusedConvPool;
    use mlcnn_tensor::{init, Shape4, Tensor};

    #[test]
    fn fifo_order_and_backpressure() {
        let mut f = Fifo::new(2);
        assert!(f.push(1));
        assert!(f.push(2));
        assert!(!f.push(3), "third push must be refused");
        assert!(f.is_full());
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn shift_register_delays_by_depth() {
        let mut sr = ShiftRegister::<i32>::new(3);
        let outs: Vec<i32> = (1..=6).map(|v| sr.shift(v)).collect();
        assert_eq!(outs, vec![0, 0, 0, 1, 2, 3]);
        assert_eq!(sr.peek(0), 6);
        assert_eq!(sr.depth(), 3);
    }

    #[test]
    fn ar_unit_produces_block_sums_in_order() {
        // 3x3 plane 1..9: block sums of 2x2 windows
        let plane: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let mut ar = ArUnit::new(1);
        let g = ar.stream_plane(&plane, 3, 3);
        // G[0][0]=1+2+4+5=12, G[0][1]=2+3+5+6=16, G[1][0]=4+5+7+8=24, G[1][1]=5+6+8+9=28
        assert_eq!(g, vec![12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn ar_unit_add_count_matches_two_adders_per_cycle_budget() {
        let plane: Vec<f32> = (0..25).map(|v| v as f32).collect();
        let mut ar = ArUnit::new(1);
        let g = ar.stream_plane(&plane, 5, 5);
        assert_eq!(g.len(), 16);
        // HA: 4 rows * 5 cols = 20 adds, G: 16 combines → 36 total
        assert_eq!(ar.adds_performed(), 36);
    }

    #[test]
    fn ar_unit_spacing_two() {
        // spacing 2 (stride-2 conv): G[a][b] = I[a][b]+I[a][b+2]+I[a+2][b]+I[a+2][b+2]
        let plane: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let mut ar = ArUnit::new(2);
        let g = ar.stream_plane(&plane, 4, 4);
        assert_eq!(g.len(), 2 * 2);
        assert_eq!(g[0], 0.0 + 2.0 + 8.0 + 10.0);
        assert_eq!(g[3], 5.0 + 7.0 + 13.0 + 15.0);
    }

    #[test]
    fn mac_slice_accumulates_and_resets() {
        let mut mac = MacSlice::new(vec![1.0_f32, 2.0], 3);
        assert_eq!(mac.consume(10.0), None);
        assert_eq!(mac.consume(100.0), Some(210.0));
        // accumulator reset for the next window
        assert_eq!(mac.consume(1.0), None);
        assert_eq!(mac.consume(1.0), Some(3.0));
        assert_eq!(mac.cycles(), 4 + 3);
    }

    #[test]
    fn preprocess_fused_mode_divides_and_activates() {
        let p = Preprocess {
            fused_mode: true,
            pool_window: 2,
            pair_add_writeback: false,
        };
        assert_eq!(p.finalize(8.0, 0.5), 2.5);
        assert_eq!(p.finalize(-8.0, 0.5), 0.0, "ReLU clamps");
        let regular = Preprocess {
            fused_mode: false,
            ..p
        };
        assert_eq!(regular.finalize(8.0, 0.5), 8.5);
    }

    #[test]
    fn preprocess_writeback_pair_adds() {
        let p = Preprocess {
            fused_mode: true,
            pool_window: 2,
            pair_add_writeback: true,
        };
        assert_eq!(p.writeback(&[1.0, 2.0, 3.0, 4.0]), vec![3.0, 7.0]);
        let off = Preprocess {
            pair_add_writeback: false,
            ..p
        };
        assert_eq!(off.writeback(&[1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn fused_pipeline_matches_kernel() {
        // the paper's Fig. 5 geometry: 5x5 input, 2x2 filter, 2x2 pool
        let mut rng = init::rng(21);
        let input = init::uniform(Shape4::hw(5, 5), -1.0, 1.0, &mut rng);
        let weights = [0.5_f32, -1.0, 0.25, 2.0];
        let bias = 0.1;
        let (hw_out, cycles) = run_fused_pipeline(input.as_slice(), 5, 5, &weights, 2, bias);
        assert!(cycles > 0);

        let w = Tensor::from_vec(Shape4::new(1, 1, 2, 2), weights.to_vec()).unwrap();
        let fused = FusedConvPool::new(w, vec![bias], 1, 0, 2).unwrap();
        let kernel_out = fused.forward(&input).unwrap();
        assert_eq!(hw_out.len(), kernel_out.len());
        for (a, b) in hw_out.iter().zip(kernel_out.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn fused_pipeline_larger_geometry() {
        let mut rng = init::rng(22);
        let input = init::uniform(Shape4::hw(12, 12), -2.0, 2.0, &mut rng);
        let weights: Vec<f32> = (0..9).map(|i| (i as f32 - 4.0) * 0.2).collect();
        let (hw_out, _) = run_fused_pipeline(input.as_slice(), 12, 12, &weights, 3, -0.3);
        let w = Tensor::from_vec(Shape4::new(1, 1, 3, 3), weights).unwrap();
        let fused = FusedConvPool::new(w, vec![-0.3], 1, 0, 2).unwrap();
        let kernel_out = fused.forward(&input).unwrap();
        for (a, b) in hw_out.iter().zip(kernel_out.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
