//! Loop tiling and DRAM-traffic accounting (paper Section VI, "Dataflow
//! Design", after Zhang et al. FPGA'15 whom the paper cites for the
//! ⟨Tm,Tn,Tr,Tc⟩ parameterization).
//!
//! The on-chip multi-bank buffer holds one input tile, one weight tile
//! and one output tile. The tile loop order is weight-input-reuse: a
//! weight chunk stays in the PE registers until it has met every input of
//! its tile. Off-chip traffic then follows from how many times each
//! operand class must be (re-)fetched:
//!
//! * inputs are re-read once per output-channel tile group (`⌈M/Tm⌉`);
//! * weights are re-read once per spatial tile (`⌈R/Tr⌉·⌈C/Tc⌉`);
//! * outputs are written once if all input channels fit (`Tn = N`),
//!   otherwise partial sums travel to DRAM and back (`2·⌈N/Tn⌉ − 1`
//!   trips).

use mlcnn_nn::zoo::ConvLayerGeom;
use serde::{Deserialize, Serialize};

/// A loop tiling `⟨Tm, Tn, Tr, Tc⟩`: output-channel, input-channel,
/// output-row and output-column tile extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tiling {
    /// Output channels per tile.
    pub tm: usize,
    /// Input channels per tile.
    pub tn: usize,
    /// Output rows per tile.
    pub tr: usize,
    /// Output columns per tile.
    pub tc: usize,
}

impl Tiling {
    /// On-chip elements needed to hold one tile of inputs + weights +
    /// outputs for a layer with kernel `k` and stride `s`.
    ///
    /// A degenerate tile (any extent zero) reads as `usize::MAX` — "does
    /// not fit anywhere" — rather than underflowing, and huge extents
    /// saturate instead of wrapping.
    pub fn footprint_elements(&self, k: usize, s: usize) -> usize {
        mlcnn_check::accel::tile_footprint_elements(&self.as_lint(k, s, 0, None))
    }

    /// The checker's raw view of this tiling.
    fn as_lint(
        &self,
        k: usize,
        s: usize,
        capacity_elements: usize,
        layer_extents: Option<(usize, usize, usize, usize)>,
    ) -> mlcnn_check::TilingLint {
        mlcnn_check::TilingLint {
            tm: self.tm,
            tn: self.tn,
            tr: self.tr,
            tc: self.tc,
            k,
            stride: s,
            capacity_elements,
            layer_extents,
        }
    }

    /// Lint this tiling against a layer and buffer capacity: zero extents
    /// (`A001`), footprint vs capacity (`A002`), tile vs layer extents
    /// (`A003`, warning).
    pub fn validate(
        &self,
        g: &ConvLayerGeom,
        capacity_elements: usize,
    ) -> Vec<mlcnn_check::Diagnostic> {
        let mut reporter = mlcnn_check::Reporter::new();
        let lint = self.as_lint(
            g.k,
            g.stride,
            capacity_elements,
            Some((g.out_ch, g.in_ch, g.out_h(), g.out_w())),
        );
        mlcnn_check::check_tiling(&lint, &mut reporter);
        reporter.into_diagnostics()
    }
}

/// Off-chip traffic for one layer, in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Traffic {
    /// Input feature-map reads.
    pub input_reads: u64,
    /// Weight reads.
    pub weight_reads: u64,
    /// Output (and partial-sum) transfers.
    pub output_writes: u64,
}

impl Traffic {
    /// Total elements moved.
    pub fn total(&self) -> u64 {
        self.input_reads + self.weight_reads + self.output_writes
    }
}

fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Traffic for a conv layer under a tiling.
pub fn dram_traffic(g: &ConvLayerGeom, t: &Tiling) -> Traffic {
    let (m, n) = (g.out_ch, g.in_ch);
    let (r, c) = (g.out_h(), g.out_w());
    let a_m = ceil_div(m, t.tm) as u64;
    let a_n = ceil_div(n, t.tn) as u64;
    let a_r = ceil_div(r, t.tr) as u64;
    let a_c = ceil_div(c, t.tc) as u64;
    let input_elems = (n * g.in_h * g.in_w) as u64;
    let weight_elems = (m * n * g.k * g.k) as u64;
    let output_elems = (m * r * c) as u64;
    Traffic {
        input_reads: input_elems * a_m,
        weight_reads: weight_elems * a_r * a_c,
        output_writes: output_elems * (2 * a_n - 1),
    }
}

fn candidates(total: usize) -> Vec<usize> {
    let mut v: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512]
        .iter()
        .copied()
        .filter(|&x| x < total)
        .collect();
    v.push(total);
    v
}

/// Search the tiling space for the minimum-traffic tiling whose footprint
/// fits the buffer. Returns `None` only if even the 1×1×1×1 tile does not
/// fit (a buffer smaller than one kernel stack).
pub fn search_tiling(g: &ConvLayerGeom, capacity_elements: usize) -> Option<(Tiling, Traffic)> {
    let mut best: Option<(Tiling, Traffic)> = None;
    for &tm in &candidates(g.out_ch) {
        for &tn in &candidates(g.in_ch) {
            for &tr in &candidates(g.out_h()) {
                for &tc in &candidates(g.out_w()) {
                    let t = Tiling { tm, tn, tr, tc };
                    if t.footprint_elements(g.k, g.stride) > capacity_elements {
                        continue;
                    }
                    let traffic = dram_traffic(g, &t);
                    let better = match &best {
                        None => true,
                        Some((_, b)) => traffic.total() < b.total(),
                    };
                    if better {
                        best = Some((t, traffic));
                    }
                }
            }
        }
    }
    best
}

/// Minimum possible traffic (every operand moved exactly once) — the
/// infinite-buffer lower bound, used in tests and as the effective
/// traffic when a whole layer fits on chip.
pub fn compulsory_traffic(g: &ConvLayerGeom) -> Traffic {
    Traffic {
        input_reads: (g.in_ch * g.in_h * g.in_w) as u64,
        weight_reads: (g.out_ch * g.in_ch * g.k * g.k) as u64,
        output_writes: (g.out_ch * g.out_h() * g.out_w()) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_nn::zoo;

    fn geom(in_ch: usize, out_ch: usize, d: usize, k: usize, pad: usize) -> ConvLayerGeom {
        ConvLayerGeom {
            name: "t".into(),
            in_ch,
            out_ch,
            in_h: d,
            in_w: d,
            k,
            stride: 1,
            pad,
            pool: None,
        }
    }

    #[test]
    fn footprint_matches_hand_computation() {
        let t = Tiling {
            tm: 4,
            tn: 2,
            tr: 8,
            tc: 8,
        };
        // input: 2 * 10 * 10, weights: 4*2*9, output: 4*8*8
        assert_eq!(t.footprint_elements(3, 1), 200 + 72 + 256);
    }

    #[test]
    fn zero_extent_footprint_saturates_instead_of_underflowing() {
        // regression: `s*(tr-1)+k` underflowed for tr == 0 or tc == 0
        for t in [
            Tiling {
                tm: 4,
                tn: 2,
                tr: 0,
                tc: 8,
            },
            Tiling {
                tm: 4,
                tn: 2,
                tr: 8,
                tc: 0,
            },
            Tiling {
                tm: 0,
                tn: 0,
                tr: 0,
                tc: 0,
            },
        ] {
            assert_eq!(t.footprint_elements(3, 1), usize::MAX);
        }
        // and such a tile never passes a capacity check in the search
        let g = geom(8, 8, 16, 3, 1);
        let degenerate = Tiling {
            tm: 8,
            tn: 8,
            tr: 0,
            tc: 16,
        };
        assert!(degenerate.footprint_elements(g.k, g.stride) > usize::MAX / 2);
    }

    #[test]
    fn validate_flags_degenerate_and_oversized_tilings() {
        let g = geom(8, 8, 16, 3, 1);
        let zero = Tiling {
            tm: 8,
            tn: 8,
            tr: 0,
            tc: 16,
        };
        assert!(zero
            .validate(&g, 1 << 20)
            .iter()
            .any(|d| d.code == mlcnn_check::Code::ZeroTileExtent));
        let whole = Tiling {
            tm: 8,
            tn: 8,
            tr: g.out_h(),
            tc: g.out_w(),
        };
        assert!(whole
            .validate(&g, 16)
            .iter()
            .any(|d| d.code == mlcnn_check::Code::FootprintExceedsBuffer));
        assert!(whole.validate(&g, 1 << 20).is_empty());
    }

    #[test]
    fn whole_layer_tile_gives_compulsory_traffic() {
        let g = geom(4, 8, 16, 3, 1);
        let t = Tiling {
            tm: 8,
            tn: 4,
            tr: g.out_h(),
            tc: g.out_w(),
        };
        let traffic = dram_traffic(&g, &t);
        assert_eq!(traffic, compulsory_traffic(&g));
    }

    #[test]
    fn splitting_output_channels_rereads_inputs() {
        let g = geom(4, 8, 16, 3, 1);
        let whole = Tiling {
            tm: 8,
            tn: 4,
            tr: g.out_h(),
            tc: g.out_w(),
        };
        let halved = Tiling { tm: 4, ..whole };
        let a = dram_traffic(&g, &whole);
        let b = dram_traffic(&g, &halved);
        assert_eq!(b.input_reads, 2 * a.input_reads);
        assert_eq!(b.weight_reads, a.weight_reads);
        assert_eq!(b.output_writes, a.output_writes);
    }

    #[test]
    fn splitting_input_channels_costs_partial_sums() {
        let g = geom(4, 8, 16, 3, 1);
        let whole = Tiling {
            tm: 8,
            tn: 4,
            tr: g.out_h(),
            tc: g.out_w(),
        };
        let halved = Tiling { tn: 2, ..whole };
        let a = dram_traffic(&g, &whole);
        let b = dram_traffic(&g, &halved);
        // 2 input-channel tiles → partial sums written then read back once
        assert_eq!(b.output_writes, 3 * a.output_writes);
    }

    #[test]
    fn search_respects_capacity() {
        let g = geom(16, 32, 32, 3, 1);
        let cap = 4096;
        let (t, _) = search_tiling(&g, cap).expect("should fit");
        assert!(t.footprint_elements(g.k, g.stride) <= cap);
    }

    #[test]
    fn bigger_buffers_never_increase_traffic() {
        let g = geom(16, 32, 32, 3, 1);
        let mut prev = u64::MAX;
        for cap in [2048usize, 8192, 32768, 1 << 20] {
            let (_, traffic) = search_tiling(&g, cap).expect("fits");
            assert!(traffic.total() <= prev, "cap {cap}");
            prev = traffic.total();
        }
    }

    #[test]
    fn infinite_buffer_reaches_compulsory() {
        let g = geom(8, 8, 16, 3, 1);
        let (_, traffic) = search_tiling(&g, usize::MAX / 2).unwrap();
        assert_eq!(traffic, compulsory_traffic(&g));
    }

    #[test]
    fn tiny_buffer_fails_gracefully() {
        let g = geom(8, 8, 16, 3, 1);
        assert!(search_tiling(&g, 10).is_none());
    }

    #[test]
    fn vgg_layers_fit_the_134kb_budget_at_fp32() {
        // every VGG-16 layer must admit *some* tiling in 134kB/4B elements
        let cap = 134 * 1024 / 4;
        for g in &zoo::vgg16(10).convs {
            assert!(
                search_tiling(g, cap).is_some(),
                "{} does not fit any tiling",
                g.name
            );
        }
    }

    #[test]
    fn traffic_exceeds_compulsory_when_constrained() {
        let g = geom(64, 128, 32, 3, 1);
        let cap = 134 * 1024 / 4;
        let (_, constrained) = search_tiling(&g, cap).unwrap();
        assert!(constrained.total() >= compulsory_traffic(&g).total());
    }
}
