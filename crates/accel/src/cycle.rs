//! Per-layer cycle and energy model, and whole-model simulation
//! (the engine behind Figs. 13 and 15).
//!
//! ## Cycle model
//!
//! Each MAC slice retires one multiply–accumulate per cycle (the slice's
//! adder tree absorbs the accumulation); slices work on different output
//! channels of the same input stream. Extra additions — dense pooling in
//! the baseline, the AR unit's half additions and block-sum combines in
//! MLCNN — run on the AR adders (two per slice) concurrently with the MAC
//! pipeline. Off-chip transfers overlap compute through the multi-bank
//! buffer, so a layer costs
//!
//! ```text
//! cycles = max(mult_cycles, ar_add_cycles, dram_cycles)
//! ```
//!
//! Crucially, the AR unit computes its block-sum stream **once per input
//! pass**, shared by all slices consuming it (the paper's weight-input
//! reuse dataflow); only `⌈M / slices⌉` passes are needed, which is why
//! heavily-pooled layers (GoogLeNet's 8×8 final pool) become memory-bound
//! and gain far more than the 4× RME factor alone.
//!
//! ## Preprocessing traffic
//!
//! For fused layers, the preprocessing unit pair-adds adjacent outputs
//! before DRAM writeback (paper Fig. 9): a layer's output traffic halves
//! when its consumer is fused, and a fused layer's input traffic halves
//! when its producer ran on the accelerator.

use crate::config::AcceleratorConfig;
use crate::dataflow::{search_tiling, Traffic};
use crate::energy::{EnergyBreakdown, EnergyModel};
use mlcnn_core::opcount::{dense_layer_counts, mlcnn_layer_counts, OpCounts};
use mlcnn_core::reuse_sim::{simulate_row, ReuseMode};
use mlcnn_nn::zoo::{ConvLayerGeom, ModelDesc};
use serde::{Deserialize, Serialize};

/// Whether a layer runs the fused conv-pool datapath on a given machine.
pub fn runs_fused(g: &ConvLayerGeom, cfg: &AcceleratorConfig) -> bool {
    cfg.mlcnn_datapath
        && g.pool
            .map(|p| p.avg && p.window == p.stride)
            .unwrap_or(false)
}

/// Simulation result for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPerf {
    /// Layer label.
    pub name: String,
    /// Ran in fused conv-pool mode.
    pub fused: bool,
    /// Total cycles (max of the three resources).
    pub cycles: u64,
    /// MAC-limited cycles.
    pub mult_cycles: u64,
    /// AR-adder-limited cycles.
    pub add_cycles: u64,
    /// DRAM-limited cycles.
    pub mem_cycles: u64,
    /// Off-chip traffic in bytes.
    pub traffic_bytes: u64,
    /// Arithmetic ops (paper accounting, for Fig. 14 cross-checks).
    pub ops: OpCounts,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

/// Neighbour context for the preprocessing traffic adjustments.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerContext {
    /// This layer's input was produced on-accelerator by a preprocessing
    /// writeback (so it arrives as pre-added pairs).
    pub input_preprocessed: bool,
    /// This layer's consumer runs fused, so preprocessing halves the
    /// output writeback.
    pub output_preprocessed: bool,
}

/// Hardware-level extra additions per layer: the AR stream is computed
/// once per input pass and shared across slices.
fn hw_extra_adds(g: &ConvLayerGeom, cfg: &AcceleratorConfig, fused: bool) -> u64 {
    if fused {
        let p = g.pool.expect("fused layers have a pool").window;
        let padded = g.in_h + 2 * g.pad;
        let conv_h = g.out_h();
        let rows = if conv_h < p { 0 } else { (conv_h - p) / p + 1 } as u64;
        let passes = g.out_ch.div_ceil(cfg.mac_slices) as u64;
        let row = simulate_row(g.k, padded, g.stride, p, ReuseMode::Both);
        passes * g.in_ch as u64 * rows * row.block_adds
    } else {
        // dense machine: pooling additions (if any) on the addition units
        match g.pool {
            Some(p) if p.avg => {
                let ph = (g.out_h() - p.window) / p.stride + 1;
                let pw = (g.out_w() - p.window) / p.stride + 1;
                (ph * pw * g.out_ch) as u64 * (p.window * p.window - 1) as u64
            }
            _ => 0,
        }
    }
}

/// DRAM traffic for one layer on a machine, including pooling-aware
/// output sizing and preprocessing halvings.
fn layer_traffic(g: &ConvLayerGeom, cfg: &AcceleratorConfig, ctx: LayerContext) -> Traffic {
    let (t, mut traffic) = search_tiling(g, cfg.buffer_elements())
        .unwrap_or_else(|| panic!("layer {} fits no tiling in the buffer", g.name));
    debug_assert!(
        t.validate(g, cfg.buffer_elements())
            .iter()
            .all(|d| d.severity != mlcnn_check::Severity::Deny),
        "search_tiling returned a tiling the checker denies for {}",
        g.name
    );
    // both machines pool on-chip before writeback: outputs shrink by the
    // pooled fraction
    if let Some(p) = g.pool {
        let conv = (g.out_h() * g.out_w()) as u64;
        let ph = (g.out_h() - p.window) / p.stride + 1;
        let pw = (g.out_w() - p.window) / p.stride + 1;
        let pooled = (ph * pw) as u64;
        traffic.output_writes = traffic.output_writes * pooled / conv.max(1);
    }
    if ctx.input_preprocessed {
        traffic.input_reads /= 2;
    }
    if ctx.output_preprocessed {
        traffic.output_writes /= 2;
    }
    traffic
}

/// Panic with the checker's denials when a config is invalid; a broken
/// machine description would otherwise surface as a divide-by-zero or a
/// silently wrong cycle count deep in the model.
fn assert_config_valid(cfg: &AcceleratorConfig) {
    let denies = cfg.validate_errors();
    assert!(
        denies.is_empty(),
        "invalid accelerator config: {}",
        denies
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// Simulate one layer on a machine.
pub fn simulate_layer(
    g: &ConvLayerGeom,
    cfg: &AcceleratorConfig,
    energy_model: &EnergyModel,
    ctx: LayerContext,
) -> LayerPerf {
    assert_config_valid(cfg);
    let fused = runs_fused(g, cfg);
    let ops = if fused {
        mlcnn_layer_counts(g)
    } else {
        dense_layer_counts(g)
    };

    let mult_cycles = ops.mults.div_ceil(cfg.macs_per_cycle() as u64);
    let extra_adds = hw_extra_adds(g, cfg, fused);
    let add_cycles = extra_adds.div_ceil(cfg.ar_adds_per_cycle() as u64);

    let ctx = LayerContext {
        // only the MLCNN datapath has the preprocessing unit
        input_preprocessed: ctx.input_preprocessed && cfg.mlcnn_datapath,
        output_preprocessed: ctx.output_preprocessed && cfg.mlcnn_datapath,
    };
    let traffic = layer_traffic(g, cfg, ctx);
    let traffic_bytes = traffic.total() * cfg.precision.bytes() as u64;
    let mem_cycles = (traffic_bytes as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;

    let cycles = mult_cycles.max(add_cycles).max(mem_cycles).max(1);

    // energy: arithmetic from hardware ops, memories from bytes moved,
    // leakage from runtime.
    let mac_adds = ops.mults + extra_adds; // adder-tree adds pair the mults
    let mac_nj = (ops.mults as f64 * energy_model.mult(cfg.precision)
        + mac_adds as f64 * energy_model.add(cfg.precision))
        / 1000.0;
    // every multiply reads two operands from the buffer; AR adds read one
    // fresh operand each (the other comes from a register); outputs write
    // back once.
    let buffer_bytes =
        (2 * ops.mults + extra_adds + traffic.output_writes) as f64 * cfg.precision.bytes() as f64;
    let buffer_nj = buffer_bytes * energy_model.buffer_pj_per_byte / 1000.0;
    let dram_nj = traffic_bytes as f64 * energy_model.dram_pj_per_byte / 1000.0;
    let seconds = cycles as f64 / (cfg.freq_mhz * 1e6);
    let static_nj = energy_model.static_mw * 1e-3 * seconds * 1e9;

    LayerPerf {
        name: g.name.clone(),
        fused,
        cycles,
        mult_cycles,
        add_cycles,
        mem_cycles,
        traffic_bytes,
        ops,
        energy: EnergyBreakdown {
            dram_nj,
            buffer_nj,
            mac_nj,
            static_nj,
        },
    }
}

/// Whole-model simulation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelPerf {
    /// Model name.
    pub model: String,
    /// Machine name.
    pub machine: String,
    /// Per-layer results, conv layers in execution order.
    pub layers: Vec<LayerPerf>,
    /// Total cycles.
    pub total_cycles: u64,
    /// Total energy.
    pub total_energy: EnergyBreakdown,
}

impl ModelPerf {
    /// Layer result by name.
    pub fn layer(&self, name: &str) -> Option<&LayerPerf> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// The fused-capable layers (the bars of Figs. 13–15).
    pub fn fused_layers(&self) -> Vec<&LayerPerf> {
        self.layers.iter().filter(|l| l.fused).collect()
    }
}

/// Simulate every conv layer of a model on a machine.
pub fn simulate_model(
    model: &ModelDesc,
    cfg: &AcceleratorConfig,
    energy_model: &EnergyModel,
) -> ModelPerf {
    assert_config_valid(cfg);
    let fusable: Vec<bool> = model
        .convs
        .iter()
        .map(|g| {
            g.pool
                .map(|p| p.avg && p.window == p.stride)
                .unwrap_or(false)
        })
        .collect();
    let mut layers = Vec::with_capacity(model.convs.len());
    let mut total_cycles = 0u64;
    let mut total_energy = EnergyBreakdown::default();
    for (i, g) in model.convs.iter().enumerate() {
        let ctx = LayerContext {
            // input arrives pre-added when this layer is fused and its
            // producer also ran on the accelerator (any non-first layer)
            input_preprocessed: fusable[i] && i > 0,
            output_preprocessed: fusable.get(i + 1).copied().unwrap_or(false),
        };
        let perf = simulate_layer(g, cfg, energy_model, ctx);
        total_cycles += perf.cycles;
        total_energy.accumulate(&perf.energy);
        layers.push(perf);
    }
    ModelPerf {
        model: model.name.clone(),
        machine: cfg.name.clone(),
        layers,
        total_cycles,
        total_energy,
    }
}

/// Per-layer speedups of `fast` over `base` for the layers that run fused
/// on `fast` (the Fig. 13 bars).
pub fn fused_layer_speedups(base: &ModelPerf, fast: &ModelPerf) -> Vec<(String, f64)> {
    base.layers
        .iter()
        .zip(&fast.layers)
        .filter(|(_, f)| f.fused)
        .map(|(b, f)| (f.name.clone(), b.cycles as f64 / f.cycles as f64))
        .collect()
}

/// Geometric mean of the fused-layer speedups (the paper's headline
/// per-precision averages).
pub fn mean_speedup(base: &ModelPerf, fast: &ModelPerf) -> f64 {
    let s = fused_layer_speedups(base, fast);
    if s.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = s.iter().map(|(_, v)| v.ln()).sum();
    (log_sum / s.len() as f64).exp()
}

/// Per-layer energy-efficiency gains (base energy / fast energy) for the
/// fused layers (the Fig. 15 ratios).
pub fn fused_layer_energy_gains(base: &ModelPerf, fast: &ModelPerf) -> Vec<(String, f64)> {
    base.layers
        .iter()
        .zip(&fast.layers)
        .filter(|(_, f)| f.fused)
        .map(|(b, f)| (f.name.clone(), b.energy.total_nj() / f.energy.total_nj()))
        .collect()
}

/// Geometric-mean energy gain over the fused layers.
pub fn mean_energy_gain(base: &ModelPerf, fast: &ModelPerf) -> f64 {
    let s = fused_layer_energy_gains(base, fast);
    if s.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = s.iter().map(|(_, v)| v.ln()).sum();
    (log_sum / s.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_nn::zoo;

    fn sim(model: &ModelDesc, cfg: &AcceleratorConfig) -> ModelPerf {
        simulate_model(model, cfg, &EnergyModel::default())
    }

    #[test]
    fn mlcnn_fp32_beats_dcnn_on_every_fused_layer() {
        for model in zoo::evaluation_models(100) {
            let base = sim(&model, &AcceleratorConfig::dcnn_fp32());
            let fast = sim(&model, &AcceleratorConfig::mlcnn_fp32());
            for (name, s) in fused_layer_speedups(&base, &fast) {
                assert!(s > 1.0, "{}: {name} speedup {s}", model.name);
            }
        }
    }

    #[test]
    fn headline_fp32_speedup_is_in_the_paper_band() {
        // Paper: "MLCNN achieves about 3.2x performance improvement on
        // average for 32-bit floating point operations."
        let mut speedups = Vec::new();
        for model in zoo::evaluation_models(100) {
            let base = sim(&model, &AcceleratorConfig::dcnn_fp32());
            let fast = sim(&model, &AcceleratorConfig::mlcnn_fp32());
            speedups.extend(
                fused_layer_speedups(&base, &fast)
                    .into_iter()
                    .map(|(_, s)| s),
            );
        }
        let geo = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
        assert!(
            (2.0..5.0).contains(&geo),
            "average FP32 speedup {geo} out of the expected band"
        );
    }

    #[test]
    fn precision_scaling_orders_fp32_fp16_int8() {
        let model = zoo::vgg16(100);
        let base = sim(&model, &AcceleratorConfig::dcnn_fp32());
        let fp32 = mean_speedup(&base, &sim(&model, &AcceleratorConfig::mlcnn_fp32()));
        let fp16 = mean_speedup(&base, &sim(&model, &AcceleratorConfig::mlcnn_fp16()));
        let int8 = mean_speedup(&base, &sim(&model, &AcceleratorConfig::mlcnn_int8()));
        assert!(fp16 > fp32, "fp16 {fp16} vs fp32 {fp32}");
        assert!(int8 > fp16, "int8 {int8} vs fp16 {fp16}");
    }

    #[test]
    fn googlenet_final_pool_layers_gain_most() {
        // Paper: C9 (the 5b module feeding the 8x8 pool) has the highest
        // per-layer gain in GoogLeNet.
        let model = zoo::googlenet(100);
        let base = sim(&model, &AcceleratorConfig::dcnn_fp32());
        let fast = sim(&model, &AcceleratorConfig::mlcnn_fp32());
        let speedups = fused_layer_speedups(&base, &fast);
        let best = speedups
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(
            best.0.starts_with("i5b"),
            "best layer should be in the 5b module, got {best:?}"
        );
        assert!(best.1 > 4.0, "best GoogLeNet speedup {} too small", best.1);
    }

    #[test]
    fn energy_gains_track_speedups() {
        let model = zoo::lenet5(100);
        let base = sim(&model, &AcceleratorConfig::dcnn_fp32());
        let fast = sim(&model, &AcceleratorConfig::mlcnn_fp32());
        let e = mean_energy_gain(&base, &fast);
        assert!(e > 1.5, "energy gain {e}");
        // energy efficiency is in the same ballpark as the speedup
        let s = mean_speedup(&base, &fast);
        assert!(e > 0.4 * s && e < 2.5 * s, "energy {e} vs speedup {s}");
    }

    #[test]
    fn unfused_layers_match_between_machines_at_same_precision() {
        let model = zoo::vgg16(100);
        let fusable: Vec<bool> = model
            .convs
            .iter()
            .map(|g| g.pool.map(|p| p.avg).unwrap_or(false))
            .collect();
        let base = sim(&model, &AcceleratorConfig::dcnn_fp32());
        let fast = sim(&model, &AcceleratorConfig::mlcnn_fp32());
        for (i, (b, f)) in base.layers.iter().zip(&fast.layers).enumerate() {
            if !f.fused {
                // an unfused layer feeding a fused consumer still benefits
                // from the preprocessing writeback on the MLCNN machine;
                // away from fused neighbours the machines are identical.
                if fusable.get(i + 1).copied().unwrap_or(false) {
                    assert!(f.cycles <= b.cycles, "{}", b.name);
                } else {
                    assert_eq!(b.cycles, f.cycles, "{}", b.name);
                }
            }
        }
    }

    #[test]
    fn cycles_are_resource_maxima() {
        let model = zoo::lenet5(10);
        let perf = sim(&model, &AcceleratorConfig::mlcnn_fp32());
        for l in &perf.layers {
            assert_eq!(
                l.cycles,
                l.mult_cycles.max(l.add_cycles).max(l.mem_cycles).max(1),
                "{}",
                l.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid accelerator config")]
    fn simulating_on_a_broken_config_panics_with_diagnostics() {
        let mut cfg = AcceleratorConfig::mlcnn_fp32();
        cfg.mac_slices = 0;
        sim(&zoo::lenet5(10), &cfg);
    }

    #[test]
    fn energy_breakdown_components_all_positive() {
        let model = zoo::lenet5(10);
        let perf = sim(&model, &AcceleratorConfig::mlcnn_fp32());
        for l in &perf.layers {
            assert!(l.energy.dram_nj > 0.0, "{}", l.name);
            assert!(l.energy.buffer_nj > 0.0, "{}", l.name);
            assert!(l.energy.mac_nj > 0.0, "{}", l.name);
            assert!(l.energy.static_nj > 0.0, "{}", l.name);
        }
        assert!(perf.total_energy.total_nj() > 0.0);
    }

    #[test]
    fn int8_moves_fewer_bytes_than_fp32() {
        let model = zoo::vgg16(100);
        let a = sim(&model, &AcceleratorConfig::mlcnn_fp32());
        let b = sim(&model, &AcceleratorConfig::mlcnn_int8());
        assert!(b.layers[0].traffic_bytes < a.layers[0].traffic_bytes);
    }

    #[test]
    fn preprocessing_halves_fused_chain_traffic() {
        // LeNet C2 is fused and follows fused C1: its input reads halve on
        // the MLCNN machine relative to a machine without the datapath.
        let model = zoo::lenet5(10);
        let g = &model.convs[1];
        let em = EnergyModel::default();
        let with = simulate_layer(
            g,
            &AcceleratorConfig::mlcnn_fp32(),
            &em,
            LayerContext {
                input_preprocessed: true,
                output_preprocessed: false,
            },
        );
        let without = simulate_layer(
            g,
            &AcceleratorConfig::mlcnn_fp32(),
            &em,
            LayerContext::default(),
        );
        assert!(with.traffic_bytes < without.traffic_bytes);
    }
}
