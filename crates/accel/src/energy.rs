//! Energy model (the reproduction's CACTI substitute).
//!
//! Coefficients are 45 nm-class numbers in the spirit of Horowitz's
//! ISSCC'14 survey: arithmetic energy scales steeply with operand width,
//! SRAM access costs a few pJ per byte, DRAM two orders of magnitude
//! more, and leakage burns a fixed power for as long as the layer runs.
//! Absolute joules are not the reproduction target — the DRAM/Buffer/MAC
//! *breakdown* and the MLCNN-vs-DCNN ratios of Fig. 15 are.

use mlcnn_quant::Precision;
use serde::{Deserialize, Serialize};

/// Per-operation and per-byte energy coefficients (picojoules).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Multiply energy per op (pJ) at FP32/FP16/INT8.
    pub mult_pj: [f64; 3],
    /// Add energy per op (pJ) at FP32/FP16/INT8.
    pub add_pj: [f64; 3],
    /// On-chip buffer access energy per byte (pJ/B).
    pub buffer_pj_per_byte: f64,
    /// DRAM access energy per byte (pJ/B).
    pub dram_pj_per_byte: f64,
    /// Static (leakage) power in mW for the 1.52 mm² die.
    pub static_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            // Horowitz ISSCC'14 45nm: FP32 mult 3.7pJ / add 0.9pJ;
            // FP16 mult 1.1pJ / add 0.4pJ; INT8 mult 0.2pJ / add 0.03pJ.
            mult_pj: [3.7, 1.1, 0.2],
            add_pj: [0.9, 0.4, 0.03],
            // 134kB-class multi-bank SRAM: ~6pJ per byte accessed.
            buffer_pj_per_byte: 6.0,
            // DDR3-class: ~150pJ per byte.
            dram_pj_per_byte: 150.0,
            static_mw: 40.0,
        }
    }
}

fn prec_idx(p: Precision) -> usize {
    match p {
        Precision::Fp32 => 0,
        Precision::Fp16 => 1,
        Precision::Int8 => 2,
    }
}

impl EnergyModel {
    /// Multiply energy at a precision (pJ/op).
    pub fn mult(&self, p: Precision) -> f64 {
        self.mult_pj[prec_idx(p)]
    }

    /// Add energy at a precision (pJ/op).
    pub fn add(&self, p: Precision) -> f64 {
        self.add_pj[prec_idx(p)]
    }
}

/// The Fig. 15 energy breakdown, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Off-chip DRAM access energy.
    pub dram_nj: f64,
    /// On-chip buffer access energy.
    pub buffer_nj: f64,
    /// Arithmetic (MAC + AR) energy.
    pub mac_nj: f64,
    /// Leakage energy over the layer's runtime.
    pub static_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy (nJ).
    pub fn total_nj(&self) -> f64 {
        self.dram_nj + self.buffer_nj + self.mac_nj + self.static_nj
    }

    /// Accumulate another breakdown.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.dram_nj += other.dram_nj;
        self.buffer_nj += other.buffer_nj;
        self.mac_nj += other.mac_nj;
        self.static_nj += other.static_nj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrower_precision_is_cheaper_per_op() {
        let m = EnergyModel::default();
        assert!(m.mult(Precision::Fp32) > m.mult(Precision::Fp16));
        assert!(m.mult(Precision::Fp16) > m.mult(Precision::Int8));
        assert!(m.add(Precision::Fp32) > m.add(Precision::Int8));
    }

    #[test]
    fn dram_dominates_buffer_per_byte() {
        let m = EnergyModel::default();
        assert!(m.dram_pj_per_byte > 10.0 * m.buffer_pj_per_byte);
    }

    #[test]
    fn breakdown_totals_and_accumulates() {
        let mut a = EnergyBreakdown {
            dram_nj: 1.0,
            buffer_nj: 2.0,
            mac_nj: 3.0,
            static_nj: 4.0,
        };
        assert_eq!(a.total_nj(), 10.0);
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.total_nj(), 20.0);
    }

    #[test]
    fn multiplication_costs_more_than_addition() {
        let m = EnergyModel::default();
        for p in Precision::ALL {
            assert!(m.mult(p) > m.add(p), "{p}");
        }
    }
}
