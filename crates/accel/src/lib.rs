//! # mlcnn-accel
//!
//! Accelerator-level cycle and energy model of the MLCNN accelerator
//! (paper Section VI) and its dense-CNN baseline — the reproduction's
//! substitute for the authors' Verilog RTL + Design Compiler + CACTI +
//! Vivado toolchain (see DESIGN.md §2 for the substitution argument).
//!
//! * [`config`] — the Table VII accelerator configurations: one fixed
//!   1.52 mm² / 134 kB budget, MAC-slice counts scaling with operand
//!   precision (32 at FP32, 64 at FP16, 128 at INT8).
//! * [`energy`] — per-operation, per-byte and static energy coefficients
//!   (45 nm-class published numbers) and the DRAM/Buffer/MAC breakdown of
//!   Fig. 15.
//! * [`dataflow`] — the weight-input-reuse dataflow with loop tiling
//!   `⟨Tm,Tn,Tr,Tc⟩` (Section VI "Dataflow Design"): buffer footprint,
//!   DRAM-traffic accounting, and tiling search under the on-chip budget.
//! * [`components`] — cycle-steppable functional models of the
//!   microarchitecture: FIFOs, shift registers, the addition-reuse (AR)
//!   unit, MAC slices and the preprocessing unit, validated against the
//!   fused kernel of `mlcnn-core`.
//! * [`cycle`] — the per-layer cycle model combining compute throughput
//!   (MAC slices + AR adders) with memory time, and the whole-model
//!   simulation producing Figs. 13 and 15.
//! * [`trace`] — tile-level double-buffered schedule simulation that
//!   validates the cycle model's compute/memory-overlap assumption.
//! * [`area`] — the Design Compiler stand-in: per-component area
//!   coefficients showing every Table VII machine fits the one 1.52 mm²
//!   budget (quadratic multiplier scaling is what makes the slice-count
//!   trade free).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod components;
pub mod config;
pub mod cycle;
pub mod dataflow;
pub mod energy;
pub mod trace;

pub use config::AcceleratorConfig;
pub use cycle::{simulate_layer, simulate_model, LayerPerf, ModelPerf};
pub use energy::EnergyBreakdown;
