//! Area model — the reproduction's stand-in for the paper's Design
//! Compiler synthesis (45 nm TSMC).
//!
//! Table VII's defining constraint is *equal area*: the DCNN baseline and
//! all three MLCNN precisions occupy the same 1.52 mm², with narrower
//! operands buying proportionally more MAC slices. This module makes that
//! constraint explicit: per-component area coefficients (45 nm-class
//! literature values for multipliers, adders and SRAM macros), a die
//! budget, and the derivation showing each Table VII machine fits it.
//!
//! A multiplier's area grows roughly quadratically with operand width
//! (partial-product array), an adder's linearly, SRAM with capacity.
//! With the paper's slice counts the arithmetic area is then
//! approximately constant across precisions — which is exactly why the
//! paper could quadruple the INT8 slice count for free.

use crate::config::AcceleratorConfig;
use mlcnn_quant::Precision;
use serde::{Deserialize, Serialize};

/// Per-component area coefficients (µm², 45 nm-class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Multiplier area per (operand bit)² — partial-product array scaling.
    pub mult_um2_per_bit2: f64,
    /// Adder area per operand bit.
    pub add_um2_per_bit: f64,
    /// Register area per bit (shift registers, weight registers).
    pub reg_um2_per_bit: f64,
    /// FIFO overhead per slice (control + pointers), fixed.
    pub fifo_um2: f64,
    /// SRAM area per kB (6T bitcell macro + periphery).
    pub sram_um2_per_kb: f64,
    /// Fixed controller/preprocessing/NoC overhead for the die.
    pub overhead_um2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            // a 32x32 multiplier ≈ 12k µm² at 45 nm → ~11.7 per bit².
            mult_um2_per_bit2: 11.7,
            // a 32-bit adder ≈ 0.4k µm² → ~12.5 per bit.
            add_um2_per_bit: 12.5,
            reg_um2_per_bit: 4.0,
            fifo_um2: 450.0,
            // ~2.4 µm²/bit SRAM macro → ≈19.7k µm² per kB.
            sram_um2_per_kb: 2400.0,
            overhead_um2: 120_000.0,
        }
    }
}

/// Area breakdown of one accelerator configuration (mm²).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// MAC slices (multipliers + adder trees + weight registers).
    pub mac_mm2: f64,
    /// AR units (adders + registers + FIFOs).
    pub ar_mm2: f64,
    /// On-chip SRAM buffers.
    pub sram_mm2: f64,
    /// Controller / preprocessing / interconnect overhead.
    pub overhead_mm2: f64,
}

impl AreaBreakdown {
    /// Total die area.
    pub fn total_mm2(&self) -> f64 {
        self.mac_mm2 + self.ar_mm2 + self.sram_mm2 + self.overhead_mm2
    }
}

/// Area of one MAC slice at a precision (µm²): one multiplier, an
/// adder-tree stage, and a weight register file.
pub fn slice_area_um2(model: &AreaModel, p: Precision) -> f64 {
    let bits = p.bits() as f64;
    let mult = model.mult_um2_per_bit2 * bits * bits;
    // adder tree: ~2 adders' worth per slice at operand width
    let adders = 2.0 * model.add_um2_per_bit * bits;
    // 16 weight registers per slice
    let regs = 16.0 * model.reg_um2_per_bit * bits;
    mult + adders + regs
}

/// Full-die breakdown for a configuration.
pub fn die_area(model: &AreaModel, cfg: &AcceleratorConfig) -> AreaBreakdown {
    let bits = cfg.precision.bits() as f64;
    let mac_um2 = cfg.mac_slices as f64 * slice_area_um2(model, cfg.precision);
    let ar_um2 = if cfg.mlcnn_datapath {
        cfg.mac_slices as f64
            * (cfg.ar_adders_per_slice as f64 * model.add_um2_per_bit * bits
                + 4.0 * model.reg_um2_per_bit * bits
                + model.fifo_um2)
    } else {
        0.0
    };
    let sram_um2 = cfg.buffer_kb as f64 * model.sram_um2_per_kb;
    AreaBreakdown {
        mac_mm2: mac_um2 / 1e6,
        ar_mm2: ar_um2 / 1e6,
        sram_mm2: sram_um2 / 1e6,
        overhead_mm2: model.overhead_um2 / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_multiplier_scaling_makes_slice_trades_free() {
        // halving operand width quarters the multiplier: 2x the slices at
        // FP16 (4x at INT8) keep the multiplier area budget roughly flat.
        let m = AreaModel::default();
        let fp32 = slice_area_um2(&m, Precision::Fp32);
        let fp16 = slice_area_um2(&m, Precision::Fp16);
        let int8 = slice_area_um2(&m, Precision::Int8);
        assert!(fp16 < 0.5 * fp32, "fp16 slice {fp16} vs fp32 {fp32}");
        assert!(int8 < 0.25 * fp32, "int8 slice {int8} vs fp32 {fp32}");
    }

    #[test]
    fn every_table7_machine_fits_the_budget() {
        let m = AreaModel::default();
        for cfg in AcceleratorConfig::table7() {
            let a = die_area(&m, &cfg);
            assert!(
                a.total_mm2() <= cfg.area_mm2 * 1.02,
                "{}: {:.3} mm² exceeds the {:.2} mm² budget ({a:?})",
                cfg.name,
                a.total_mm2(),
                cfg.area_mm2
            );
            // and none is absurdly under-budget either (the budget is the
            // binding constraint of the design): ≥ 40% utilization
            assert!(
                a.total_mm2() >= 0.4 * cfg.area_mm2,
                "{}: only {:.3} mm² used",
                cfg.name,
                a.total_mm2()
            );
        }
    }

    #[test]
    fn equal_area_across_precisions_within_tolerance() {
        // the Table VII claim: all four machines occupy ~the same silicon
        let m = AreaModel::default();
        let areas: Vec<f64> = AcceleratorConfig::table7()
            .iter()
            .map(|c| die_area(&m, c).total_mm2())
            .collect();
        let max = areas.iter().cloned().fold(f64::MIN, f64::max);
        let min = areas.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 1.35,
            "areas should be near-equal across Table VII: {areas:?}"
        );
    }

    #[test]
    fn sram_is_a_fixed_big_slice_of_the_die() {
        let m = AreaModel::default();
        let a = die_area(&m, &AcceleratorConfig::mlcnn_fp32());
        assert!(a.sram_mm2 > 0.2, "134kB of SRAM is not free: {a:?}");
        // identical across machines (same 134kB)
        let b = die_area(&m, &AcceleratorConfig::mlcnn_int8());
        assert_eq!(a.sram_mm2, b.sram_mm2);
    }

    #[test]
    fn dcnn_baseline_has_no_ar_area() {
        let m = AreaModel::default();
        let a = die_area(&m, &AcceleratorConfig::dcnn_fp32());
        assert_eq!(a.ar_mm2, 0.0);
        let b = die_area(&m, &AcceleratorConfig::mlcnn_fp32());
        assert!(b.ar_mm2 > 0.0);
    }
}
