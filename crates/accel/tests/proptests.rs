//! Property tests for the accelerator model: invariants of the tiling
//! search, the cycle model and the traced schedules across randomized
//! layer geometries.

use mlcnn_accel::config::AcceleratorConfig;
use mlcnn_accel::cycle::{simulate_layer, LayerContext};
use mlcnn_accel::dataflow::{compulsory_traffic, dram_traffic, search_tiling, Tiling};
use mlcnn_accel::energy::EnergyModel;
use mlcnn_accel::trace::trace_layer;
use mlcnn_nn::zoo::{ConvLayerGeom, PoolAfter};
use proptest::prelude::*;

fn arb_geom() -> impl Strategy<Value = ConvLayerGeom> {
    (
        1usize..32,
        1usize..32,
        2usize..5,
        0usize..2,
        3usize..7,
        any::<bool>(),
    )
        .prop_map(|(in_ch, out_ch, k, pad, half_d, pooled)| {
            let d = 2 * half_d + k; // ensure a pooled output exists
            ConvLayerGeom {
                name: "p".into(),
                in_ch,
                out_ch,
                in_h: d,
                in_w: d,
                k,
                stride: 1,
                pad,
                pool: pooled.then_some(PoolAfter::avg2()),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tiling_search_never_beats_compulsory(g in arb_geom()) {
        let cap = AcceleratorConfig::mlcnn_fp32().buffer_elements();
        if let Some((t, traffic)) = search_tiling(&g, cap) {
            prop_assert!(t.footprint_elements(g.k, g.stride) <= cap);
            prop_assert!(traffic.total() >= compulsory_traffic(&g).total());
            prop_assert_eq!(traffic, dram_traffic(&g, &t));
        }
    }

    #[test]
    fn mlcnn_machine_never_slower_on_any_layer(g in arb_geom()) {
        let em = EnergyModel::default();
        let base = simulate_layer(&g, &AcceleratorConfig::dcnn_fp32(), &em, LayerContext::default());
        let fast = simulate_layer(&g, &AcceleratorConfig::mlcnn_fp32(), &em, LayerContext::default());
        prop_assert!(fast.cycles <= base.cycles, "{:?}: {} > {}", g, fast.cycles, base.cycles);
        prop_assert!(fast.energy.total_nj() <= base.energy.total_nj() * 1.001);
    }

    #[test]
    fn narrower_precision_never_slower(g in arb_geom()) {
        let em = EnergyModel::default();
        let fp32 = simulate_layer(&g, &AcceleratorConfig::mlcnn_fp32(), &em, LayerContext::default());
        let fp16 = simulate_layer(&g, &AcceleratorConfig::mlcnn_fp16(), &em, LayerContext::default());
        let int8 = simulate_layer(&g, &AcceleratorConfig::mlcnn_int8(), &em, LayerContext::default());
        prop_assert!(fp16.cycles <= fp32.cycles);
        prop_assert!(int8.cycles <= fp16.cycles);
    }

    #[test]
    fn preprocessing_never_increases_traffic(g in arb_geom()) {
        let em = EnergyModel::default();
        let cfg = AcceleratorConfig::mlcnn_fp32();
        let plain = simulate_layer(&g, &cfg, &em, LayerContext::default());
        let pre = simulate_layer(
            &g,
            &cfg,
            &em,
            LayerContext { input_preprocessed: true, output_preprocessed: true },
        );
        prop_assert!(pre.traffic_bytes <= plain.traffic_bytes);
        prop_assert!(pre.cycles <= plain.cycles);
    }

    #[test]
    fn traced_makespan_within_resource_bounds(g in arb_geom()) {
        let cfg = AcceleratorConfig::mlcnn_fp32();
        prop_assume!(search_tiling(&g, cfg.buffer_elements()).is_some());
        let (tiling, _) = search_tiling(&g, cfg.buffer_elements()).unwrap();
        let trace = trace_layer(&g, &cfg, &tiling);
        let lower = trace.compute_busy.max(trace.dram_busy);
        prop_assert!(trace.makespan >= lower);
        prop_assert!(trace.makespan <= trace.compute_busy + trace.dram_busy + 10);
    }

    #[test]
    fn forced_small_tilings_respect_traffic_model(g in arb_geom(), tm in 1usize..8, tn in 1usize..8) {
        let t = Tiling { tm, tn, tr: g.out_h().max(1), tc: g.out_w().max(1) };
        let traffic = dram_traffic(&g, &t);
        // splitting channels only ever adds traffic
        let whole = Tiling { tm: g.out_ch, tn: g.in_ch, tr: g.out_h(), tc: g.out_w() };
        prop_assert!(traffic.total() >= dram_traffic(&g, &whole).total());
    }
}
