//! End-to-end contract of the event-driven transport, in-process:
//! hundreds of multiplexed, pipelined connections against a
//! [`NetServer`] must lose nothing, duplicate nothing, answer in
//! order, and return bitwise the same tensors the plan computes —
//! including when the client pipelines far beyond the server's
//! per-connection cap (backpressure, not failure), when peers go
//! silent (idle reaping), when they speak garbage (connection close),
//! and when they arrive beyond the admission cap (dropped at the
//! door, budget respected).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlcnn_core::Workspace;
use mlcnn_net::{run_mux, MuxOptions, NetConfig, NetServer};
use mlcnn_quant::Precision;
use mlcnn_serve::{find_model, Client, NamedService, ServeConfig, Service};
use mlcnn_tensor::{init, Shape4, Tensor};

const MODEL: &str = "mlp-mini";

fn inputs_and_expected(n: usize) -> (Vec<Tensor<f32>>, Vec<Tensor<f32>>) {
    let model = find_model(MODEL).unwrap();
    let plan = model.compile(Precision::Fp32).unwrap();
    let mut ws = Workspace::for_plan(&plan, 1);
    let mut inputs = Vec::with_capacity(n);
    let mut expected = Vec::with_capacity(n);
    for seed in 0..n as u64 {
        let x = init::uniform(
            Shape4::new(1, model.input.c, model.input.h, model.input.w),
            -1.0,
            1.0,
            &mut init::rng(500 + seed),
        );
        expected.push(plan.forward(&x, &mut ws).unwrap());
        inputs.push(x);
    }
    (inputs, expected)
}

fn spawn_server(cfg: NetConfig, queue: usize) -> NetServer {
    let model = find_model(MODEL).unwrap();
    let plan = Arc::new(model.compile(Precision::Fp32).unwrap());
    let svc = Service::spawn(
        plan,
        ServeConfig::default()
            .with_batching(16, Duration::from_micros(200))
            .with_queue(queue),
    )
    .unwrap();
    let backend = Arc::new(NamedService::new(MODEL, svc));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    NetServer::spawn(listener, backend, cfg).unwrap()
}

/// The headline: 200 pipelined connections, every response present,
/// ordered, attributed, and bitwise equal to the plan's output.
#[test]
fn mux_load_round_trips_clean_with_parity() {
    let server = spawn_server(
        NetConfig::default()
            .with_shards(2)
            .with_queue_capacity(4096),
        4096,
    );
    let (inputs, expected) = inputs_and_expected(4);

    let mut opts = MuxOptions::new(MODEL, inputs);
    opts.expected = Some(expected);
    opts.connections = 200;
    opts.threads = 3;
    opts.pipeline = 4;
    opts.requests_per_conn = 8;
    let report = run_mux(server.local_addr(), &opts).unwrap();

    assert!(report.clean(), "dirty run: {report:?}");
    assert_eq!(report.sent, 200 * 8);
    assert_eq!(report.received, 200 * 8);
    server.shutdown();
}

/// A client pipelining far past the server's per-connection cap gets
/// backpressured (reads pause, the TCP window closes), not errored:
/// the run still finishes clean.
#[test]
fn pipelining_beyond_server_cap_is_backpressured_not_lossy() {
    let cfg = NetConfig::default()
        .with_max_pipeline(4)
        .with_queue_capacity(4096);
    let server = spawn_server(cfg, 4096);
    let (inputs, expected) = inputs_and_expected(2);

    let mut opts = MuxOptions::new(MODEL, inputs);
    opts.expected = Some(expected);
    opts.connections = 16;
    opts.threads = 2;
    opts.pipeline = 32; // 8x the server's cap
    opts.requests_per_conn = 64;
    let report = run_mux(server.local_addr(), &opts).unwrap();

    assert!(report.clean(), "dirty run: {report:?}");
    assert_eq!(report.received, 16 * 64);
    server.shutdown();
}

/// The blocking `mlcnn_serve::Client` speaks to the event-driven
/// transport unchanged: inference, metrics, and the error path for an
/// unknown model all behave as on the threads transport.
#[test]
fn blocking_client_interops_with_event_driven_server() {
    let server = spawn_server(NetConfig::default(), 256);
    let (inputs, expected) = inputs_and_expected(1);

    let mut client = Client::connect(server.local_addr()).unwrap();
    let out = client.infer_model(MODEL, inputs[0].clone()).unwrap();
    assert_eq!(out, expected[0], "bitwise parity over the blocking client");

    let metrics = client.metrics_json().unwrap();
    assert!(
        metrics.contains("\"submitted\""),
        "unexpected metrics: {metrics}"
    );

    let err = client
        .infer_model("resnet18", inputs[0].clone())
        .unwrap_err();
    assert!(
        err.to_string().contains("resnet18"),
        "unknown-model error should name the model: {err}"
    );
    // the error was a wire-level response, not a teardown: same
    // connection keeps working
    let again = client.infer_model(MODEL, inputs[0].clone()).unwrap();
    assert_eq!(again, expected[0]);
    server.shutdown();
}

/// Connections beyond `max_connections` are dropped at the door and
/// the admitted population never exceeds the budget.
#[test]
fn admission_cap_drops_excess_connections() {
    let cfg = NetConfig::default()
        .with_max_connections(2)
        .with_idle_timeout(Duration::from_secs(60));
    let server = spawn_server(cfg, 256);

    let mut sockets = Vec::new();
    for _ in 0..6 {
        sockets.push(TcpStream::connect(server.local_addr()).unwrap());
    }
    // give the acceptor time to deal (and drop) them all
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.open_connections() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(100));
    let open = server.open_connections();
    assert!(open <= 2, "admission cap breached: {open} connections open");

    // at least 6 - 2 sockets must observe the drop as EOF/reset
    let mut rejected = 0;
    for mut s in sockets {
        s.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut byte = [0u8; 1];
        match s.read(&mut byte) {
            Ok(0) | Err(_) => rejected += 1, // EOF or reset/timeout
            Ok(_) => panic!("server sent unsolicited data"),
        }
    }
    assert!(rejected >= 4, "only {rejected} of 4+ rejections observed");
    server.shutdown();
}

/// A connection that goes silent past the idle timeout is reaped; one
/// mid-frame (torn prefix buffered) is NOT — it may still be sending.
#[test]
fn idle_connections_are_reaped_but_mid_frame_ones_are_not() {
    let cfg = NetConfig::default().with_idle_timeout(Duration::from_millis(150));
    let server = spawn_server(cfg, 256);

    let idle = TcpStream::connect(server.local_addr()).unwrap();
    let mut mid_frame = TcpStream::connect(server.local_addr()).unwrap();
    // half a length prefix: clearly inside a frame
    mid_frame.write_all(&[0x00, 0x00]).unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.open_connections() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.open_connections(), 2, "both connections admitted");

    // past the idle timeout the silent one goes; the mid-frame one stays
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.open_connections() > 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        server.open_connections(),
        1,
        "idle connection was not reaped"
    );
    drop(idle);
    drop(mid_frame);
    server.shutdown();
}

/// Garbage on the wire (an oversized length announcement) closes that
/// connection — and only that connection.
#[test]
fn malformed_frames_close_only_their_connection() {
    let server = spawn_server(NetConfig::default(), 256);
    let (inputs, expected) = inputs_and_expected(1);

    let mut bad = TcpStream::connect(server.local_addr()).unwrap();
    bad.write_all(&u32::MAX.to_be_bytes()).unwrap(); // 4 GiB frame claim
    bad.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut byte = [0u8; 1];
    match bad.read(&mut byte) {
        Ok(0) | Err(_) => {} // closed, as required
        Ok(_) => panic!("server answered a malformed frame"),
    }

    // a well-behaved neighbour is unaffected
    let mut client = Client::connect(server.local_addr()).unwrap();
    let out = client.infer_model(MODEL, inputs[0].clone()).unwrap();
    assert_eq!(out, expected[0]);
    server.shutdown();
}

/// `NetServer::spawn` is gated by the deny-mode `N0xx` lints: a config
/// the checker rejects never starts a thread.
#[test]
fn spawn_refuses_lint_denied_configs() {
    let model = find_model(MODEL).unwrap();
    let plan = Arc::new(model.compile(Precision::Fp32).unwrap());
    let svc = Service::spawn(plan, ServeConfig::default()).unwrap();
    let backend = Arc::new(NamedService::new(MODEL, svc));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();

    let err = NetServer::spawn(listener, backend, NetConfig::default().with_shards(0))
        .expect_err("zero shards must be refused");
    assert!(err.to_string().contains("N001"), "want N001 in: {err}");
}
