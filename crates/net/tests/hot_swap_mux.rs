//! The hot-swap contract on the event-driven transport: publishing and
//! rolling back a revision under concurrent multiplexed load loses
//! zero requests, and every response is bitwise attributable to
//! exactly one revision — never a blend, never a third thing. The
//! `Router` is wired under [`NetServer`] exactly as under the blocking
//! transport, so this is the proof that hot-swap and revision
//! attribution survived the transport change.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use mlcnn_core::{ExecutionPlan, PlanOptions, Workspace};
use mlcnn_net::{run_mux, MuxOptions, NetConfig, NetServer};
use mlcnn_nn::spec::build_network;
use mlcnn_quant::Precision;
use mlcnn_registry::{Artifact, ModelRegistry};
use mlcnn_serve::{find_model, Client, Router, ServeConfig};
use mlcnn_tensor::{init, Shape4, Tensor};

const MODEL: &str = "mlp-mini";
const SEED_REV1: u64 = 41;
const SEED_REV2: u64 = 42;

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("mlcnn-netswap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn pack(dir: &std::path::Path, revision: u64, seed: u64) {
    let zoo = find_model(MODEL).unwrap();
    let mut net = build_network(&zoo.specs, zoo.input, seed).unwrap();
    let artifact = Artifact {
        model: MODEL.to_string(),
        revision,
        specs: zoo.specs.clone(),
        input: zoo.input,
        precision: Precision::Fp32,
        params: net.export_params(),
    };
    std::fs::write(dir.join(artifact.file_name()), artifact.encode().unwrap()).unwrap();
}

fn reference(seed: u64, input: &Tensor<f32>) -> Tensor<f32> {
    let zoo = find_model(MODEL).unwrap();
    let mut net = build_network(&zoo.specs, zoo.input, seed).unwrap();
    let params = net.export_params();
    let plan = ExecutionPlan::compile(
        &zoo.specs,
        &params,
        zoo.input,
        PlanOptions::default().with_precision(Precision::Fp32),
    )
    .unwrap();
    let mut ws = Workspace::new();
    plan.forward(input, &mut ws).unwrap()
}

fn fixed_input() -> Tensor<f32> {
    let shape = find_model(MODEL).unwrap().input;
    init::uniform(
        Shape4::new(1, shape.c, shape.h, shape.w),
        -1.0,
        1.0,
        &mut init::rng(11),
    )
}

/// Two-revision registry, revision 1 active, served over the
/// event-driven transport.
fn server_on_rev1(scratch: &Scratch) -> NetServer {
    pack(&scratch.0, 1, SEED_REV1);
    pack(&scratch.0, 2, SEED_REV2);
    let registry = ModelRegistry::open(&scratch.0).unwrap();
    registry.publish(MODEL, 1).unwrap(); // open() activated rev 2 (highest)
    let cfg = ServeConfig::default()
        .with_batching(16, Duration::from_micros(200))
        .with_queue(4096);
    let router = Arc::new(Router::new(Arc::new(registry), cfg).unwrap());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    NetServer::spawn(
        listener,
        router,
        NetConfig::default()
            .with_shards(2)
            .with_queue_capacity(4096),
    )
    .unwrap()
}

fn mux_against(server: &NetServer, input: &Tensor<f32>, expected: Option<&Tensor<f32>>) {
    let mut opts = MuxOptions::new(MODEL, vec![input.clone()]);
    opts.expected = expected.map(|e| vec![e.clone()]);
    opts.connections = 64;
    opts.threads = 2;
    opts.pipeline = 4;
    opts.requests_per_conn = 8;
    let report = run_mux(server.local_addr(), &opts).unwrap();
    assert!(report.clean(), "dirty mux run: {report:?}");
}

#[test]
fn hot_swap_under_mux_load_loses_nothing_and_attributes_bitwise() {
    let scratch = Scratch::new("underload");
    let server = server_on_rev1(&scratch);
    let input = fixed_input();
    let ref1 = reference(SEED_REV1, &input);
    let ref2 = reference(SEED_REV2, &input);
    assert_ne!(ref1, ref2, "revisions must be distinguishable");

    // before the swap: every multiplexed response is bitwise rev 1
    mux_against(&server, &input, Some(&ref1));

    // during: heavy multiplexed load with the wire publish landing in
    // the middle; blocking clients audit attribution the whole time
    let addr = server.local_addr();
    let (mut from_rev1, mut from_rev2) = (0usize, 0usize);
    std::thread::scope(|s| {
        // volume: pipelined mux load across the swap — transport-level
        // cleanliness (zero lost, zero reordered, zero duplicated)
        let mux = s.spawn(|| {
            let mut opts = MuxOptions::new(MODEL, vec![input.clone()]);
            opts.connections = 64;
            opts.threads = 2;
            opts.pipeline = 4;
            opts.requests_per_conn = 24;
            run_mux(addr, &opts).unwrap()
        });

        // audit: every response must equal exactly one reference
        let mut auditors = Vec::new();
        for _ in 0..3 {
            let input = input.clone();
            let (ref1, ref2) = (&ref1, &ref2);
            auditors.push(s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut counts = (0usize, 0usize);
                for _ in 0..60 {
                    let out = client.infer_model(MODEL, input.clone()).unwrap();
                    if &out == ref1 {
                        counts.0 += 1;
                    } else if &out == ref2 {
                        counts.1 += 1;
                    } else {
                        panic!("response matches neither revision bitwise");
                    }
                }
                counts
            }));
        }

        // the swap, as a wire frame, mid-load
        std::thread::sleep(Duration::from_millis(15));
        let mut admin = Client::connect(addr).unwrap();
        assert_eq!(admin.publish(MODEL, 2).unwrap(), (2, 1));

        let report = mux.join().unwrap();
        assert!(report.clean(), "swap dirtied the mux run: {report:?}");
        assert_eq!(report.received, 64 * 24);
        for a in auditors {
            let (r1, r2) = a.join().unwrap();
            from_rev1 += r1;
            from_rev2 += r2;
        }
    });
    assert_eq!(from_rev1 + from_rev2, 3 * 60, "every audit answered once");

    // strictly after the publish returned, only rev 2 answers
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.infer_model(MODEL, input.clone()).unwrap(), ref2);
    mux_against(&server, &input, Some(&ref2));

    // rollback over the wire restores rev 1 bitwise, still under mux
    let mut admin = Client::connect(addr).unwrap();
    assert_eq!(admin.rollback(MODEL).unwrap(), (1, 2));
    mux_against(&server, &input, Some(&ref1));

    server.shutdown();
}

/// Admin frames for unknown models/revisions come back as wire errors
/// on the event-driven transport without disturbing the connection.
#[test]
fn admin_errors_are_wire_errors_not_teardowns() {
    let scratch = Scratch::new("guards");
    let server = server_on_rev1(&scratch);
    let input = fixed_input();
    let ref1 = reference(SEED_REV1, &input);

    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client.publish(MODEL, 9).unwrap_err();
    assert!(err.to_string().contains("revision 9"), "{err}");
    let err = client.publish("resnet18", 1).unwrap_err();
    assert!(err.to_string().contains("resnet18"), "{err}");

    // same connection still serves and rev 1 is untouched
    assert_eq!(client.infer_model(MODEL, input).unwrap(), ref1);
    server.shutdown();
}
