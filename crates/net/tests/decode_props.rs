//! The incremental decoder's defining property: for any sequence of
//! frames and ANY way TCP segments their bytes, [`FrameDecoder`]
//! yields exactly the frames the blocking [`read_frame`] reader does —
//! same frames, same order, bitwise-equal payloads — and ends at a
//! clean boundary. Torn tails are never misreported as frames.

use std::io::Cursor;

use mlcnn_net::FrameDecoder;
use mlcnn_serve::{read_frame, Frame};
use mlcnn_tensor::{init, Shape4};
use proptest::prelude::*;

/// A deterministic mixed-kind frame sequence: the request kinds a
/// server-side decoder sees plus the response kinds a client-side
/// decoder sees, with tensors large enough that splits land inside
/// payloads, not just headers.
fn frame_sequence(seed: u8, n: usize) -> Vec<Frame> {
    let mut rng = init::rng(0xF00D ^ seed as u64);
    (0..n)
        .map(|i| {
            let id = (seed as u64) << 32 | i as u64;
            match (seed as usize + i) % 6 {
                0 => Frame::MetricsRequest { id },
                1 => Frame::InferRequest {
                    id,
                    model: "mlp-mini".into(),
                    input: init::uniform(Shape4::new(1, 2, 5, 5), -1.0, 1.0, &mut rng),
                },
                2 => Frame::InferOk {
                    id,
                    output: init::uniform(Shape4::new(1, 1, 1, 10), -1.0, 1.0, &mut rng),
                },
                3 => Frame::PublishRequest {
                    id,
                    model: "mlp-mini".into(),
                    revision: i as u64 + 1,
                },
                4 => Frame::Error {
                    id,
                    message: format!("queue full ({i})"),
                },
                _ => Frame::RollbackRequest {
                    id,
                    model: "vgg-nano".into(),
                },
            }
        })
        .collect()
}

fn encode_all(frames: &[Frame]) -> Vec<u8> {
    let mut wire = Vec::new();
    for f in frames {
        wire.extend_from_slice(&f.encode().unwrap());
    }
    wire
}

/// What the blocking reader makes of `wire`, reading to EOF.
fn blocking_decode(wire: &[u8]) -> Vec<Frame> {
    let mut cursor = Cursor::new(wire);
    let mut out = Vec::new();
    while let Some(f) = read_frame(&mut cursor).unwrap() {
        out.push(f);
    }
    out
}

/// Feed `wire` to an incremental decoder in segments whose lengths are
/// drawn from `cuts` (cycled), draining after every segment like the
/// reactor does after every `read`.
fn incremental_decode(wire: &[u8], cuts: &[usize]) -> (Vec<Frame>, bool) {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut off = 0;
    let mut c = 0;
    while off < wire.len() {
        let step = cuts[c % cuts.len()].clamp(1, wire.len() - off);
        c += 1;
        dec.extend(&wire[off..off + step]);
        off += step;
        while let Some(f) = dec.next().unwrap() {
            out.push(f);
        }
    }
    (out, dec.is_at_boundary())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary segmentation is invisible: the incremental decoder and
    /// the blocking reader agree bitwise on any frame sequence.
    #[test]
    fn arbitrary_splits_match_blocking_reader(
        seed in any::<u8>(),
        n in 1usize..8,
        cuts in proptest::collection::vec(1usize..512, 1..12),
    ) {
        let frames = frame_sequence(seed, n);
        let wire = encode_all(&frames);
        let want = blocking_decode(&wire);
        prop_assert_eq!(&want, &frames, "blocking reader is the fixture");
        let (got, at_boundary) = incremental_decode(&wire, &cuts);
        prop_assert_eq!(got, want);
        prop_assert!(at_boundary, "all bytes consumed must mean boundary");
    }

    /// Byte-at-a-time is the worst-case segmentation and must still match.
    #[test]
    fn byte_at_a_time_matches_blocking_reader(seed in any::<u8>(), n in 1usize..5) {
        let frames = frame_sequence(seed, n);
        let wire = encode_all(&frames);
        let (got, at_boundary) = incremental_decode(&wire, &[1]);
        prop_assert_eq!(got, frames);
        prop_assert!(at_boundary);
    }

    /// Cutting the stream anywhere strictly inside the last frame leaves
    /// the decoder off-boundary with the preceding frames fully decoded
    /// — a torn tail is detectable (EOF there closes the connection) and
    /// never surfaces as a frame.
    #[test]
    fn torn_tail_is_off_boundary_and_yields_no_frame(
        seed in any::<u8>(),
        n in 1usize..6,
        cut_sel in any::<u64>(),
        chunk in 1usize..256,
    ) {
        let frames = frame_sequence(seed, n);
        let wire = encode_all(&frames);
        let last_len = frames.last().unwrap().encode().unwrap().len();
        let body_start = wire.len() - last_len;
        // a cut strictly inside the final frame: [body_start+1, wire.len()-1]
        let at = body_start + 1 + (cut_sel as usize) % (last_len - 1);
        let (got, at_boundary) = incremental_decode(&wire[..at], &[chunk]);
        prop_assert_eq!(got, frames[..n - 1].to_vec());
        prop_assert!(!at_boundary, "torn tail must not look like a clean close");
    }
}
