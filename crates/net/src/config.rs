//! Event-driven front-end configuration, gated by the `N0xx` lints.

use mlcnn_check::NetConfigLint;
use mlcnn_serve::ServeError;
use std::time::Duration;

/// Configuration for [`crate::NetServer`]: reactor sharding, connection
/// admission, per-connection pipelining, and timeouts.
///
/// Like [`mlcnn_serve::ServeConfig`], construction is cheap and
/// validation happens at [`crate::NetServer::spawn`] via the
/// `mlcnn-check` `N0xx` lints in deny mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Reactor (event-loop) thread count. Connections are distributed
    /// round-robin across shards by the acceptor.
    pub shards: usize,
    /// Global cap on concurrently open connections; the acceptor drops
    /// sockets beyond it.
    pub max_connections: usize,
    /// Most in-flight pipelined requests one connection may hold; past
    /// it the connection's reads pause (backpressure) until responses
    /// drain.
    pub max_pipeline: usize,
    /// Connections idle (no read/write progress, nothing in flight) for
    /// longer than this are closed by the reactor's sweep.
    pub idle_timeout: Duration,
    /// Write-buffer high-watermark in bytes; a connection whose
    /// unflushed responses exceed it has its reads paused.
    pub write_buffer_limit: usize,
    /// The backend service's submission-queue capacity, as a hint for
    /// the `N006` pipeline-vs-queue lint (`0` = unknown, check skipped).
    pub queue_capacity: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            shards: std::thread::available_parallelism().map_or(1, |n| n.get()),
            max_connections: 16_384,
            max_pipeline: 64,
            idle_timeout: Duration::from_secs(60),
            write_buffer_limit: 1 << 20,
            queue_capacity: 0,
        }
    }
}

impl NetConfig {
    /// Builder-style shard override.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style connection-cap override.
    #[must_use]
    pub fn with_max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap;
        self
    }

    /// Builder-style pipeline-depth override.
    #[must_use]
    pub fn with_max_pipeline(mut self, depth: usize) -> Self {
        self.max_pipeline = depth;
        self
    }

    /// Builder-style idle-timeout override.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Builder-style queue-capacity hint (enables the `N006` lint).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// The raw-scalar lint view of this config.
    pub fn lint(&self, name: &str) -> NetConfigLint {
        NetConfigLint {
            name: name.to_string(),
            shards: self.shards,
            available_parallelism: std::thread::available_parallelism().map_or(0, |n| n.get()),
            max_connections: self.max_connections,
            max_pipeline: self.max_pipeline,
            queue_capacity: self.queue_capacity,
            idle_timeout_millis: self.idle_timeout.as_millis().min(u64::MAX as u128) as u64,
            write_buffer_limit: self.write_buffer_limit,
        }
    }

    /// Deny-mode `N0xx` gate; [`crate::NetServer::spawn`] refuses a
    /// config this rejects, exactly as `Service::spawn` refuses `V0xx`
    /// denials.
    pub fn validate(&self, name: &str) -> Result<(), ServeError> {
        mlcnn_check::check_net_config_summary(&self.lint(name)).map_err(ServeError::Config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_passes_the_gate() {
        assert!(NetConfig::default().validate("mlcnn-net").is_ok());
    }

    #[test]
    fn zero_shards_is_refused_with_the_n_code() {
        let cfg = NetConfig::default().with_shards(0);
        let err = cfg.validate("mlcnn-net").unwrap_err().to_string();
        assert!(err.contains("N001"), "{err}");
    }

    #[test]
    fn pipeline_deeper_than_queue_hint_warns_but_passes() {
        // N006 is warn-severity: suspicious, not fatal
        let cfg = NetConfig::default()
            .with_max_pipeline(512)
            .with_queue_capacity(256);
        assert!(cfg.validate("mlcnn-net").is_ok());
    }
}
