//! Incremental frame decoding for nonblocking sockets.
//!
//! The blocking [`mlcnn_serve::read_frame`] owns its stream and can
//! simply block until a whole frame arrives. A reactor cannot: TCP
//! hands it arbitrary segments — half a length prefix, three frames
//! back-to-back, a frame split down the middle of a tensor — and the
//! decoder must consume whatever arrived and report frames only once
//! complete. [`FrameDecoder`] is that accumulator; the property tests
//! in `tests/decode_props.rs` prove it byte-identical to `read_frame`
//! across arbitrary split points.

use mlcnn_serve::{Frame, MAX_FRAME_BYTES};
use std::io;

/// How far the consumed prefix may grow before the buffer is compacted
/// (memmove of the live tail). Large enough to amortize, small enough
/// that an idle connection does not pin megabytes.
const COMPACT_THRESHOLD: usize = 64 << 10;

/// Accumulates bytes from a nonblocking socket and yields complete
/// [`Frame`]s, preserving partial ones across reads.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// Empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by [`FrameDecoder::next`] —
    /// a torn prefix, an incomplete body, or whole frames not yet
    /// pulled.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte fed in has been consumed as complete
    /// frames; an EOF here is a *clean* close, anywhere else it tore a
    /// frame.
    pub fn is_at_boundary(&self) -> bool {
        self.pending() == 0
    }

    /// Try to decode the next complete frame. `Ok(None)` means more
    /// bytes are needed (no state is consumed); errors are fatal to the
    /// connection (oversized announcement, malformed body). Not an
    /// `Iterator`: `Ok(None)` means *not yet*, not exhausted.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> io::Result<Option<Frame>> {
        let avail = self.pending();
        if avail < 4 {
            self.maybe_compact();
            return Ok(None);
        }
        let len = u32::from_be_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4-byte slice"),
        ) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("announced frame of {len} bytes"),
            ));
        }
        if avail < 4 + len {
            self.maybe_compact();
            return Ok(None);
        }
        let frame = Frame::decode_body(&self.buf[self.pos + 4..self.pos + 4 + len])?;
        self.pos += 4 + len;
        self.maybe_compact();
        Ok(Some(frame))
    }

    fn maybe_compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_tensor::{init, Shape4};

    fn frames() -> Vec<Frame> {
        vec![
            Frame::MetricsRequest { id: 1 },
            Frame::InferRequest {
                id: 2,
                model: "lenet5".into(),
                input: init::uniform(Shape4::new(1, 3, 4, 4), -1.0, 1.0, &mut init::rng(9)),
            },
            Frame::Error {
                id: 3,
                message: "boom".into(),
            },
        ]
    }

    #[test]
    fn byte_at_a_time_reassembly_matches() {
        let want = frames();
        let mut wire = Vec::new();
        for f in &want {
            wire.extend_from_slice(&f.encode().unwrap());
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &wire {
            dec.extend(&[b]);
            while let Some(f) = dec.next().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, want);
        assert!(dec.is_at_boundary());
    }

    #[test]
    fn back_to_back_frames_in_one_segment_all_emerge() {
        let want = frames();
        let mut wire = Vec::new();
        for f in &want {
            wire.extend_from_slice(&f.encode().unwrap());
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        let mut got = Vec::new();
        while let Some(f) = dec.next().unwrap() {
            got.push(f);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn torn_prefix_is_not_a_frame_and_not_a_boundary() {
        let wire = Frame::MetricsRequest { id: 5 }.encode().unwrap();
        let mut dec = FrameDecoder::new();
        dec.extend(&wire[..3]);
        assert!(dec.next().unwrap().is_none());
        assert!(!dec.is_at_boundary());
        dec.extend(&wire[3..]);
        assert_eq!(dec.next().unwrap(), Some(Frame::MetricsRequest { id: 5 }));
        assert!(dec.is_at_boundary());
    }

    #[test]
    fn oversized_announcement_is_fatal() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME_BYTES as u32 + 1).to_be_bytes());
        assert!(dec.next().is_err());
    }

    #[test]
    fn long_runs_stay_compacted() {
        let wire = Frame::MetricsRequest { id: 1 }.encode().unwrap();
        let mut dec = FrameDecoder::new();
        for _ in 0..50_000 {
            dec.extend(&wire);
            assert!(dec.next().unwrap().is_some());
        }
        // the consumed prefix must not grow without bound
        assert!(dec.buf.len() < 2 * COMPACT_THRESHOLD);
    }
}
