//! Per-connection state machine for the event-driven transport.
//!
//! ```text
//!           readable                    completion wake
//!              │                              │
//!              ▼                              ▼
//!  socket ─► FrameDecoder ─► slots: [Waiting|Ready|Waiting|…] ─► wbuf ─► socket
//!              ▲                     (FIFO; emit only from the front)
//!              │
//!   reads PAUSE when slots ≥ max_pipeline or wbuf ≥ high-watermark
//! ```
//!
//! Every inbound frame pushes exactly one slot: an inference request
//! becomes `Waiting` (holding the service [`Ticket`]); everything that
//! resolves immediately — metrics, admin, submission errors — becomes
//! `Ready` with the encoded response. Responses are emitted strictly
//! from the queue front, so a connection's replies always arrive in
//! request order, even when the micro-batcher completes them out of
//! order.
//!
//! Backpressure is genuine: when a connection is paused, newly arrived
//! bytes stay *undecoded* in the [`FrameDecoder`] (and eventually in
//! the kernel socket buffer, shrinking the peer's TCP window), so a
//! pipelining client physically cannot run the service queue over by
//! more than `max_pipeline` per connection.

use crate::decode::FrameDecoder;
use mlcnn_serve::{CompletionNotify, Dispatch, Frame, ServeError, SloSpec, Ticket};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// Per-read scratch size; level-triggered polling re-reports sockets
/// with more than this pending, so a modest chunk keeps shards fair.
const READ_CHUNK: usize = 16 << 10;

/// When the flushed prefix of the write buffer grows past this, the
/// live tail is memmoved down (same policy as the decoder).
const WBUF_COMPACT: usize = 64 << 10;

/// One response slot, FIFO-ordered with its connection's requests.
enum Slot {
    /// An in-flight inference; the ticket resolves on a worker thread
    /// and the reactor polls it after a completion wake.
    Waiting { id: u64, ticket: Ticket },
    /// A fully encoded response, waiting for its turn on the wire.
    Ready(Vec<u8>),
}

/// What the shard shares with every connection it drives.
pub(crate) struct ShardCtx {
    /// The request backend (single service or router).
    pub backend: Arc<dyn Dispatch>,
    /// Completion hook handed to every submission; `tag` is the
    /// connection's slab index.
    pub notify: Arc<dyn CompletionNotify>,
    /// Pipelining depth past which reads pause.
    pub max_pipeline: usize,
    /// Unflushed-response bytes past which reads pause.
    pub write_buffer_limit: usize,
}

/// Verdict after driving a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Advance {
    /// Keep the connection registered.
    Keep,
    /// Drop it (clean close or error); the caller owns deregistration.
    Close,
}

/// One live client connection owned by a reactor shard.
pub(crate) struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    slots: VecDeque<Slot>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Peer closed its write half: no further requests; flush and close.
    eof: bool,
    /// Last read/write progress or completion, for the idle sweep.
    pub(crate) last_activity: Instant,
    /// Interest bits currently registered with the poll
    /// (readable, writable), to skip redundant `epoll_ctl`s.
    pub(crate) registered: (bool, bool),
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            slots: VecDeque::new(),
            wbuf: Vec::new(),
            wpos: 0,
            eof: false,
            last_activity: Instant::now(),
            registered: (false, false),
        }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    fn unflushed(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Reads pause while the connection holds a full pipeline or an
    /// over-watermark write buffer.
    fn paused(&self, ctx: &ShardCtx) -> bool {
        self.slots.len() >= ctx.max_pipeline || self.unflushed() >= ctx.write_buffer_limit
    }

    /// The readiness this connection currently needs from the poll.
    pub(crate) fn wants(&self, ctx: &ShardCtx) -> (bool, bool) {
        (!self.eof && !self.paused(ctx), self.unflushed() > 0)
    }

    /// Idle means nothing buffered in either direction and nothing in
    /// flight — a connection parked between requests. In-flight work
    /// (however slow the service is) never counts as idle.
    pub(crate) fn is_idle(&self) -> bool {
        self.slots.is_empty() && self.unflushed() == 0 && self.decoder.is_at_boundary()
    }

    /// Drain the socket's readable bytes into the decoder and process
    /// any complete frames, respecting backpressure.
    pub(crate) fn on_readable(&mut self, ctx: &ShardCtx, token: u64) -> Advance {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            // stop pulling bytes off the socket once paused; the kernel
            // buffer (and the peer's TCP window) absorbs the rest
            if self.paused(ctx) {
                break;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.last_activity = Instant::now();
                    self.decoder.extend(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Advance::Close,
            }
        }
        if self.eof && !self.decoder.is_at_boundary() {
            // torn frame at EOF: protocol violation, nothing to flush for
            return Advance::Close;
        }
        self.drive(ctx, token)
    }

    /// A completion wake for this connection: poll the waiting slots
    /// (any of them may have resolved — the batcher completes out of
    /// order) and push whatever became ready toward the wire.
    pub(crate) fn on_completion(&mut self, ctx: &ShardCtx, token: u64) -> Advance {
        let mut progressed = false;
        for slot in &mut self.slots {
            if let Slot::Waiting { id, ticket } = slot {
                if let Some(result) = ticket.poll() {
                    let frame = match result {
                        Ok(output) => Frame::InferOk { id: *id, output },
                        Err(e) => Frame::Error {
                            id: *id,
                            message: e.to_string(),
                        },
                    };
                    *slot = Slot::Ready(encode_or_close(&frame));
                    progressed = true;
                }
            }
        }
        if progressed {
            self.last_activity = Instant::now();
        }
        self.drive(ctx, token)
    }

    /// Writable readiness: flush, then re-drive (draining the write
    /// buffer may unpause reads whose bytes already sit in the decoder).
    pub(crate) fn on_writable(&mut self, ctx: &ShardCtx, token: u64) -> Advance {
        self.drive(ctx, token)
    }

    /// The one pump: decode → submit → emit → flush, looping while any
    /// stage makes progress, so state never stalls waiting for a
    /// readiness edge that level-triggered polling will not deliver
    /// (e.g. bytes parked in the decoder after an unpause).
    fn drive(&mut self, ctx: &ShardCtx, token: u64) -> Advance {
        loop {
            let decoded = match self.process_frames(ctx, token) {
                Ok(n) => n,
                Err(_) => return Advance::Close,
            };
            let emitted = self.emit_ready();
            match self.flush() {
                Ok(()) => {}
                Err(_) => return Advance::Close,
            }
            if decoded == 0 && emitted == 0 {
                break;
            }
        }
        if self.eof && self.slots.is_empty() && self.unflushed() == 0 {
            return Advance::Close;
        }
        Advance::Keep
    }

    /// Decode complete frames (up to the pipeline/watermark limits) and
    /// turn each into exactly one slot. Returns how many were consumed.
    fn process_frames(&mut self, ctx: &ShardCtx, token: u64) -> io::Result<usize> {
        let mut consumed = 0;
        while !self.paused(ctx) {
            let Some(frame) = self.decoder.next()? else {
                break;
            };
            consumed += 1;
            let slot = match frame {
                Frame::InferRequest { id, model, input } => {
                    match ctx
                        .backend
                        .submit_notified(&model, input, Arc::clone(&ctx.notify), token)
                    {
                        Ok(ticket) => Slot::Waiting { id, ticket },
                        Err(e) => Slot::Ready(encode_or_close(&Frame::Error {
                            id,
                            message: e.to_string(),
                        })),
                    }
                }
                Frame::InferSloRequest {
                    id,
                    model,
                    class,
                    budget_micros,
                    input,
                } => {
                    let spec = SloSpec::from_wire(class, budget_micros);
                    match ctx.backend.submit_slo(
                        &model,
                        input,
                        spec,
                        Some((Arc::clone(&ctx.notify), token)),
                    ) {
                        Ok(ticket) => Slot::Waiting { id, ticket },
                        Err(e) => Slot::Ready(encode_or_close(&Frame::Error {
                            id,
                            message: e.to_string(),
                        })),
                    }
                }
                Frame::MetricsRequest { id } => Slot::Ready(encode_or_close(&Frame::MetricsOk {
                    id,
                    json: ctx.backend.metrics_json(),
                })),
                Frame::PublishRequest {
                    id,
                    model,
                    revision,
                } => Slot::Ready(admin_response(
                    id,
                    model.clone(),
                    ctx.backend.publish(&model, revision),
                )),
                Frame::RollbackRequest { id, model } => Slot::Ready(admin_response(
                    id,
                    model.clone(),
                    ctx.backend.rollback(&model),
                )),
                other => Slot::Ready(encode_or_close(&Frame::Error {
                    id: other.id(),
                    message: "clients may only send request frames".into(),
                })),
            };
            self.slots.push_back(slot);
        }
        Ok(consumed)
    }

    /// Move the leading run of `Ready` slots into the write buffer —
    /// never past a `Waiting` one, which is what keeps responses in
    /// request order.
    fn emit_ready(&mut self) -> usize {
        let mut emitted = 0;
        while let Some(Slot::Ready(bytes)) = self.slots.front() {
            self.wbuf.extend_from_slice(bytes);
            self.slots.pop_front();
            emitted += 1;
        }
        emitted
    }

    /// Nonblocking flush of the write buffer.
    fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.wpos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos >= WBUF_COMPACT {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }
}

/// Encode a response frame; an unencodable response (a tensor the wire
/// cannot carry) degrades to a wire error so the slot still resolves.
fn encode_or_close(frame: &Frame) -> Vec<u8> {
    frame.encode().unwrap_or_else(|e| {
        Frame::Error {
            id: frame.id(),
            message: format!("response not encodable: {e}"),
        }
        .encode()
        .expect("error frames always encode")
    })
}

fn admin_response(id: u64, model: String, result: Result<(u64, u64), ServeError>) -> Vec<u8> {
    encode_or_close(&match result {
        Ok((active, previous)) => Frame::AdminOk {
            id,
            model,
            active,
            previous,
        },
        Err(e) => Frame::Error {
            id,
            message: e.to_string(),
        },
    })
}
