//! Reactor shards: one event-loop thread per shard, each owning its
//! own `epoll` instance, connection slab, and waker.
//!
//! A shard hears about work three ways:
//!
//! * **socket readiness** — its poll reports a connection readable,
//!   writable, or broken;
//! * **new connections** — the acceptor pushes accepted sockets into
//!   the shard's inbox and fires its waker;
//! * **completions** — a service worker finished a request; the
//!   [`CompletionNotify`] hook pushes the connection's slab index into
//!   the inbox and fires the waker, and the shard polls that
//!   connection's waiting tickets. The event loop therefore *never*
//!   blocks on a ticket — inference latency costs a wake, not a
//!   parked reactor.

use crate::config::NetConfig;
use crate::conn::{Advance, Conn, ShardCtx};
use minimio::{Events, Interest, Poll, Token, Waker};
use mlcnn_serve::{CompletionNotify, Dispatch};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The shard waker's token; connection tokens are slab indices, which
/// can never reach this.
const WAKER_TOKEN: usize = usize::MAX;

/// Cross-thread mailbox into one shard.
pub(crate) struct Inbox {
    /// Sockets the acceptor handed over, awaiting registration.
    pub incoming: Mutex<Vec<TcpStream>>,
    /// Slab indices of connections with newly completed requests.
    pub completed: Mutex<Vec<usize>>,
    /// Set (then waker fired) to make the shard drop everything and exit.
    pub shutdown: AtomicBool,
}

/// Worker-side completion hook: record which connection completed and
/// wake the shard. Runs on the service worker threads, so it does the
/// minimum — one short lock, one eventfd write.
struct ShardNotify {
    inbox: Arc<Inbox>,
    waker: Arc<Waker>,
}

impl CompletionNotify for ShardNotify {
    fn completed(&self, tag: u64) {
        self.inbox
            .completed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(tag as usize);
        let _ = self.waker.wake();
    }
}

/// A running reactor shard, as seen from the acceptor/server side.
pub(crate) struct Shard {
    pub inbox: Arc<Inbox>,
    pub waker: Arc<Waker>,
    pub handle: JoinHandle<()>,
}

/// Spawn one shard thread. `conn_count` is the server-global open
/// connection counter (incremented by the acceptor on accept,
/// decremented here on close).
pub(crate) fn spawn_shard(
    shard_idx: usize,
    backend: Arc<dyn Dispatch>,
    cfg: &NetConfig,
    conn_count: Arc<AtomicUsize>,
) -> io::Result<Shard> {
    let poll = Poll::new()?;
    let waker = Arc::new(Waker::new(&poll, Token(WAKER_TOKEN))?);
    let inbox = Arc::new(Inbox {
        incoming: Mutex::new(Vec::new()),
        completed: Mutex::new(Vec::new()),
        shutdown: AtomicBool::new(false),
    });
    let ctx = ShardCtx {
        backend,
        notify: Arc::new(ShardNotify {
            inbox: Arc::clone(&inbox),
            waker: Arc::clone(&waker),
        }),
        max_pipeline: cfg.max_pipeline,
        write_buffer_limit: cfg.write_buffer_limit,
    };
    let idle_timeout = cfg.idle_timeout;
    let handle = {
        let inbox = Arc::clone(&inbox);
        let waker = Arc::clone(&waker);
        std::thread::Builder::new()
            .name(format!("mlcnn-net-shard-{shard_idx}"))
            .spawn(move || shard_loop(&poll, &waker, &inbox, &ctx, idle_timeout, &conn_count))?
    };
    Ok(Shard {
        inbox,
        waker,
        handle,
    })
}

struct Slab {
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
}

impl Slab {
    fn insert(&mut self, conn: Conn) -> usize {
        match self.free.pop() {
            Some(idx) => {
                self.conns[idx] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        }
    }

    fn close(&mut self, poll: &Poll, idx: usize, conn_count: &AtomicUsize) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) {
            let _ = poll.deregister(conn.stream());
            self.free.push(idx);
            conn_count.fetch_sub(1, Ordering::AcqRel);
            // dropping the Conn closes the socket and abandons any
            // waiting tickets (workers find the channel closed)
        }
    }
}

fn shard_loop(
    poll: &Poll,
    waker: &Waker,
    inbox: &Inbox,
    ctx: &ShardCtx,
    idle_timeout: Duration,
    conn_count: &AtomicUsize,
) {
    let mut events = Events::with_capacity(1024);
    let mut slab = Slab {
        conns: Vec::new(),
        free: Vec::new(),
    };
    // Sweep a few times per timeout so reaping lags by at most ~25%;
    // the wait timeout is bounded so shutdown and sweeps stay timely.
    let sweep_every = (idle_timeout / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
    let wait_timeout = sweep_every.min(Duration::from_millis(500));
    let mut last_sweep = Instant::now();

    loop {
        if poll.wait(&mut events, Some(wait_timeout)).is_err() {
            // a broken epoll fd is unrecoverable for this shard
            break;
        }
        if inbox.shutdown.load(Ordering::Acquire) {
            break;
        }

        for ev in events.iter() {
            let Token(idx) = ev.token();
            if idx == WAKER_TOKEN {
                let _ = waker.drain();
                continue;
            }
            let Some(conn) = slab.conns.get_mut(idx).and_then(Option::as_mut) else {
                continue; // closed earlier in this batch
            };
            let verdict = if ev.is_error() {
                Advance::Close
            } else {
                let mut v = Advance::Keep;
                if ev.is_readable() {
                    v = conn.on_readable(ctx, idx as u64);
                }
                if v == Advance::Keep && ev.is_writable() {
                    v = conn.on_writable(ctx, idx as u64);
                }
                v
            };
            settle(poll, &mut slab, idx, verdict, ctx, conn_count);
        }

        // completions: poll exactly the connections that were notified
        let completed =
            std::mem::take(&mut *inbox.completed.lock().unwrap_or_else(|e| e.into_inner()));
        for idx in completed {
            let Some(conn) = slab.conns.get_mut(idx).and_then(Option::as_mut) else {
                continue; // completed after its connection went away
            };
            let verdict = conn.on_completion(ctx, idx as u64);
            settle(poll, &mut slab, idx, verdict, ctx, conn_count);
        }

        // adoptions: register sockets the acceptor handed over
        let incoming =
            std::mem::take(&mut *inbox.incoming.lock().unwrap_or_else(|e| e.into_inner()));
        for stream in incoming {
            let idx = slab.insert(Conn::new(stream));
            let conn = slab.conns[idx].as_mut().expect("just inserted");
            if poll
                .register(conn.stream(), Token(idx), Interest::READABLE)
                .is_err()
            {
                slab.conns[idx] = None;
                slab.free.push(idx);
                conn_count.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            conn.registered = (true, false);
        }

        if last_sweep.elapsed() >= sweep_every {
            last_sweep = Instant::now();
            for idx in 0..slab.conns.len() {
                let reap = slab.conns[idx]
                    .as_ref()
                    .is_some_and(|c| c.is_idle() && c.last_activity.elapsed() >= idle_timeout);
                if reap {
                    slab.close(poll, idx, conn_count);
                }
            }
        }
    }

    // shutdown (or fatal poll error): drop every connection
    for idx in 0..slab.conns.len() {
        slab.close(poll, idx, conn_count);
    }
}

/// Apply a connection's verdict: close it, or bring its poll
/// registration in line with what it now wants.
fn settle(
    poll: &Poll,
    slab: &mut Slab,
    idx: usize,
    verdict: Advance,
    ctx: &ShardCtx,
    conn_count: &AtomicUsize,
) {
    if verdict == Advance::Close {
        slab.close(poll, idx, conn_count);
        return;
    }
    let Some(conn) = slab.conns.get_mut(idx).and_then(Option::as_mut) else {
        return;
    };
    let want = conn.wants(ctx);
    if want == conn.registered {
        return;
    }
    let interest = match want {
        (true, true) => Interest::READABLE.add(Interest::WRITABLE),
        (true, false) => Interest::READABLE,
        (false, true) => Interest::WRITABLE,
        // fully backpressured: park on errors/hangups only until a
        // completion wake changes the picture
        (false, false) => Interest::NONE,
    };
    if poll.reregister(conn.stream(), Token(idx), interest).is_ok() {
        conn.registered = want;
    } else {
        slab.close(poll, idx, conn_count);
    }
}
