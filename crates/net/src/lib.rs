//! `mlcnn-net` — event-driven, sharded network layer for MLCNN
//! serving.
//!
//! The blocking front-end in [`mlcnn_serve::net`] spends two OS
//! threads per connection, which caps a server at a few thousand
//! sockets. This crate replaces it as the default transport with a
//! readiness-based design over the vendored `minimio` epoll wrapper:
//!
//! ```text
//!            accept()                round-robin
//! clients ──► acceptor thread ──────┬───────────┬─────────…
//!                                   ▼           ▼
//!                              shard 0      shard 1        (epoll each)
//!                            ┌─────────┐  ┌─────────┐
//!                            │ conn conn│  │ conn conn│    state machines:
//!                            │ conn …  │  │ conn …  │     decode → slots → wbuf
//!                            └────┬────┘  └────┬────┘
//!                                 │ submit_notified
//!                                 ▼
//!                      Dispatch (Service / Router)
//!                                 │ CompletionNotify ──► shard waker
//! ```
//!
//! * **Per-connection state machines** (`conn`): an incremental
//!   [`FrameDecoder`] reassembles the length-prefixed wire protocol
//!   across arbitrary TCP segmentation; a FIFO slot queue keeps
//!   pipelined responses in request order; a write buffer with a
//!   high-watermark and a pipeline cap give real backpressure.
//! * **No blocked reactors**: inference completions arrive via
//!   [`mlcnn_serve::CompletionNotify`] — the worker pushes the
//!   connection's token into the shard's inbox and fires its
//!   `eventfd` waker; the reactor then *polls* the resolved tickets.
//! * **Routing unchanged**: the backend is any
//!   [`mlcnn_serve::Dispatch`], so `Router` hot-swap and revision
//!   attribution hold on this transport exactly as on the blocking
//!   one (which remains available as a parity oracle behind
//!   `mlcnn-served --transport threads`).
//! * **Gated construction**: [`NetServer::spawn`] refuses configs the
//!   `mlcnn-check` `N0xx` lints deny, the way `Service::spawn` is
//!   gated by `V0xx`.
//! * **A multiplexing client** ([`client`]): tens of thousands of
//!   concurrent connections from a handful of threads, with order,
//!   correlation-id, and bitwise-parity checking — the engine behind
//!   `mlcnn-loadgen --sweep` and the integration tests.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod config;
mod conn;
pub mod decode;
mod reactor;
pub mod server;

pub use client::{run_mux, MuxOptions, MuxReport};
pub use config::NetConfig;
pub use decode::FrameDecoder;
pub use server::NetServer;
