//! Multiplexing load client: tens of thousands of concurrent
//! connections driven by a handful of event-loop threads.
//!
//! The blocking [`mlcnn_serve::Client`] costs one thread per
//! connection, which tops out around the OS thread budget long before
//! the server's connection budget. This client inverts that: each
//! worker thread owns one `epoll` instance and a slice of the
//! connections, keeps up to `pipeline` requests in flight per
//! connection, and checks every response for order, correlation-id
//! match, and (optionally) bitwise parity against reference outputs.
//!
//! It is both the `mlcnn-loadgen --sweep` engine and the harness the
//! integration tests drive the event-driven transport with.

use crate::decode::FrameDecoder;
use minimio::{Events, Interest, Poll, Token};
use mlcnn_serve::Frame;
use mlcnn_tensor::Tensor;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Where the 8-byte correlation id sits in an encoded frame
/// (`[len u32][kind u8][id u64]`), so per-request encodes are a
/// template clone plus an 8-byte patch instead of a tensor
/// serialization.
const ID_OFFSET: usize = 5;

const READ_CHUNK: usize = 16 << 10;

/// Load shape for [`run_mux`].
#[derive(Debug, Clone)]
pub struct MuxOptions {
    /// Concurrent connections to hold open.
    pub connections: usize,
    /// Event-loop threads to spread them over.
    pub threads: usize,
    /// In-flight pipelined requests per connection.
    pub pipeline: usize,
    /// Requests each connection sends before closing.
    pub requests_per_conn: usize,
    /// Model name for the inference frames (empty = the only model).
    pub model: String,
    /// Input items, assigned to connections round-robin.
    pub inputs: Vec<Tensor<f32>>,
    /// Expected outputs, indexed like `inputs`; when set, every
    /// response is checked bitwise.
    pub expected: Option<Vec<Tensor<f32>>>,
    /// Connect retries per connection (listener backlog overflow under
    /// a connection storm surfaces as refusals; retrying is the
    /// protocol).
    pub connect_retries: usize,
    /// Overall wall-clock cap; responses still missing at the deadline
    /// are counted as lost.
    pub deadline: Duration,
}

impl MuxOptions {
    /// Defaults sized for a modest smoke run against `model`.
    pub fn new(model: impl Into<String>, inputs: Vec<Tensor<f32>>) -> MuxOptions {
        MuxOptions {
            connections: 64,
            threads: 2,
            pipeline: 1,
            requests_per_conn: 4,
            model: model.into(),
            inputs,
            expected: None,
            connect_retries: 100,
            deadline: Duration::from_secs(120),
        }
    }
}

/// What a [`run_mux`] run observed. The acceptance bar for the
/// transport is [`MuxReport::clean`]: every request answered exactly
/// once, in order, with the right id (and bitwise-right payload when
/// references were given).
#[derive(Debug, Clone)]
pub struct MuxReport {
    /// Connections that finished their full quota.
    pub completed_connections: usize,
    /// Connections requested.
    pub connections: usize,
    /// Inference requests written to the wire.
    pub sent: u64,
    /// Responses received (InferOk or wire-level Error frames).
    pub received: u64,
    /// `Frame::Error` responses (queue-full rejections etc.).
    pub wire_errors: u64,
    /// Responses whose correlation id was not the oldest in flight —
    /// duplicates, reorders, or answers to unknown requests.
    pub order_violations: u64,
    /// Responses that differed bitwise from the reference output.
    pub parity_failures: u64,
    /// Requests still unanswered at the deadline (or when their
    /// connection died).
    pub lost: u64,
    /// Wall-clock for the whole run (connect + drive).
    pub elapsed: Duration,
    /// Received responses per second over the whole run (the
    /// denominator includes the connect phase).
    pub rps: f64,
    /// Median response latency (send → receive), microseconds.
    pub p50_micros: u64,
    /// 99th-percentile response latency, microseconds.
    pub p99_micros: u64,
}

impl MuxReport {
    /// Zero lost, zero duplicated/reordered, zero parity failures,
    /// zero wire errors, every connection completed.
    pub fn clean(&self) -> bool {
        self.lost == 0
            && self.order_violations == 0
            && self.parity_failures == 0
            && self.wire_errors == 0
            && self.completed_connections == self.connections
    }

    /// One JSON object (no trailing newline) for bench reports.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"connections\": {}, \"completed_connections\": {}, ",
                "\"sent\": {}, \"received\": {}, \"lost\": {}, ",
                "\"wire_errors\": {}, \"order_violations\": {}, \"parity_failures\": {}, ",
                "\"elapsed_millis\": {}, \"rps\": {:.2}, ",
                "\"p50_micros\": {}, \"p99_micros\": {}}}"
            ),
            self.connections,
            self.completed_connections,
            self.sent,
            self.received,
            self.lost,
            self.wire_errors,
            self.order_violations,
            self.parity_failures,
            self.elapsed.as_millis(),
            self.rps,
            self.p50_micros,
            self.p99_micros,
        )
    }
}

/// One client-side connection's mux state.
struct CConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Oldest-first (id, send time) of in-flight requests.
    inflight: VecDeque<(u64, Instant)>,
    sent: usize,
    received: usize,
    input_idx: usize,
    next_id: u64,
    done: bool,
    registered: (bool, bool),
}

struct ThreadTally {
    sent: u64,
    received: u64,
    wire_errors: u64,
    order_violations: u64,
    parity_failures: u64,
    completed: usize,
    latencies_micros: Vec<u64>,
}

/// Drive `opts.connections` multiplexed connections against `addr`.
/// Fails only on setup errors (socket exhaustion, connect retries
/// expiring); protocol trouble is *reported*, not returned, so a flaky
/// server yields a dirty [`MuxReport`] rather than an early abort.
pub fn run_mux(addr: SocketAddr, opts: &MuxOptions) -> io::Result<MuxReport> {
    if opts.inputs.is_empty() || opts.connections == 0 || opts.requests_per_conn == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "mux run needs inputs, connections, and a per-connection quota",
        ));
    }
    // one encode per distinct input; per-request cost is clone + id patch
    let mut templates = Vec::with_capacity(opts.inputs.len());
    for input in &opts.inputs {
        templates.push(
            Frame::InferRequest {
                id: 0,
                model: opts.model.clone(),
                input: input.clone(),
            }
            .encode()?,
        );
    }
    let templates = std::sync::Arc::new(templates);

    let threads = opts.threads.clamp(1, opts.connections);
    let start = Instant::now();
    let deadline = start + opts.deadline;
    let mut tallies: Vec<ThreadTally> = Vec::with_capacity(threads);
    std::thread::scope(|s| -> io::Result<()> {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            // deal connections out so every thread gets ±1
            let quota = opts.connections / threads + usize::from(t < opts.connections % threads);
            let first_input = t; // stagger which template each thread starts on
            let templates = std::sync::Arc::clone(&templates);
            handles.push(
                s.spawn(move || mux_thread(addr, opts, &templates, quota, first_input, deadline)),
            );
        }
        for h in handles {
            tallies.push(
                h.join()
                    .map_err(|_| io::Error::other("mux client thread panicked"))??,
            );
        }
        Ok(())
    })?;

    let elapsed = start.elapsed();
    let mut latencies: Vec<u64> = Vec::new();
    let (mut sent, mut received, mut wire_errors, mut order_violations, mut parity_failures) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut completed = 0usize;
    for t in tallies {
        sent += t.sent;
        received += t.received;
        wire_errors += t.wire_errors;
        order_violations += t.order_violations;
        parity_failures += t.parity_failures;
        completed += t.completed;
        latencies.extend(t.latencies_micros);
    }
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let expected_total = (opts.connections * opts.requests_per_conn) as u64;
    Ok(MuxReport {
        completed_connections: completed,
        connections: opts.connections,
        sent,
        received,
        wire_errors,
        order_violations,
        parity_failures,
        lost: expected_total.saturating_sub(received),
        elapsed,
        rps: received as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_micros: quantile(0.50),
        p99_micros: quantile(0.99),
    })
}

/// Connect with retries: under a connection storm the listener backlog
/// overflows and the kernel refuses or resets; backing off briefly and
/// retrying is expected behaviour, not failure.
fn connect_patiently(addr: SocketAddr, retries: usize) -> io::Result<TcpStream> {
    let mut last = io::Error::other("no connect attempt made");
    for attempt in 0..=retries {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                last = e;
                std::thread::sleep(Duration::from_millis(5 + (attempt as u64 % 10)));
            }
        }
    }
    Err(io::Error::new(
        last.kind(),
        format!("connect {addr} failed after {retries} retries: {last}"),
    ))
}

fn mux_thread(
    addr: SocketAddr,
    opts: &MuxOptions,
    templates: &[Vec<u8>],
    quota: usize,
    first_input: usize,
    deadline: Instant,
) -> io::Result<ThreadTally> {
    let mut tally = ThreadTally {
        sent: 0,
        received: 0,
        wire_errors: 0,
        order_violations: 0,
        parity_failures: 0,
        completed: 0,
        latencies_micros: Vec::with_capacity(quota * opts.requests_per_conn),
    };
    if quota == 0 {
        return Ok(tally);
    }
    let poll = Poll::new()?;
    let mut conns: Vec<Option<CConn>> = Vec::with_capacity(quota);
    for i in 0..quota {
        let stream = connect_patiently(addr, opts.connect_retries)?;
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        let conn = CConn {
            stream,
            decoder: FrameDecoder::new(),
            wbuf: Vec::new(),
            wpos: 0,
            inflight: VecDeque::new(),
            sent: 0,
            received: 0,
            input_idx: (first_input + i) % templates.len(),
            next_id: 1,
            done: false,
            registered: (true, true),
        };
        // nothing is enqueued yet: the first writable event fills the
        // pipeline, so latencies measure the server, not the time the
        // remaining connections took to finish connecting
        poll.register(
            &conn.stream,
            Token(i),
            Interest::READABLE.add(Interest::WRITABLE),
        )?;
        conns.push(Some(conn));
    }

    let mut events = Events::with_capacity(1024);
    let mut open = quota;
    while open > 0 {
        let now = Instant::now();
        if now >= deadline {
            break; // unanswered requests become `lost`
        }
        let timeout = (deadline - now).min(Duration::from_millis(200));
        poll.wait(&mut events, Some(timeout))?;
        for ev in events.iter() {
            let Token(idx) = ev.token();
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            let mut dead = ev.is_error();
            if !dead && ev.is_readable() {
                dead = drive_read(conn, opts, templates, &mut tally);
            }
            if !dead && ev.is_writable() {
                dead = try_flush(conn).is_err();
            }
            if !dead && !conn.done && conn.inflight.is_empty() && conn.sent < opts.requests_per_conn
            {
                // initial pipeline fill (first writable wake), or a
                // refill the read path could not do
                enqueue(conn, opts, templates, &mut tally);
                dead = try_flush(conn).is_err();
            }
            if conn.done || dead {
                if conn.done {
                    tally.completed += 1;
                }
                let _ = poll.deregister(&conn.stream);
                conns[idx] = None;
                open -= 1;
                continue;
            }
            let want = (true, conn.wbuf.len() > conn.wpos);
            if want != conn.registered {
                let interest = if want.1 {
                    Interest::READABLE.add(Interest::WRITABLE)
                } else {
                    Interest::READABLE
                };
                if poll.reregister(&conn.stream, Token(idx), interest).is_ok() {
                    conn.registered = want;
                }
            }
        }
    }
    Ok(tally)
}

/// Fill the pipeline: clone the template, patch the id, queue it.
fn enqueue(conn: &mut CConn, opts: &MuxOptions, templates: &[Vec<u8>], tally: &mut ThreadTally) {
    while conn.inflight.len() < opts.pipeline && conn.sent < opts.requests_per_conn {
        let id = conn.next_id;
        conn.next_id += 1;
        let mut frame = templates[conn.input_idx].clone();
        frame[ID_OFFSET..ID_OFFSET + 8].copy_from_slice(&id.to_be_bytes());
        conn.wbuf.extend_from_slice(&frame);
        conn.inflight.push_back((id, Instant::now()));
        conn.sent += 1;
        tally.sent += 1;
    }
}

/// Pull responses off the socket; returns `true` when the connection
/// is dead (reset, protocol violation, or unexpected EOF).
fn drive_read(
    conn: &mut CConn,
    opts: &MuxOptions,
    templates: &[Vec<u8>],
    tally: &mut ThreadTally,
) -> bool {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return true, // server closed with requests outstanding
            Ok(n) => conn.decoder.extend(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    loop {
        let frame = match conn.decoder.next() {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(_) => return true,
        };
        let (id, is_error) = match &frame {
            Frame::InferOk { id, .. } => (*id, false),
            Frame::Error { id, .. } => (*id, true),
            other => (other.id(), true),
        };
        match conn.inflight.front() {
            Some(&(want, sent_at)) if want == id => {
                conn.inflight.pop_front();
                tally
                    .latencies_micros
                    .push(sent_at.elapsed().as_micros().min(u64::MAX as u128) as u64);
            }
            _ => {
                // a duplicate, a reorder, or an answer we never asked for
                tally.order_violations += 1;
            }
        }
        conn.received += 1;
        tally.received += 1;
        if is_error {
            tally.wire_errors += 1;
        } else if let (Frame::InferOk { output, .. }, Some(expected)) = (&frame, &opts.expected) {
            if expected.get(conn.input_idx).is_some_and(|e| e != output) {
                tally.parity_failures += 1;
            }
        }
        if conn.received >= opts.requests_per_conn {
            conn.done = true;
            return false;
        }
        enqueue(conn, opts, templates, tally);
        if try_flush(conn).is_err() {
            return true;
        }
    }
    false
}

fn try_flush(conn: &mut CConn) -> io::Result<()> {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    Ok(())
}
