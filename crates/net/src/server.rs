//! The event-driven server: a dispatching acceptor thread fanning
//! accepted sockets out to the reactor shards, plus lifecycle.

use crate::config::NetConfig;
use crate::reactor::{spawn_shard, Shard};
use minimio::{Events, Interest, Poll, Token, Waker};
use mlcnn_serve::Dispatch;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const LISTENER_TOKEN: Token = Token(0);
const SHUTDOWN_TOKEN: Token = Token(1);

/// An event-driven frame-protocol server over any [`Dispatch`] backend
/// (a [`mlcnn_serve::NamedService`] or a [`mlcnn_serve::Router`] — so
/// multi-model routing, hot-swap, and revision attribution all carry
/// over unchanged from the blocking transport).
///
/// One acceptor thread accepts nonblocking sockets and deals them
/// round-robin to `shards` reactor threads; every connection lives on
/// exactly one shard for its lifetime. Construction is gated by the
/// `mlcnn-check` `N0xx` lints in deny mode.
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_waker: Arc<Waker>,
    acceptor: Option<JoinHandle<io::Result<()>>>,
    shards: Vec<Shard>,
    conn_count: Arc<AtomicUsize>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("shards", &self.shards.len())
            .field("open_connections", &self.open_connections())
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Stand up the server on `listener`. Fails — before any thread
    /// starts — when the `N0xx` gate denies the config.
    pub fn spawn<D: Dispatch>(
        listener: TcpListener,
        backend: Arc<D>,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        cfg.validate("mlcnn-net")
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let conn_count = Arc::new(AtomicUsize::new(0));
        let backend: Arc<dyn Dispatch> = backend;

        let mut shards = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            shards.push(spawn_shard(
                i,
                Arc::clone(&backend),
                &cfg,
                Arc::clone(&conn_count),
            )?);
        }

        let poll = Poll::new()?;
        poll.register(&listener, LISTENER_TOKEN, Interest::READABLE)?;
        let accept_waker = Arc::new(Waker::new(&poll, SHUTDOWN_TOKEN)?);
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let conn_count = Arc::clone(&conn_count);
            let mailboxes: Vec<_> = shards
                .iter()
                .map(|s| (Arc::clone(&s.inbox), Arc::clone(&s.waker)))
                .collect();
            let max_connections = cfg.max_connections;
            std::thread::Builder::new()
                .name("mlcnn-net-acceptor".into())
                .spawn(move || {
                    acceptor_loop(
                        &poll,
                        &listener,
                        &mailboxes,
                        &shutdown,
                        &conn_count,
                        max_connections,
                    )
                })?
        };

        Ok(NetServer {
            local_addr,
            shutdown,
            accept_waker,
            acceptor: Some(acceptor),
            shards,
            conn_count,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Currently open connections across all shards.
    pub fn open_connections(&self) -> usize {
        self.conn_count.load(Ordering::Acquire)
    }

    /// Block on the acceptor until the server is shut down (or the
    /// listener fails fatally), then tear down the shards — what the
    /// `mlcnn-served` binary parks its main thread on.
    pub fn join(mut self) -> io::Result<()> {
        let result = match self.acceptor.take() {
            Some(h) => h.join().unwrap_or(Ok(())),
            None => Ok(()),
        };
        self.stop_threads();
        result
    }

    /// Stop accepting, drop every connection, and join all threads.
    /// In-flight requests already inside the service still complete
    /// there; their responses are discarded with the connections.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = self.accept_waker.wake();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for shard in &self.shards {
            shard.inbox.shutdown.store(true, Ordering::Release);
            let _ = shard.waker.wake();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.shards.is_empty() {
            self.stop_threads();
        }
    }
}

/// Accept until shut down, dealing sockets round-robin to the shards.
/// Sockets beyond the connection cap are dropped at the door (their
/// peers see a reset), which keeps every admitted connection inside
/// the configured budget.
fn acceptor_loop(
    poll: &Poll,
    listener: &TcpListener,
    mailboxes: &[(Arc<crate::reactor::Inbox>, Arc<Waker>)],
    shutdown: &AtomicBool,
    conn_count: &AtomicUsize,
    max_connections: usize,
) -> io::Result<()> {
    let mut events = Events::with_capacity(64);
    let mut rr = 0usize;
    loop {
        poll.wait(&mut events, Some(Duration::from_millis(500)))?;
        if shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // single incrementer, so load-then-add cannot race
                    if conn_count.load(Ordering::Acquire) >= max_connections {
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    conn_count.fetch_add(1, Ordering::AcqRel);
                    let (inbox, waker) = &mailboxes[rr % mailboxes.len()];
                    rr = rr.wrapping_add(1);
                    inbox
                        .incoming
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(stream);
                    let _ = waker.wake();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted | io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }
}
