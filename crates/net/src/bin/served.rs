//! `mlcnn-served` — TCP inference server over the micro-batching
//! service.
//!
//! ```text
//! mlcnn-served [--model NAME] [--precision fp32|fp16|int8]
//!              [--registry DIR]
//!              [--addr HOST:PORT] [--workers N] [--max-batch N]
//!              [--max-wait-micros N] [--queue N]
//!              [--slo guaranteed:MICROS|best-effort] [--auto-tune]
//!              [--transport epoll|threads] [--shards N] [--max-conns N]
//!              [--max-pipeline N] [--idle-timeout-millis N]
//! ```
//!
//! `--slo` attaches a default SLO class to every served model:
//! `guaranteed:25000` admission-checks each request against the
//! calibrated cost oracle with a 25 ms latency budget; `best-effort`
//! marks work sheddable under overload. `--auto-tune` derives
//! `(max_batch, max_wait)` from the oracle's batch-latency curve instead
//! of the hand-set flags (requires a guaranteed `--slo` budget). Without
//! `--slo` the server keeps its pre-SLO FIFO behavior verbatim.
//!
//! Two model modes:
//!
//! * **Single model** (default): compiles the named serving-zoo model at
//!   the requested precision and serves it. Weights come from the fixed
//!   serving seed, so any `mlcnn-loadgen --remote` pointed at the same
//!   model/precision can verify responses against a local reference plan.
//! * **Registry** (`--registry DIR`): opens a directory of packed
//!   `.mlcnn` artifacts (see `mlcnn-pack`), stands up one endpoint per
//!   model at its active revision, and routes requests by the wire
//!   protocol's model name. Publish/rollback frames hot-swap revisions
//!   under live traffic. `--model`/`--precision` are ignored in this
//!   mode — each artifact records its own serving precision.
//!
//! And two transports:
//!
//! * **epoll** (default): the event-driven sharded reactor in
//!   `mlcnn-net` — `--shards` event-loop threads, `--max-conns`
//!   admission cap, `--max-pipeline` per-connection pipelining with
//!   backpressure, `--idle-timeout-millis` idle reaping. Scales to tens
//!   of thousands of concurrent connections.
//! * **threads** (`--transport threads`): the original blocking
//!   thread-per-connection listener, kept as the bitwise parity oracle
//!   for the event-driven path.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use mlcnn_net::{NetConfig, NetServer};
use mlcnn_quant::Precision;
use mlcnn_registry::ModelRegistry;
use mlcnn_serve::{
    find_model, serve_listener, Dispatch, NamedService, Router, ServeConfig, Service,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transport {
    Epoll,
    Threads,
}

struct Args {
    model: String,
    precision: Precision,
    registry: Option<String>,
    addr: String,
    cfg: ServeConfig,
    transport: Transport,
    net: NetConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: "lenet5".into(),
        precision: Precision::Fp32,
        registry: None,
        addr: "127.0.0.1:7433".into(),
        cfg: ServeConfig::default(),
        transport: Transport::Epoll,
        net: NetConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--model" => args.model = val("--model")?,
            "--precision" => args.precision = val("--precision")?.parse()?,
            "--registry" => args.registry = Some(val("--registry")?),
            "--addr" => args.addr = val("--addr")?,
            "--workers" => {
                args.cfg.workers = val("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-batch" => {
                args.cfg.max_batch = val("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?
            }
            "--max-wait-micros" => {
                let micros: u64 = val("--max-wait-micros")?
                    .parse()
                    .map_err(|e| format!("--max-wait-micros: {e}"))?;
                args.cfg.max_wait = Duration::from_micros(micros);
            }
            "--queue" => {
                args.cfg.queue_capacity = val("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--slo" => {
                let spec: mlcnn_serve::SloSpec =
                    val("--slo")?.parse().map_err(|e| format!("--slo: {e}"))?;
                args.cfg.slo = Some(spec);
            }
            "--auto-tune" => args.cfg.auto_tune = true,
            "--transport" => {
                args.transport = match val("--transport")?.as_str() {
                    "epoll" => Transport::Epoll,
                    "threads" => Transport::Threads,
                    other => return Err(format!("--transport: '{other}' (epoll|threads)")),
                }
            }
            "--shards" => {
                args.net.shards = val("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--max-conns" => {
                args.net.max_connections = val("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?
            }
            "--max-pipeline" => {
                args.net.max_pipeline = val("--max-pipeline")?
                    .parse()
                    .map_err(|e| format!("--max-pipeline: {e}"))?
            }
            "--idle-timeout-millis" => {
                let millis: u64 = val("--idle-timeout-millis")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-millis: {e}"))?;
                args.net.idle_timeout = Duration::from_millis(millis);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    args.cfg.precision = args.precision;
    // let the N006 pipeline-vs-queue lint see the real queue bound
    args.net.queue_capacity = args.cfg.queue_capacity;
    Ok(args)
}

fn bind(addr: &str) -> Result<TcpListener, String> {
    TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))
}

fn slo_banner(args: &Args) -> String {
    match args.cfg.slo {
        None => "slo=none".to_string(),
        Some(spec) => format!(
            "slo={spec}{}",
            if args.cfg.auto_tune { " auto_tune" } else { "" }
        ),
    }
}

fn transport_banner(args: &Args) -> String {
    match args.transport {
        Transport::Threads => "transport=threads".to_string(),
        Transport::Epoll => format!(
            "transport=epoll shards={} max_conns={} max_pipeline={} idle_timeout={:?}",
            args.net.shards, args.net.max_connections, args.net.max_pipeline, args.net.idle_timeout
        ),
    }
}

/// Serve `backend` on `listener` over the selected transport; blocks
/// until the process is killed.
fn serve<D: Dispatch>(args: &Args, listener: TcpListener, backend: Arc<D>) -> Result<(), String> {
    match args.transport {
        Transport::Threads => {
            serve_listener(listener, backend).map_err(|e| format!("accept loop failed: {e}"))
        }
        Transport::Epoll => {
            let server = NetServer::spawn(listener, backend, args.net.clone())
                .map_err(|e| format!("event-driven server failed to start: {e}"))?;
            server.join().map_err(|e| format!("acceptor failed: {e}"))
        }
    }
}

fn run_registry(args: &Args, dir: &str) -> Result<(), String> {
    let registry = ModelRegistry::open(dir).map_err(|e| e.to_string())?;
    let router =
        Arc::new(Router::new(Arc::new(registry), args.cfg.clone()).map_err(|e| e.to_string())?);
    let listener = bind(&args.addr)?;
    let mut summary = Vec::new();
    for status in router.registry().status() {
        summary.push(format!(
            "{}@{} ({})",
            status.model, status.active, status.precision
        ));
    }
    println!(
        "mlcnn-served: registry {dir} on {} — {} (workers={}, max_batch={}, max_wait={:?}, queue={}, {}, {})",
        listener
            .local_addr()
            .map_or(args.addr.clone(), |a| a.to_string()),
        summary.join(", "),
        args.cfg.workers,
        args.cfg.max_batch,
        args.cfg.max_wait,
        args.cfg.queue_capacity,
        slo_banner(args),
        transport_banner(args),
    );
    serve(args, listener, router)
}

fn run_single(args: &Args) -> Result<(), String> {
    let model = find_model(&args.model).map_err(|e| e.to_string())?;
    let plan = Arc::new(model.compile(args.precision).map_err(|e| e.to_string())?);
    let svc = Service::spawn(plan, args.cfg.clone()).map_err(|e| e.to_string())?;
    let backend = Arc::new(NamedService::new(model.name, svc));
    let listener = bind(&args.addr)?;
    println!(
        "mlcnn-served: {} @ {:?} on {} (workers={}, max_batch={}, max_wait={:?}, queue={}, {}, {})",
        model.name,
        args.precision,
        listener
            .local_addr()
            .map_or(args.addr.clone(), |a| a.to_string()),
        args.cfg.workers,
        args.cfg.max_batch,
        args.cfg.max_wait,
        args.cfg.queue_capacity,
        slo_banner(args),
        transport_banner(args),
    );
    serve(args, listener, backend)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mlcnn-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &args.registry {
        Some(dir) => run_registry(&args, &dir.clone()),
        None => run_single(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlcnn-served: {e}");
            ExitCode::FAILURE
        }
    }
}
