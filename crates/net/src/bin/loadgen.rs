//! `mlcnn-loadgen` — load generator and correctness harness for the
//! micro-batching service and its network transports.
//!
//! ```text
//! mlcnn-loadgen [--out PATH] [--smoke] [--requests N] [--clients N]
//!               [--rate-rps N] [--remote HOST:PORT --model NAME --precision P]
//!               [--sweep] [--sweep-conns N,N,...] [--sched]
//! ```
//!
//! Default (in-process) run, written to `BENCH_serve.json`:
//!
//! 1. **Parity sweep** — every serving-zoo model at FP32/FP16/INT8:
//!    service responses must be *bitwise* identical to
//!    `ExecutionPlan::forward` on the same single item.
//! 2. **Closed loop** — concurrent clients each awaiting their response
//!    before sending the next; reports throughput and latency quantiles.
//! 3. **Batching speedup** — pipelined load through a `max_batch = 8`
//!    service vs an otherwise-identical `max_batch = 1` service on the
//!    dispatch-bound `vgg-nano` model.
//! 4. **Open loop** — fixed-rate arrivals with a deadline, reporting how
//!    much load the deadline sheds.
//!
//! `--smoke` shrinks the run and asserts the CI gate: parity everywhere,
//! every service drains fully (zero dropped in-flight), and closed-loop
//! p99 stays under 250 ms.
//!
//! `--remote` instead drives a running `mlcnn-served` over TCP with
//! closed-loop clients, checking parity against a locally compiled
//! reference plan (same seed).
//!
//! `--sweep` exercises the event-driven transport: it spawns
//! `mlcnn-served` child processes, first checking the epoll transport
//! bitwise against the blocking `--transport threads` oracle (and the
//! local reference plan), then driving a connection-count sweep with
//! the multiplexing client — thousands of concurrent sockets from a
//! few threads, every response checked for order, correlation id, and
//! bitwise parity — and writes `BENCH_net.json` with rps and p50/p99
//! per point plus the p99 ratio against an in-process baseline at the
//! same outstanding-request depth. With `--smoke` the sweep shrinks
//! (and the oracle narrows) to CI size and asserts every point clean.
//!
//! `--sched` exercises the SLO-aware scheduler and writes
//! `BENCH_sched.json`: it measures a FIFO baseline's capacity, then
//! offers ≥3× that rate from a seeded bursty arrival schedule as mixed
//! traffic (every 4th request `guaranteed:25000`, the rest
//! best-effort) into an auto-tuned admission-controlled service. The
//! gate: the guaranteed class holds its p99 budget with zero
//! deadline-expired sheds while the best-effort class absorbs all
//! overload shedding. A second phase replays SLO-tagged requests
//! through `mlcnn-served --slo` under both the threads and epoll
//! transports and requires bitwise parity with the local plan.

use std::collections::VecDeque;
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlcnn_core::{ExecutionPlan, Workspace};
use mlcnn_net::{run_mux, MuxOptions};
use mlcnn_quant::Precision;
use mlcnn_sched::ArrivalSchedule;
use mlcnn_serve::{
    find_model, serving_zoo, ClassSnapshot, Client, MetricsSnapshot, ServeConfig, Service, SloSpec,
};
use mlcnn_tensor::{init, Shape4, Tensor};

const ALL_PRECISIONS: [Precision; 3] = [Precision::Fp32, Precision::Fp16, Precision::Int8];
/// Smoke-mode latency gate: generous enough for a loaded single-core CI
/// runner, tight enough to catch a stalled batcher (whose symptom is
/// requests waiting forever).
const SMOKE_P99_MICROS: u64 = 250_000;
/// The sweep drives this model: dispatch-bound, so the transport (not
/// the arithmetic) dominates what the sweep measures.
const SWEEP_MODEL: &str = "mlp-mini";
/// Distinct input items cycled across sweep connections.
const SWEEP_INPUTS: usize = 4;

struct Args {
    out: String,
    smoke: bool,
    requests: usize,
    clients: usize,
    rate_rps: u64,
    remote: Option<String>,
    model: String,
    precision: Precision,
    sweep: bool,
    sweep_conns: Vec<usize>,
    sched: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: String::new(),
        smoke: false,
        requests: 2000,
        clients: 8,
        rate_rps: 2000,
        remote: None,
        model: "lenet5".into(),
        precision: Precision::Fp32,
        sweep: false,
        sweep_conns: Vec::new(),
        sched: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--out" => args.out = val("--out")?,
            "--smoke" => args.smoke = true,
            "--requests" => {
                args.requests = val("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--clients" => {
                args.clients = val("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--rate-rps" => {
                args.rate_rps = val("--rate-rps")?
                    .parse()
                    .map_err(|e| format!("--rate-rps: {e}"))?
            }
            "--remote" => args.remote = Some(val("--remote")?),
            "--model" => args.model = val("--model")?,
            "--precision" => args.precision = val("--precision")?.parse()?,
            "--sweep" => args.sweep = true,
            "--sched" => args.sched = true,
            "--sweep-conns" => {
                args.sweep_conns = val("--sweep-conns")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--sweep-conns: {e}")))
                    .collect::<Result<_, _>>()?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(600);
    }
    if args.out.is_empty() {
        args.out = if args.sched {
            "BENCH_sched.json".into()
        } else if args.sweep {
            "BENCH_net.json".into()
        } else {
            "BENCH_serve.json".into()
        };
    }
    if args.sweep_conns.is_empty() {
        args.sweep_conns = if args.smoke {
            vec![256, 1024]
        } else {
            vec![1_000, 5_000, 10_000]
        };
    }
    Ok(args)
}

fn item_input(shape: Shape4, seed: u64) -> Tensor<f32> {
    init::uniform(
        Shape4::new(1, shape.c, shape.h, shape.w),
        -1.0,
        1.0,
        &mut init::rng(seed),
    )
}

/// Bitwise parity: a handful of service responses vs the plan's own
/// single-item `forward` on a fresh workspace.
fn parity_check(svc: &Service, plan: &ExecutionPlan, shape: Shape4) -> Result<(), String> {
    let mut ws = Workspace::for_plan(plan, 1);
    for seed in 0..6u64 {
        let x = item_input(shape, 1000 + seed);
        let got = svc.infer(x.clone()).map_err(|e| e.to_string())?;
        let want = plan.forward(&x, &mut ws).map_err(|e| e.to_string())?;
        if got != want {
            return Err(format!("response diverges from plan.forward (seed {seed})"));
        }
    }
    Ok(())
}

/// Closed loop: `clients` threads, each awaiting its response before the
/// next request. Returns achieved requests-per-second.
fn closed_loop(svc: &Service, shape: Shape4, clients: usize, total: usize) -> f64 {
    let per_client = total.div_ceil(clients.max(1));
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let x = item_input(shape, 7 + c as u64);
                for _ in 0..per_client {
                    svc.infer(x.clone()).expect("closed-loop infer");
                }
            });
        }
    });
    (per_client * clients) as f64 / start.elapsed().as_secs_f64()
}

/// Pipelined load: one submitter alternates between bursts of submissions
/// and draining the accumulated tickets. The service sees a standing
/// queue (so the batcher can actually coalesce), while most `wait` calls
/// find their response already buffered — the client is measuring the
/// service's dispatch cost, not its own context switches. This is the
/// fixture for the batched-vs-batch=1 comparison — identical client
/// behaviour on both sides, only the service policy differs — and, with
/// `burst` matched to a sweep point's connection count, the in-process
/// baseline the network p99 is compared against.
fn pipelined_loop(svc: &Service, shape: Shape4, total: usize, burst: usize) -> f64 {
    let x = item_input(shape, 100);
    let mut inflight: VecDeque<mlcnn_serve::Ticket> = VecDeque::new();
    let mut submitted = 0usize;
    let start = Instant::now();
    while submitted < total {
        let goal = (submitted + burst).min(total);
        while submitted < goal {
            match svc.submit(x.clone()) {
                Ok(t) => {
                    inflight.push_back(t);
                    submitted += 1;
                }
                // backpressure: drain one and retry
                Err(mlcnn_serve::ServeError::QueueFull(_)) => {
                    if let Some(t) = inflight.pop_front() {
                        t.wait().expect("pipelined wait");
                    }
                }
                Err(e) => panic!("pipelined submit: {e}"),
            }
        }
        while inflight.len() > burst / 2 {
            inflight
                .pop_front()
                .unwrap()
                .wait()
                .expect("pipelined wait");
        }
    }
    for t in inflight {
        t.wait().expect("pipelined drain");
    }
    total as f64 / start.elapsed().as_secs_f64()
}

/// Open loop: submit on a seeded, jittered uniform arrival schedule with
/// a per-request deadline; expired requests are shed by the service and
/// surface in the snapshot. The schedule is deterministic per seed, so
/// reruns offer byte-identical arrival times.
fn open_loop(svc: &Service, shape: Shape4, rate_rps: u64, total: usize) -> (f64, u64) {
    let schedule = ArrivalSchedule::uniform(55, rate_rps, total);
    let deadline = Duration::from_millis(100);
    let (tx, rx) = std::sync::mpsc::channel();
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            // collector: resolve tickets off the pacer's critical path
            let mut shed = 0u64;
            while let Ok(ticket) = rx.recv() {
                let t: mlcnn_serve::Ticket = ticket;
                if matches!(t.wait(), Err(mlcnn_serve::ServeError::DeadlineExceeded)) {
                    shed += 1;
                }
            }
            shed
        });
        let x = item_input(shape, 55);
        for &offset in schedule.offsets_nanos() {
            let due = start + Duration::from_nanos(offset);
            if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
            // a full queue under overload is a rejection, counted by metrics
            if let Ok(t) = svc.submit_with_deadline(x.clone(), Some(deadline)) {
                let _ = tx.send(t);
            }
        }
        drop(tx);
    });
    let elapsed = start.elapsed().as_secs_f64();
    let snap = svc.metrics();
    (total as f64 / elapsed, snap.shed_expired)
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "null".into()
    }
}

fn snapshot_fragment(s: &MetricsSnapshot) -> String {
    format!(
        concat!(
            "\"p50_micros\": {}, \"p90_micros\": {}, \"p99_micros\": {}, ",
            "\"mean_batch_size\": {:.3}, \"batches\": {}, \"shed_expired\": {}, ",
            "\"rejected_full\": {}, \"fully_drained\": {}"
        ),
        s.p50_micros,
        s.p90_micros,
        s.p99_micros,
        s.mean_batch_size,
        s.batches,
        s.shed_expired,
        s.rejected_full,
        s.fully_drained(),
    )
}

fn run_remote(args: &Args) -> Result<String, String> {
    let addr = args.remote.clone().expect("remote mode");
    let model = find_model(&args.model).map_err(|e| e.to_string())?;
    let plan = model.compile(args.precision).map_err(|e| e.to_string())?;
    let mut ws = Workspace::for_plan(&plan, 1);

    // parity against the local reference plan (same seed as the server)
    let mut probe = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    for seed in 0..4u64 {
        let x = item_input(model.input, 2000 + seed);
        let got = probe
            .infer_model(&args.model, x.clone())
            .map_err(|e| e.to_string())?;
        let want = plan.forward(&x, &mut ws).map_err(|e| e.to_string())?;
        if got != want {
            return Err(format!(
                "remote response diverges from reference (seed {seed})"
            ));
        }
    }

    let per_client = args.requests.div_ceil(args.clients.max(1));
    let start = Instant::now();
    std::thread::scope(|s| -> Result<(), String> {
        let mut handles = Vec::new();
        for c in 0..args.clients {
            let addr = addr.clone();
            let input = model.input;
            let name = args.model.clone();
            handles.push(s.spawn(move || -> Result<(), String> {
                let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
                let x = item_input(input, 300 + c as u64);
                for _ in 0..per_client {
                    client
                        .infer_model(&name, x.clone())
                        .map_err(|e| e.to_string())?;
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| "client thread panicked".to_string())??;
        }
        Ok(())
    })?;
    let rps = (per_client * args.clients) as f64 / start.elapsed().as_secs_f64();
    let metrics = probe.metrics_json().map_err(|e| e.to_string())?;
    Ok(format!(
        "{{\n  \"mode\": \"remote\",\n  \"addr\": \"{addr}\",\n  \"model\": \"{}\",\n  \"precision\": \"{}\",\n  \"parity\": true,\n  \"requests\": {},\n  \"clients\": {},\n  \"throughput_rps\": {},\n  \"server_metrics\": {metrics}\n}}\n",
        model.name,
        args.precision,
        per_client * args.clients,
        args.clients,
        fmt_f64(rps),
    ))
}

fn run_local(args: &Args) -> Result<String, String> {
    let mut model_sections = Vec::new();
    let mut all_drained = true;
    let mut worst_p99: u64 = 0;

    // 1 + 2: parity sweep and closed-loop load, zoo × precisions
    for model in serving_zoo() {
        for precision in ALL_PRECISIONS {
            let plan = Arc::new(model.compile(precision).map_err(|e| e.to_string())?);
            let cfg = ServeConfig::default()
                .with_precision(precision)
                .with_batching(8, Duration::from_micros(200));
            let svc = Service::spawn(Arc::clone(&plan), cfg).map_err(|e| e.to_string())?;
            parity_check(&svc, &plan, model.input)
                .map_err(|e| format!("{}@{precision}: {e}", model.name))?;
            let rps = closed_loop(&svc, model.input, args.clients, args.requests);
            let snap = svc.shutdown();
            all_drained &= snap.fully_drained();
            worst_p99 = worst_p99.max(snap.p99_micros);
            println!(
                "[loadgen] {}@{precision}: parity ok, closed-loop {:.0} rps, p99 {} µs, mean batch {:.2}",
                model.name, rps, snap.p99_micros, snap.mean_batch_size
            );
            model_sections.push(format!(
                "    {{\"model\": \"{}\", \"precision\": \"{precision}\", \"parity\": true, \"closed_loop_rps\": {}, {}}}",
                model.name,
                fmt_f64(rps),
                snapshot_fragment(&snap)
            ));
        }
    }

    // 3: batching speedup on the dispatch-bound model, identical pipelined
    // client, only (max_batch, max_wait) differs
    let demo = find_model("mlp-mini").map_err(|e| e.to_string())?;
    let plan = Arc::new(demo.compile(Precision::Fp32).map_err(|e| e.to_string())?);
    let speedup_requests = args.requests.max(500) * 8;

    let batched_cfg = ServeConfig::default()
        .with_batching(16, Duration::from_micros(200))
        .with_queue(1024);
    let svc = Service::spawn(Arc::clone(&plan), batched_cfg).map_err(|e| e.to_string())?;
    let batched_rps = pipelined_loop(&svc, demo.input, speedup_requests, 256);
    let batched_snap = svc.shutdown();
    all_drained &= batched_snap.fully_drained();

    let batch1_cfg = ServeConfig::default()
        .with_batching(1, Duration::ZERO)
        .with_queue(1024);
    let svc = Service::spawn(Arc::clone(&plan), batch1_cfg).map_err(|e| e.to_string())?;
    let batch1_rps = pipelined_loop(&svc, demo.input, speedup_requests, 256);
    let batch1_snap = svc.shutdown();
    all_drained &= batch1_snap.fully_drained();

    let speedup = batched_rps / batch1_rps;
    println!(
        "[loadgen] {} batching: {batched_rps:.0} rps (mean batch {:.2}) vs {batch1_rps:.0} rps at batch=1 → {speedup:.2}x",
        demo.name, batched_snap.mean_batch_size
    );

    // 4: open loop at a fixed arrival rate with a deadline
    let open_cfg = ServeConfig::default().with_batching(8, Duration::from_micros(200));
    let svc = Service::spawn(Arc::clone(&plan), open_cfg).map_err(|e| e.to_string())?;
    let (offered_rps, _) = open_loop(&svc, demo.input, args.rate_rps, args.requests);
    let open_snap = svc.shutdown();
    all_drained &= open_snap.fully_drained();
    println!(
        "[loadgen] open loop: offered {offered_rps:.0} rps, shed {} of {} by deadline",
        open_snap.shed_expired, open_snap.submitted
    );

    if args.smoke {
        assert!(all_drained, "smoke: a service dropped in-flight requests");
        assert!(
            worst_p99 < SMOKE_P99_MICROS,
            "smoke: closed-loop p99 {worst_p99} µs breaches the {SMOKE_P99_MICROS} µs gate"
        );
        println!("[loadgen] smoke gate passed (drained everywhere, worst p99 {worst_p99} µs)");
    }

    Ok(format!(
        "{{\n  \"mode\": \"local\",\n  \"threads\": {},\n  \"requests_per_section\": {},\n  \"clients\": {},\n  \"smoke\": {},\n  \"all_fully_drained\": {},\n  \"worst_closed_loop_p99_micros\": {},\n  \"models\": [\n{}\n  ],\n  \"batching_speedup\": {{\n    \"model\": \"{}\", \"precision\": \"{}\", \"requests\": {},\n    \"batched_rps\": {}, \"batched_mean_batch_size\": {:.3},\n    \"batch1_rps\": {}, \"speedup\": {}\n  }},\n  \"open_loop\": {{\n    \"model\": \"{}\", \"offered_rps\": {}, \"deadline_millis\": 100, {}\n  }}\n}}\n",
        rayon::current_num_threads(),
        args.requests,
        args.clients,
        args.smoke,
        all_drained,
        worst_p99,
        model_sections.join(",\n"),
        demo.name,
        Precision::Fp32,
        speedup_requests,
        fmt_f64(batched_rps),
        batched_snap.mean_batch_size,
        fmt_f64(batch1_rps),
        fmt_f64(speedup),
        demo.name,
        fmt_f64(offered_rps),
        snapshot_fragment(&open_snap),
    ))
}

// ---------------------------------------------------------------------------
// --sweep: the event-driven transport under a connection-count sweep
// ---------------------------------------------------------------------------

/// A spawned `mlcnn-served` child, killed on drop.
struct ChildServer {
    child: std::process::Child,
    addr: SocketAddr,
}

impl Drop for ChildServer {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Launch `mlcnn-served` (from this binary's own directory) with
/// `extra` flags on an ephemeral port, and parse the bound address out
/// of its startup banner (`"… on HOST:PORT (…"`).
fn spawn_served(extra: &[&str]) -> Result<ChildServer, String> {
    let exe = std::env::current_exe()
        .map_err(|e| format!("current_exe: {e}"))?
        .parent()
        .ok_or("current_exe has no parent dir")?
        .join("mlcnn-served");
    let mut child = std::process::Command::new(&exe)
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", exe.display()))?;
    let stdout = child.stdout.take().ok_or("child stdout not captured")?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if line.contains(" on ") {
                    break line;
                }
            }
            Some(Err(e)) => {
                let _ = child.kill();
                return Err(format!("reading server banner: {e}"));
            }
            None => {
                let _ = child.kill();
                return Err("server exited before printing its banner".into());
            }
        }
    };
    let addr = banner
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|tok| tok.parse::<SocketAddr>().ok())
        .ok_or_else(|| format!("no address in server banner: {banner}"))?;
    Ok(ChildServer { child, addr })
}

/// Bitwise oracle: the same inputs through an epoll-transport server,
/// a threads-transport server, and the local reference plan must
/// produce identical bytes.
fn oracle_check(model_name: &str, precision: Precision) -> Result<(), String> {
    let model = find_model(model_name).map_err(|e| e.to_string())?;
    let plan = model.compile(precision).map_err(|e| e.to_string())?;
    let mut ws = Workspace::for_plan(&plan, 1);
    let precision_flag = precision.to_string();
    let epoll = spawn_served(&[
        "--model",
        model_name,
        "--precision",
        &precision_flag,
        "--transport",
        "epoll",
        "--shards",
        "1",
    ])?;
    let threads = spawn_served(&[
        "--model",
        model_name,
        "--precision",
        &precision_flag,
        "--transport",
        "threads",
    ])?;
    let mut via_epoll = Client::connect(epoll.addr).map_err(|e| e.to_string())?;
    let mut via_threads = Client::connect(threads.addr).map_err(|e| e.to_string())?;
    for seed in 0..3u64 {
        let x = item_input(model.input, 4000 + seed);
        let want = plan.forward(&x, &mut ws).map_err(|e| e.to_string())?;
        let got_epoll = via_epoll
            .infer_model(model_name, x.clone())
            .map_err(|e| format!("epoll transport: {e}"))?;
        let got_threads = via_threads
            .infer_model(model_name, x)
            .map_err(|e| format!("threads transport: {e}"))?;
        if got_epoll != got_threads || got_epoll != want {
            return Err(format!(
                "{model_name}@{precision}: transports disagree (seed {seed})"
            ));
        }
    }
    Ok(())
}

fn run_sweep(args: &Args) -> Result<String, String> {
    let model = find_model(SWEEP_MODEL).map_err(|e| e.to_string())?;
    let plan = Arc::new(model.compile(Precision::Fp32).map_err(|e| e.to_string())?);

    // Phase 1: bitwise oracle, epoll vs threads vs local plan. The full
    // sweep covers the whole serving zoo at every precision; smoke mode
    // narrows to one model so the CI job stays bounded.
    let oracle_set: Vec<(String, Precision)> = if args.smoke {
        vec![(SWEEP_MODEL.into(), Precision::Fp32)]
    } else {
        serving_zoo()
            .iter()
            .flat_map(|m| ALL_PRECISIONS.map(|p| (m.name.to_string(), p)))
            .collect()
    };
    let mut oracle_entries = Vec::new();
    for (name, precision) in &oracle_set {
        oracle_check(name, *precision)?;
        println!("[loadgen] oracle {name}@{precision}: epoll == threads == plan.forward");
        oracle_entries.push(format!("\"{name}@{precision}\""));
    }

    // Phase 2: the connection sweep. One long-lived epoll server child
    // sized for the largest point; the client checks parity per
    // response, so references come from the local plan (same seed).
    let max_conns = args.sweep_conns.iter().copied().max().unwrap_or(1024);
    let queue = (max_conns + 1024).max(8192);
    let queue_flag = queue.to_string();
    let cap_flag = (max_conns + 256).to_string();
    let server = spawn_served(&[
        "--model",
        SWEEP_MODEL,
        "--precision",
        "fp32",
        "--transport",
        "epoll",
        "--shards",
        "1",
        "--max-batch",
        "16",
        "--max-wait-micros",
        "200",
        "--queue",
        &queue_flag,
        "--max-conns",
        &cap_flag,
    ])?;

    let mut ws = Workspace::for_plan(&plan, 1);
    let mut inputs = Vec::with_capacity(SWEEP_INPUTS);
    let mut expected = Vec::with_capacity(SWEEP_INPUTS);
    for seed in 0..SWEEP_INPUTS as u64 {
        let x = item_input(model.input, 9000 + seed);
        expected.push(plan.forward(&x, &mut ws).map_err(|e| e.to_string())?);
        inputs.push(x);
    }

    let mut points = Vec::new();
    let mut all_clean = true;
    let mut peak_conns = 0usize;
    for &conns in &args.sweep_conns {
        let requests_per_conn = if args.smoke {
            4
        } else {
            (20_000usize.div_ceil(conns)).max(2)
        };
        let opts = MuxOptions {
            connections: conns,
            threads: 4,
            pipeline: 1,
            requests_per_conn,
            model: SWEEP_MODEL.into(),
            inputs: inputs.clone(),
            expected: Some(expected.clone()),
            connect_retries: 400,
            deadline: Duration::from_secs(180),
        };
        let report = run_mux(server.addr, &opts).map_err(|e| format!("{conns} conns: {e}"))?;
        let clean = report.clean();
        all_clean &= clean;
        if clean {
            peak_conns = peak_conns.max(conns);
        }

        // in-process baseline at the same outstanding-request depth
        let base_cfg = ServeConfig::default()
            .with_batching(16, Duration::from_micros(200))
            .with_queue(queue);
        let base_svc = Service::spawn(Arc::clone(&plan), base_cfg).map_err(|e| e.to_string())?;
        pipelined_loop(
            &base_svc,
            model.input,
            conns * requests_per_conn,
            conns.min(queue - 16),
        );
        let base = base_svc.shutdown();
        let ratio = report.p99_micros as f64 / base.p99_micros.max(1) as f64;

        println!(
            "[loadgen] sweep {conns} conns × {requests_per_conn} reqs: {} — {:.0} rps, p50 {} µs, p99 {} µs (p99 ratio vs in-process {:.2})",
            if clean { "clean" } else { "DIRTY" },
            report.rps,
            report.p50_micros,
            report.p99_micros,
            ratio
        );
        points.push(format!(
            "    {{\"requests_per_conn\": {requests_per_conn}, \"clean\": {clean}, \"report\": {}, \"baseline_p99_micros\": {}, \"p99_ratio_vs_inprocess\": {:.3}}}",
            report.to_json(),
            base.p99_micros,
            ratio
        ));
    }
    drop(server);

    if args.smoke {
        assert!(
            all_clean,
            "smoke: a sweep point lost, duplicated, reordered, or corrupted responses"
        );
        println!("[loadgen] net smoke gate passed (all sweep points clean)");
    }

    Ok(format!
        (
        "{{\n  \"mode\": \"sweep\",\n  \"smoke\": {},\n  \"model\": \"{SWEEP_MODEL}\",\n  \"precision\": \"fp32\",\n  \"transport\": \"epoll\",\n  \"oracle_bitwise_identical\": true,\n  \"oracle_checked\": [{}],\n  \"all_points_clean\": {},\n  \"peak_clean_connections\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
        args.smoke,
        oracle_entries.join(", "),
        all_clean,
        peak_conns,
        points.join(",\n"),
    ))
}

// ---------------------------------------------------------------------------
// --sched: the SLO-aware scheduler under ≥3× overload + transport parity
// ---------------------------------------------------------------------------

/// Model the sched run drives. Convolution-bound, so one worker's
/// capacity is low enough for a single pacer thread to offer a clean 3×
/// overload, and per-item service time is well under the budget.
const SCHED_MODEL: &str = "lenet5";
/// Guaranteed-class latency budget for the sched run. The pipeline's
/// structural floor — one forming window plus `workers + 1` full batches
/// the EDF window cannot reorder past — is ~half of this on the
/// one-worker fixture, so the gate has real margin without being slack.
const SCHED_BUDGET_MICROS: u64 = 50_000;
/// Every `SCHED_GUARANTEED_EVERY`-th arrival is guaranteed; the rest are
/// best-effort. 1-in-8 keeps the guaranteed class itself well inside
/// capacity (~0.44× at a 3.5× offered rate) — the gate tests that
/// best-effort overload cannot displace an admissible guaranteed class,
/// not that an over-committed guaranteed class meets its own budget.
const SCHED_GUARANTEED_EVERY: usize = 8;

fn class_fragment(c: &ClassSnapshot) -> String {
    format!(
        concat!(
            "{{\"admitted\": {}, \"rejected_admission\": {}, \"shed\": {}, ",
            "\"completed\": {}, \"p50_micros\": {}, \"p99_micros\": {}}}"
        ),
        c.admitted, c.rejected_admission, c.shed, c.completed, c.p50_micros, c.p99_micros,
    )
}

/// SLO parity across transports: the same SLO-tagged inputs through an
/// epoll-transport `--slo` server, a threads-transport `--slo` server,
/// and the local reference plan must produce identical bytes, for both
/// the guaranteed and the best-effort class.
fn sched_parity(model_name: &str, precision: Precision) -> Result<(), String> {
    let model = find_model(model_name).map_err(|e| e.to_string())?;
    let plan = model.compile(precision).map_err(|e| e.to_string())?;
    let mut ws = Workspace::for_plan(&plan, 1);
    let precision_flag = precision.to_string();
    let slo_flag = format!("guaranteed:{SCHED_BUDGET_MICROS}");
    let common = [
        "--model",
        model_name,
        "--precision",
        &precision_flag,
        "--slo",
        &slo_flag,
    ];
    let epoll = spawn_served(&[&common[..], &["--transport", "epoll", "--shards", "1"]].concat())?;
    let threads = spawn_served(&[&common[..], &["--transport", "threads"]].concat())?;
    let mut via_epoll = Client::connect(epoll.addr).map_err(|e| e.to_string())?;
    let mut via_threads = Client::connect(threads.addr).map_err(|e| e.to_string())?;
    let specs = [
        SloSpec::guaranteed(Duration::from_micros(SCHED_BUDGET_MICROS)),
        SloSpec::best_effort(),
    ];
    for seed in 0..3u64 {
        for spec in specs {
            let x = item_input(model.input, 6000 + seed);
            let want = plan.forward(&x, &mut ws).map_err(|e| e.to_string())?;
            let got_epoll = via_epoll
                .infer_slo(model_name, spec, x.clone())
                .map_err(|e| format!("epoll transport ({spec}): {e}"))?;
            let got_threads = via_threads
                .infer_slo(model_name, spec, x)
                .map_err(|e| format!("threads transport ({spec}): {e}"))?;
            if got_epoll != got_threads || got_epoll != want {
                return Err(format!(
                    "{model_name}@{precision}: SLO transports disagree (seed {seed}, {spec})"
                ));
            }
        }
    }
    Ok(())
}

fn run_sched(args: &Args) -> Result<String, String> {
    let model = find_model(SCHED_MODEL).map_err(|e| e.to_string())?;
    let plan = Arc::new(model.compile(Precision::Fp32).map_err(|e| e.to_string())?);
    let budget = Duration::from_micros(SCHED_BUDGET_MICROS);

    // Phase 1: FIFO baseline capacity on one worker — the reference the
    // overload is sized against. One worker keeps capacity low enough
    // that a single pacer thread can genuinely offer 3× of it.
    let cap_requests = if args.smoke { 1_500 } else { 6_000 };
    let cap_cfg = ServeConfig::default()
        .with_workers(1)
        .with_batching(16, Duration::from_micros(200))
        .with_queue(1024);
    let cap_svc = Service::spawn(Arc::clone(&plan), cap_cfg).map_err(|e| e.to_string())?;
    let capacity_rps = pipelined_loop(&cap_svc, model.input, cap_requests, 256);
    cap_svc.shutdown();
    println!("[loadgen] sched capacity: {capacity_rps:.0} rps (1 worker, FIFO)");

    // Phase 2: mixed traffic at ≥3× capacity from a seeded bursty
    // schedule into an admission-controlled, auto-tuned service.
    // target 3.5× so pacer overhead cannot drag the *achieved* rate
    // under the 3× floor the gate asserts
    let offered_target = (capacity_rps * 3.5).ceil().max(1.0) as u64;
    let total = if args.smoke { 2_000 } else { 8_000 };
    let schedule = ArrivalSchedule::bursty(42, offered_target, total, 16);
    let sched_cfg = ServeConfig::default()
        .with_workers(1)
        .with_batching(16, Duration::from_micros(2_000))
        .with_queue(256)
        .with_slo(SloSpec::guaranteed(budget))
        .with_auto_tune(true);
    let svc = Service::spawn(Arc::clone(&plan), sched_cfg).map_err(|e| e.to_string())?;

    let mut submit_rejected = [0u64; 2]; // [guaranteed, best_effort]
    let mut pacer_secs = 0.0f64;
    let (tx, rx) = std::sync::mpsc::channel();
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            // collector: resolve tickets off the pacer's critical path
            while let Ok(ticket) = rx.recv() {
                let t: mlcnn_serve::Ticket = ticket;
                let _ = t.wait();
            }
        });
        let x = item_input(model.input, 77);
        for (i, &offset) in schedule.offsets_nanos().iter().enumerate() {
            let due = start + Duration::from_nanos(offset);
            if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
            let guaranteed = i % SCHED_GUARANTEED_EVERY == 0;
            let spec = if guaranteed {
                SloSpec::guaranteed(budget)
            } else {
                SloSpec::best_effort()
            };
            match svc.submit_with_slo(x.clone(), spec) {
                Ok(t) => {
                    let _ = tx.send(t);
                }
                // overload rejections (admission or full queue) are the
                // scheduler doing its job; metrics attribute them
                Err(_) => submit_rejected[usize::from(!guaranteed)] += 1,
            }
        }
        // measure the pacer alone: the scope also waits for the
        // collector, whose drain time is not part of the offered rate
        pacer_secs = start.elapsed().as_secs_f64();
        drop(tx);
    });
    let offered_rps = total as f64 / pacer_secs.max(f64::EPSILON);
    let snap = svc.shutdown();

    let overload_factor = offered_rps / capacity_rps.max(1.0);
    let zero_guaranteed_sheds = snap.guaranteed.shed == 0;
    let guaranteed_holds_budget = snap.guaranteed.p99_micros <= SCHED_BUDGET_MICROS;
    let best_effort_absorbed = snap.shed_overload + snap.rejected_full + snap.best_effort.shed > 0;
    println!(
        "[loadgen] sched overload: offered {offered_rps:.0} rps ({overload_factor:.2}x capacity) — guaranteed p99 {} µs (budget {SCHED_BUDGET_MICROS}), {} guaranteed sheds, best-effort absorbed {} (shed_overload {} + rejected_full {})",
        snap.guaranteed.p99_micros,
        snap.guaranteed.shed,
        snap.shed_overload + snap.rejected_full,
        snap.shed_overload,
        snap.rejected_full,
    );

    // Phase 3: SLO frames bitwise parity-clean across both transports.
    sched_parity(SCHED_MODEL, Precision::Fp32)?;
    println!("[loadgen] sched parity: epoll == threads == plan.forward under --slo");

    if args.smoke {
        assert!(
            overload_factor >= 3.0,
            "sched: offered only {overload_factor:.2}x capacity (pacer fell behind)"
        );
        assert!(
            zero_guaranteed_sheds,
            "sched: {} guaranteed requests were shed past their deadline",
            snap.guaranteed.shed
        );
        assert!(
            guaranteed_holds_budget,
            "sched: guaranteed p99 {} µs breaches the {SCHED_BUDGET_MICROS} µs budget",
            snap.guaranteed.p99_micros
        );
        assert!(
            best_effort_absorbed,
            "sched: no overload was shed or rejected at 3x capacity"
        );
        assert!(
            snap.fully_drained(),
            "sched: service dropped in-flight requests"
        );
        println!("[loadgen] sched smoke gate passed");
    }

    Ok(format!(
        concat!(
            "{{\n",
            "  \"mode\": \"sched\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"model\": \"{model}\",\n",
            "  \"precision\": \"fp32\",\n",
            "  \"budget_micros\": {budget},\n",
            "  \"guaranteed_every\": {every},\n",
            "  \"arrivals\": {{\"kind\": \"bursty\", \"seed\": 42, \"burst\": 16, \"total\": {total}}},\n",
            "  \"capacity_rps\": {capacity},\n",
            "  \"offered_rps\": {offered},\n",
            "  \"overload_factor\": {factor},\n",
            "  \"zero_guaranteed_sheds\": {zgs},\n",
            "  \"guaranteed_holds_budget\": {ghb},\n",
            "  \"best_effort_absorbed\": {bea},\n",
            "  \"fully_drained\": {drained},\n",
            "  \"shed_overload\": {shed_overload},\n",
            "  \"rejected_full\": {rejected_full},\n",
            "  \"shed_expired\": {shed_expired},\n",
            "  \"submit_rejected\": {{\"guaranteed\": {srg}, \"best_effort\": {srb}}},\n",
            "  \"guaranteed\": {g},\n",
            "  \"best_effort\": {b},\n",
            "  \"transport_parity\": {{\"model\": \"{model}\", \"transports\": [\"epoll\", \"threads\"], \"bitwise_identical\": true}}\n",
            "}}\n",
        ),
        smoke = args.smoke,
        model = SCHED_MODEL,
        budget = SCHED_BUDGET_MICROS,
        every = SCHED_GUARANTEED_EVERY,
        total = total,
        capacity = fmt_f64(capacity_rps),
        offered = fmt_f64(offered_rps),
        factor = fmt_f64(overload_factor),
        zgs = zero_guaranteed_sheds,
        ghb = guaranteed_holds_budget,
        bea = best_effort_absorbed,
        drained = snap.fully_drained(),
        shed_overload = snap.shed_overload,
        rejected_full = snap.rejected_full,
        shed_expired = snap.shed_expired,
        srg = submit_rejected[0],
        srb = submit_rejected[1],
        g = class_fragment(&snap.guaranteed),
        b = class_fragment(&snap.best_effort),
    ))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mlcnn-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.sched {
        run_sched(&args)
    } else if args.sweep {
        run_sweep(&args)
    } else if args.remote.is_some() {
        run_remote(&args)
    } else {
        run_local(&args)
    };
    match result {
        Ok(json) => {
            if let Err(e) = std::fs::write(&args.out, &json) {
                eprintln!("mlcnn-loadgen: write {}: {e}", args.out);
                return ExitCode::FAILURE;
            }
            println!("[loadgen] wrote {}", args.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mlcnn-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
