//! `mlcnn-serve` — dynamic micro-batching inference runtime over the
//! compiled [`mlcnn_core::ExecutionPlan`].
//!
//! The crate turns a plan into an in-process service:
//!
//! ```text
//! submit() ──▶ bounded window ──▶ batcher thread ──▶ batch channel ──▶ workers
//!   │            (reject when        coalesces under     (bounded,        │
//!   │             full: V001          (max_batch,         blocks the      ▼
//!   ▼             capacity)           max_wait)           batcher)     forward
//! Ticket ◀──────────── per-request response channel ◀────────────── fan-out
//! ```
//!
//! * **Backpressure everywhere.** The submission window rejects with
//!   [`ServeError::QueueFull`] at capacity; the batch channel is bounded
//!   and blocks the batcher; nothing in the pipeline is unbounded.
//! * **Parity.** Every execution path the service takes is bitwise
//!   identical to calling [`mlcnn_core::ExecutionPlan::forward`] on each
//!   request alone — including INT8, where coalesced whole-batch
//!   execution would change the batch-global activation scale, so the
//!   service runs INT8 batches per-item via `forward_each`.
//! * **Deadlines.** Requests carry optional deadlines; expired work is
//!   shed before execution and answered with
//!   [`ServeError::DeadlineExceeded`].
//! * **Graceful shutdown.** [`Service::shutdown`] drains every admitted
//!   request exactly once, then joins the batcher and workers.
//! * **SLO classes.** Requests (or whole services) carry an
//!   [`mlcnn_sched::SloSpec`]: `guaranteed` work is admission-checked
//!   against the calibrated cost oracle and scheduled
//!   earliest-deadline-first; `best_effort` work absorbs rejection and
//!   overload shedding. With no spec configured the batcher stays on its
//!   pre-SLO FIFO path verbatim.
//! * **Gated construction.** [`Service::spawn`] refuses configurations
//!   that fail the `mlcnn-check` `V###` serving lints.
//!
//! * **Multi-model routing & hot-swap.** [`Router`] fronts a
//!   [`mlcnn_registry::ModelRegistry`]: one endpoint per model over a
//!   shared workspace pool, publish/rollback swapping revisions under
//!   live traffic with in-flight requests draining on the old plan and
//!   zero lost submissions.
//!
//! The [`wire`]/[`net`] modules add a length-prefixed TCP front-end
//! (`mlcnn-served`, single-model or `--registry` mode) and blocking
//! client; `mlcnn-loadgen` drives either the in-process service or a
//! remote server and writes `BENCH_serve.json`; `mlcnn-pack` packs the
//! zoo (or trained checkpoints) into registry artifacts; and
//! `mlcnn-registry-smoke` rehearses a hot-swap under load end-to-end.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod error;
pub mod metrics;
pub mod microbatch;
pub mod models;
pub mod net;
pub mod router;
pub mod service;
pub mod wire;

pub use config::{available_workers, ServeConfig, DEFAULT_ARENA_BUDGET_BYTES};
pub use error::ServeError;
pub use metrics::{ClassSnapshot, LatencyHistogram, Metrics, MetricsSnapshot};
pub use microbatch::{Arrival, BatchPolicy, Microbatcher};
pub use mlcnn_sched::{SloClass, SloSpec};
pub use models::{find_model, serving_zoo, ServeModel, SERVE_SEED};
pub use net::{serve_listener, Client, Dispatch, NamedService};
pub use router::Router;
pub use service::{CompletionNotify, Service, Ticket};
pub use wire::{read_frame, write_frame, Frame, MAX_FRAME_BYTES, MAX_WIRE_MODEL_NAME};
