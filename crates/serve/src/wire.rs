//! The length-prefixed frame protocol `mlcnn-served` speaks.
//!
//! Every frame is a big-endian `u32` body length followed by the body:
//!
//! ```text
//! body := kind:u8  id:u64(BE)  payload
//!
//! 0x01 InferRequest    payload = model:name, c:u16 h:u16 w:u16,
//!                                then c·h·w f32 (LE)
//! 0x02 MetricsRequest  payload = (empty)
//! 0x03 PublishRequest  payload = model:name, revision:u64
//! 0x04 RollbackRequest payload = model:name
//! 0x05 InferSloRequest payload = model:name, class:u8,
//!                                budget_micros:u64, then as 0x01's tensor
//! 0x81 InferOk         payload = c:u16 h:u16 w:u16, then c·h·w f32 (LE)
//! 0x82 MetricsOk       payload = len:u32, UTF-8 JSON
//! 0x83 AdminOk         payload = model:name, active:u64, previous:u64
//! 0xE1 Error           payload = len:u16, UTF-8 message
//!
//! name := len:u8, UTF-8 bytes
//! ```
//!
//! Ids are caller-chosen correlation tokens echoed verbatim in the
//! response; the server answers a connection's frames in submission
//! order, so pipelining many requests on one connection is well-defined
//! with or without them. Tensors travel as single items (batch dim 1) —
//! batching is the *server's* job, invisible on the wire.
//!
//! The `model` name routes the request in registry mode; an *empty* name
//! means "the server's only model" and is what a single-model server
//! accepts (it also tolerates its own model's name). Publish/rollback
//! drive the registry server's hot-swap and are rejected by single-model
//! servers.
//!
//! The SLO class travels only in the *new* `0x05` frame (class byte per
//! `SloClass::to_wire`, budget in µs, `0` = none), so every pre-SLO frame
//! is byte-identical to before and classless clients and servers
//! interoperate unchanged — backward compatibility by construction.
//!
//! Integers are network-endian and floats little-endian, matching the
//! `mlcnn_nn::serialize` checkpoint convention.

use bytes::{Buf, BufMut, BytesMut};
use mlcnn_sched::SloClass;
use mlcnn_tensor::{Shape4, Tensor};
use std::io::{self, Read, Write};

/// Upper bound on a frame body; a peer announcing more is protocol-broken
/// (64 MiB holds a ~16M-element activation, far beyond any zoo model).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

const KIND_INFER_REQUEST: u8 = 0x01;
const KIND_METRICS_REQUEST: u8 = 0x02;
const KIND_PUBLISH_REQUEST: u8 = 0x03;
const KIND_ROLLBACK_REQUEST: u8 = 0x04;
const KIND_INFER_SLO_REQUEST: u8 = 0x05;
const KIND_INFER_OK: u8 = 0x81;
const KIND_METRICS_OK: u8 = 0x82;
const KIND_ADMIN_OK: u8 = 0x83;
const KIND_ERROR: u8 = 0xE1;

/// Longest model name a frame can carry (one length byte on the wire).
pub const MAX_WIRE_MODEL_NAME: usize = u8::MAX as usize;

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: run inference on one input item.
    InferRequest {
        /// Correlation id, echoed in the response.
        id: u64,
        /// Model to route to; empty means the server's only model.
        model: String,
        /// The input item (batch dim 1).
        input: Tensor<f32>,
    },
    /// Client → server: fetch a metrics snapshot.
    MetricsRequest {
        /// Correlation id, echoed in the response.
        id: u64,
    },
    /// Client → server: make `revision` the active revision of `model`
    /// (registry servers only).
    PublishRequest {
        /// Correlation id, echoed in the response.
        id: u64,
        /// Model to switch.
        model: String,
        /// Revision to activate.
        revision: u64,
    },
    /// Client → server: revert `model` to the revision active before the
    /// last publish (registry servers only).
    RollbackRequest {
        /// Correlation id, echoed in the response.
        id: u64,
        /// Model to revert.
        model: String,
    },
    /// Client → server: run inference on one input item under an explicit
    /// SLO class. The budget is microseconds (`0` = no budget) and only
    /// meaningful for the guaranteed class.
    InferSloRequest {
        /// Correlation id, echoed in the response.
        id: u64,
        /// Model to route to; empty means the server's only model.
        model: String,
        /// Serving class.
        class: SloClass,
        /// Latency budget in µs; `0` encodes "none".
        budget_micros: u64,
        /// The input item (batch dim 1).
        input: Tensor<f32>,
    },
    /// Server → client: successful inference.
    InferOk {
        /// Correlation id of the request this answers.
        id: u64,
        /// The output item (batch dim 1).
        output: Tensor<f32>,
    },
    /// Server → client: metrics snapshot JSON.
    MetricsOk {
        /// Correlation id of the request this answers.
        id: u64,
        /// `MetricsSnapshot::to_json` output.
        json: String,
    },
    /// Server → client: a publish or rollback took effect.
    AdminOk {
        /// Correlation id of the request this answers.
        id: u64,
        /// Model that switched.
        model: String,
        /// Revision now active.
        active: u64,
        /// Revision active before the switch.
        previous: u64,
    },
    /// Server → client: the correlated request failed.
    Error {
        /// Correlation id of the request this answers.
        id: u64,
        /// Rendered error.
        message: String,
    },
}

impl Frame {
    /// The frame's correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Frame::InferRequest { id, .. }
            | Frame::MetricsRequest { id }
            | Frame::PublishRequest { id, .. }
            | Frame::RollbackRequest { id, .. }
            | Frame::InferSloRequest { id, .. }
            | Frame::InferOk { id, .. }
            | Frame::MetricsOk { id, .. }
            | Frame::AdminOk { id, .. }
            | Frame::Error { id, .. } => *id,
        }
    }

    /// Encode as a complete wire frame (length prefix included).
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut body = BytesMut::with_capacity(16);
        match self {
            Frame::InferRequest { id, model, input } => {
                body.put_u8(KIND_INFER_REQUEST);
                body.put_u64(*id);
                put_name(&mut body, model)?;
                put_item(&mut body, input)?;
            }
            Frame::MetricsRequest { id } => {
                body.put_u8(KIND_METRICS_REQUEST);
                body.put_u64(*id);
            }
            Frame::PublishRequest {
                id,
                model,
                revision,
            } => {
                body.put_u8(KIND_PUBLISH_REQUEST);
                body.put_u64(*id);
                put_name(&mut body, model)?;
                body.put_u64(*revision);
            }
            Frame::RollbackRequest { id, model } => {
                body.put_u8(KIND_ROLLBACK_REQUEST);
                body.put_u64(*id);
                put_name(&mut body, model)?;
            }
            Frame::InferSloRequest {
                id,
                model,
                class,
                budget_micros,
                input,
            } => {
                body.put_u8(KIND_INFER_SLO_REQUEST);
                body.put_u64(*id);
                put_name(&mut body, model)?;
                body.put_u8(class.to_wire());
                body.put_u64(*budget_micros);
                put_item(&mut body, input)?;
            }
            Frame::InferOk { id, output } => {
                body.put_u8(KIND_INFER_OK);
                body.put_u64(*id);
                put_item(&mut body, output)?;
            }
            Frame::MetricsOk { id, json } => {
                body.put_u8(KIND_METRICS_OK);
                body.put_u64(*id);
                let bytes = json.as_bytes();
                body.put_u32(u32::try_from(bytes.len()).map_err(|_| oversize("metrics json"))?);
                body.put_slice(bytes);
            }
            Frame::AdminOk {
                id,
                model,
                active,
                previous,
            } => {
                body.put_u8(KIND_ADMIN_OK);
                body.put_u64(*id);
                put_name(&mut body, model)?;
                body.put_u64(*active);
                body.put_u64(*previous);
            }
            Frame::Error { id, message } => {
                body.put_u8(KIND_ERROR);
                body.put_u64(*id);
                let bytes = message.as_bytes();
                let len = u16::try_from(bytes.len().min(u16::MAX as usize)).unwrap_or(u16::MAX);
                body.put_u16(len);
                body.put_slice(&bytes[..len as usize]);
            }
        }
        let body = body.freeze();
        if body.len() > MAX_FRAME_BYTES {
            return Err(oversize("frame"));
        }
        let mut framed = BytesMut::with_capacity(4 + body.len());
        framed.put_u32(body.len() as u32);
        framed.put_slice(&body);
        Ok(framed.freeze().to_vec())
    }

    /// Decode a frame body (the bytes after the length prefix).
    pub fn decode_body(mut body: &[u8]) -> io::Result<Frame> {
        if !body.has_remaining() {
            return Err(bad("empty frame body"));
        }
        let kind = body.get_u8();
        if body.remaining() < 8 {
            return Err(bad("frame truncated before id"));
        }
        let id = body.get_u64();
        let frame = match kind {
            KIND_INFER_REQUEST => Frame::InferRequest {
                id,
                model: get_name(&mut body)?,
                input: get_item(&mut body)?,
            },
            KIND_INFER_OK => Frame::InferOk {
                id,
                output: get_item(&mut body)?,
            },
            KIND_METRICS_REQUEST => Frame::MetricsRequest { id },
            KIND_PUBLISH_REQUEST => {
                let model = get_name(&mut body)?;
                if body.remaining() < 8 {
                    return Err(bad("publish frame truncated before revision"));
                }
                Frame::PublishRequest {
                    id,
                    model,
                    revision: body.get_u64(),
                }
            }
            KIND_ROLLBACK_REQUEST => Frame::RollbackRequest {
                id,
                model: get_name(&mut body)?,
            },
            KIND_INFER_SLO_REQUEST => {
                let model = get_name(&mut body)?;
                if body.remaining() < 9 {
                    return Err(bad("SLO frame truncated before class/budget"));
                }
                let class = SloClass::from_wire(body.get_u8())
                    .ok_or_else(|| bad("unknown SLO class byte"))?;
                Frame::InferSloRequest {
                    id,
                    model,
                    class,
                    budget_micros: body.get_u64(),
                    input: get_item(&mut body)?,
                }
            }
            KIND_ADMIN_OK => {
                let model = get_name(&mut body)?;
                if body.remaining() < 16 {
                    return Err(bad("admin frame truncated before revisions"));
                }
                Frame::AdminOk {
                    id,
                    model,
                    active: body.get_u64(),
                    previous: body.get_u64(),
                }
            }
            KIND_METRICS_OK => {
                if body.remaining() < 4 {
                    return Err(bad("metrics frame truncated"));
                }
                let len = body.get_u32() as usize;
                if body.remaining() < len {
                    return Err(bad("metrics json truncated"));
                }
                let mut buf = vec![0u8; len];
                body.copy_to_slice(&mut buf);
                Frame::MetricsOk {
                    id,
                    json: String::from_utf8(buf).map_err(|_| bad("metrics json not UTF-8"))?,
                }
            }
            KIND_ERROR => {
                if body.remaining() < 2 {
                    return Err(bad("error frame truncated"));
                }
                let len = body.get_u16() as usize;
                if body.remaining() < len {
                    return Err(bad("error message truncated"));
                }
                let mut buf = vec![0u8; len];
                body.copy_to_slice(&mut buf);
                Frame::Error {
                    id,
                    message: String::from_utf8(buf).map_err(|_| bad("error message not UTF-8"))?,
                }
            }
            other => return Err(bad(format!("unknown frame kind 0x{other:02x}"))),
        };
        if body.has_remaining() {
            return Err(bad("trailing bytes after frame body"));
        }
        Ok(frame)
    }
}

fn put_name(body: &mut BytesMut, name: &str) -> io::Result<()> {
    let bytes = name.as_bytes();
    let len = u8::try_from(bytes.len()).map_err(|_| oversize("model name"))?;
    body.put_u8(len);
    body.put_slice(bytes);
    Ok(())
}

fn get_name(body: &mut &[u8]) -> io::Result<String> {
    if !body.has_remaining() {
        return Err(bad("model name truncated"));
    }
    let len = body.get_u8() as usize;
    if body.remaining() < len {
        return Err(bad("model name truncated"));
    }
    let mut buf = vec![0u8; len];
    body.copy_to_slice(&mut buf);
    String::from_utf8(buf).map_err(|_| bad("model name not UTF-8"))
}

fn put_item(body: &mut BytesMut, t: &Tensor<f32>) -> io::Result<()> {
    let s = t.shape();
    if s.n != 1 {
        return Err(bad(format!("wire tensors are single items, got n={}", s.n)));
    }
    for dim in [s.c, s.h, s.w] {
        u16::try_from(dim).map_err(|_| oversize("tensor extent"))?;
    }
    body.put_u16(s.c as u16);
    body.put_u16(s.h as u16);
    body.put_u16(s.w as u16);
    for &v in t.as_slice() {
        body.put_f32_le(v);
    }
    Ok(())
}

fn get_item(body: &mut &[u8]) -> io::Result<Tensor<f32>> {
    if body.remaining() < 6 {
        return Err(bad("tensor header truncated"));
    }
    let c = body.get_u16() as usize;
    let h = body.get_u16() as usize;
    let w = body.get_u16() as usize;
    let len = c * h * w;
    if body.remaining() < len * 4 {
        return Err(bad("tensor data truncated"));
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(body.get_f32_le());
    }
    Tensor::from_vec(Shape4::new(1, c, h, w), data).map_err(|e| bad(e.to_string()))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn oversize(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, format!("{what} too large"))
}

/// Read one frame from a blocking stream. `Ok(None)` on clean EOF at a
/// frame boundary; mid-frame EOF is `UnexpectedEof`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    // Read the first prefix byte alone: zero bytes is a clean
    // disconnect, but EOF after 1-3 prefix bytes is a *torn* frame and
    // must surface as an error (`read_exact` alone cannot tell the two
    // apart).
    let first = loop {
        match r.read(&mut len_buf[..1]) {
            Ok(n) => break n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    };
    if first == 0 {
        return Ok(None);
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(bad(format!("announced frame of {len} bytes")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Frame::decode_body(&body).map(Some)
}

/// Write one frame to a blocking stream (caller flushes).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcnn_sched::SloSpec;
    use mlcnn_tensor::init;

    fn item() -> Tensor<f32> {
        init::uniform(Shape4::new(1, 3, 4, 5), -2.0, 2.0, &mut init::rng(3))
    }

    #[test]
    fn frames_round_trip_bitwise() {
        let frames = vec![
            Frame::InferRequest {
                id: 7,
                model: String::new(),
                input: item(),
            },
            Frame::InferRequest {
                id: 7,
                model: "lenet5".into(),
                input: item(),
            },
            Frame::MetricsRequest { id: 8 },
            Frame::PublishRequest {
                id: 10,
                model: "lenet5".into(),
                revision: 2,
            },
            Frame::RollbackRequest {
                id: 11,
                model: "lenet5".into(),
            },
            Frame::InferSloRequest {
                id: 12,
                model: "lenet5".into(),
                class: SloClass::Guaranteed,
                budget_micros: 25_000,
                input: item(),
            },
            Frame::InferSloRequest {
                id: 13,
                model: String::new(),
                class: SloClass::BestEffort,
                budget_micros: 0,
                input: item(),
            },
            Frame::InferOk {
                id: 7,
                output: item(),
            },
            Frame::MetricsOk {
                id: 8,
                json: "{\"submitted\":1}".into(),
            },
            Frame::AdminOk {
                id: 10,
                model: "lenet5".into(),
                active: 2,
                previous: 1,
            },
            Frame::Error {
                id: 9,
                message: "queue full".into(),
            },
        ];
        for f in frames {
            let encoded = f.encode().unwrap();
            let mut cursor: &[u8] = &encoded;
            let decoded = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(decoded, f);
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn stream_of_frames_reads_in_order_then_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::MetricsRequest { id: 1 }).unwrap();
        write_frame(
            &mut wire,
            &Frame::InferRequest {
                id: 2,
                model: "mlp-mini".into(),
                input: item(),
            },
        )
        .unwrap();
        let mut cursor: &[u8] = &wire;
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().id(), 1);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().id(), 2);
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_and_garbage_frames_are_rejected() {
        let encoded = Frame::InferRequest {
            id: 3,
            model: "m".into(),
            input: item(),
        }
        .encode()
        .unwrap();
        // mid-frame EOF
        let mut cursor: &[u8] = &encoded[..encoded.len() - 2];
        assert!(read_frame(&mut cursor).is_err());
        // unknown kind
        let mut wire = 2u32.to_be_bytes().to_vec();
        wire.extend_from_slice(&[0x55, 0x00]);
        let mut cursor: &[u8] = &wire;
        assert!(read_frame(&mut cursor).is_err());
        // announced frame beyond the cap
        let mut wire = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes().to_vec();
        wire.push(0);
        let mut cursor: &[u8] = &wire;
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn batched_tensors_are_not_wire_encodable() {
        let batched = Tensor::<f32>::zeros(Shape4::new(2, 1, 2, 2));
        assert!(Frame::InferRequest {
            id: 1,
            model: String::new(),
            input: batched
        }
        .encode()
        .is_err());
    }

    #[test]
    fn slo_frame_spec_round_trips_and_rejects_unknown_class() {
        let spec = SloSpec::guaranteed(std::time::Duration::from_micros(25_000));
        let f = Frame::InferSloRequest {
            id: 1,
            model: String::new(),
            class: spec.class,
            budget_micros: spec.budget_micros(),
            input: item(),
        };
        let encoded = f.encode().unwrap();
        match Frame::decode_body(&encoded[4..]).unwrap() {
            Frame::InferSloRequest {
                class,
                budget_micros,
                ..
            } => assert_eq!(SloSpec::from_wire(class, budget_micros), spec),
            other => panic!("wrong frame: {other:?}"),
        }
        // corrupt the class byte (directly after the 4-byte prefix,
        // kind, id, and the empty name's length byte)
        let mut corrupt = encoded.clone();
        corrupt[4 + 1 + 8 + 1] = 7;
        assert!(Frame::decode_body(&corrupt[4..]).is_err());
    }

    #[test]
    fn pre_slo_frames_encode_byte_identically_regardless_of_slo_support() {
        // backward compatibility: the 0x01 infer frame carries no class
        // byte — its encoding is untouched by the SLO extension
        let f = Frame::InferRequest {
            id: 7,
            model: "lenet5".into(),
            input: item(),
        };
        let encoded = f.encode().unwrap();
        assert_eq!(encoded[4], 0x01);
        // kind, id, name len, name, tensor header, payload — no SLO bytes
        let expected_len = 1 + 8 + 1 + 6 + 6 + 3 * 4 * 5 * 4;
        assert_eq!(encoded.len(), 4 + expected_len);
    }

    #[test]
    fn overlong_model_name_is_not_encodable() {
        assert!(Frame::RollbackRequest {
            id: 1,
            model: "x".repeat(MAX_WIRE_MODEL_NAME + 1),
        }
        .encode()
        .is_err());
        // the longest legal name round-trips
        let f = Frame::RollbackRequest {
            id: 1,
            model: "x".repeat(MAX_WIRE_MODEL_NAME),
        };
        let encoded = f.encode().unwrap();
        assert_eq!(Frame::decode_body(&encoded[4..]).unwrap(), f);
    }
}
