//! The in-process inference service: bounded intake → micro-batcher →
//! worker pool, all on std threads and channels.
//!
//! ```text
//!  submit() ──► intake window (bounded, V001)        rejected ──► QueueFull
//!                  │ (max_batch, max_wait) policy
//!                  ▼
//!            batcher thread ──► batch channel (bounded at `workers`)
//!                                   │
//!                     worker 0 … worker N-1  (WorkspacePool, one lease each)
//!                                   │
//!                     per-request one-shot response channels
//! ```
//!
//! Every stage is bounded, so the service exerts backpressure instead of
//! growing without limit: the intake window rejects at `queue_capacity`,
//! the batch channel blocks the batcher at `workers` in-flight batches
//! (which in turn lets the intake fill and reject), and each response
//! channel holds exactly one message.
//!
//! **Parity contract:** a response is bitwise identical to calling
//! [`ExecutionPlan::forward`] on that request's input alone, at every
//! precision — co-batched neighbours never change a result. FP32/FP16
//! batches run as one whole-batch forward (or a rayon fan-out when the
//! host has threads to spare), both of which preserve per-item bits;
//! INT8 batches run item-by-item via [`ExecutionPlan::forward_each`],
//! because whole-batch INT8 would quantize activations with a
//! batch-global scale and leak information between requests.

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::microbatch::{Arrival, BatchPolicy, Microbatcher};
use mlcnn_check::SloConfigLint;
use mlcnn_core::{ExecutionPlan, PlanOptions, WorkspacePool};
use mlcnn_nn::LayerSpec;
use mlcnn_quant::Precision;
use mlcnn_sched::{autotune, AdmissionPolicy, CostOracle, SloClass, SloSpec};
use mlcnn_tensor::{Shape4, Tensor};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Completion callback for event-driven callers that cannot block on
/// [`Ticket::wait`]. A reactor registers one per shard; workers invoke
/// [`CompletionNotify::completed`] *after* the response is placed in the
/// ticket channel, so a subsequent [`Ticket::poll`] from the notified
/// party observes it. Implementations must be cheap and non-blocking —
/// they run on the worker threads' hot path.
pub trait CompletionNotify: Send + Sync {
    /// `tag` is the caller-chosen cookie passed to
    /// [`Service::submit_notified`] (e.g. a connection token).
    fn completed(&self, tag: u64);
}

/// One queued inference request.
struct Request {
    input: Tensor<f32>,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// SLO class for per-class accounting (classless legacy requests are
    /// accounted as best-effort, per the metrics contract).
    class: SloClass,
    tx: SyncSender<Result<Tensor<f32>, ServeError>>,
    /// Event-driven completion hook: notified (with its tag) after `tx`
    /// is fulfilled, on every response path.
    done: Option<(Arc<dyn CompletionNotify>, u64)>,
}

impl Request {
    /// Deliver the response and fire the completion hook. The send
    /// happens first so a notified poller always finds the result.
    fn respond(self, response: Result<Tensor<f32>, ServeError>) {
        let _ = self.tx.send(response);
        if let Some((notify, tag)) = self.done {
            notify.completed(tag);
        }
    }
}

/// Mutex-guarded intake state: the micro-batch window plus lifecycle.
struct Intake {
    window: Microbatcher<Request>,
    shutting_down: bool,
    next_id: u64,
}

/// State shared by the submission path, the batcher, and the workers.
struct Shared {
    plan: Arc<ExecutionPlan>,
    cfg: ServeConfig,
    /// Epoch for the window's virtual clock.
    t0: Instant,
    intake: Mutex<Intake>,
    /// Signalled on every submission and on shutdown.
    arrivals: Condvar,
    metrics: Metrics,
    pool: Arc<WorkspacePool>,
    /// Cost-based admission control, present iff the config carries an
    /// SLO (or auto-tunes, which calibrates the same oracle).
    admission: Option<AdmissionPolicy>,
}

impl Shared {
    fn now_nanos(&self) -> u64 {
        self.t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    fn lock_intake(&self) -> MutexGuard<'_, Intake> {
        self.intake.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Handle to one submitted request; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: Receiver<Result<Tensor<f32>, ServeError>>,
}

impl Ticket {
    /// Service-assigned request id (monotonically increasing).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Result<Tensor<f32>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Block up to `timeout` for the response; `None` on timeout (the
    /// ticket is consumed — a timed-out request's eventual result is
    /// discarded when the worker finds the channel closed).
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<Tensor<f32>, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                Some(Err(ServeError::Disconnected))
            }
        }
    }

    /// Non-blocking, non-consuming probe: `Some` once the response has
    /// arrived, `None` while it is still in flight. The event-driven
    /// transport polls tickets from the reactor thread after a
    /// [`CompletionNotify`] wake instead of parking on [`Ticket::wait`].
    pub fn poll(&self) -> Option<Result<Tensor<f32>, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(std::sync::mpsc::TryRecvError::Empty) => None,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

/// The micro-batching inference service. See the [module docs](self).
///
/// Dropping the service performs the same graceful shutdown as
/// [`Service::shutdown`]: intake closes, the window drains into final
/// batches, workers finish them, and every accepted request receives
/// exactly one response.
pub struct Service {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("cfg", &self.shared.cfg)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Spawn the runtime over a pre-compiled plan. Fails — before any
    /// thread starts — when the `V0xx` lint gate denies the config or the
    /// config's precision disagrees with the plan's.
    pub fn spawn(plan: Arc<ExecutionPlan>, cfg: ServeConfig) -> Result<Service, ServeError> {
        let pool = Arc::new(WorkspacePool::for_plan(&plan, cfg.workers, cfg.max_batch));
        Service::spawn_with_pool(plan, cfg, pool)
    }

    /// [`Service::spawn`] over a caller-provided workspace pool, so many
    /// services (one per model in a registry router) can share scratch
    /// buffers instead of each pre-warming its own. Workspaces resize
    /// lazily to whichever plan leases them, so a shared pool is safe
    /// across heterogeneous models.
    pub fn spawn_with_pool(
        plan: Arc<ExecutionPlan>,
        mut cfg: ServeConfig,
        pool: Arc<WorkspacePool>,
    ) -> Result<Service, ServeError> {
        cfg.validate("mlcnn-serve", &plan)?;
        // Deny-mode plan verification: the service executes the plan's
        // slice arithmetic blindly from here on, so a plan that cannot
        // prove its dataflow invariants (P0xx) never gets a thread. This
        // covers every route into serving — direct spawns, router
        // construction, and publish/rollback hot-swaps.
        plan.verify()
            .map_err(|e| ServeError::Config(format!("plan verifier rejected the plan: {e}")))?;
        if cfg.precision != plan.precision() {
            return Err(ServeError::Config(format!(
                "config selects {} but the plan was compiled at {}",
                cfg.precision,
                plan.precision()
            )));
        }
        // SLO machinery only exists when the config asks for it; a plain
        // config takes the exact pre-SLO FIFO path (no warmup, no
        // admission, no EDF entries ever enter the window).
        let admission = if cfg.slo.is_some() || cfg.auto_tune {
            let oracle = CostOracle::calibrated(&plan, cfg.max_batch)
                .map_err(|e| ServeError::Config(format!("oracle calibration failed: {e}")))?;
            if cfg.auto_tune {
                let budget = cfg.slo.and_then(|s| s.budget).ok_or_else(|| {
                    ServeError::Config(
                        "auto_tune requires a guaranteed SLO latency budget to tune against"
                            .to_string(),
                    )
                })?;
                // the configured max_batch caps the tuner (it also sized
                // the workspace pool); tuning only ever shrinks the knobs
                let tuned = autotune(&oracle, budget, cfg.max_batch);
                cfg.max_batch = tuned.max_batch;
                cfg.max_wait = tuned.max_wait;
            }
            if let Some(spec) = cfg.slo {
                // D-code gate: deny SLO promises the scheduler provably
                // cannot keep, mirroring the V-code construction gate.
                let lint = SloConfigLint {
                    name: "mlcnn-serve".to_string(),
                    guaranteed: spec.class == SloClass::Guaranteed,
                    budget_micros: spec.budget_micros(),
                    max_wait_micros: cfg.max_wait.as_micros().min(u64::MAX as u128) as u64,
                    max_batch: cfg.max_batch,
                    predicted_service_micros: oracle.min_service_nanos() / 1_000,
                    predicted_batch_service_micros: oracle.predicted_service_nanos(cfg.max_batch)
                        / 1_000,
                };
                mlcnn_check::check_slo_config_summary(&lint).map_err(ServeError::Config)?;
            }
            let max_wait_nanos = cfg.max_wait.as_nanos().min(u64::MAX as u128) as u64;
            Some(AdmissionPolicy::new(
                oracle,
                cfg.max_batch,
                cfg.workers,
                max_wait_nanos,
            ))
        } else {
            None
        };
        let policy = BatchPolicy {
            max_batch: cfg.max_batch,
            max_wait_nanos: cfg.max_wait.as_nanos().min(u64::MAX as u128) as u64,
        };
        let shared = Arc::new(Shared {
            pool,
            metrics: Metrics::new(cfg.max_batch),
            plan,
            t0: Instant::now(),
            intake: Mutex::new(Intake {
                window: Microbatcher::new(policy),
                shutting_down: false,
                next_id: 0,
            }),
            arrivals: Condvar::new(),
            admission,
            cfg,
        });

        let (batch_tx, batch_rx) = sync_channel::<Vec<Request>>(shared.cfg.workers);
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mlcnn-serve-batcher".into())
                .spawn(move || batcher_loop(&shared, &batch_tx))
                .map_err(|e| ServeError::Config(format!("failed to spawn batcher: {e}")))?
        };
        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let mut workers = Vec::with_capacity(shared.cfg.workers);
        for i in 0..shared.cfg.workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&batch_rx);
            let handle = std::thread::Builder::new()
                .name(format!("mlcnn-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))
                .map_err(|e| ServeError::Config(format!("failed to spawn worker {i}: {e}")))?;
            workers.push(handle);
        }
        Ok(Service {
            shared,
            batcher: Some(batcher),
            workers,
        })
    }

    /// Compile a plan from a spec pipeline at the config's precision (the
    /// same gate and lowering as [`ExecutionPlan::compile`]) and spawn the
    /// service over it.
    pub fn compile(
        specs: &[LayerSpec],
        params: &[Tensor<f32>],
        input: Shape4,
        cfg: ServeConfig,
    ) -> Result<Service, ServeError> {
        let opts = PlanOptions::default().with_precision(cfg.precision);
        let plan = ExecutionPlan::compile(specs, params, input, opts)
            .map_err(|e| ServeError::Config(format!("plan compilation failed: {e}")))?;
        Service::spawn(Arc::new(plan), cfg)
    }

    /// The plan being served.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.shared.plan
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Submit one request (a single item, batch dim 1) under the config's
    /// default deadline. Non-blocking: rejects with
    /// [`ServeError::QueueFull`] instead of waiting when the intake window
    /// is at capacity.
    pub fn submit(&self, input: Tensor<f32>) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(input, self.shared.cfg.default_deadline)
    }

    /// [`Service::submit`] with an explicit per-request deadline
    /// (`None` = no deadline). A request still queued when its deadline
    /// passes is shed without running inference.
    pub fn submit_with_deadline(
        &self,
        input: Tensor<f32>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(input, deadline, self.shared.cfg.slo, None)
    }

    /// Submit one request under an explicit SLO spec, overriding the
    /// config's default class. A `guaranteed` spec must carry a budget
    /// (its deadline), is admission-checked against the cost oracle, and
    /// is scheduled earliest-deadline-first; a `best_effort` spec is
    /// sheddable under overload.
    pub fn submit_with_slo(&self, input: Tensor<f32>, spec: SloSpec) -> Result<Ticket, ServeError> {
        self.submit_inner(input, self.shared.cfg.default_deadline, Some(spec), None)
    }

    /// [`Service::submit_with_slo`] with a completion hook (see
    /// [`Service::submit_notified`]) — the event-driven transport's SLO
    /// submission path.
    pub fn submit_slo(
        &self,
        input: Tensor<f32>,
        spec: SloSpec,
        done: Option<(Arc<dyn CompletionNotify>, u64)>,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(input, self.shared.cfg.default_deadline, Some(spec), done)
    }

    /// [`Service::submit`] with a completion hook: after the response is
    /// delivered into the ticket, `notify.completed(tag)` fires on the
    /// worker thread. Event-driven callers park the ticket, and redeem
    /// it with [`Ticket::poll`] when the notification arrives, instead
    /// of blocking a thread per request.
    pub fn submit_notified(
        &self,
        input: Tensor<f32>,
        notify: Arc<dyn CompletionNotify>,
        tag: u64,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(
            input,
            self.shared.cfg.default_deadline,
            self.shared.cfg.slo,
            Some((notify, tag)),
        )
    }

    fn submit_inner(
        &self,
        input: Tensor<f32>,
        deadline: Option<Duration>,
        slo: Option<SloSpec>,
        done: Option<(Arc<dyn CompletionNotify>, u64)>,
    ) -> Result<Ticket, ServeError> {
        use std::sync::atomic::Ordering::Relaxed;
        let s = input.shape();
        let e = self.shared.plan.input_shape();
        if s.n != 1 || (s.c, s.h, s.w) != (e.c, e.h, e.w) {
            return Err(ServeError::BadInput(format!(
                "expected one {}x{}x{} item, got {:?}",
                e.c, e.h, e.w, s
            )));
        }
        // Resolve the class and the effective deadline. A guaranteed
        // request's budget IS its deadline; best-effort keeps whatever
        // deadline the caller (or config default) set; classless requests
        // are accounted as best-effort but stay FIFO and un-sheddable.
        let class = slo.map(|spec| spec.class).unwrap_or(SloClass::BestEffort);
        let budget_nanos = match slo {
            Some(spec) if spec.class == SloClass::Guaranteed => match spec.budget {
                Some(b) => b.as_nanos().min(u64::MAX as u128) as u64,
                None => {
                    return Err(ServeError::BadInput(
                        "guaranteed request without a latency budget".to_string(),
                    ))
                }
            },
            _ => 0,
        };
        let guaranteed = slo.is_some_and(|spec| spec.class == SloClass::Guaranteed);
        let deadline = if guaranteed {
            Some(Duration::from_nanos(budget_nanos))
        } else {
            slo.and_then(|spec| spec.budget).or(deadline)
        };
        let sheddable = slo.is_some_and(|spec| spec.class == SloClass::BestEffort);

        let now = Instant::now();
        let (tx, rx) = sync_channel(1);
        let mut intake = self.shared.lock_intake();
        if intake.shutting_down {
            self.shared.metrics.rejected_shutdown.fetch_add(1, Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        // Cost-based admission: refuse a guaranteed request the oracle
        // proves cannot meet its budget, instead of queueing it to be
        // shed at expiry.
        if guaranteed {
            if let Some(policy) = &self.shared.admission {
                let ahead = intake.window.deadline_entries();
                if let Err(eta) = policy.admit(ahead, budget_nanos) {
                    self.shared.metrics.classes[class.index()]
                        .rejected_admission
                        .fetch_add(1, Relaxed);
                    return Err(ServeError::AdmissionRejected(format!(
                        "predicted completion in {} µs exceeds the {} µs budget \
                         ({} guaranteed requests queued ahead)",
                        eta / 1_000,
                        budget_nanos / 1_000,
                        ahead
                    )));
                }
            }
        }
        // Overload policy at a full queue: guaranteed work evicts the
        // newest best-effort request (cheapest to refuse — least wait
        // invested); anything else is rejected queue-full as before.
        let mut evicted = None;
        if intake.window.len() >= self.shared.cfg.queue_capacity {
            if guaranteed && intake.window.has_sheddable() {
                evicted = intake.window.shed_newest_sheddable();
                if evicted.is_some() {
                    self.shared.metrics.shed_overload.fetch_add(1, Relaxed);
                    self.shared.metrics.classes[SloClass::BestEffort.index()]
                        .shed
                        .fetch_add(1, Relaxed);
                }
            }
            if evicted.is_none() {
                self.shared.metrics.rejected_full.fetch_add(1, Relaxed);
                return Err(ServeError::QueueFull(self.shared.cfg.queue_capacity));
            }
        }
        let id = intake.next_id;
        intake.next_id += 1;
        let now_nanos = self.shared.now_nanos();
        intake.window.push_at(
            Request {
                input,
                enqueued: now,
                deadline: deadline.map(|d| now + d),
                class,
                tx,
                done,
            },
            Arrival {
                now_nanos,
                edf_deadline_nanos: guaranteed.then(|| now_nanos.saturating_add(budget_nanos)),
                sheddable,
            },
        );
        self.shared.metrics.submitted.fetch_add(1, Relaxed);
        self.shared.metrics.classes[class.index()]
            .admitted
            .fetch_add(1, Relaxed);
        self.shared
            .metrics
            .queue_depth
            .store(intake.window.len(), Relaxed);
        drop(intake);
        // respond outside the intake lock — the victim's completion hook
        // runs arbitrary reactor code
        if let Some(victim) = evicted {
            victim.respond(Err(ServeError::ShedOverload));
        }
        self.shared.arrivals.notify_all();
        Ok(Ticket { id, rx })
    }

    /// Submit and block for the response: the closed-loop convenience.
    pub fn infer(&self, input: Tensor<f32>) -> Result<Tensor<f32>, ServeError> {
        self.submit(input)?.wait()
    }

    /// Point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Graceful shutdown: close intake (subsequent submissions get
    /// [`ServeError::ShuttingDown`]), flush the window as final batches,
    /// let every worker finish, and return the terminal metrics. Every
    /// request accepted before shutdown receives exactly one response.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.finish();
        self.shared.metrics.snapshot()
    }

    fn finish(&mut self) {
        {
            let mut intake = self.shared.lock_intake();
            intake.shutting_down = true;
        }
        self.shared.arrivals.notify_all();
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if self.batcher.is_some() || !self.workers.is_empty() {
            self.finish();
        }
    }
}

/// The batcher thread: runs the [`Microbatcher`] window against the real
/// clock, shipping dispatched batches down the (bounded) batch channel.
/// Exits after shutdown once the window is fully drained; dropping the
/// sender is what releases the workers.
fn batcher_loop(shared: &Shared, batch_tx: &SyncSender<Vec<Request>>) {
    let mut intake = shared.lock_intake();
    loop {
        if let Some(batch) = intake.window.poll(shared.now_nanos()) {
            shared
                .metrics
                .queue_depth
                .store(intake.window.len(), std::sync::atomic::Ordering::Relaxed);
            drop(intake);
            // blocks when all workers are busy: backpressure into the window
            if batch_tx.send(batch).is_err() {
                return; // workers gone; nothing left to deliver to
            }
            intake = shared.lock_intake();
            continue;
        }
        if intake.shutting_down {
            let rest = intake.window.drain_all();
            shared
                .metrics
                .queue_depth
                .store(0, std::sync::atomic::Ordering::Relaxed);
            drop(intake);
            for batch in rest {
                if batch_tx.send(batch).is_err() {
                    return;
                }
            }
            return;
        }
        intake = match intake.window.next_deadline() {
            None => shared
                .arrivals
                .wait(intake)
                .unwrap_or_else(|e| e.into_inner()),
            Some(deadline) => {
                let now = shared.now_nanos();
                if deadline <= now {
                    continue; // poll will dispatch on the next pass
                }
                shared
                    .arrivals
                    .wait_timeout(intake, Duration::from_nanos(deadline - now))
                    .unwrap_or_else(|e| e.into_inner())
                    .0
            }
        };
    }
}

/// A worker thread: pull batches until the batcher hangs up, executing
/// each with a pooled workspace.
fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<Vec<Request>>>>) {
    loop {
        let batch = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        match batch {
            Err(_) => return, // batcher dropped the sender: drained
            Ok(reqs) => execute_batch(shared, reqs),
        }
    }
}

/// Shed expired requests, run the survivors as one coalesced plan call,
/// and fan the per-item outputs back to their response channels.
fn execute_batch(shared: &Shared, reqs: Vec<Request>) {
    use std::sync::atomic::Ordering::Relaxed;
    let now = Instant::now();
    let mut live = Vec::with_capacity(reqs.len());
    for r in reqs {
        if r.deadline.is_some_and(|d| now >= d) {
            shared.metrics.shed_expired.fetch_add(1, Relaxed);
            shared.metrics.classes[r.class.index()]
                .shed
                .fetch_add(1, Relaxed);
            r.respond(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(r);
        }
    }
    if live.is_empty() {
        return;
    }
    shared.metrics.observe_batch(live.len());

    let n = live.len();
    let item = shared.plan.input_shape();
    let shape = Shape4::new(n, item.c, item.h, item.w);
    let mut data = Vec::with_capacity(shape.len());
    for r in &live {
        data.extend_from_slice(r.input.as_slice());
    }
    let batched = Tensor::from_vec(shape, data).expect("stacked batch matches item shape");

    // Every path below is bitwise identical, per item, to
    // `plan.forward(item)` — see the parity contract in the module docs.
    let result = if shared.plan.precision() == Precision::Int8 {
        shared.plan.forward_each(&batched, &shared.pool)
    } else if n > 1 && rayon::current_num_threads() > 1 {
        shared.plan.forward_batch_with(&batched, &shared.pool)
    } else {
        let mut ws = shared.pool.lease();
        shared.plan.forward(&batched, &mut ws)
    };

    match result {
        Ok(out) => {
            for (i, r) in live.into_iter().enumerate() {
                let response = out.batch_item(i).map_err(|e| {
                    shared.metrics.failed.fetch_add(1, Relaxed);
                    ServeError::Inference(e.to_string())
                });
                if response.is_ok() {
                    let micros = r.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    shared.metrics.completed.fetch_add(1, Relaxed);
                    shared.metrics.latency.observe_micros(micros);
                    let class = &shared.metrics.classes[r.class.index()];
                    class.completed.fetch_add(1, Relaxed);
                    class.latency.observe_micros(micros);
                }
                r.respond(response);
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for r in live {
                shared.metrics.failed.fetch_add(1, Relaxed);
                r.respond(Err(ServeError::Inference(msg.clone())));
            }
        }
    }
}
