//! Blocking TCP front-end over a [`Dispatch`] backend: a
//! thread-per-connection listener speaking the [`crate::wire`] frame
//! protocol, and a matching synchronous [`Client`].
//!
//! The listener is generic over *what* serves the requests. A
//! single-model server wraps its [`Service`] in [`NamedService`]; a
//! registry server plugs in [`crate::router::Router`], which adds
//! multi-model routing and hot-swap. Either way each connection runs a
//! reader thread (this function's caller thread) and one writer thread.
//! The reader submits inference frames to the backend *without waiting*
//! and hands the resulting tickets to the writer in submission order; the
//! writer resolves them one by one. That keeps responses in request order
//! while still letting a pipelining client have many requests coalescing
//! in the micro-batcher at once.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use mlcnn_sched::SloSpec;
use mlcnn_tensor::Tensor;

use crate::error::ServeError;
use crate::service::{CompletionNotify, Service, Ticket};
use crate::wire::{read_frame, write_frame, Frame};

/// A request backend the TCP front-end can serve: routes inference by
/// model name, snapshots metrics, and (for registry servers) switches
/// revisions.
pub trait Dispatch: Send + Sync + 'static {
    /// Submit one input item to `model` (empty = the only model).
    fn submit(&self, model: &str, input: Tensor<f32>) -> Result<Ticket, ServeError>;

    /// [`Dispatch::submit`] with a completion hook for event-driven
    /// front-ends: `notify.completed(tag)` fires once the ticket holds
    /// the response (see [`crate::Service::submit_notified`]).
    fn submit_notified(
        &self,
        model: &str,
        input: Tensor<f32>,
        notify: Arc<dyn CompletionNotify>,
        tag: u64,
    ) -> Result<Ticket, ServeError>;

    /// Submit one input item to `model` under an explicit SLO spec,
    /// optionally with a completion hook. Guaranteed requests are
    /// admission-checked against the model's cost oracle; best-effort
    /// requests become sheddable under overload.
    fn submit_slo(
        &self,
        model: &str,
        input: Tensor<f32>,
        spec: SloSpec,
        done: Option<(Arc<dyn CompletionNotify>, u64)>,
    ) -> Result<Ticket, ServeError>;

    /// Metrics snapshot as JSON.
    fn metrics_json(&self) -> String;

    /// Make `revision` the active revision of `model`; returns
    /// `(active, previous)`.
    fn publish(&self, model: &str, revision: u64) -> Result<(u64, u64), ServeError>;

    /// Revert `model` to the previously active revision; returns
    /// `(active, previous)`.
    fn rollback(&self, model: &str) -> Result<(u64, u64), ServeError>;
}

/// A single [`Service`] exposed under a model name. Accepts requests
/// addressed to the empty name (the protocol's "only model" form) or to
/// its own name; publish/rollback are rejected — there is no registry.
#[derive(Debug)]
pub struct NamedService {
    name: String,
    svc: Service,
}

impl NamedService {
    /// Wrap `svc` under `name`.
    pub fn new(name: impl Into<String>, svc: Service) -> Self {
        NamedService {
            name: name.into(),
            svc,
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &Service {
        &self.svc
    }
}

impl Dispatch for NamedService {
    fn submit(&self, model: &str, input: Tensor<f32>) -> Result<Ticket, ServeError> {
        if !model.is_empty() && model != self.name {
            return Err(ServeError::UnknownModel(model.to_string()));
        }
        self.svc.submit(input)
    }

    fn submit_notified(
        &self,
        model: &str,
        input: Tensor<f32>,
        notify: Arc<dyn CompletionNotify>,
        tag: u64,
    ) -> Result<Ticket, ServeError> {
        if !model.is_empty() && model != self.name {
            return Err(ServeError::UnknownModel(model.to_string()));
        }
        self.svc.submit_notified(input, notify, tag)
    }

    fn submit_slo(
        &self,
        model: &str,
        input: Tensor<f32>,
        spec: SloSpec,
        done: Option<(Arc<dyn CompletionNotify>, u64)>,
    ) -> Result<Ticket, ServeError> {
        if !model.is_empty() && model != self.name {
            return Err(ServeError::UnknownModel(model.to_string()));
        }
        self.svc.submit_slo(input, spec, done)
    }

    fn metrics_json(&self) -> String {
        self.svc.metrics().to_json()
    }

    fn publish(&self, _model: &str, _revision: u64) -> Result<(u64, u64), ServeError> {
        Err(ServeError::Registry(
            "this server has no registry; publish is unavailable".into(),
        ))
    }

    fn rollback(&self, _model: &str) -> Result<(u64, u64), ServeError> {
        Err(ServeError::Registry(
            "this server has no registry; rollback is unavailable".into(),
        ))
    }
}

/// What the writer thread must produce for one inbound frame.
enum Outcome {
    /// An in-flight inference; resolve the ticket, then answer `id`.
    Pending(u64, Ticket),
    /// Already-final response (metrics, admin, submission errors).
    Immediate(Frame),
}

/// Accept connections on `listener` forever, serving each on its own
/// thread. Returns only when `accept` fails fatally.
pub fn serve_listener<D: Dispatch>(listener: TcpListener, backend: Arc<D>) -> io::Result<()> {
    loop {
        let (stream, peer) = listener.accept()?;
        let backend = Arc::clone(&backend);
        thread::Builder::new()
            .name(format!("mlcnn-conn-{peer}"))
            .spawn(move || {
                // Connection errors (resets, protocol violations) end that
                // connection only; the listener keeps serving.
                let _ = handle_conn(stream, &*backend);
            })?;
    }
}

/// Serve one connection until EOF or an I/O error.
fn handle_conn(stream: TcpStream, backend: &dyn Dispatch) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let write_half = stream.try_clone()?;
    let (tx, rx) = mpsc::channel::<Outcome>();

    let writer = thread::Builder::new()
        .name("mlcnn-conn-writer".into())
        .spawn(move || -> io::Result<()> {
            let mut w = BufWriter::new(write_half);
            while let Ok(outcome) = rx.recv() {
                let frame = match outcome {
                    Outcome::Immediate(frame) => frame,
                    Outcome::Pending(id, ticket) => match ticket.wait() {
                        Ok(output) => Frame::InferOk { id, output },
                        Err(e) => Frame::Error {
                            id,
                            message: e.to_string(),
                        },
                    },
                };
                write_frame(&mut w, &frame)?;
                w.flush()?;
            }
            Ok(())
        })?;

    let mut r = BufReader::new(stream);
    let read_result: io::Result<()> = loop {
        let frame = match read_frame(&mut r) {
            Ok(Some(frame)) => frame,
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        };
        let outcome = match frame {
            Frame::InferRequest { id, model, input } => match backend.submit(&model, input) {
                Ok(ticket) => Outcome::Pending(id, ticket),
                Err(e) => Outcome::Immediate(Frame::Error {
                    id,
                    message: e.to_string(),
                }),
            },
            Frame::InferSloRequest {
                id,
                model,
                class,
                budget_micros,
                input,
            } => {
                let spec = SloSpec::from_wire(class, budget_micros);
                match backend.submit_slo(&model, input, spec, None) {
                    Ok(ticket) => Outcome::Pending(id, ticket),
                    Err(e) => Outcome::Immediate(Frame::Error {
                        id,
                        message: e.to_string(),
                    }),
                }
            }
            Frame::MetricsRequest { id } => Outcome::Immediate(Frame::MetricsOk {
                id,
                json: backend.metrics_json(),
            }),
            Frame::PublishRequest {
                id,
                model,
                revision,
            } => Outcome::Immediate(match backend.publish(&model, revision) {
                Ok((active, previous)) => Frame::AdminOk {
                    id,
                    model,
                    active,
                    previous,
                },
                Err(e) => Frame::Error {
                    id,
                    message: e.to_string(),
                },
            }),
            Frame::RollbackRequest { id, model } => {
                Outcome::Immediate(match backend.rollback(&model) {
                    Ok((active, previous)) => Frame::AdminOk {
                        id,
                        model,
                        active,
                        previous,
                    },
                    Err(e) => Frame::Error {
                        id,
                        message: e.to_string(),
                    },
                })
            }
            other => Outcome::Immediate(Frame::Error {
                id: other.id(),
                message: "clients may only send request frames".into(),
            }),
        };
        if tx.send(outcome).is_err() {
            break Ok(()); // writer hit an I/O error and exited
        }
    };
    drop(tx); // lets the writer drain in-flight responses and exit
    let write_result = writer.join().unwrap_or(Ok(()));
    read_result.and(write_result)
}

/// Blocking client for the `mlcnn-served` frame protocol. One request in
/// flight at a time; ids are assigned internally and checked on reply.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 1 })
    }

    fn roundtrip(&mut self, frame: &Frame) -> io::Result<Frame> {
        let want = frame.id();
        write_frame(&mut self.stream, frame)?;
        self.stream.flush()?;
        let reply = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        if reply.id() != want {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {} for request {want}", reply.id()),
            ));
        }
        Ok(reply)
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Run inference on one input item against the server's only model.
    pub fn infer(&mut self, input: Tensor<f32>) -> io::Result<Tensor<f32>> {
        self.infer_model("", input)
    }

    /// Run inference on one input item against a named model (registry
    /// servers route by name; single-model servers also accept their own
    /// name).
    pub fn infer_model(&mut self, model: &str, input: Tensor<f32>) -> io::Result<Tensor<f32>> {
        let id = self.next_id();
        let frame = Frame::InferRequest {
            id,
            model: model.to_string(),
            input,
        };
        match self.roundtrip(&frame)? {
            Frame::InferOk { output, .. } => Ok(output),
            Frame::Error { message, .. } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply frame for infer: {other:?}"),
            )),
        }
    }

    /// Run inference under an explicit SLO spec against a named model
    /// (empty = the server's only model). The spec rides the wire on the
    /// `0x05` frame; pre-SLO servers reject it with an error reply.
    pub fn infer_slo(
        &mut self,
        model: &str,
        spec: SloSpec,
        input: Tensor<f32>,
    ) -> io::Result<Tensor<f32>> {
        let id = self.next_id();
        let frame = Frame::InferSloRequest {
            id,
            model: model.to_string(),
            class: spec.class,
            budget_micros: spec.budget_micros(),
            input,
        };
        match self.roundtrip(&frame)? {
            Frame::InferOk { output, .. } => Ok(output),
            Frame::Error { message, .. } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply frame for infer_slo: {other:?}"),
            )),
        }
    }

    /// Fetch the server's metrics snapshot as JSON.
    pub fn metrics_json(&mut self) -> io::Result<String> {
        let id = self.next_id();
        match self.roundtrip(&Frame::MetricsRequest { id })? {
            Frame::MetricsOk { json, .. } => Ok(json),
            Frame::Error { message, .. } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply frame for metrics: {other:?}"),
            )),
        }
    }

    /// Make `revision` the active revision of `model` on a registry
    /// server; returns `(active, previous)`.
    pub fn publish(&mut self, model: &str, revision: u64) -> io::Result<(u64, u64)> {
        let id = self.next_id();
        let frame = Frame::PublishRequest {
            id,
            model: model.to_string(),
            revision,
        };
        self.admin_roundtrip(&frame)
    }

    /// Revert `model` to its previously active revision on a registry
    /// server; returns `(active, previous)`.
    pub fn rollback(&mut self, model: &str) -> io::Result<(u64, u64)> {
        let id = self.next_id();
        let frame = Frame::RollbackRequest {
            id,
            model: model.to_string(),
        };
        self.admin_roundtrip(&frame)
    }

    fn admin_roundtrip(&mut self, frame: &Frame) -> io::Result<(u64, u64)> {
        match self.roundtrip(frame)? {
            Frame::AdminOk {
                active, previous, ..
            } => Ok((active, previous)),
            Frame::Error { message, .. } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply frame for admin request: {other:?}"),
            )),
        }
    }
}
