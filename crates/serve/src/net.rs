//! Blocking TCP front-end over [`Service`]: a thread-per-connection
//! listener speaking the [`crate::wire`] frame protocol, and a matching
//! synchronous [`Client`].
//!
//! Each connection runs a reader thread (this function's caller thread)
//! and one writer thread. The reader submits inference frames to the
//! service *without waiting* and hands the resulting tickets to the
//! writer in submission order; the writer resolves them one by one. That
//! keeps responses in request order while still letting a pipelining
//! client have many requests coalescing in the micro-batcher at once.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use mlcnn_tensor::Tensor;

use crate::service::Service;
use crate::wire::{read_frame, write_frame, Frame};

/// What the writer thread must produce for one inbound frame.
enum Outcome {
    /// An in-flight inference; resolve the ticket, then answer `id`.
    Pending(u64, crate::service::Ticket),
    /// Already-final response (metrics, submission errors).
    Immediate(Frame),
}

/// Accept connections on `listener` forever, serving each on its own
/// thread. Returns only when `accept` fails fatally.
pub fn serve_listener(listener: TcpListener, svc: Arc<Service>) -> io::Result<()> {
    loop {
        let (stream, peer) = listener.accept()?;
        let svc = Arc::clone(&svc);
        thread::Builder::new()
            .name(format!("mlcnn-conn-{peer}"))
            .spawn(move || {
                // Connection errors (resets, protocol violations) end that
                // connection only; the listener keeps serving.
                let _ = handle_conn(stream, &svc);
            })?;
    }
}

/// Serve one connection until EOF or an I/O error.
fn handle_conn(stream: TcpStream, svc: &Service) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let write_half = stream.try_clone()?;
    let (tx, rx) = mpsc::channel::<Outcome>();

    let writer = thread::Builder::new()
        .name("mlcnn-conn-writer".into())
        .spawn(move || -> io::Result<()> {
            let mut w = BufWriter::new(write_half);
            while let Ok(outcome) = rx.recv() {
                let frame = match outcome {
                    Outcome::Immediate(frame) => frame,
                    Outcome::Pending(id, ticket) => match ticket.wait() {
                        Ok(output) => Frame::InferOk { id, output },
                        Err(e) => Frame::Error {
                            id,
                            message: e.to_string(),
                        },
                    },
                };
                write_frame(&mut w, &frame)?;
                w.flush()?;
            }
            Ok(())
        })?;

    let mut r = BufReader::new(stream);
    let read_result: io::Result<()> = loop {
        let frame = match read_frame(&mut r) {
            Ok(Some(frame)) => frame,
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        };
        let outcome = match frame {
            Frame::InferRequest { id, input } => match svc.submit(input) {
                Ok(ticket) => Outcome::Pending(id, ticket),
                Err(e) => Outcome::Immediate(Frame::Error {
                    id,
                    message: e.to_string(),
                }),
            },
            Frame::MetricsRequest { id } => Outcome::Immediate(Frame::MetricsOk {
                id,
                json: svc.metrics().to_json(),
            }),
            other => Outcome::Immediate(Frame::Error {
                id: other.id(),
                message: "clients may only send InferRequest or MetricsRequest".into(),
            }),
        };
        if tx.send(outcome).is_err() {
            break Ok(()); // writer hit an I/O error and exited
        }
    };
    drop(tx); // lets the writer drain in-flight responses and exit
    let write_result = writer.join().unwrap_or(Ok(()));
    read_result.and(write_result)
}

/// Blocking client for the `mlcnn-served` frame protocol. One request in
/// flight at a time; ids are assigned internally and checked on reply.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 1 })
    }

    fn roundtrip(&mut self, frame: &Frame) -> io::Result<Frame> {
        let want = frame.id();
        write_frame(&mut self.stream, frame)?;
        self.stream.flush()?;
        let reply = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        if reply.id() != want {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {} for request {want}", reply.id()),
            ));
        }
        Ok(reply)
    }

    /// Run inference on one input item.
    pub fn infer(&mut self, input: Tensor<f32>) -> io::Result<Tensor<f32>> {
        let id = self.next_id;
        self.next_id += 1;
        match self.roundtrip(&Frame::InferRequest { id, input })? {
            Frame::InferOk { output, .. } => Ok(output),
            Frame::Error { message, .. } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply frame for infer: {other:?}"),
            )),
        }
    }

    /// Fetch the server's metrics snapshot as JSON.
    pub fn metrics_json(&mut self) -> io::Result<String> {
        let id = self.next_id;
        self.next_id += 1;
        match self.roundtrip(&Frame::MetricsRequest { id })? {
            Frame::MetricsOk { json, .. } => Ok(json),
            Frame::Error { message, .. } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply frame for metrics: {other:?}"),
            )),
        }
    }
}
